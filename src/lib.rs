//! Umbrella crate for the DEBRA / DEBRA+ reproduction workspace.
//!
//! Re-exports the individual crates so that examples and integration tests can use a single
//! dependency.  See the workspace `README.md` and `DESIGN.md` for the architecture.

pub use blockbag;
pub use debra;
pub use lockfree_ds;
pub use neutralize;
pub use smr_alloc;
pub use smr_baselines;
/// Only present under `--features smr_sanitize`: keeps the sanitizer out of the
/// default dependency graph entirely (`cargo tree` shows no `smr-check` edge).
#[cfg(feature = "smr_sanitize")]
pub use smr_check;
pub use smr_hashmap;
pub use smr_ibr;
pub use smr_pagepool;
pub use smr_queue;
pub use smr_vbr;
pub use smr_workloads;

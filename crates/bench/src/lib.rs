//! Shared helpers for the benchmark targets that regenerate the paper's tables and figures.
//!
//! Each `[[bench]]` target corresponds to one figure of the paper's evaluation (see
//! `DESIGN.md`, "Experiment index"); running `cargo bench --workspace` regenerates all of
//! them.  The sweeps are deliberately scaled down by default (duration and key ranges) so
//! that the full suite finishes in a few minutes; set `DURATION_MS`, `THREADS` and
//! `FULL_KEYRANGE=1` to reproduce the paper-scale configuration.

/// Reads the per-trial duration from `DURATION_MS` (default: `default_ms`).
pub fn duration_ms(default_ms: u64) -> u64 {
    std::env::var("DURATION_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(default_ms)
}

/// Reads the thread counts to sweep from `THREADS` (default: `default`).
pub fn thread_counts(default: &[usize]) -> Vec<usize> {
    std::env::var("THREADS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// Whether to use the paper's full key ranges (`FULL_KEYRANGE=1`) or the scaled-down ones.
pub fn small_keyranges() -> bool {
    std::env::var("FULL_KEYRANGE").map(|v| v != "1").unwrap_or(true)
}

//! Schema check for `BENCH_reclaimer.json` (CI gate, **not** a performance gate).
//!
//! Verifies that the file produced by the `reclaimer_microbench` bench target contains
//! every expected (scheme × operation) row: the primitive costs per scheme, the retire
//! rows for the bag-based schemes, and the whole-structure hash-map rows for both key
//! distributions.  Numbers are not judged — only presence and well-formedness — so a
//! refactor that silently drops a scheme or a structure from the benchmark matrix fails
//! CI, while an honest perf regression does not.
//!
//! ```text
//! cargo run --release -p smr-bench --bin bench_schema_check [path/to/BENCH_reclaimer.json]
//! ```
//!
//! Exit code 0 if the schema is complete, 1 otherwise.  The parser is deliberately a
//! minimal hand-rolled scan (the workspace has no JSON dependency, see `shims/README.md`).

/// Every scheme in the repository's line-up.
const SCHEMES: [&str; 7] = ["None", "DEBRA", "DEBRA+", "HP", "EBR", "ThreadScan", "IBR"];

/// (scheme, op) pairs the JSON must contain.
fn expected_rows() -> Vec<(String, String)> {
    let mut rows = Vec::new();
    for scheme in SCHEMES {
        rows.push((scheme.to_string(), "op_boundary".to_string()));
        rows.push((scheme.to_string(), "protect".to_string()));
        rows.push((scheme.to_string(), "hashmap_uniform".to_string()));
        rows.push((scheme.to_string(), "hashmap_zipf".to_string()));
        // The guard-layer overhead pairs (safe Domain/Guard/Shield/ShieldSet API vs the
        // raw Record Manager baselines embedded in the benchmark), plus the BST's
        // absolute safe-API row (its raw implementation no longer exists).
        rows.push((scheme.to_string(), "list_raw".to_string()));
        rows.push((scheme.to_string(), "list_guard".to_string()));
        rows.push((scheme.to_string(), "skiplist_raw".to_string()));
        rows.push((scheme.to_string(), "skiplist_guard".to_string()));
        rows.push((scheme.to_string(), "bst_guard".to_string()));
        // The bag-shaped structures (smr-queue): alternating push/pop per scheme.
        rows.push((scheme.to_string(), "queue_guard".to_string()));
        rows.push((scheme.to_string(), "stack_guard".to_string()));
        // The allocation-pipeline comparison: the same list/bag workloads composed with
        // the type-stable page-pool allocator (smr-pagepool) instead of malloc.
        rows.push((scheme.to_string(), "list_guard_pagepool".to_string()));
        rows.push((scheme.to_string(), "queue_guard_pagepool".to_string()));
        rows.push((scheme.to_string(), "stack_guard_pagepool".to_string()));
    }
    for scheme in ["DEBRA", "EBR", "IBR"] {
        rows.push((scheme.to_string(), "retire".to_string()));
    }
    rows
}

/// Extracts the string value of `"field": "value"` from one JSON object line.
fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extracts the numeric value of `"field": 12.5` from one JSON object line.
fn number(line: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..]
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .map(|i| i + start)
        .unwrap_or(line.len());
    line[start..end].parse().ok()
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_reclaimer.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_schema_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };

    let mut present = Vec::new();
    let mut malformed = 0usize;
    for line in text.lines().filter(|l| l.contains("\"name\"")) {
        let (Some(scheme), Some(op)) = (field(line, "scheme"), field(line, "op")) else {
            eprintln!("bench_schema_check: malformed row: {}", line.trim());
            malformed += 1;
            continue;
        };
        match number(line, "ns_per_iter") {
            Some(ns) if ns.is_finite() && ns >= 0.0 => {}
            _ => {
                eprintln!("bench_schema_check: bad ns_per_iter in row: {}", line.trim());
                malformed += 1;
                continue;
            }
        }
        present.push((scheme.to_string(), op.to_string()));
    }

    let missing: Vec<(String, String)> =
        expected_rows().into_iter().filter(|row| !present.contains(row)).collect();

    if !missing.is_empty() {
        eprintln!("bench_schema_check: {path} is missing {} expected row(s):", missing.len());
        for (scheme, op) in &missing {
            eprintln!("  - {scheme}/{op}");
        }
    }
    if malformed > 0 || !missing.is_empty() {
        std::process::exit(1);
    }
    println!(
        "bench_schema_check: {path} OK ({} rows, all {} expected scheme x op cells present)",
        present.len(),
        expected_rows().len()
    );
}

//! Schema check for `BENCH_reclaimer.json` and `BENCH_latency.json` (CI gate, **not** a
//! performance gate).
//!
//! Verifies that the file produced by the `reclaimer_microbench` bench target contains
//! every expected (scheme × operation) row: the primitive costs per scheme, the retire
//! rows for the bag-based schemes, and the whole-structure hash-map rows for both key
//! distributions.  Numbers are not judged — only presence and well-formedness — so a
//! refactor that silently drops a scheme or a structure from the benchmark matrix fails
//! CI, while an honest perf regression does not.
//!
//! When a second path is given, it is checked as the latency family's output
//! (`experiments -- oversub`): every (structure × scheme × mode) cell must be present,
//! rows with recording off must carry zero samples, rows with recording on must carry
//! samples with ordered quantiles (p50 ≤ p90 ≤ p99 ≤ p999 ≤ max).  The on/off overhead
//! twins are *printed*, not enforced — recording overhead depends on the machine, and a
//! CI gate on it would flake.
//!
//! ```text
//! cargo run --release -p smr-bench --bin bench_schema_check \
//!     [path/to/BENCH_reclaimer.json] [path/to/BENCH_latency.json]
//! ```
//!
//! Exit code 0 if the schemas are complete, 1 otherwise.  The parser is deliberately a
//! minimal hand-rolled scan (the workspace has no JSON dependency, see `shims/README.md`).

/// Every scheme in the repository's line-up.
const SCHEMES: [&str; 8] = ["None", "DEBRA", "DEBRA+", "HP", "EBR", "ThreadScan", "IBR", "VBR"];

/// (scheme, op) pairs the JSON must contain.
fn expected_rows() -> Vec<(String, String)> {
    let mut rows = Vec::new();
    for scheme in SCHEMES {
        rows.push((scheme.to_string(), "op_boundary".to_string()));
        rows.push((scheme.to_string(), "protect".to_string()));
        rows.push((scheme.to_string(), "hashmap_uniform".to_string()));
        rows.push((scheme.to_string(), "hashmap_zipf".to_string()));
        // The guard-layer overhead pairs (safe Domain/Guard/Shield/ShieldSet API vs the
        // raw Record Manager baselines embedded in the benchmark), plus the BST's
        // absolute safe-API row (its raw implementation no longer exists).  VBR has no
        // `skiplist_raw` twin: the raw skip list retries a failed protect under the
        // same pin, which cannot express VBR's re-pin (typed Restart) recovery — see
        // the `skiplist` family in `reclaimer_microbench.rs`.
        rows.push((scheme.to_string(), "list_raw".to_string()));
        rows.push((scheme.to_string(), "list_guard".to_string()));
        if scheme != "VBR" {
            rows.push((scheme.to_string(), "skiplist_raw".to_string()));
        }
        rows.push((scheme.to_string(), "skiplist_guard".to_string()));
        rows.push((scheme.to_string(), "bst_guard".to_string()));
        // The bag-shaped structures (smr-queue): alternating push/pop per scheme.
        rows.push((scheme.to_string(), "queue_guard".to_string()));
        rows.push((scheme.to_string(), "stack_guard".to_string()));
        // The allocation-pipeline comparison: the same list/bag workloads composed with
        // the type-stable page-pool allocator (smr-pagepool) instead of malloc.
        rows.push((scheme.to_string(), "list_guard_pagepool".to_string()));
        rows.push((scheme.to_string(), "queue_guard_pagepool".to_string()));
        rows.push((scheme.to_string(), "stack_guard_pagepool".to_string()));
    }
    for scheme in ["DEBRA", "EBR", "IBR", "VBR"] {
        rows.push((scheme.to_string(), "retire".to_string()));
    }
    // The read-heavy (90/5/5) comparison family: the announcement-free-read claim,
    // measured as EBR-vs-VBR (plus the guard-vs-raw list twins) under uniform and
    // Zipf 0.99 keys, every row over the page pool so the allocator cancels out.
    for scheme in ["EBR", "VBR"] {
        for op in [
            "list_raw_readheavy_uniform",
            "list_readheavy_uniform",
            "hashmap_readheavy_uniform",
            "list_raw_readheavy_zipf",
            "list_readheavy_zipf",
            "hashmap_readheavy_zipf",
        ] {
            rows.push((scheme.to_string(), op.to_string()));
        }
    }
    rows
}

/// Extracts the string value of `"field": "value"` from one JSON object line.
fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extracts the numeric value of `"field": 12.5` from one JSON object line.
fn number(line: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..]
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .map(|i| i + start)
        .unwrap_or(line.len());
    line[start..end].parse().ok()
}

/// Structures and modes of the latency family (`experiments -- oversub`); must match
/// `smr_workloads::oversub`.
const LATENCY_STRUCTURES: [&str; 2] = ["HashMap", "Queue"];
const LATENCY_MODES: [&str; 3] = ["off", "on", "oversub"];

/// Checks `BENCH_reclaimer.json`; returns the number of problems found.
fn check_reclaimer(path: &str) -> usize {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_schema_check: cannot read {path}: {e}");
            return 1;
        }
    };

    let mut present = Vec::new();
    let mut malformed = 0usize;
    for line in text.lines().filter(|l| l.contains("\"name\"")) {
        let (Some(scheme), Some(op)) = (field(line, "scheme"), field(line, "op")) else {
            eprintln!("bench_schema_check: malformed row: {}", line.trim());
            malformed += 1;
            continue;
        };
        match number(line, "ns_per_iter") {
            Some(ns) if ns.is_finite() && ns >= 0.0 => {}
            _ => {
                eprintln!("bench_schema_check: bad ns_per_iter in row: {}", line.trim());
                malformed += 1;
                continue;
            }
        }
        present.push((scheme.to_string(), op.to_string()));
    }

    let missing: Vec<(String, String)> =
        expected_rows().into_iter().filter(|row| !present.contains(row)).collect();

    if !missing.is_empty() {
        eprintln!("bench_schema_check: {path} is missing {} expected row(s):", missing.len());
        for (scheme, op) in &missing {
            eprintln!("  - {scheme}/{op}");
        }
    }
    if malformed == 0 && missing.is_empty() {
        println!(
            "bench_schema_check: {path} OK ({} rows, all {} expected scheme x op cells present)",
            present.len(),
            expected_rows().len()
        );
    }
    malformed + missing.len()
}

/// Checks `BENCH_latency.json` (the oversubscribed latency family); returns the number
/// of problems found.
fn check_latency(path: &str) -> usize {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_schema_check: cannot read {path}: {e}");
            return 1;
        }
    };

    let mut problems = 0usize;
    // (structure, scheme, mode) -> mops, for the printed (not enforced) overhead twins.
    let mut present: Vec<(String, String, String, f64)> = Vec::new();
    for line in text.lines().filter(|l| l.contains("\"structure\"")) {
        let (Some(structure), Some(scheme), Some(mode)) =
            (field(line, "structure"), field(line, "scheme"), field(line, "mode"))
        else {
            eprintln!("bench_schema_check: malformed latency row: {}", line.trim());
            problems += 1;
            continue;
        };
        let Some(samples) = number(line, "samples") else {
            eprintln!("bench_schema_check: latency row without samples: {}", line.trim());
            problems += 1;
            continue;
        };
        if mode == "off" {
            if samples != 0.0 {
                eprintln!(
                    "bench_schema_check: {structure}/{scheme}/off claims {samples} samples \
                     with recording disabled"
                );
                problems += 1;
            }
        } else {
            // Recording was on: the row must carry samples with ordered quantiles.
            let q: Vec<f64> = ["p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_ns"]
                .iter()
                .filter_map(|name| number(line, name))
                .collect();
            if samples <= 0.0 || q.len() != 5 {
                eprintln!(
                    "bench_schema_check: {structure}/{scheme}/{mode} has no usable \
                     latency sample (samples={samples}, quantiles={})",
                    q.len()
                );
                problems += 1;
            } else if q.windows(2).any(|w| w[0] > w[1]) {
                eprintln!(
                    "bench_schema_check: {structure}/{scheme}/{mode} quantiles out of \
                     order: {q:?}"
                );
                problems += 1;
            }
        }
        let mops = number(line, "mops").unwrap_or(0.0);
        present.push((structure.to_string(), scheme.to_string(), mode.to_string(), mops));
    }

    let mut missing = 0usize;
    for structure in LATENCY_STRUCTURES {
        for scheme in SCHEMES {
            for mode in LATENCY_MODES {
                if !present
                    .iter()
                    .any(|(st, sc, m, _)| st == structure && sc == scheme && m == mode)
                {
                    eprintln!(
                        "bench_schema_check: {path} missing cell {structure}/{scheme}/{mode}"
                    );
                    missing += 1;
                }
            }
        }
    }

    // Informational: the recording-overhead twins (on vs off throughput).  Printed so a
    // human or the CI log can eyeball the overhead claim; never a gate.
    let lookup = |structure: &str, scheme: &str, mode: &str| {
        present
            .iter()
            .find(|(st, sc, m, _)| st == structure && sc == scheme && m == mode)
            .map(|&(_, _, _, mops)| mops)
    };
    for structure in LATENCY_STRUCTURES {
        for scheme in SCHEMES {
            if let (Some(off), Some(on)) =
                (lookup(structure, scheme, "off"), lookup(structure, scheme, "on"))
            {
                if off > 0.0 {
                    println!("  overhead twin {structure:7} x {scheme:10}: {:.3}x", on / off);
                }
            }
        }
    }

    if problems == 0 && missing == 0 {
        let cells = LATENCY_STRUCTURES.len() * SCHEMES.len() * LATENCY_MODES.len();
        println!(
            "bench_schema_check: {path} OK ({} rows, all {cells} structure x scheme x mode \
             cells present)",
            present.len()
        );
    }
    problems + missing
}

fn main() {
    let reclaimer_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_reclaimer.json".to_string());
    let latency_path = std::env::args().nth(2);

    let mut problems = check_reclaimer(&reclaimer_path);
    if let Some(path) = latency_path {
        problems += check_latency(&path);
    }
    if problems > 0 {
        std::process::exit(1);
    }
}

//! Regenerates Experiment 2 (paper Figure 8, right): records are recycled through the pool
//! (bump allocator + per-thread pool bags), plus the headline summary ratios.

use smr_bench::{duration_ms, small_keyranges, thread_counts};
use smr_workloads::experiments::{experiment2, print_rows, summarize};

fn main() {
    let rows = experiment2(&thread_counts(&[1, 2, 4]), duration_ms(150), small_keyranges());
    print_rows("Experiment 2 (Figure 8 right): bump allocator + pool", &rows);
    println!("\nHeadline comparison (paper abstract):");
    for line in summarize(&rows) {
        println!("  {line}");
    }
}

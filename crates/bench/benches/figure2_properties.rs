//! Regenerates Figure 2: the qualitative comparison of reclamation schemes.

fn main() {
    println!("Figure 2 — properties of the implemented reclamation schemes\n");
    println!("{}", smr_workloads::figure2::render_markdown());
}

//! Regenerates Figure 9: the oversubscribed Experiment 2 run (left panel) and the
//! memory-allocated-for-records measurement with neutralization counts (right panel).

use smr_bench::{duration_ms, small_keyranges};
use smr_workloads::experiments::{experiment2_oversubscribed, memory_footprint, print_rows};

fn main() {
    let oversub = experiment2_oversubscribed(duration_ms(150), small_keyranges());
    print_rows("Figure 9 (left): Experiment 2 with more threads than cores", &oversub);

    let rows = memory_footprint(duration_ms(150), small_keyranges());
    print_rows("Figure 9 (right): memory allocated for records", &rows);
    println!("\nbytes allocated for records (lower is better):");
    for r in &rows {
        println!(
            "  {:7} threads={:3}: {:>12} bytes  ({} neutralizations)",
            r.reclaimer.name(),
            r.threads,
            r.result.allocated_bytes,
            r.result.reclaimer.neutralized
        );
    }
}

//! Regenerates Experiment 1 (paper Figure 8, left): the overhead of reclamation when
//! records are not actually reused (bump allocator, no pool).

use smr_bench::{duration_ms, small_keyranges, thread_counts};
use smr_workloads::experiments::{experiment1, print_rows};

fn main() {
    let rows = experiment1(&thread_counts(&[1, 2, 4]), duration_ms(150), small_keyranges());
    print_rows("Experiment 1 (Figure 8 left): overhead of reclamation", &rows);
}

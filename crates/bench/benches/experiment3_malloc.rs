//! Regenerates Experiment 3 (paper Figure 10): the system allocator (`malloc`) replaces the
//! bump allocator, compressing the relative differences between schemes.

use smr_bench::{duration_ms, small_keyranges, thread_counts};
use smr_workloads::experiments::{experiment3, print_rows};

fn main() {
    let rows = experiment3(&thread_counts(&[1, 2, 4]), duration_ms(150), small_keyranges());
    print_rows("Experiment 3 (Figure 10): system allocator + pool", &rows);
}

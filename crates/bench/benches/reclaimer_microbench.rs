//! Criterion micro-benchmarks of the primitive reclaimer operations: the per-operation cost
//! (`leave_qstate`/`enter_qstate`) and the per-retired-record cost (`retire`) for each
//! scheme.  These are the O(1) costs the paper claims for DEBRA/DEBRA+ (Sections 4 and 5)
//! and the per-announcement fence that makes hazard pointers expensive.
//!
//! Besides the primitive costs, the run measures one *whole-structure* row per scheme:
//! single-threaded operations on the lock-free hash map under a uniform and under a
//! Zipfian key distribution (`hashmap_uniform` / `hashmap_zipf`), so the JSON tracks a
//! structure-level cost next to the primitive costs.
//!
//! Besides the human-readable output, the run writes a machine-readable summary to
//! `BENCH_reclaimer.json` (override the path with the `BENCH_JSON` environment variable),
//! seeding the repository's benchmark trajectory:
//!
//! ```text
//! cargo bench -p smr-bench --bench reclaimer_microbench
//! ```
//!
//! Set `BENCH_SMOKE=1` for a fast schema-complete run (CI uses this: the point is that
//! every expected row exists, not that the numbers are stable).

use std::io::Write as _;
use std::ptr::NonNull;
use std::sync::Arc;

use criterion::Criterion;
use debra::{CountingSink, Debra, DebraPlus, Reclaimer, ReclaimerThread, RecordManager};
use lockfree_ds::ConcurrentMap;
use smr_alloc::{SystemAllocator, ThreadPool};
use smr_baselines::{ClassicEbr, HazardPointers, NoReclaim, ThreadScanLite};
use smr_hashmap::{HashMapNode, LockFreeHashMap};
use smr_ibr::Ibr;
use smr_workloads::workload::{KeyDistribution, Operation, OperationGenerator, WorkloadConfig};

fn bench_scheme<R>(c: &mut Criterion, name: &str)
where
    R: Reclaimer<u64>,
{
    let global = Arc::new(R::new(2));
    let mut thread = R::register(&global, 0).expect("register");
    let mut sink = CountingSink::default();
    let mut record = Box::new(0u64);
    let record_ptr = NonNull::from(&mut *record);

    c.bench_function(format!("{name}/op_boundary"), |b| {
        b.iter(|| {
            thread.leave_qstate(&mut sink);
            thread.enter_qstate();
        })
    });

    c.bench_function(format!("{name}/protect"), |b| {
        thread.leave_qstate(&mut sink);
        b.iter(|| {
            criterion::black_box(thread.protect(0, record_ptr, || true));
            thread.unprotect(0);
        });
        thread.enter_qstate();
    });
}

/// `retire` cost is measured separately with heap records that the sink frees, so that
/// schemes which reclaim during the measurement (DEBRA with a tiny increment threshold,
/// HP scans, IBR's amortized interval scan) do not accumulate unbounded garbage.
fn bench_retire<R>(c: &mut Criterion, name: &str)
where
    R: Reclaimer<u64>,
{
    struct FreeSink;
    impl debra::ReclaimSink<u64> for FreeSink {
        fn accept(&mut self, record: NonNull<u64>) {
            // SAFETY: records below are leaked boxes reclaimed exactly once.
            unsafe { drop(Box::from_raw(record.as_ptr())) }
        }
    }

    let global = Arc::new(R::new(2));
    let mut thread = R::register(&global, 0).expect("register");
    let mut sink = FreeSink;
    c.bench_function(format!("{name}/retire"), |b| {
        b.iter(|| {
            thread.leave_qstate(&mut sink);
            let r = NonNull::from(Box::leak(Box::new(0u64)));
            // Tag the birth era like the Record Manager would (no-op for other schemes).
            thread.record_allocated(r);
            // SAFETY: the record is unreachable (never published anywhere).
            unsafe { thread.retire(r, &mut sink) };
            thread.enter_qstate();
        })
    });
}

/// Whole-structure rows: single-threaded hash-map operations under the given key
/// distribution.  The structure is prefilled to half the key range so every operation
/// works on realistic chains; removes retire records, so the scheme's whole retire →
/// reclaim pipeline is in the measured path.
fn bench_hashmap<R>(c: &mut Criterion, name: &str, distribution: KeyDistribution, op: &str)
where
    R: Reclaimer<HashMapNode<u64, u64>>,
{
    type Node = HashMapNode<u64, u64>;
    let cfg =
        WorkloadConfig { threads: 1, key_range: 1_024, distribution, ..WorkloadConfig::default() };
    let manager: Arc<RecordManager<Node, R, ThreadPool<Node>, SystemAllocator<Node>>> =
        Arc::new(RecordManager::new(2));
    let map = LockFreeHashMap::with_buckets(Arc::clone(&manager), 64);
    let mut handle = map.register(0).expect("register bench thread");
    let mut gen = OperationGenerator::new(&cfg, 0, 0xB17);
    let target = (cfg.key_range / 2) as usize;
    let mut inserted = 0usize;
    let mut attempts = 0u64;
    while inserted < target && attempts < cfg.key_range * 8 {
        if map.insert(&mut handle, gen.next_uniform_key(), attempts) {
            inserted += 1;
        }
        attempts += 1;
    }

    // Pre-generate the operation stream so the measured path contains only map work:
    // the Zipf sampler does transcendental math per draw, which would otherwise bias the
    // uniform-vs-zipf comparison these rows exist to make.
    let ops: Vec<Operation> = (0..65_536).map(|_| gen.next_op()).collect();
    let mut i = 0usize;
    c.bench_function(format!("{name}/{op}"), |b| {
        b.iter(|| {
            let next = ops[i & 0xFFFF];
            i += 1;
            match next {
                Operation::Insert(k) => map.insert(&mut handle, k, k),
                Operation::Delete(k) => map.remove(&mut handle, &k),
                Operation::Search(k) => map.contains(&mut handle, &k),
            }
        })
    });
}

fn bench_hashmap_both<R>(c: &mut Criterion, name: &str)
where
    R: Reclaimer<HashMapNode<u64, u64>>,
{
    bench_hashmap::<R>(c, name, KeyDistribution::Uniform, "hashmap_uniform");
    bench_hashmap::<R>(c, name, KeyDistribution::ZIPF_DEFAULT, "hashmap_zipf");
}

fn benches(c: &mut Criterion) {
    bench_scheme::<NoReclaim<u64>>(c, "None");
    bench_scheme::<Debra<u64>>(c, "DEBRA");
    bench_scheme::<DebraPlus<u64>>(c, "DEBRA+");
    bench_scheme::<HazardPointers<u64>>(c, "HP");
    bench_scheme::<ClassicEbr<u64>>(c, "EBR");
    bench_scheme::<ThreadScanLite<u64>>(c, "ThreadScan");
    bench_scheme::<Ibr<u64>>(c, "IBR");
    bench_retire::<Debra<u64>>(c, "DEBRA");
    bench_retire::<ClassicEbr<u64>>(c, "EBR");
    bench_retire::<Ibr<u64>>(c, "IBR");
    bench_hashmap_both::<NoReclaim<HashMapNode<u64, u64>>>(c, "None");
    bench_hashmap_both::<Debra<HashMapNode<u64, u64>>>(c, "DEBRA");
    bench_hashmap_both::<DebraPlus<HashMapNode<u64, u64>>>(c, "DEBRA+");
    bench_hashmap_both::<HazardPointers<HashMapNode<u64, u64>>>(c, "HP");
    bench_hashmap_both::<ClassicEbr<HashMapNode<u64, u64>>>(c, "EBR");
    bench_hashmap_both::<ThreadScanLite<HashMapNode<u64, u64>>>(c, "ThreadScan");
    bench_hashmap_both::<Ibr<HashMapNode<u64, u64>>>(c, "IBR");
}

/// Serializes the collected results as JSON (schema: `{"benchmarks": [{"name", "scheme",
/// "op", "ns_per_iter", "iters"}]}`), written without a JSON dependency on purpose.
fn write_json(c: &Criterion, path: &str) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    let results = c.results();
    for (i, r) in results.iter().enumerate() {
        let (scheme, op) = r.name.split_once('/').unwrap_or((r.name.as_str(), ""));
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scheme\": \"{}\", \"op\": \"{}\", \
             \"ns_per_iter\": {:.3}, \"iters\": {}}}{}\n",
            r.name,
            scheme,
            op,
            r.ns_per_iter,
            r.iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

fn main() {
    // Smoke mode (CI): every benchmark still runs — so the JSON schema is complete — but
    // with a minimal time budget.  The numbers are only good enough to be non-NaN.
    let smoke = std::env::var("BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let (sample, measure_ms, warmup_ms) = if smoke { (5, 40, 10) } else { (20, 500, 200) };
    let mut criterion = Criterion::default()
        .sample_size(sample)
        .measurement_time(std::time::Duration::from_millis(measure_ms))
        .warm_up_time(std::time::Duration::from_millis(warmup_ms))
        .configure_from_args();
    benches(&mut criterion);
    // Default to the workspace root (cargo bench runs with the package as cwd).
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reclaimer.json").into()
    });
    match write_json(&criterion, &path) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

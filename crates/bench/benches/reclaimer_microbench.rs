//! Criterion micro-benchmarks of the primitive reclaimer operations: the per-operation cost
//! (`leave_qstate`/`enter_qstate`) and the per-retired-record cost (`retire`) for each
//! scheme.  These are the O(1) costs the paper claims for DEBRA/DEBRA+ (Sections 4 and 5)
//! and the per-announcement fence that makes hazard pointers expensive.
//!
//! Besides the human-readable output, the run writes a machine-readable summary to
//! `BENCH_reclaimer.json` (override the path with the `BENCH_JSON` environment variable),
//! seeding the repository's benchmark trajectory:
//!
//! ```text
//! cargo bench -p smr-bench --bench reclaimer_microbench
//! ```

use std::io::Write as _;
use std::ptr::NonNull;
use std::sync::Arc;

use criterion::Criterion;
use debra::{CountingSink, Debra, DebraPlus, Reclaimer, ReclaimerThread};
use smr_baselines::{ClassicEbr, HazardPointers, NoReclaim};
use smr_ibr::Ibr;

fn bench_scheme<R>(c: &mut Criterion, name: &str)
where
    R: Reclaimer<u64>,
{
    let global = Arc::new(R::new(2));
    let mut thread = R::register(&global, 0).expect("register");
    let mut sink = CountingSink::default();
    let mut record = Box::new(0u64);
    let record_ptr = NonNull::from(&mut *record);

    c.bench_function(format!("{name}/op_boundary"), |b| {
        b.iter(|| {
            thread.leave_qstate(&mut sink);
            thread.enter_qstate();
        })
    });

    c.bench_function(format!("{name}/protect"), |b| {
        thread.leave_qstate(&mut sink);
        b.iter(|| {
            criterion::black_box(thread.protect(0, record_ptr, || true));
            thread.unprotect(0);
        });
        thread.enter_qstate();
    });
}

/// `retire` cost is measured separately with heap records that the sink frees, so that
/// schemes which reclaim during the measurement (DEBRA with a tiny increment threshold,
/// HP scans, IBR's amortized interval scan) do not accumulate unbounded garbage.
fn bench_retire<R>(c: &mut Criterion, name: &str)
where
    R: Reclaimer<u64>,
{
    struct FreeSink;
    impl debra::ReclaimSink<u64> for FreeSink {
        fn accept(&mut self, record: NonNull<u64>) {
            // SAFETY: records below are leaked boxes reclaimed exactly once.
            unsafe { drop(Box::from_raw(record.as_ptr())) }
        }
    }

    let global = Arc::new(R::new(2));
    let mut thread = R::register(&global, 0).expect("register");
    let mut sink = FreeSink;
    c.bench_function(format!("{name}/retire"), |b| {
        b.iter(|| {
            thread.leave_qstate(&mut sink);
            let r = NonNull::from(Box::leak(Box::new(0u64)));
            // Tag the birth era like the Record Manager would (no-op for other schemes).
            thread.record_allocated(r);
            // SAFETY: the record is unreachable (never published anywhere).
            unsafe { thread.retire(r, &mut sink) };
            thread.enter_qstate();
        })
    });
}

fn benches(c: &mut Criterion) {
    bench_scheme::<NoReclaim<u64>>(c, "None");
    bench_scheme::<Debra<u64>>(c, "DEBRA");
    bench_scheme::<DebraPlus<u64>>(c, "DEBRA+");
    bench_scheme::<HazardPointers<u64>>(c, "HP");
    bench_scheme::<ClassicEbr<u64>>(c, "EBR");
    bench_scheme::<Ibr<u64>>(c, "IBR");
    bench_retire::<Debra<u64>>(c, "DEBRA");
    bench_retire::<ClassicEbr<u64>>(c, "EBR");
    bench_retire::<Ibr<u64>>(c, "IBR");
}

/// Serializes the collected results as JSON (schema: `{"benchmarks": [{"name", "scheme",
/// "op", "ns_per_iter", "iters"}]}`), written without a JSON dependency on purpose.
fn write_json(c: &Criterion, path: &str) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    let results = c.results();
    for (i, r) in results.iter().enumerate() {
        let (scheme, op) = r.name.split_once('/').unwrap_or((r.name.as_str(), ""));
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scheme\": \"{}\", \"op\": \"{}\", \
             \"ns_per_iter\": {:.3}, \"iters\": {}}}{}\n",
            r.name,
            scheme,
            op,
            r.ns_per_iter,
            r.iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

fn main() {
    let mut criterion = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(500))
        .warm_up_time(std::time::Duration::from_millis(200))
        .configure_from_args();
    benches(&mut criterion);
    // Default to the workspace root (cargo bench runs with the package as cwd).
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reclaimer.json").into()
    });
    match write_json(&criterion, &path) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

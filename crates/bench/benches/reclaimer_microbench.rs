//! Criterion micro-benchmarks of the primitive reclaimer operations: the per-operation cost
//! (`leave_qstate`/`enter_qstate`) and the per-retired-record cost (`retire`) for each
//! scheme.  These are the O(1) costs the paper claims for DEBRA/DEBRA+ (Sections 4 and 5)
//! and the per-announcement fence that makes hazard pointers expensive.

use std::ptr::NonNull;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use debra::{CountingSink, Debra, DebraPlus, Reclaimer, ReclaimerThread};
use smr_baselines::{ClassicEbr, HazardPointers, NoReclaim};

fn bench_scheme<R>(c: &mut Criterion, name: &str)
where
    R: Reclaimer<u64>,
{
    let global = Arc::new(R::new(2));
    let mut thread = R::register(&global, 0).expect("register");
    let mut sink = CountingSink::default();
    let mut record = Box::new(0u64);
    let record_ptr = NonNull::from(&mut *record);

    c.bench_function(&format!("{name}/op_boundary"), |b| {
        b.iter(|| {
            thread.leave_qstate(&mut sink);
            thread.enter_qstate();
        })
    });

    c.bench_function(&format!("{name}/protect"), |b| {
        thread.leave_qstate(&mut sink);
        b.iter(|| {
            criterion::black_box(thread.protect(0, record_ptr, || true));
            thread.unprotect(0);
        });
        thread.enter_qstate();
    });
}

/// `retire` cost is measured separately with heap records that the sink frees, so that
/// schemes which reclaim during the measurement (DEBRA with a tiny increment threshold,
/// HP scans) do not accumulate unbounded garbage.
fn bench_retire(c: &mut Criterion) {
    struct FreeSink;
    impl debra::ReclaimSink<u64> for FreeSink {
        fn accept(&mut self, record: NonNull<u64>) {
            // SAFETY: records below are leaked boxes reclaimed exactly once.
            unsafe { drop(Box::from_raw(record.as_ptr())) }
        }
    }

    let global: Arc<Debra<u64>> = Arc::new(Debra::new(2));
    let mut thread = Debra::register(&global, 0).expect("register");
    let mut sink = FreeSink;
    c.bench_function("DEBRA/retire", |b| {
        b.iter(|| {
            thread.leave_qstate(&mut sink);
            let r = NonNull::from(Box::leak(Box::new(0u64)));
            // SAFETY: the record is unreachable (never published anywhere).
            unsafe { thread.retire(r, &mut sink) };
            thread.enter_qstate();
        })
    });
}

fn benches(c: &mut Criterion) {
    bench_scheme::<NoReclaim<u64>>(c, "None");
    bench_scheme::<Debra<u64>>(c, "DEBRA");
    bench_scheme::<DebraPlus<u64>>(c, "DEBRA+");
    bench_scheme::<HazardPointers<u64>>(c, "HP");
    bench_scheme::<ClassicEbr<u64>>(c, "EBR");
    bench_retire(c);
}

criterion_group! {
    name = reclaimer_microbench;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = benches
}
criterion_main!(reclaimer_microbench);

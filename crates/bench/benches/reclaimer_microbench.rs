//! Criterion micro-benchmarks of the primitive reclaimer operations: the per-operation cost
//! (`leave_qstate`/`enter_qstate`) and the per-retired-record cost (`retire`) for each
//! scheme.  These are the O(1) costs the paper claims for DEBRA/DEBRA+ (Sections 4 and 5)
//! and the per-announcement fence that makes hazard pointers expensive.
//!
//! Besides the primitive costs, the run measures *whole-structure* rows per scheme:
//! single-threaded operations on the lock-free hash map under a uniform and under a
//! Zipfian key distribution (`hashmap_uniform` / `hashmap_zipf`), so the JSON tracks a
//! structure-level cost next to the primitive costs, and the guard-layer overhead pairs
//! `list_raw` / `list_guard` and `skiplist_raw` / `skiplist_guard` — the same algorithms
//! written directly against `RecordManagerThread` (the raw baselines live in this file)
//! versus the safe `Domain`/`Guard`/`Shield`/`ShieldSet` ports in `lockfree-ds` —
//! quantifying what the safe API costs (everything stays fully monomorphized, no `dyn`
//! on the hot path; measured parity per scheme is documented in `DESIGN.md` §5 — the
//! list pair is within ±8% everywhere, the skip-list pair within ±11% except a
//! documented residual under the cheap-announce validating schemes).  The external BST,
//! whose raw implementation was deleted by the port, is tracked as an absolute
//! per-scheme row (`bst_guard`), and the bag-shaped structures contribute
//! `queue_guard`/`stack_guard` rows (alternating push/pop, so half the measured
//! operations exercise the scheme's full retire pipeline — the per-op reclamation cost
//! no map mix reaches; these rows run `NoPool` + `SystemAllocator`, i.e. every retire
//! really reaches `free` and every push really reaches `malloc`).  The
//! allocation-pipeline comparison adds `list_guard_pagepool`, `queue_guard_pagepool` and
//! `stack_guard_pagepool`: the same workloads composed with `smr-pagepool` (type-stable
//! pages + per-thread magazines) instead of malloc, so the JSON tracks what killing
//! malloc on the retire→free path buys per scheme.
//!
//! The eighth scheme, VBR, is only machine-safe over type-stable memory, so *every* VBR
//! cell runs over the page pool (the other schemes keep their family's default memory
//! configuration), and its `skiplist_raw` twin is omitted: the raw baseline expresses a
//! failed protect as a retry under the same pin, which cannot clear VBR staleness (only
//! the guard layer's typed `Restart` re-pin can).  The `readheavy` family is the
//! headline announcement-free-read comparison — read-heavy (90/5/5) list and hash-map
//! rows under uniform and Zipf 0.99 keys, run for EBR and VBR only, both over the page
//! pool so the allocator cancels out of the ratio being published.
//!
//! Every (family × scheme) cell of the matrix runs in its *own child process*
//! (`BENCH_GROUP=family:scheme`, spawned automatically by the parent run): a fresh heap,
//! empty page stores and zeroed thread registries per cell, so no row's number depends
//! on which rows ran before it.  Earlier revisions ran everything in one process and
//! could only mitigate that bias by careful row ordering; the ordering comments on the
//! pair benchmarks now matter only for the spawn-impossible in-process fallback.
//!
//! Besides the human-readable output, the run writes a machine-readable summary to
//! `BENCH_reclaimer.json` (override the path with the `BENCH_JSON` environment variable),
//! seeding the repository's benchmark trajectory:
//!
//! ```text
//! cargo bench -p smr-bench --bench reclaimer_microbench
//! ```
//!
//! Set `BENCH_SMOKE=1` for a fast schema-complete run (CI uses this: the point is that
//! every expected row exists, not that the numbers are stable).

use std::io::Write as _;
use std::ptr::NonNull;
use std::sync::Arc;

use criterion::Criterion;
use debra::{
    Allocator, CountingSink, Debra, DebraPlus, Pool, Reclaimer, ReclaimerThread, RecordManager,
};
use lockfree_ds::{
    BstNode, ConcurrentMap, ExternalBst, HarrisMichaelList, ListNode, SkipList, SkipNode,
};
use smr_alloc::{NoPool, SystemAllocator, ThreadPool};
use smr_baselines::{ClassicEbr, HazardPointers, NoReclaim, ThreadScanLite};
use smr_hashmap::{HashMapNode, LockFreeHashMap};
use smr_ibr::Ibr;
use smr_pagepool::{PageAllocator, PagePool};
use smr_queue::{MsQueue, QueueNode, StackNode, TreiberStack};
use smr_vbr::Vbr;
use smr_workloads::workload::{
    KeyDistribution, Operation, OperationGenerator, OperationMix, WorkloadConfig,
};

/// The raw-API Harris–Michael list: the hand-rolled protect/validate/check implementation
/// that `lockfree_ds::list` used before the guard layer existed, kept here verbatim (in
/// condensed form) as the `list_raw` baseline the `list_guard` rows are measured against.
mod raw_list {
    use std::ptr::NonNull;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    use debra::{Allocator, Neutralized, Pool, Reclaimer, RecordManager, RecordManagerThread};

    const MARK: usize = 1;

    #[inline]
    fn ptr_of<T>(word: usize) -> *mut T {
        (word & !MARK) as *mut T
    }

    #[inline]
    fn is_marked(word: usize) -> bool {
        word & MARK != 0
    }

    pub struct RawNode<K, V> {
        key: K,
        /// Stored for layout parity with the real node; the benchmark never reads it.
        #[allow(dead_code)]
        value: V,
        next: AtomicUsize,
    }

    mod slots {
        pub const PREV: usize = 0;
        pub const CURR: usize = 1;
    }

    pub struct RawList<K, V, R, P, A>
    where
        K: Ord + Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
        R: Reclaimer<RawNode<K, V>>,
        P: Pool<RawNode<K, V>>,
        A: Allocator<RawNode<K, V>>,
    {
        head: AtomicUsize,
        manager: Arc<RecordManager<RawNode<K, V>, R, P, A>>,
    }

    pub type RawHandle<K, V, R, P, A> = RecordManagerThread<RawNode<K, V>, R, P, A>;

    impl<K, V, R, P, A> RawList<K, V, R, P, A>
    where
        K: Ord + Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
        R: Reclaimer<RawNode<K, V>>,
        P: Pool<RawNode<K, V>>,
        A: Allocator<RawNode<K, V>>,
    {
        pub fn new(manager: Arc<RecordManager<RawNode<K, V>, R, P, A>>) -> Self {
            RawList { head: AtomicUsize::new(0), manager }
        }

        fn link_of(&self, prev: Option<NonNull<RawNode<K, V>>>) -> &AtomicUsize {
            match prev {
                // SAFETY: `prev` is protected by the calling operation (epoch or HP).
                Some(p) => unsafe { &p.as_ref().next },
                None => &self.head,
            }
        }

        #[allow(clippy::type_complexity)]
        fn search(
            &self,
            handle: &mut RawHandle<K, V, R, P, A>,
            key: &K,
        ) -> Result<(Option<NonNull<RawNode<K, V>>>, usize), Neutralized> {
            'retry: loop {
                handle.check()?;
                let mut prev: Option<NonNull<RawNode<K, V>>> = None;
                let mut curr_word = self.head.load(Ordering::Acquire);
                loop {
                    handle.check()?;
                    let Some(curr) = NonNull::new(ptr_of::<RawNode<K, V>>(curr_word)) else {
                        return Ok((prev, curr_word));
                    };
                    // Announce, then validate the full link word (mark bit included).
                    let prev_link = self.link_of(prev);
                    let expected = curr_word;
                    let valid = handle.protect(slots::CURR, curr, || {
                        prev_link.load(Ordering::SeqCst) == expected
                    });
                    if !valid {
                        continue 'retry;
                    }
                    // SAFETY: protected above (epoch announcement or validated HP).
                    let curr_ref = unsafe { curr.as_ref() };
                    let next_word = curr_ref.next.load(Ordering::Acquire);
                    if is_marked(next_word) {
                        let unlink_to = next_word & !MARK;
                        match self.link_of(prev).compare_exchange(
                            curr_word,
                            unlink_to,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => {
                                // SAFETY: unique unlink CAS winner retires exactly once.
                                unsafe { handle.retire(curr) };
                                curr_word = unlink_to;
                                continue;
                            }
                            Err(_) => continue 'retry,
                        }
                    }
                    if curr_ref.key >= *key {
                        return Ok((prev, curr_word));
                    }
                    let _ = handle.protect(slots::PREV, curr, || true);
                    prev = Some(curr);
                    curr_word = next_word;
                }
            }
        }

        fn insert_body(
            &self,
            handle: &mut RawHandle<K, V, R, P, A>,
            key: &K,
            value: &V,
        ) -> Result<bool, Neutralized> {
            loop {
                let (prev, curr_word) = self.search(handle, key)?;
                if let Some(curr) = NonNull::new(ptr_of::<RawNode<K, V>>(curr_word)) {
                    // SAFETY: protected by the search above.
                    if unsafe { &curr.as_ref().key } == key {
                        return Ok(false);
                    }
                }
                let node = handle.allocate(RawNode {
                    key: key.clone(),
                    value: value.clone(),
                    next: AtomicUsize::new(curr_word),
                });
                if let Err(e) = handle.check() {
                    // SAFETY: never published.
                    unsafe { handle.deallocate(node) };
                    return Err(e);
                }
                match self.link_of(prev).compare_exchange(
                    curr_word,
                    node.as_ptr() as usize,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Ok(true),
                    Err(_) => {
                        // SAFETY: never published.
                        unsafe { handle.deallocate(node) };
                        continue;
                    }
                }
            }
        }

        fn remove_body(
            &self,
            handle: &mut RawHandle<K, V, R, P, A>,
            key: &K,
        ) -> Result<bool, Neutralized> {
            loop {
                let (prev, curr_word) = self.search(handle, key)?;
                let Some(curr) = NonNull::new(ptr_of::<RawNode<K, V>>(curr_word)) else {
                    return Ok(false);
                };
                // SAFETY: protected by the search above.
                let curr_ref = unsafe { curr.as_ref() };
                if &curr_ref.key != key {
                    return Ok(false);
                }
                let next_word = curr_ref.next.load(Ordering::Acquire);
                if is_marked(next_word) {
                    continue;
                }
                handle.check()?;
                if curr_ref
                    .next
                    .compare_exchange(
                        next_word,
                        next_word | MARK,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_err()
                {
                    continue;
                }
                if self
                    .link_of(prev)
                    .compare_exchange(
                        curr_word,
                        next_word & !MARK,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    // SAFETY: unique unlink CAS winner.
                    unsafe { handle.retire(curr) };
                }
                return Ok(true);
            }
        }

        fn contains_body(
            &self,
            handle: &mut RawHandle<K, V, R, P, A>,
            key: &K,
        ) -> Result<bool, Neutralized> {
            let (_prev, curr_word) = self.search(handle, key)?;
            if let Some(curr) = NonNull::new(ptr_of::<RawNode<K, V>>(curr_word)) {
                // SAFETY: protected by the search above.
                let curr_ref = unsafe { curr.as_ref() };
                return Ok(
                    &curr_ref.key == key && !is_marked(curr_ref.next.load(Ordering::Acquire))
                );
            }
            Ok(false)
        }

        fn run_op<Out>(
            &self,
            handle: &mut RawHandle<K, V, R, P, A>,
            mut body: impl FnMut(&Self, &mut RawHandle<K, V, R, P, A>) -> Result<Out, Neutralized>,
        ) -> Out {
            loop {
                let _ = handle.leave_qstate();
                match body(self, handle) {
                    Ok(out) => {
                        handle.enter_qstate();
                        return out;
                    }
                    Err(Neutralized) => {
                        handle.r_unprotect_all();
                        handle.begin_recovery();
                    }
                }
            }
        }

        pub fn insert(&self, handle: &mut RawHandle<K, V, R, P, A>, key: K, value: V) -> bool {
            self.run_op(handle, |this, h| this.insert_body(h, &key, &value))
        }

        pub fn remove(&self, handle: &mut RawHandle<K, V, R, P, A>, key: &K) -> bool {
            self.run_op(handle, |this, h| this.remove_body(h, key))
        }

        pub fn contains(&self, handle: &mut RawHandle<K, V, R, P, A>, key: &K) -> bool {
            self.run_op(handle, |this, h| this.contains_body(h, key))
        }
    }

    impl<K, V, R, P, A> Drop for RawList<K, V, R, P, A>
    where
        K: Ord + Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
        R: Reclaimer<RawNode<K, V>>,
        P: Pool<RawNode<K, V>>,
        A: Allocator<RawNode<K, V>>,
    {
        fn drop(&mut self) {
            let mut alloc = self.manager.teardown_allocator();
            let mut word = *self.head.get_mut();
            while let Some(node) = NonNull::new(ptr_of::<RawNode<K, V>>(word)) {
                // SAFETY: exclusive access during drop.
                unsafe {
                    word = node.as_ref().next.load(Ordering::Relaxed);
                    debra::AllocatorThread::deallocate(&mut alloc, node);
                }
            }
        }
    }

    // SAFETY: shared state is atomics only; nodes are Send/Sync when K and V are.
    unsafe impl<K, V, R, P, A> Send for RawList<K, V, R, P, A>
    where
        K: Ord + Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
        R: Reclaimer<RawNode<K, V>>,
        P: Pool<RawNode<K, V>>,
        A: Allocator<RawNode<K, V>>,
    {
    }
    unsafe impl<K, V, R, P, A> Sync for RawList<K, V, R, P, A>
    where
        K: Ord + Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
        R: Reclaimer<RawNode<K, V>>,
        P: Pool<RawNode<K, V>>,
        A: Allocator<RawNode<K, V>>,
    {
    }
}

/// The raw-API lock-free skip list: the hand-rolled slot-indexed protect / `r_protect`
/// implementation that `lockfree_ds::skiplist` used before the `ShieldSet` port, kept
/// here (in condensed form) as the `skiplist_raw` baseline the `skiplist_guard` rows are
/// measured against.
mod raw_skiplist {
    use std::ptr::NonNull;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    use debra::{
        Allocator, AllocatorThread, Neutralized, Pool, Reclaimer, RecordManager,
        RecordManagerThread,
    };

    pub const MAX_HEIGHT: usize = 20;
    const MARK: usize = 1;

    #[inline]
    fn ptr_of(word: usize) -> usize {
        word & !MARK
    }

    #[inline]
    fn is_marked(word: usize) -> bool {
        word & MARK != 0
    }

    pub struct RawSkipNode<K, V> {
        key: Option<K>,
        /// Stored for layout parity with the real node; the benchmark never reads it.
        #[allow(dead_code)]
        value: Option<V>,
        height: usize,
        next: [AtomicUsize; MAX_HEIGHT],
    }

    impl<K, V> RawSkipNode<K, V> {
        fn new(key: Option<K>, value: Option<V>, height: usize) -> Self {
            RawSkipNode { key, value, height, next: std::array::from_fn(|_| AtomicUsize::new(0)) }
        }
    }

    pub struct RawSkipList<K, V, R, P, A>
    where
        K: Ord + Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
        R: Reclaimer<RawSkipNode<K, V>>,
        P: Pool<RawSkipNode<K, V>>,
        A: Allocator<RawSkipNode<K, V>>,
    {
        head: usize,
        height_rng: std::sync::atomic::AtomicU64,
        manager: Arc<RecordManager<RawSkipNode<K, V>, R, P, A>>,
    }

    pub type RawHandle<K, V, R, P, A> = RecordManagerThread<RawSkipNode<K, V>, R, P, A>;

    struct FindResult {
        preds: [usize; MAX_HEIGHT],
        succs: [usize; MAX_HEIGHT],
        found: usize,
    }

    impl<K, V, R, P, A> RawSkipList<K, V, R, P, A>
    where
        K: Ord + Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
        R: Reclaimer<RawSkipNode<K, V>>,
        P: Pool<RawSkipNode<K, V>>,
        A: Allocator<RawSkipNode<K, V>>,
    {
        pub fn new(manager: Arc<RecordManager<RawSkipNode<K, V>, R, P, A>>) -> Self {
            let mut alloc = manager.teardown_allocator();
            let head = alloc.allocate(RawSkipNode::new(None, None, MAX_HEIGHT)).as_ptr() as usize;
            RawSkipList { head, height_rng: std::sync::atomic::AtomicU64::new(0), manager }
        }

        #[inline]
        fn node(&self, ptr: usize) -> &RawSkipNode<K, V> {
            debug_assert!(ptr != 0);
            // SAFETY: pointers are only dereferenced while protected by the calling
            // operation (epoch / hazard pointers) or during teardown.
            unsafe { &*(ptr as *const RawSkipNode<K, V>) }
        }

        fn key_less(&self, node: usize, key: &K) -> bool {
            match &self.node(node).key {
                None => true,
                Some(k) => k < key,
            }
        }

        fn find(
            &self,
            handle: &mut RawHandle<K, V, R, P, A>,
            key: &K,
        ) -> Result<FindResult, Neutralized> {
            'retry: loop {
                handle.check()?;
                let mut preds = [self.head; MAX_HEIGHT];
                let mut succs = [0usize; MAX_HEIGHT];
                let mut pred = self.head;
                for level in (0..MAX_HEIGHT).rev() {
                    let mut curr_word = self.node(pred).next[level].load(Ordering::Acquire);
                    if is_marked(curr_word) {
                        continue 'retry;
                    }
                    loop {
                        handle.check()?;
                        let curr = ptr_of(curr_word);
                        if curr == 0 {
                            break;
                        }
                        let curr_nn =
                            NonNull::new(curr as *mut RawSkipNode<K, V>).expect("non-null");
                        let pred_link = &self.node(pred).next[level];
                        if !handle.protect(1, curr_nn, || pred_link.load(Ordering::SeqCst) == curr)
                        {
                            continue 'retry;
                        }
                        let curr_ref = self.node(curr);
                        let next_word = curr_ref.next[level].load(Ordering::Acquire);
                        if is_marked(next_word) {
                            match self.node(pred).next[level].compare_exchange(
                                curr_word,
                                ptr_of(next_word),
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            ) {
                                Ok(_) => {
                                    if level == 0 {
                                        // SAFETY: unique level-0 unlink winner.
                                        unsafe { handle.retire(curr_nn) };
                                    }
                                    curr_word = ptr_of(next_word);
                                    continue;
                                }
                                Err(_) => continue 'retry,
                            }
                        }
                        if self.key_less(curr, key) {
                            let _ = handle.protect(0, curr_nn, || true);
                            pred = curr;
                            curr_word = next_word;
                        } else {
                            break;
                        }
                    }
                    preds[level] = pred;
                    succs[level] = ptr_of(curr_word);
                }
                let candidate = succs[0];
                let found = if candidate != 0 && self.node(candidate).key.as_ref() == Some(key) {
                    candidate
                } else {
                    0
                };
                return Ok(FindResult { preds, succs, found });
            }
        }

        /// Deterministic tower heights, identical to the safe port's generator, so the
        /// raw/guard pair compares identical tower shapes.
        fn random_height(&self) -> usize {
            let x = self.height_rng.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            1 + (z.trailing_ones() as usize).min(MAX_HEIGHT - 1)
        }

        fn insert_body(
            &self,
            handle: &mut RawHandle<K, V, R, P, A>,
            key: &K,
            value: &V,
            published: &mut Option<(usize, usize)>,
        ) -> Result<bool, Neutralized> {
            loop {
                let r = self.find(handle, key)?;
                if r.found != 0 {
                    return Ok(false);
                }
                let height = self.random_height();
                let node = handle.allocate(RawSkipNode::new(
                    Some(key.clone()),
                    Some(value.clone()),
                    height,
                ));
                let node_ptr = node.as_ptr() as usize;
                {
                    // SAFETY: private until the bottom-level CAS below publishes it.
                    let node_ref = unsafe { node.as_ref() };
                    for level in 0..height {
                        node_ref.next[level].store(r.succs[level], Ordering::Relaxed);
                    }
                }
                if let Err(e) = handle.check() {
                    // SAFETY: never published.
                    unsafe { handle.deallocate(node) };
                    return Err(e);
                }
                if self.node(r.preds[0]).next[0]
                    .compare_exchange(r.succs[0], node_ptr, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // SAFETY: never published.
                    unsafe { handle.deallocate(node) };
                    continue;
                }
                handle.r_protect(node);
                *published = Some((node_ptr, height));
                self.complete_insert(handle, key, node_ptr, height)?;
                return Ok(true);
            }
        }

        fn complete_insert(
            &self,
            handle: &mut RawHandle<K, V, R, P, A>,
            key: &K,
            node_ptr: usize,
            height: usize,
        ) -> Result<(), Neutralized> {
            let node_ref = self.node(node_ptr);
            'levels: for level in 1..height {
                loop {
                    let expected = node_ref.next[level].load(Ordering::Acquire);
                    if is_marked(expected) {
                        break 'levels;
                    }
                    let r2 = self.find(handle, key)?;
                    if r2.found != node_ptr {
                        break 'levels;
                    }
                    if r2.succs[level] == node_ptr {
                        continue 'levels;
                    }
                    if expected != r2.succs[level]
                        && node_ref.next[level]
                            .compare_exchange(
                                expected,
                                r2.succs[level],
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_err()
                    {
                        continue;
                    }
                    if self.node(r2.preds[level]).next[level]
                        .compare_exchange(
                            r2.succs[level],
                            node_ptr,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        break;
                    }
                }
            }
            if is_marked(node_ref.next[0].load(Ordering::Acquire)) {
                let _ = self.find(handle, key)?;
            }
            handle.r_unprotect_all();
            Ok(())
        }

        fn remove_body(
            &self,
            handle: &mut RawHandle<K, V, R, P, A>,
            key: &K,
            decided: &mut bool,
        ) -> Result<bool, Neutralized> {
            if *decided {
                let _ = self.find(handle, key)?;
                return Ok(true);
            }
            let r = self.find(handle, key)?;
            if r.found == 0 {
                return Ok(false);
            }
            let victim = self.node(r.found);
            for level in (1..victim.height).rev() {
                loop {
                    let w = victim.next[level].load(Ordering::Acquire);
                    if is_marked(w) {
                        break;
                    }
                    if victim.next[level]
                        .compare_exchange(w, w | MARK, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        break;
                    }
                }
            }
            loop {
                let w = victim.next[0].load(Ordering::Acquire);
                if is_marked(w) {
                    return Ok(false);
                }
                if victim.next[0]
                    .compare_exchange(w, w | MARK, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    *decided = true;
                    let _ = self.find(handle, key)?;
                    return Ok(true);
                }
                handle.check()?;
            }
        }

        /// Read-only traversal (does not unlink), mirroring the original `get_body`.
        fn contains_body(
            &self,
            handle: &mut RawHandle<K, V, R, P, A>,
            key: &K,
        ) -> Result<bool, Neutralized> {
            'retry: loop {
                handle.check()?;
                let mut pred = self.head;
                for level in (0..MAX_HEIGHT).rev() {
                    let mut curr = ptr_of(self.node(pred).next[level].load(Ordering::Acquire));
                    loop {
                        handle.check()?;
                        if curr == 0 {
                            break;
                        }
                        let curr_nn =
                            NonNull::new(curr as *mut RawSkipNode<K, V>).expect("non-null");
                        let pred_link = &self.node(pred).next[level];
                        if !handle.protect(1, curr_nn, || pred_link.load(Ordering::SeqCst) == curr)
                        {
                            continue 'retry;
                        }
                        let curr_ref = self.node(curr);
                        if self.key_less(curr, key) {
                            let _ = handle.protect(0, curr_nn, || true);
                            pred = curr;
                            curr = ptr_of(curr_ref.next[level].load(Ordering::Acquire));
                        } else {
                            break;
                        }
                    }
                }
                let candidate = ptr_of(self.node(pred).next[0].load(Ordering::Acquire));
                if candidate != 0 {
                    let candidate_nn =
                        NonNull::new(candidate as *mut RawSkipNode<K, V>).expect("non-null");
                    let pred_link = &self.node(pred).next[0];
                    if !handle
                        .protect(1, candidate_nn, || pred_link.load(Ordering::SeqCst) == candidate)
                    {
                        continue 'retry;
                    }
                    let node = self.node(candidate);
                    if node.key.as_ref() == Some(key)
                        && !is_marked(node.next[0].load(Ordering::Acquire))
                    {
                        return Ok(true);
                    }
                }
                return Ok(false);
            }
        }

        fn run_op<Out>(
            &self,
            handle: &mut RawHandle<K, V, R, P, A>,
            mut body: impl FnMut(&Self, &mut RawHandle<K, V, R, P, A>) -> Result<Out, Neutralized>,
        ) -> Out {
            loop {
                let _ = handle.leave_qstate();
                match body(self, handle) {
                    Ok(out) => {
                        handle.enter_qstate();
                        return out;
                    }
                    Err(Neutralized) => {
                        handle.begin_recovery();
                    }
                }
            }
        }

        pub fn insert(&self, handle: &mut RawHandle<K, V, R, P, A>, key: K, value: V) -> bool {
            let mut published: Option<(usize, usize)> = None;
            self.run_op(handle, |this, h| {
                if let Some((node_ptr, height)) = published {
                    this.complete_insert(h, &key, node_ptr, height)?;
                    return Ok(true);
                }
                this.insert_body(h, &key, &value, &mut published)
            })
        }

        pub fn remove(&self, handle: &mut RawHandle<K, V, R, P, A>, key: &K) -> bool {
            let mut decided = false;
            self.run_op(handle, |this, h| this.remove_body(h, key, &mut decided))
        }

        pub fn contains(&self, handle: &mut RawHandle<K, V, R, P, A>, key: &K) -> bool {
            self.run_op(handle, |this, h| this.contains_body(h, key))
        }
    }

    impl<K, V, R, P, A> Drop for RawSkipList<K, V, R, P, A>
    where
        K: Ord + Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
        R: Reclaimer<RawSkipNode<K, V>>,
        P: Pool<RawSkipNode<K, V>>,
        A: Allocator<RawSkipNode<K, V>>,
    {
        fn drop(&mut self) {
            let mut alloc = self.manager.teardown_allocator();
            let mut curr = self.head;
            while curr != 0 {
                let next = ptr_of(self.node(curr).next[0].load(Ordering::Relaxed));
                // SAFETY: exclusive access during drop.
                unsafe { alloc.deallocate(NonNull::new_unchecked(curr as *mut RawSkipNode<K, V>)) };
                curr = next;
            }
        }
    }

    // SAFETY: shared state is atomics only; nodes are Send/Sync when K and V are.
    unsafe impl<K, V, R, P, A> Send for RawSkipList<K, V, R, P, A>
    where
        K: Ord + Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
        R: Reclaimer<RawSkipNode<K, V>>,
        P: Pool<RawSkipNode<K, V>>,
        A: Allocator<RawSkipNode<K, V>>,
    {
    }
    unsafe impl<K, V, R, P, A> Sync for RawSkipList<K, V, R, P, A>
    where
        K: Ord + Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
        R: Reclaimer<RawSkipNode<K, V>>,
        P: Pool<RawSkipNode<K, V>>,
        A: Allocator<RawSkipNode<K, V>>,
    {
    }
}

fn bench_scheme<R>(c: &mut Criterion, name: &str)
where
    R: Reclaimer<u64>,
{
    let global = Arc::new(R::new(2));
    let mut thread = R::register(&global, 0).expect("register");
    let mut sink = CountingSink::default();
    let mut record = Box::new(0u64);
    let record_ptr = NonNull::from(&mut *record);

    c.bench_function(format!("{name}/op_boundary"), |b| {
        b.iter(|| {
            let _ = thread.leave_qstate(&mut sink);
            thread.enter_qstate();
        })
    });

    c.bench_function(format!("{name}/protect"), |b| {
        let _ = thread.leave_qstate(&mut sink);
        b.iter(|| {
            criterion::black_box(thread.protect(0, record_ptr, || true));
            thread.unprotect(0);
        });
        thread.enter_qstate();
    });
}

/// `retire` cost is measured separately with heap records that the sink frees, so that
/// schemes which reclaim during the measurement (DEBRA with a tiny increment threshold,
/// HP scans, IBR's amortized interval scan) do not accumulate unbounded garbage.
fn bench_retire<R>(c: &mut Criterion, name: &str)
where
    R: Reclaimer<u64>,
{
    struct FreeSink;
    impl debra::ReclaimSink<u64> for FreeSink {
        fn accept(&mut self, record: NonNull<u64>) {
            // SAFETY: records below are leaked boxes reclaimed exactly once.
            unsafe { drop(Box::from_raw(record.as_ptr())) }
        }
    }

    let global = Arc::new(R::new(2));
    let mut thread = R::register(&global, 0).expect("register");
    let mut sink = FreeSink;
    c.bench_function(format!("{name}/retire"), |b| {
        b.iter(|| {
            let _ = thread.leave_qstate(&mut sink);
            let r = NonNull::from(Box::leak(Box::new(0u64)));
            // Tag the birth era like the Record Manager would (no-op for other schemes).
            thread.record_allocated(r);
            // SAFETY: the record is unreachable (never published anywhere).
            unsafe { thread.retire(r, &mut sink) };
            thread.enter_qstate();
        })
    });
}

/// Whole-structure rows: single-threaded hash-map operations under the given key
/// distribution.  The structure is prefilled to half the key range so every operation
/// works on realistic chains; removes retire records, so the scheme's whole retire →
/// reclaim pipeline is in the measured path.
fn bench_hashmap<R, P, A>(
    c: &mut Criterion,
    name: &str,
    mix: OperationMix,
    distribution: KeyDistribution,
    op: &str,
    slots: usize,
) where
    R: Reclaimer<HashMapNode<u64, u64>>,
    P: Pool<HashMapNode<u64, u64>>,
    A: Allocator<HashMapNode<u64, u64>>,
{
    type Node = HashMapNode<u64, u64>;
    let cfg = WorkloadConfig {
        threads: 1,
        key_range: 1_024,
        mix,
        distribution,
        ..WorkloadConfig::default()
    };
    let manager: Arc<RecordManager<Node, R, P, A>> = Arc::new(RecordManager::new(slots));
    let map = LockFreeHashMap::with_buckets(Arc::clone(&manager), 64);
    let mut handle = map.register().expect("register bench thread");
    let mut gen = OperationGenerator::new(&cfg, 0, 0xB17);
    let target = (cfg.key_range / 2) as usize;
    let mut inserted = 0usize;
    let mut attempts = 0u64;
    while inserted < target && attempts < cfg.key_range * 8 {
        if map.insert(&mut handle, gen.next_uniform_key(), attempts) {
            inserted += 1;
        }
        attempts += 1;
    }

    // Pre-generate the operation stream so the measured path contains only map work:
    // the Zipf sampler does transcendental math per draw, which would otherwise bias the
    // uniform-vs-zipf comparison these rows exist to make.
    let ops: Vec<Operation> = (0..65_536).map(|_| gen.next_op()).collect();
    let mut i = 0usize;
    c.bench_function(format!("{name}/{op}"), |b| {
        b.iter(|| {
            let next = ops[i & 0xFFFF];
            i += 1;
            match next {
                Operation::Insert(k) => map.insert(&mut handle, k, k),
                Operation::Delete(k) => map.remove(&mut handle, &k),
                Operation::Search(k) => map.contains(&mut handle, &k),
            }
        })
    });
}

fn bench_hashmap_both<R, P, A>(c: &mut Criterion, name: &str)
where
    R: Reclaimer<HashMapNode<u64, u64>>,
    P: Pool<HashMapNode<u64, u64>>,
    A: Allocator<HashMapNode<u64, u64>>,
{
    bench_hashmap::<R, P, A>(
        c,
        name,
        OperationMix::UPDATE_HEAVY,
        KeyDistribution::Uniform,
        "hashmap_uniform",
        2,
    );
    bench_hashmap::<R, P, A>(
        c,
        name,
        OperationMix::UPDATE_HEAVY,
        KeyDistribution::ZIPF_DEFAULT,
        "hashmap_zipf",
        2,
    );
}

/// Key range for the guard-overhead list rows: small enough that one operation is a short
/// traversal (so fixed per-operation costs — which is where the guard layer could add
/// overhead — are *not* drowned out by traversal memory stalls).
const LIST_KEY_RANGE: u64 = 256;

/// Shared workload for the `list_raw`/`list_guard` pair: the list is prefilled with
/// `key_range * 4` uniform insert attempts — i.e. to *nearly the full* key range
/// (~98% occupancy), so the timed phase is remove-heavy churn over long traversals —
/// then driven by a pre-generated uniform operation stream (identical seed for both
/// rows, so the raw/guard comparison sees byte-identical workloads).
fn list_workload() -> (WorkloadConfig, Vec<Operation>) {
    let cfg = WorkloadConfig {
        threads: 1,
        key_range: LIST_KEY_RANGE,
        distribution: KeyDistribution::Uniform,
        ..WorkloadConfig::default()
    };
    let mut gen = OperationGenerator::new(&cfg, 0, 0x5EED);
    let ops: Vec<Operation> = (0..65_536).map(|_| gen.next_op()).collect();
    (cfg, ops)
}

/// `list_raw`: the hand-rolled Harris–Michael list (module [`raw_list`]) driven directly
/// through `RecordManagerThread` — the pre-guard-layer baseline.  Generic over the
/// memory configuration and the workload so the same baseline also produces VBR's rows
/// (which must run the type-stable page pool) and the read-heavy comparison rows.
fn bench_list_raw_as<R, P, A>(
    c: &mut Criterion,
    name: &str,
    op: &str,
    cfg: &WorkloadConfig,
    ops: &[Operation],
    slots: usize,
) where
    R: Reclaimer<raw_list::RawNode<u64, u64>>,
    P: Pool<raw_list::RawNode<u64, u64>>,
    A: Allocator<raw_list::RawNode<u64, u64>>,
{
    type Node = raw_list::RawNode<u64, u64>;
    let manager: Arc<RecordManager<Node, R, P, A>> = Arc::new(RecordManager::new(slots));
    let list = raw_list::RawList::new(Arc::clone(&manager));
    let mut handle = manager.register(0).expect("register bench thread");
    let mut gen = OperationGenerator::new(cfg, 0, 0xB17);
    for _ in 0..cfg.key_range * 4 {
        let _ = list.insert(&mut handle, gen.next_uniform_key(), 0);
    }

    let mut i = 0usize;
    c.bench_function(format!("{name}/{op}"), |b| {
        b.iter(|| {
            let next = ops[i & 0xFFFF];
            i += 1;
            match next {
                Operation::Insert(k) => list.insert(&mut handle, k, k),
                Operation::Delete(k) => list.remove(&mut handle, &k),
                Operation::Search(k) => list.contains(&mut handle, &k),
            }
        })
    });
}

/// `list_guard`: the safe-API port in `lockfree-ds`, same algorithm, same workload.
/// Generic over the memory configuration so the same workload also produces the
/// `list_guard_pagepool` row (the type-stable page allocator instead of malloc).
fn bench_list_guard_as<R, P, A>(
    c: &mut Criterion,
    name: &str,
    op: &str,
    cfg: &WorkloadConfig,
    ops: &[Operation],
    slots: usize,
) where
    R: Reclaimer<ListNode<u64, u64>>,
    P: Pool<ListNode<u64, u64>>,
    A: Allocator<ListNode<u64, u64>>,
{
    type Node = ListNode<u64, u64>;
    let manager: Arc<RecordManager<Node, R, P, A>> = Arc::new(RecordManager::new(slots));
    let list = HarrisMichaelList::new(Arc::clone(&manager));
    let mut handle = list.register().expect("lease bench thread slot");
    let mut gen = OperationGenerator::new(cfg, 0, 0xB17);
    for _ in 0..cfg.key_range * 4 {
        let _ = list.insert(&mut handle, gen.next_uniform_key(), 0);
    }

    let mut i = 0usize;
    c.bench_function(format!("{name}/{op}"), |b| {
        b.iter(|| {
            let next = ops[i & 0xFFFF];
            i += 1;
            match next {
                Operation::Insert(k) => list.insert(&mut handle, k, k),
                Operation::Delete(k) => list.remove(&mut handle, &k),
                Operation::Search(k) => list.contains(&mut handle, &k),
            }
        })
    });
}

/// `list_guard_pagepool`: the same list workload composed with the page-pool allocation
/// pipeline (`smr-pagepool`) instead of malloc — compared against `list_guard` it shows
/// what type-stable slot recycling buys a traversal-heavy structure.
fn bench_list_guard_pagepool<R>(c: &mut Criterion, name: &str)
where
    R: Reclaimer<ListNode<u64, u64>>,
{
    type Node = ListNode<u64, u64>;
    let (cfg, ops) = list_workload();
    bench_list_guard_as::<R, PagePool<Node>, PageAllocator<Node>>(
        c,
        name,
        "list_guard_pagepool",
        &cfg,
        &ops,
        2,
    );
}

/// Measures the pair in *both orders*.  Schemes that never free (None) grow the heap
/// monotonically over the process lifetime, so whichever row is measured later sees a
/// colder, wider heap; running raw→guard and then guard→raw and letting the JSON writer
/// keep the best run per row removes that ordering bias from the comparison.
fn bench_list_pair<RRaw, PRaw, ARaw, RGuard, PGuard, AGuard>(c: &mut Criterion, name: &str)
where
    RRaw: Reclaimer<raw_list::RawNode<u64, u64>>,
    PRaw: Pool<raw_list::RawNode<u64, u64>>,
    ARaw: Allocator<raw_list::RawNode<u64, u64>>,
    RGuard: Reclaimer<ListNode<u64, u64>>,
    PGuard: Pool<ListNode<u64, u64>>,
    AGuard: Allocator<ListNode<u64, u64>>,
{
    let (cfg, ops) = list_workload();
    bench_list_raw_as::<RRaw, PRaw, ARaw>(c, name, "list_raw", &cfg, &ops, 2);
    bench_list_guard_as::<RGuard, PGuard, AGuard>(c, name, "list_guard", &cfg, &ops, 2);
    bench_list_guard_as::<RGuard, PGuard, AGuard>(c, name, "list_guard", &cfg, &ops, 2);
    bench_list_raw_as::<RRaw, PRaw, ARaw>(c, name, "list_raw", &cfg, &ops, 2);
}

/// Shared workload for the read-heavy (90% search / 5% insert / 5% delete) comparison
/// rows — the announcement-free-read claim, measured.  Unlike `list_workload` the list
/// stays near half occupancy (the prefill in the bench functions is shared), but the
/// operation stream is search-dominated, so the per-operation reader cost — EBR's
/// epoch announcement + full-registry scan versus VBR's single clock load — is the
/// measured quantity.  Every row of this family runs over the page pool (VBR's
/// requirement), so the allocator cancels out of the EBR-vs-VBR ratio, and the
/// registry is sized like a real worker fleet ([`READHEAVY_SLOTS`]).
/// Registry capacity for the read-heavy comparison rows.  The other families register
/// two slots — classic EBR's best case, since its pin scans *every* announcement slot
/// on *every* operation.  A service actually serving read-heavy traffic registers one
/// slot per worker thread, and that Θ(registered-threads) scan is exactly the term the
/// announcement-free scheme deletes, so these rows size the registry like a real
/// process (one measuring thread, the rest idle — idle EBR slots read `IDLE` and cost
/// a cache-line load each, they never stall the epoch).  VBR's pin reads one global
/// clock word regardless of capacity.
const READHEAVY_SLOTS: usize = 16;

/// Key range for the read-heavy list rows.  Same reasoning as [`LIST_KEY_RANGE`], but
/// stricter: these rows compare per-operation reader cost *between schemes*, and under
/// a read-mostly Zipf mix the list equilibrates near-full, so at 256 keys the rows
/// degenerate into a traversal-memory-stall benchmark where the schemes' per-operation
/// terms vanish into noise.  64 keys keeps one search a short traversal in both
/// distributions.  (The long-traversal regime is not lost — the `hashmap`-vs-`list`
/// pair inside this family spans short chains to multi-node walks, and DESIGN.md § 10
/// records that per-node validation cost on long walks is the checkpoint-validated
/// port's known tax.)
const READHEAVY_KEY_RANGE: u64 = 64;

fn readheavy_list_workload(distribution: KeyDistribution) -> (WorkloadConfig, Vec<Operation>) {
    let cfg = WorkloadConfig {
        threads: 1,
        key_range: READHEAVY_KEY_RANGE,
        mix: OperationMix::READ_MOSTLY,
        distribution,
        ..WorkloadConfig::default()
    };
    let mut gen = OperationGenerator::new(&cfg, 0, 0x5EED);
    let ops: Vec<Operation> = (0..65_536).map(|_| gen.next_op()).collect();
    (cfg, ops)
}

/// Key range for the guard-overhead skip list / BST rows: larger than the list's (the
/// structures are logarithmic, so per-operation fixed costs need more elements to stay
/// visible without the traversal dominating).
const TREE_KEY_RANGE: u64 = 1_024;

/// Shared workload for the `skiplist_raw`/`skiplist_guard`/`bst_guard` rows: identical
/// seed and operation stream for every row, prefilled by the same uniform insert pass.
fn tree_workload() -> (WorkloadConfig, Vec<Operation>) {
    let cfg = WorkloadConfig {
        threads: 1,
        key_range: TREE_KEY_RANGE,
        distribution: KeyDistribution::Uniform,
        ..WorkloadConfig::default()
    };
    let mut gen = OperationGenerator::new(&cfg, 0, 0x5EED);
    let ops: Vec<Operation> = (0..65_536).map(|_| gen.next_op()).collect();
    (cfg, ops)
}

/// `skiplist_raw`: the hand-rolled skip list (module [`raw_skiplist`]) driven directly
/// through `RecordManagerThread` — the pre-`ShieldSet` baseline.
fn bench_skiplist_raw<R, P, A>(c: &mut Criterion, name: &str)
where
    R: Reclaimer<raw_skiplist::RawSkipNode<u64, u64>>,
    P: Pool<raw_skiplist::RawSkipNode<u64, u64>>,
    A: Allocator<raw_skiplist::RawSkipNode<u64, u64>>,
{
    type Node = raw_skiplist::RawSkipNode<u64, u64>;
    let (cfg, ops) = tree_workload();
    let manager: Arc<RecordManager<Node, R, P, A>> = Arc::new(RecordManager::new(2));
    let list = raw_skiplist::RawSkipList::new(Arc::clone(&manager));
    let mut handle = manager.register(0).expect("register bench thread");
    let mut gen = OperationGenerator::new(&cfg, 0, 0xB17);
    for _ in 0..cfg.key_range * 4 {
        let _ = list.insert(&mut handle, gen.next_uniform_key(), 0);
    }

    let mut i = 0usize;
    c.bench_function(format!("{name}/skiplist_raw"), |b| {
        b.iter(|| {
            let next = ops[i & 0xFFFF];
            i += 1;
            match next {
                Operation::Insert(k) => list.insert(&mut handle, k, k),
                Operation::Delete(k) => list.remove(&mut handle, &k),
                Operation::Search(k) => list.contains(&mut handle, &k),
            }
        })
    });
}

/// `skiplist_guard`: the safe-API port in `lockfree-ds`, same algorithm, same workload.
fn bench_skiplist_guard<R, P, A>(c: &mut Criterion, name: &str)
where
    R: Reclaimer<SkipNode<u64, u64>>,
    P: Pool<SkipNode<u64, u64>>,
    A: Allocator<SkipNode<u64, u64>>,
{
    type Node = SkipNode<u64, u64>;
    let (cfg, ops) = tree_workload();
    let manager: Arc<RecordManager<Node, R, P, A>> = Arc::new(RecordManager::new(2));
    let list = SkipList::new(Arc::clone(&manager));
    let mut handle = list.register().expect("lease bench thread slot");
    let mut gen = OperationGenerator::new(&cfg, 0, 0xB17);
    for _ in 0..cfg.key_range * 4 {
        let _ = list.insert(&mut handle, gen.next_uniform_key(), 0);
    }

    let mut i = 0usize;
    c.bench_function(format!("{name}/skiplist_guard"), |b| {
        b.iter(|| {
            let next = ops[i & 0xFFFF];
            i += 1;
            match next {
                Operation::Insert(k) => list.insert(&mut handle, k, k),
                Operation::Delete(k) => list.remove(&mut handle, &k),
                Operation::Search(k) => list.contains(&mut handle, &k),
            }
        })
    });
}

/// Both orders, best run kept — see [`bench_list_pair`].
fn bench_skiplist_pair<RRaw, PRaw, ARaw, RGuard, PGuard, AGuard>(c: &mut Criterion, name: &str)
where
    RRaw: Reclaimer<raw_skiplist::RawSkipNode<u64, u64>>,
    PRaw: Pool<raw_skiplist::RawSkipNode<u64, u64>>,
    ARaw: Allocator<raw_skiplist::RawSkipNode<u64, u64>>,
    RGuard: Reclaimer<SkipNode<u64, u64>>,
    PGuard: Pool<SkipNode<u64, u64>>,
    AGuard: Allocator<SkipNode<u64, u64>>,
{
    bench_skiplist_raw::<RRaw, PRaw, ARaw>(c, name);
    bench_skiplist_guard::<RGuard, PGuard, AGuard>(c, name);
    bench_skiplist_guard::<RGuard, PGuard, AGuard>(c, name);
    bench_skiplist_raw::<RRaw, PRaw, ARaw>(c, name);
}

/// `bst_guard`: the external BST on the safe API (no raw twin is kept for the tree — the
/// row tracks the structure's absolute cost per scheme over time).
fn bench_bst_guard<R, P, A>(c: &mut Criterion, name: &str)
where
    R: Reclaimer<BstNode<u64, u64>>,
    P: Pool<BstNode<u64, u64>>,
    A: Allocator<BstNode<u64, u64>>,
{
    type Node = BstNode<u64, u64>;
    let (cfg, ops) = tree_workload();
    let manager: Arc<RecordManager<Node, R, P, A>> = Arc::new(RecordManager::new(2));
    let bst = ExternalBst::new(Arc::clone(&manager));
    let mut handle = bst.register().expect("lease bench thread slot");
    let mut gen = OperationGenerator::new(&cfg, 0, 0xB17);
    for _ in 0..cfg.key_range * 4 {
        let _ = bst.insert(&mut handle, gen.next_uniform_key(), 0);
    }

    let mut i = 0usize;
    c.bench_function(format!("{name}/bst_guard"), |b| {
        b.iter(|| {
            let next = ops[i & 0xFFFF];
            i += 1;
            match next {
                Operation::Insert(k) => bst.insert(&mut handle, k, k),
                Operation::Delete(k) => bst.remove(&mut handle, &k),
                Operation::Search(k) => bst.contains(&mut handle, &k),
            }
        })
    });
}

/// Number of values in the bag before (and, in expectation, throughout) the measured
/// phase of the `queue_guard`/`stack_guard` rows.
const BAG_PREFILL: u64 = 256;

/// `queue_guard`/`stack_guard`: single-threaded alternating push/pop on the bag-shaped
/// safe-API structures.  Every second operation is a successful pop and therefore a
/// *retire*, so — unlike any map row at any mix — half the measured operations run the
/// scheme's full retire pipeline: this is the per-operation reclamation cost the
/// producer/consumer workloads stress at scale.
fn bench_bag<H>(
    c: &mut Criterion,
    name: &str,
    op: &str,
    mut push: impl FnMut(&mut H, u64),
    mut pop: impl FnMut(&mut H) -> Option<u64>,
    handle: &mut H,
) {
    for i in 0..BAG_PREFILL {
        push(handle, i);
    }
    let mut i = 0u64;
    c.bench_function(format!("{name}/{op}"), |b| {
        b.iter(|| {
            i += 1;
            if i & 1 == 0 {
                push(handle, i);
                true
            } else {
                criterion::black_box(pop(handle)).is_some()
            }
        })
    });
}

/// Generic over the memory configuration so the same alternating-push/pop workload also
/// produces the `queue_guard_pagepool` row: every pop retires a node and every push
/// allocates one, so these rows are where the allocation pipeline (malloc vs the
/// type-stable page pool) dominates the measurement.
fn bench_queue_guard_as<R, P, A>(c: &mut Criterion, name: &str, op: &str)
where
    R: Reclaimer<QueueNode<u64>>,
    P: Pool<QueueNode<u64>>,
    A: Allocator<QueueNode<u64>>,
{
    type Node = QueueNode<u64>;
    let manager: Arc<RecordManager<Node, R, P, A>> = Arc::new(RecordManager::new(2));
    let queue = MsQueue::new(Arc::clone(&manager));
    let mut handle = queue.register().expect("lease bench thread slot");
    bench_bag(
        c,
        name,
        op,
        |h, v| lockfree_ds::ConcurrentBag::push(&queue, h, v),
        |h| lockfree_ds::ConcurrentBag::pop(&queue, h),
        &mut handle,
    );
}

fn bench_stack_guard_as<R, P, A>(c: &mut Criterion, name: &str, op: &str)
where
    R: Reclaimer<StackNode<u64>>,
    P: Pool<StackNode<u64>>,
    A: Allocator<StackNode<u64>>,
{
    type Node = StackNode<u64>;
    let manager: Arc<RecordManager<Node, R, P, A>> = Arc::new(RecordManager::new(2));
    let stack = TreiberStack::new(Arc::clone(&manager));
    let mut handle = stack.register().expect("lease bench thread slot");
    bench_bag(
        c,
        name,
        op,
        |h, v| lockfree_ds::ConcurrentBag::push(&stack, h, v),
        |h| lockfree_ds::ConcurrentBag::pop(&stack, h),
        &mut handle,
    );
}

fn bench_bags_pagepool<R1, R2>(c: &mut Criterion, name: &str)
where
    R1: Reclaimer<QueueNode<u64>>,
    R2: Reclaimer<StackNode<u64>>,
{
    type QNode = QueueNode<u64>;
    type SNode = StackNode<u64>;
    bench_queue_guard_as::<R1, PagePool<QNode>, PageAllocator<QNode>>(
        c,
        name,
        "queue_guard_pagepool",
    );
    bench_stack_guard_as::<R2, PagePool<SNode>, PageAllocator<SNode>>(
        c,
        name,
        "stack_guard_pagepool",
    );
}

/// The eight schemes, in the order the rows appear in the JSON.
const SCHEMES: [&str; 8] = ["None", "DEBRA", "DEBRA+", "HP", "EBR", "ThreadScan", "IBR", "VBR"];

/// Benchmark families, each of which runs in its *own child process* per scheme (see
/// `main`).  Ordering within the list only matters for the in-process fallback, where it
/// preserves the old young-heap-first rationale: the raw/guard comparison pairs run
/// before the leak-heavy absolute rows.  The `readheavy` family runs only for EBR and
/// VBR (see [`cell_exists`]): it is the headline announcement-free-read comparison, both
/// schemes measured over the page pool so the allocator cancels out of the ratio.
const FAMILIES: [&str; 9] =
    ["list", "list_pp", "skiplist", "bst", "prim", "hashmap", "bags", "bags_pp", "readheavy"];

/// Whether a (family × scheme) cell is part of the matrix.  The read-heavy family is
/// deliberately the EBR-vs-VBR pair only.
fn cell_exists(family: &str, scheme: &str) -> bool {
    family != "readheavy" || matches!(scheme, "EBR" | "VBR")
}

/// Expands `$go!(ReclaimerTypeCtor)` for the reclaimer named by `$scheme`.
macro_rules! dispatch_scheme {
    ($scheme:expr, $go:ident) => {
        match $scheme {
            "None" => $go!(NoReclaim),
            "DEBRA" => $go!(Debra),
            "DEBRA+" => $go!(DebraPlus),
            "HP" => $go!(HazardPointers),
            "EBR" => $go!(ClassicEbr),
            "ThreadScan" => $go!(ThreadScanLite),
            "IBR" => $go!(Ibr),
            "VBR" => $go!(Vbr),
            other => panic!("unknown scheme `{other}` (expected one of {SCHEMES:?})"),
        }
    };
}

/// Like [`dispatch_scheme!`], but also picks the memory configuration: the family's
/// default pool/allocator for the seven malloc-compatible schemes, and *always* the
/// type-stable page pool for VBR — version-validated optimistic reads are only
/// machine-safe over memory that is never unmapped or retyped, and `RecordManager`
/// enforces exactly that at registration (`AllocatorRequirement::TypeStable`).
macro_rules! dispatch_scheme_mem {
    ($scheme:expr, $go:ident, $pool:ident, $alloc:ident) => {
        match $scheme {
            "None" => $go!(NoReclaim, $pool, $alloc),
            "DEBRA" => $go!(Debra, $pool, $alloc),
            "DEBRA+" => $go!(DebraPlus, $pool, $alloc),
            "HP" => $go!(HazardPointers, $pool, $alloc),
            "EBR" => $go!(ClassicEbr, $pool, $alloc),
            "ThreadScan" => $go!(ThreadScanLite, $pool, $alloc),
            "IBR" => $go!(Ibr, $pool, $alloc),
            "VBR" => $go!(Vbr, PagePool, PageAllocator),
            other => panic!("unknown scheme `{other}` (expected one of {SCHEMES:?})"),
        }
    };
}

/// Runs one (family × scheme) cell of the benchmark matrix.
fn run_group(c: &mut Criterion, family: &str, scheme: &str) {
    match family {
        "list" => {
            type RawNode = raw_list::RawNode<u64, u64>;
            type GuardNode = ListNode<u64, u64>;
            macro_rules! go {
                ($r:ident, $p:ident, $a:ident) => {
                    bench_list_pair::<
                        $r<RawNode>,
                        $p<RawNode>,
                        $a<RawNode>,
                        $r<GuardNode>,
                        $p<GuardNode>,
                        $a<GuardNode>,
                    >(c, scheme)
                };
            }
            dispatch_scheme_mem!(scheme, go, ThreadPool, SystemAllocator);
        }
        "list_pp" => {
            macro_rules! go {
                ($r:ident) => {
                    bench_list_guard_pagepool::<$r<ListNode<u64, u64>>>(c, scheme)
                };
            }
            dispatch_scheme!(scheme, go);
        }
        "skiplist" => {
            type RawNode = raw_skiplist::RawSkipNode<u64, u64>;
            type GuardNode = SkipNode<u64, u64>;
            if scheme == "VBR" {
                // The raw skip list predates the guard layer: it expresses a failed
                // protect as a retry under the *same* pin, but under VBR only a re-pin
                // (the typed `Restart`) clears staleness, so the raw idiom can spin on
                // a node born after its own snapshot (`complete_insert` re-finds the
                // node it just published).  VBR therefore has no `skiplist_raw` twin —
                // the guard port's run loop is the only correct expression of its
                // recovery contract; `bench_schema_check` excuses exactly this cell.
                bench_skiplist_guard::<Vbr<GuardNode>, PagePool<GuardNode>, PageAllocator<GuardNode>>(
                    c, scheme,
                );
            } else {
                macro_rules! go {
                    ($r:ident, $p:ident, $a:ident) => {
                        bench_skiplist_pair::<
                            $r<RawNode>,
                            $p<RawNode>,
                            $a<RawNode>,
                            $r<GuardNode>,
                            $p<GuardNode>,
                            $a<GuardNode>,
                        >(c, scheme)
                    };
                }
                dispatch_scheme_mem!(scheme, go, ThreadPool, SystemAllocator);
            }
        }
        "bst" => {
            type Node = BstNode<u64, u64>;
            macro_rules! go {
                ($r:ident, $p:ident, $a:ident) => {
                    bench_bst_guard::<$r<Node>, $p<Node>, $a<Node>>(c, scheme)
                };
            }
            dispatch_scheme_mem!(scheme, go, ThreadPool, SystemAllocator);
        }
        "prim" => {
            macro_rules! go {
                ($r:ident) => {
                    bench_scheme::<$r<u64>>(c, scheme)
                };
            }
            dispatch_scheme!(scheme, go);
            // The retire row exists only for the bag- or batch-based epoch schemes.
            match scheme {
                "DEBRA" => bench_retire::<Debra<u64>>(c, scheme),
                "EBR" => bench_retire::<ClassicEbr<u64>>(c, scheme),
                "IBR" => bench_retire::<Ibr<u64>>(c, scheme),
                "VBR" => bench_retire::<Vbr<u64>>(c, scheme),
                _ => {}
            }
        }
        "hashmap" => {
            type Node = HashMapNode<u64, u64>;
            macro_rules! go {
                ($r:ident, $p:ident, $a:ident) => {
                    bench_hashmap_both::<$r<Node>, $p<Node>, $a<Node>>(c, scheme)
                };
            }
            dispatch_scheme_mem!(scheme, go, ThreadPool, SystemAllocator);
        }
        "bags" => {
            type QNode = QueueNode<u64>;
            type SNode = StackNode<u64>;
            // The baseline bag rows deliberately run `NoPool`, not `ThreadPool`: with a
            // pool in front, `deallocate` never reaches the allocator and the row
            // measures pool recycling, not the system allocation pipeline.  (VBR's bag
            // rows necessarily run the page pool instead — see `dispatch_scheme_mem!`.)
            macro_rules! go {
                ($r:ident, $p:ident, $a:ident) => {{
                    bench_queue_guard_as::<$r<QNode>, $p<QNode>, $a<QNode>>(
                        c,
                        scheme,
                        "queue_guard",
                    );
                    bench_stack_guard_as::<$r<SNode>, $p<SNode>, $a<SNode>>(
                        c,
                        scheme,
                        "stack_guard",
                    );
                }};
            }
            dispatch_scheme_mem!(scheme, go, NoPool, SystemAllocator);
        }
        "bags_pp" => {
            macro_rules! go {
                ($r:ident) => {
                    bench_bags_pagepool::<$r<QueueNode<u64>>, $r<StackNode<u64>>>(c, scheme)
                };
            }
            dispatch_scheme!(scheme, go);
        }
        "readheavy" => {
            type LRawNode = raw_list::RawNode<u64, u64>;
            type LNode = ListNode<u64, u64>;
            type HNode = HashMapNode<u64, u64>;
            macro_rules! go {
                ($r:ident) => {
                    for (dist, tag) in [
                        (KeyDistribution::Uniform, "uniform"),
                        (KeyDistribution::ZIPF_DEFAULT, "zipf"),
                    ] {
                        let (cfg, ops) = readheavy_list_workload(dist);
                        bench_list_raw_as::<
                            $r<LRawNode>,
                            PagePool<LRawNode>,
                            PageAllocator<LRawNode>,
                        >(
                            c,
                            scheme,
                            &format!("list_raw_readheavy_{tag}"),
                            &cfg,
                            &ops,
                            READHEAVY_SLOTS,
                        );
                        bench_list_guard_as::<$r<LNode>, PagePool<LNode>, PageAllocator<LNode>>(
                            c,
                            scheme,
                            &format!("list_readheavy_{tag}"),
                            &cfg,
                            &ops,
                            READHEAVY_SLOTS,
                        );
                        bench_hashmap::<$r<HNode>, PagePool<HNode>, PageAllocator<HNode>>(
                            c,
                            scheme,
                            OperationMix::READ_MOSTLY,
                            dist,
                            &format!("hashmap_readheavy_{tag}"),
                            READHEAVY_SLOTS,
                        );
                    }
                };
            }
            match scheme {
                "EBR" => go!(ClassicEbr),
                "VBR" => go!(Vbr),
                // `cell_exists` keeps the other schemes out of this family.
                _ => {}
            }
        }
        other => panic!("unknown bench family `{other}` (expected one of {FAMILIES:?})"),
    }
}

/// One JSON row, independent of where it was measured (this process or a child).
#[derive(Clone)]
struct Row {
    name: String,
    ns_per_iter: f64,
    iters: u64,
}

/// Merges rows into `rows`, keeping the best (lowest ns) run per name.  Rows measured
/// more than once (the order-alternated raw/guard pairs) exist to cancel heap-growth
/// ordering bias, not to report it.
fn merge_best(rows: &mut Vec<Row>, incoming: impl IntoIterator<Item = Row>) {
    for r in incoming {
        match rows.iter_mut().find(|kept| kept.name == r.name) {
            Some(kept) => {
                if r.ns_per_iter < kept.ns_per_iter {
                    *kept = r;
                }
            }
            None => rows.push(r),
        }
    }
}

/// Serializes the rows as JSON (schema: `{"benchmarks": [{"name", "scheme", "op",
/// "ns_per_iter", "iters"}]}`), written without a JSON dependency on purpose.
fn write_json(rows: &[Row], path: &str) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let (scheme, op) = r.name.split_once('/').unwrap_or((r.name.as_str(), ""));
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scheme\": \"{}\", \"op\": \"{}\", \
             \"ns_per_iter\": {:.3}, \"iters\": {}}}{}\n",
            r.name,
            scheme,
            op,
            r.ns_per_iter,
            r.iters,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

/// Parses the one-row-per-line JSON `write_json` produces back into rows (the parent
/// reads each child's output file with this; same minimal scan as `bench_schema_check`).
fn parse_json(text: &str) -> Vec<Row> {
    fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
        let tag = format!("\"{name}\": ");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        if let Some(stripped) = rest.strip_prefix('"') {
            let end = stripped.find('"')?;
            Some(&stripped[..end])
        } else {
            let end = rest
                .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == 'e'))
                .unwrap_or(rest.len());
            Some(&rest[..end])
        }
    }
    text.lines()
        .filter(|l| l.contains("\"name\""))
        .filter_map(|line| {
            Some(Row {
                name: field(line, "name")?.to_string(),
                ns_per_iter: field(line, "ns_per_iter")?.parse().ok()?,
                iters: field(line, "iters")?.parse().ok()?,
            })
        })
        .collect()
}

fn drain_criterion(c: &Criterion) -> Vec<Row> {
    c.results()
        .iter()
        .map(|r| Row { name: r.name.clone(), ns_per_iter: r.ns_per_iter, iters: r.iters })
        .collect()
}

fn make_criterion(smoke: bool) -> Criterion {
    let (sample, measure_ms, warmup_ms) = if smoke { (5, 40, 10) } else { (20, 1000, 300) };
    Criterion::default()
        .sample_size(sample)
        .measurement_time(std::time::Duration::from_millis(measure_ms))
        .warm_up_time(std::time::Duration::from_millis(warmup_ms))
        .configure_from_args()
}

/// Spawns one child process per (family × scheme) cell — `BENCH_GROUP=family:scheme` —
/// and merges their JSON outputs.  Fresh child state per cell is the point: every cell
/// starts on a young heap, empty page stores and zeroed thread registries, so no row's
/// number depends on which rows ran before it (the cross-row bias the in-process run
/// could only mitigate by careful ordering).  Returns `Err` only if children cannot be
/// spawned at all; a cell that *runs* and fails aborts the whole run instead.
fn run_isolated(json_path: &str) -> std::io::Result<Vec<Row>> {
    let exe = std::env::current_exe()?;
    let mut rows: Vec<Row> = Vec::new();
    for (i, family) in FAMILIES.iter().enumerate() {
        for (j, scheme) in SCHEMES.iter().enumerate() {
            if !cell_exists(family, scheme) {
                continue;
            }
            let group = format!("{family}:{scheme}");
            let tmp = std::env::temp_dir().join(format!(
                "bench_group_{}_{}_{}.json",
                std::process::id(),
                i,
                j
            ));
            println!("--- {group} (fresh process) ---");
            let status = std::process::Command::new(&exe)
                .env("BENCH_GROUP", &group)
                .env("BENCH_JSON", &tmp)
                .status()?;
            if !status.success() {
                eprintln!("bench group {group} failed ({status}); aborting");
                let _ = std::fs::remove_file(&tmp);
                std::process::exit(1);
            }
            let text = std::fs::read_to_string(&tmp)?;
            let _ = std::fs::remove_file(&tmp);
            merge_best(&mut rows, parse_json(&text));
        }
    }
    let _ = json_path;
    Ok(rows)
}

/// Prints the headline read-heavy EBR-vs-VBR table — the announcement-free-read claim
/// as measured numbers, eyeballed in the nightly sweep's log (never a gate: ratios are
/// machine-dependent).  Both columns run over the page pool, so the allocator cancels
/// out and the ratio isolates the read-side protocol cost.
fn print_readheavy_comparison(rows: &[Row]) {
    let ns = |scheme: &str, op: &str| {
        rows.iter().find(|r| r.name == format!("{scheme}/{op}")).map(|r| r.ns_per_iter)
    };
    let ops = [
        "list_raw_readheavy_uniform",
        "list_readheavy_uniform",
        "hashmap_readheavy_uniform",
        "list_raw_readheavy_zipf",
        "list_readheavy_zipf",
        "hashmap_readheavy_zipf",
    ];
    println!(
        "\nread-heavy (90/5/5) EBR vs VBR, ns/op over the page pool, \
         {READHEAVY_SLOTS}-slot registry (lower is better):"
    );
    println!("  {:28} {:>10} {:>10} {:>9}", "op", "EBR", "VBR", "VBR/EBR");
    for op in ops {
        if let (Some(e), Some(v)) = (ns("EBR", op), ns("VBR", op)) {
            println!("  {op:28} {e:>10.1} {v:>10.1} {:>8.2}x", v / e);
        }
    }
}

fn main() {
    // Smoke mode (CI): every benchmark still runs — so the JSON schema is complete — but
    // with a minimal time budget.  The numbers are only good enough to be non-NaN.
    // Children inherit the variable from the parent's environment.
    let smoke = std::env::var("BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    // Default to the workspace root (cargo bench runs with the package as cwd).
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reclaimer.json").into()
    });

    // Child mode: run exactly one (family × scheme) cell and write its rows.
    if let Ok(group) = std::env::var("BENCH_GROUP") {
        let (family, scheme) = group
            .split_once(':')
            .unwrap_or_else(|| panic!("BENCH_GROUP must be `family:scheme`, got `{group}`"));
        let mut criterion = make_criterion(smoke);
        run_group(&mut criterion, family, scheme);
        let mut rows = Vec::new();
        merge_best(&mut rows, drain_criterion(&criterion));
        if let Err(e) = write_json(&rows, &path) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        return;
    }

    // Parent mode: one fresh child process per cell; fall back to a single in-process
    // sweep only where spawning is impossible.
    let rows = run_isolated(&path).unwrap_or_else(|e| {
        eprintln!("child-process isolation unavailable ({e}); running in-process");
        let mut criterion = make_criterion(smoke);
        for family in FAMILIES {
            for scheme in SCHEMES {
                if cell_exists(family, scheme) {
                    run_group(&mut criterion, family, scheme);
                }
            }
        }
        let mut rows = Vec::new();
        merge_best(&mut rows, drain_criterion(&criterion));
        rows
    });
    match write_json(&rows, &path) {
        Ok(()) => {
            print_readheavy_comparison(&rows);
            println!("\nwrote {path} ({} rows)", rows.len());
        }
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

//! Neutralization infrastructure for DEBRA+.
//!
//! DEBRA+ (Brown, PODC 2015, Section 5) adds fault tolerance to DEBRA by *neutralizing*
//! processes that have not announced the current epoch for a long time and may have crashed
//! or been descheduled.  Neutralization is built on an inter-process communication
//! mechanism offered by POSIX operating systems: **signals**.  A process `p` that wants to
//! advance the epoch sends a signal to a slow process `q`; when `q` next takes a step it
//! executes the signal handler, which — if `q` was not quiescent — makes `q` quiescent and
//! diverts it to recovery code.  From the moment the signal is sent, `p` may treat `q` as
//! quiescent.
//!
//! This crate provides the substrate for that mechanism:
//!
//! * [`AnnounceWord`] — the packed per-thread announcement word: epoch bits plus the
//!   quiescent bit in the least significant bit (paper, Section 4 "Minor optimizations").
//! * [`NeutralizeSlot`] — per-thread shared state read and written by the signal handler:
//!   the announcement word, the neutralized flag, and statistics.
//! * [`SignalDriver`] — delivery backends:
//!   [`SignalDriver::posix`] installs a real signal handler and delivers neutralization
//!   with `pthread_kill`; [`SignalDriver::simulated`] performs the handler's state
//!   transition directly on the target slot (used in unit tests and on non-Unix platforms).
//!
//! # Neutralization model (and how it differs from the paper)
//!
//! The paper's handler performs a `siglongjmp` to recovery code, so a neutralized process
//! can literally not execute another instruction of its interrupted operation.  Unwinding
//! arbitrary Rust code from a signal handler is not sound (it would skip destructors and
//! jump over stack frames the compiler assumes are well-formed), so this reproduction uses
//! **checked neutralization**: the handler atomically sets the quiescent bit and the
//! `neutralized` flag, and every access to a shared record performed by an operation body
//! goes through a checkpoint that observes the flag and aborts the operation (returning a
//! [`Neutralized`] error that the data structure propagates to its recovery/restart code).
//! The DEBRA+ reclaimer in the `debra` crate documents why this preserves the paper's
//! bounds; the residual difference is discussed in `DESIGN.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod announce;
mod driver;
mod slot;

pub use announce::AnnounceWord;
pub use driver::{SignalDriver, SignalDriverKind, ThreadRegistration, DEFAULT_NEUTRALIZE_SIGNAL};
pub use slot::{NeutralizeSlot, SlotStats};

/// Error type returned by checkpoints when the current thread has been neutralized.
///
/// Data structure operations integrated with DEBRA+ propagate this error (usually with the
/// `?` operator) out of their operation body; the wrapper then runs the paper's recovery
/// protocol and restarts the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Neutralized;

impl std::fmt::Display for Neutralized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "operation interrupted by neutralization signal")
    }
}

impl std::error::Error for Neutralized {}

//! Per-thread state shared with the signal handler.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

use crate::announce::AnnounceWord;

/// Per-thread neutralization state.
///
/// One slot exists per registered thread.  It is written by the owning thread (on every
/// `leave_qstate`/`enter_qstate`), read by every other thread (when scanning announcements
/// to advance the epoch), and read *and written* by the signal handler running in the
/// owning thread's context.  All fields are therefore atomics, and the whole slot is
/// cache-padded so that one thread's announcements do not false-share with another's
/// (the paper's NUMA optimization concerns exactly this access pattern).
#[derive(Debug)]
pub struct NeutralizeSlot {
    /// Packed announcement: epoch bits plus the quiescent bit ([`AnnounceWord`]).
    announce: CachePadded<AtomicU64>,
    /// Set by the signal handler when the thread was interrupted while non-quiescent.
    neutralized: AtomicBool,
    /// OS identity of the owning thread (`pthread_t` as `u64`), 0 when not registered.
    os_handle: AtomicU64,
    /// `true` while the owning thread is registered with a POSIX signal driver.
    registered: AtomicBool,
    /// Number of neutralization signals received by this thread's handler.
    signals_received: AtomicU64,
    /// Number of times the handler actually neutralized the thread (it was non-quiescent).
    neutralizations: AtomicU64,
}

/// Snapshot of a slot's statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotStats {
    /// Signals delivered to the thread's handler.
    pub signals_received: u64,
    /// Signals that found the thread non-quiescent and neutralized it.
    pub neutralizations: u64,
}

impl NeutralizeSlot {
    /// Creates a slot in the quiescent state with epoch 0.
    pub fn new() -> Self {
        NeutralizeSlot {
            announce: CachePadded::new(AtomicU64::new(AnnounceWord::pack(0, true))),
            neutralized: AtomicBool::new(false),
            os_handle: AtomicU64::new(0),
            registered: AtomicBool::new(false),
            signals_received: AtomicU64::new(0),
            neutralizations: AtomicU64::new(0),
        }
    }

    /// Loads the raw announcement word.
    #[inline]
    pub fn load_announce(&self, order: Ordering) -> u64 {
        self.announce.load(order)
    }

    /// Stores the raw announcement word (owning thread only).
    #[inline]
    pub fn store_announce(&self, word: u64, order: Ordering) {
        self.announce.store(word, order);
    }

    /// Returns `true` if the owning thread is currently quiescent.
    #[inline]
    pub fn is_quiescent(&self) -> bool {
        AnnounceWord::is_quiescent(self.announce.load(Ordering::Acquire))
    }

    /// Sets the quiescent bit without modifying the announced epoch
    /// (the paper's `setQuiescentBitTrue`).
    #[inline]
    pub fn set_quiescent(&self) {
        self.announce.fetch_or(AnnounceWord::QUIESCENT_BIT, Ordering::SeqCst);
    }

    /// Clears the quiescent bit without modifying the announced epoch
    /// (the paper's `setQuiescentBitFalse`).
    #[inline]
    pub fn clear_quiescent(&self) {
        self.announce.fetch_and(!AnnounceWord::QUIESCENT_BIT, Ordering::SeqCst);
    }

    /// Returns `true` if the thread has been neutralized and has not yet run recovery.
    #[inline]
    pub fn is_neutralized(&self) -> bool {
        self.neutralized.load(Ordering::Acquire)
    }

    /// Clears the neutralized flag (called by the owning thread when it starts recovery or
    /// a new operation).
    #[inline]
    pub fn clear_neutralized(&self) {
        self.neutralized.store(false, Ordering::Release);
    }

    /// The state transition performed by the signal handler: always counts the signal, and
    /// if the thread is not quiescent, makes it quiescent and marks it neutralized.
    ///
    /// Returns `true` if the thread was actually neutralized by this call.
    ///
    /// This function is async-signal-safe: it only performs atomic loads and stores.
    #[inline]
    pub fn handle_signal(&self) -> bool {
        self.signals_received.fetch_add(1, Ordering::Relaxed);
        let word = self.announce.load(Ordering::Acquire);
        if AnnounceWord::is_quiescent(word) {
            // Interrupted while quiescent (or while running recovery code): no effect.
            return false;
        }
        self.set_quiescent();
        self.neutralized.store(true, Ordering::SeqCst);
        self.neutralizations.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Records the OS identity of the owning thread (used by the POSIX driver).
    pub(crate) fn set_os_handle(&self, handle: u64) {
        self.os_handle.store(handle, Ordering::SeqCst);
        self.registered.store(handle != 0, Ordering::SeqCst);
    }

    /// Returns the OS identity of the owning thread if it is registered with a POSIX
    /// driver.
    pub(crate) fn os_handle(&self) -> Option<u64> {
        if self.registered.load(Ordering::Acquire) {
            let h = self.os_handle.load(Ordering::Acquire);
            if h != 0 {
                return Some(h);
            }
        }
        None
    }

    /// Statistics snapshot for this thread.
    pub fn stats(&self) -> SlotStats {
        SlotStats {
            signals_received: self.signals_received.load(Ordering::Relaxed),
            neutralizations: self.neutralizations.load(Ordering::Relaxed),
        }
    }
}

impl Default for NeutralizeSlot {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_slot_is_quiescent_and_not_neutralized() {
        let s = NeutralizeSlot::new();
        assert!(s.is_quiescent());
        assert!(!s.is_neutralized());
        assert_eq!(s.stats(), SlotStats::default());
    }

    #[test]
    fn quiescent_bit_transitions_preserve_epoch() {
        let s = NeutralizeSlot::new();
        s.store_announce(AnnounceWord::pack(10, false), Ordering::SeqCst);
        assert!(!s.is_quiescent());
        s.set_quiescent();
        assert!(s.is_quiescent());
        assert_eq!(AnnounceWord::epoch(s.load_announce(Ordering::SeqCst)), 10);
        s.clear_quiescent();
        assert!(!s.is_quiescent());
        assert_eq!(AnnounceWord::epoch(s.load_announce(Ordering::SeqCst)), 10);
    }

    #[test]
    fn signal_while_quiescent_is_a_noop() {
        let s = NeutralizeSlot::new();
        assert!(!s.handle_signal());
        assert!(!s.is_neutralized());
        assert_eq!(s.stats().signals_received, 1);
        assert_eq!(s.stats().neutralizations, 0);
    }

    #[test]
    fn signal_while_non_quiescent_neutralizes() {
        let s = NeutralizeSlot::new();
        s.clear_quiescent();
        assert!(s.handle_signal());
        assert!(s.is_quiescent(), "handler makes the thread quiescent");
        assert!(s.is_neutralized());
        assert_eq!(s.stats().neutralizations, 1);
        // A second signal while quiescent does not neutralize again.
        assert!(!s.handle_signal());
        assert_eq!(s.stats().signals_received, 2);
        assert_eq!(s.stats().neutralizations, 1);
    }

    #[test]
    fn clear_neutralized_resets_flag() {
        let s = NeutralizeSlot::new();
        s.clear_quiescent();
        s.handle_signal();
        assert!(s.is_neutralized());
        s.clear_neutralized();
        assert!(!s.is_neutralized());
    }

    #[test]
    fn os_handle_roundtrip() {
        let s = NeutralizeSlot::new();
        assert_eq!(s.os_handle(), None);
        s.set_os_handle(1234);
        assert_eq!(s.os_handle(), Some(1234));
        s.set_os_handle(0);
        assert_eq!(s.os_handle(), None);
    }
}

//! Packing of the per-thread announcement word.

/// Helpers for the packed announcement word used by DEBRA and DEBRA+.
///
/// The paper stores each process's announced epoch and its quiescent bit in a single word so
/// that both can be read and written atomically (Section 4, "Minor optimizations"): the
/// least significant bit is the quiescent bit and the remaining bits are the epoch.  Epochs
/// are therefore always advanced by 2 in the raw representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnnounceWord;

impl AnnounceWord {
    /// Bit mask of the quiescent bit.
    pub const QUIESCENT_BIT: u64 = 1;

    /// Packs an epoch value and a quiescent flag into an announcement word.
    #[inline]
    pub fn pack(epoch: u64, quiescent: bool) -> u64 {
        debug_assert_eq!(epoch & Self::QUIESCENT_BIT, 0, "epochs use the upper 63 bits");
        epoch | u64::from(quiescent)
    }

    /// Extracts the epoch bits (clearing the quiescent bit).
    #[inline]
    pub fn epoch(word: u64) -> u64 {
        word & !Self::QUIESCENT_BIT
    }

    /// Extracts the quiescent bit.
    #[inline]
    pub fn is_quiescent(word: u64) -> bool {
        word & Self::QUIESCENT_BIT != 0
    }

    /// Returns `true` if the epoch bits of `word` equal `epoch` (ignoring the quiescent
    /// bit) — the paper's `isEqual(readEpoch, announcement)`.
    #[inline]
    pub fn epoch_matches(epoch: u64, word: u64) -> bool {
        Self::epoch(word) == Self::epoch(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for epoch in [0u64, 2, 4, 100, 1 << 40] {
            for q in [false, true] {
                let w = AnnounceWord::pack(epoch, q);
                assert_eq!(AnnounceWord::epoch(w), epoch);
                assert_eq!(AnnounceWord::is_quiescent(w), q);
            }
        }
    }

    #[test]
    fn epoch_matches_ignores_quiescent_bit() {
        let w = AnnounceWord::pack(42 << 1, true);
        assert!(AnnounceWord::epoch_matches(42 << 1, w));
        assert!(!AnnounceWord::epoch_matches(44 << 1, w));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn odd_epoch_is_rejected_in_debug() {
        let _ = AnnounceWord::pack(3, false);
    }
}

//! Signal delivery backends.

use std::cell::Cell;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::slot::NeutralizeSlot;

/// The signal used for neutralization by default.
///
/// The paper uses `SIGQUIT`; we default to `SIGUSR1` so that the default disposition of
/// `SIGQUIT` (core dump) is preserved for processes that embed the library, but any signal
/// number can be passed to [`SignalDriver::posix`].
#[cfg(unix)]
pub const DEFAULT_NEUTRALIZE_SIGNAL: i32 = libc::SIGUSR1;

/// The signal used for neutralization by default (placeholder value on non-Unix targets,
/// where only the simulated driver is available).
#[cfg(not(unix))]
pub const DEFAULT_NEUTRALIZE_SIGNAL: i32 = 10;

/// Which delivery mechanism a [`SignalDriver`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalDriverKind {
    /// Real POSIX signals: `sigaction` + `pthread_kill` (the paper's mechanism).
    Posix,
    /// Simulated delivery: the neutralizing thread performs the handler's state transition
    /// directly on the target slot.  Used in tests and on platforms without signals.
    Simulated,
}

/// Global count of neutralization signals sent (all drivers).
static SIGNALS_SENT: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Slot of the thread currently registered for neutralization on this OS thread.
    static CURRENT_SLOT: Cell<*const NeutralizeSlot> = const { Cell::new(std::ptr::null()) };
}

/// A handle for sending neutralization signals to registered threads.
///
/// The driver is cheap to clone and can be shared freely; the heavyweight state (the
/// process-wide signal handler) is installed at most once per process.
#[derive(Clone)]
pub struct SignalDriver {
    kind: SignalDriverKind,
    signum: i32,
}

impl SignalDriver {
    /// Creates a driver that delivers neutralization with real POSIX signals.
    ///
    /// Installs the process-wide handler for `signum` on first use.  All POSIX drivers in a
    /// process must use the same signal number.
    ///
    /// # Errors
    ///
    /// Returns an error if the handler cannot be installed, or if a different signal number
    /// was already installed by an earlier call.
    #[cfg(unix)]
    pub fn posix(signum: i32) -> io::Result<Self> {
        static INSTALLED: OnceLock<i32> = OnceLock::new();
        let mut install_error: Option<io::Error> = None;
        let installed = INSTALLED.get_or_init(|| {
            if let Err(e) = install_handler(signum) {
                install_error = Some(e);
                -1
            } else {
                signum
            }
        });
        if let Some(e) = install_error {
            return Err(e);
        }
        if *installed != signum {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "neutralization handler already installed for signal {installed}, \
                     cannot install for signal {signum}"
                ),
            ));
        }
        Ok(SignalDriver { kind: SignalDriverKind::Posix, signum })
    }

    /// Creates a driver that uses the default platform mechanism: POSIX signals on Unix
    /// (with [`DEFAULT_NEUTRALIZE_SIGNAL`]), simulated delivery elsewhere.
    pub fn best_available() -> Self {
        #[cfg(unix)]
        {
            if let Ok(d) = Self::posix(DEFAULT_NEUTRALIZE_SIGNAL) {
                return d;
            }
        }
        Self::simulated()
    }

    /// Creates a driver with simulated delivery (no OS signals involved).
    pub fn simulated() -> Self {
        SignalDriver { kind: SignalDriverKind::Simulated, signum: DEFAULT_NEUTRALIZE_SIGNAL }
    }

    /// The delivery mechanism used by this driver.
    pub fn kind(&self) -> SignalDriverKind {
        self.kind
    }

    /// The signal number used by POSIX delivery.
    pub fn signal_number(&self) -> i32 {
        self.signum
    }

    /// Registers the calling thread as the owner of `slot`.
    ///
    /// While the returned [`ThreadRegistration`] is alive, neutralization signals aimed at
    /// `slot` will be delivered to (and handled in the context of) the calling thread.
    /// Dropping the registration deregisters the thread; it must be dropped on the same
    /// thread that created it and before the thread exits.
    pub fn register_current_thread(&self, slot: Arc<NeutralizeSlot>) -> ThreadRegistration {
        match self.kind {
            SignalDriverKind::Posix => {
                #[cfg(unix)]
                {
                    let handle = unsafe { libc::pthread_self() } as u64;
                    slot.set_os_handle(handle);
                }
                CURRENT_SLOT.with(|c| c.set(Arc::as_ptr(&slot)));
            }
            SignalDriverKind::Simulated => {
                // Simulated delivery operates directly on the slot; nothing to record.
            }
        }
        ThreadRegistration { slot, kind: self.kind }
    }

    /// Sends a neutralization signal to the thread that owns `slot`.
    ///
    /// Returns `true` if the signal was delivered (POSIX: `pthread_kill` succeeded;
    /// simulated: the handler transition was applied).  After this returns `true` the
    /// caller may treat the target as quiescent, exactly as in the paper.
    pub fn neutralize(&self, slot: &NeutralizeSlot) -> bool {
        let sent = match self.kind {
            SignalDriverKind::Posix => {
                #[cfg(unix)]
                {
                    match slot.os_handle() {
                        Some(handle) => {
                            let r = unsafe {
                                libc::pthread_kill(handle as libc::pthread_t, self.signum)
                            };
                            r == 0
                        }
                        None => false,
                    }
                }
                #[cfg(not(unix))]
                {
                    false
                }
            }
            SignalDriverKind::Simulated => {
                slot.handle_signal();
                true
            }
        };
        if sent {
            SIGNALS_SENT.fetch_add(1, Ordering::Relaxed);
        }
        sent
    }

    /// Total number of neutralization signals successfully sent process-wide.
    pub fn signals_sent() -> u64 {
        SIGNALS_SENT.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for SignalDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SignalDriver")
            .field("kind", &self.kind)
            .field("signum", &self.signum)
            .finish()
    }
}

/// Guard returned by [`SignalDriver::register_current_thread`].
///
/// Keeps the slot alive and, for the POSIX driver, keeps the thread-local handler pointer
/// valid.  Deregisters the thread when dropped.
pub struct ThreadRegistration {
    slot: Arc<NeutralizeSlot>,
    kind: SignalDriverKind,
}

impl ThreadRegistration {
    /// The slot this registration refers to.
    pub fn slot(&self) -> &Arc<NeutralizeSlot> {
        &self.slot
    }
}

impl Drop for ThreadRegistration {
    fn drop(&mut self) {
        if self.kind == SignalDriverKind::Posix {
            self.slot.set_os_handle(0);
            CURRENT_SLOT.with(|c| {
                if c.get() == Arc::as_ptr(&self.slot) {
                    c.set(std::ptr::null());
                }
            });
        }
    }
}

impl fmt::Debug for ThreadRegistration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadRegistration").field("kind", &self.kind).finish()
    }
}

/// The process-wide signal handler.  Async-signal-safe: it only reads a (const-initialized)
/// thread-local pointer and performs atomic operations on the slot.
#[cfg(unix)]
extern "C" fn neutralize_handler(_signum: libc::c_int) {
    CURRENT_SLOT.with(|c| {
        let slot = c.get();
        if !slot.is_null() {
            // SAFETY: the pointer was set from an `Arc` that is kept alive by the
            // `ThreadRegistration` guard owned by this thread, and is cleared before the
            // guard drops the `Arc`.
            unsafe { (*slot).handle_signal() };
        }
    });
}

#[cfg(unix)]
fn install_handler(signum: i32) -> io::Result<()> {
    // SAFETY: standard sigaction installation; the handler is async-signal-safe.
    unsafe {
        let mut action: libc::sigaction = std::mem::zeroed();
        action.sa_sigaction = neutralize_handler as extern "C" fn(libc::c_int) as usize;
        action.sa_flags = libc::SA_RESTART;
        libc::sigemptyset(&mut action.sa_mask);
        if libc::sigaction(signum, &action, std::ptr::null_mut()) != 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn simulated_driver_neutralizes_non_quiescent_slot() {
        let driver = SignalDriver::simulated();
        let slot = Arc::new(NeutralizeSlot::new());
        let _reg = driver.register_current_thread(Arc::clone(&slot));
        slot.clear_quiescent();
        assert!(driver.neutralize(&slot));
        assert!(slot.is_neutralized());
        assert!(slot.is_quiescent());
    }

    #[test]
    fn simulated_driver_ignores_quiescent_slot() {
        let driver = SignalDriver::simulated();
        let slot = Arc::new(NeutralizeSlot::new());
        assert!(driver.neutralize(&slot));
        assert!(!slot.is_neutralized());
    }

    #[cfg(unix)]
    #[test]
    fn posix_driver_delivers_signal_to_other_thread() {
        let driver = SignalDriver::posix(DEFAULT_NEUTRALIZE_SIGNAL).expect("install handler");
        let slot = Arc::new(NeutralizeSlot::new());
        let stop = Arc::new(AtomicBool::new(false));

        let t = {
            let driver = driver.clone();
            let slot = Arc::clone(&slot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _reg = driver.register_current_thread(Arc::clone(&slot));
                slot.clear_quiescent();
                while !stop.load(Ordering::Acquire) {
                    // Yield so the signalling thread gets scheduled on single-core hosts.
                    std::thread::yield_now();
                }
            })
        };

        // Wait until the worker registered and left the quiescent state.
        while slot.os_handle().is_none() || slot.is_quiescent() {
            std::thread::yield_now();
        }
        assert!(driver.neutralize(&slot), "pthread_kill should succeed");
        // The handler runs the next time the worker takes a step.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !slot.is_neutralized() {
            assert!(std::time::Instant::now() < deadline, "signal was not handled in time");
            std::thread::yield_now();
        }
        assert!(slot.is_quiescent());
        assert!(slot.stats().neutralizations >= 1);
        stop.store(true, Ordering::Release);
        t.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn posix_driver_rejects_conflicting_signal_number() {
        // First installation (possibly from another test) fixes the signal number.
        let _ = SignalDriver::posix(DEFAULT_NEUTRALIZE_SIGNAL).expect("install handler");
        let other = SignalDriver::posix(libc::SIGUSR2);
        assert!(other.is_err());
    }

    #[test]
    fn best_available_returns_a_driver() {
        let d = SignalDriver::best_available();
        #[cfg(unix)]
        assert_eq!(d.kind(), SignalDriverKind::Posix);
        #[cfg(not(unix))]
        assert_eq!(d.kind(), SignalDriverKind::Simulated);
    }
}

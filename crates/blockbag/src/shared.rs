//! A lock-free shared bag of blocks.

use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use crate::block::Block;

/// A lock-free shared bag of whole [`Block`]s.
///
/// The object pool described in the paper (Section 4, "Object pool") keeps one *pool bag*
/// per process plus a single *shared bag*: when a process's pool bag grows too large it
/// moves some blocks to the shared bag, and when its pool bag is empty it takes blocks from
/// the shared bag.  Moving entire blocks (instead of individual records) greatly reduces
/// synchronization costs.
///
/// The shared bag is a Treiber-style stack of blocks linked through their intrusive `next`
/// pointers.  To avoid the classic ABA problem on `pop` without double-width CAS, `pop`
/// detaches the *entire* list with an atomic `swap` (which cannot suffer from ABA), takes
/// the first block, and re-attaches the remainder with a CAS-prepend loop.  `push` is a
/// standard CAS-prepend, which is ABA-safe because the new block's `next` is always set to
/// the head value observed by the successful CAS.
pub struct SharedBlockBag<T> {
    head: AtomicPtr<Block<T>>,
    /// Approximate number of blocks in the bag (maintained with relaxed counters).
    approx_blocks: AtomicUsize,
}

impl<T> SharedBlockBag<T> {
    /// Creates an empty shared bag.
    pub fn new() -> Self {
        SharedBlockBag { head: AtomicPtr::new(ptr::null_mut()), approx_blocks: AtomicUsize::new(0) }
    }

    /// Approximate number of blocks currently in the bag.
    ///
    /// The value is maintained with relaxed atomics and may be stale; it is only used for
    /// heuristics (such as deciding whether to allocate fresh records instead of waiting).
    pub fn approx_len(&self) -> usize {
        self.approx_blocks.load(Ordering::Relaxed)
    }

    /// Returns `true` if the bag appeared empty at the time of the call.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }

    /// Adds a block to the bag (lock-free).
    pub fn push_block(&self, block: Box<Block<T>>) {
        let block_ptr = Box::into_raw(block);
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: `block_ptr` was just produced by `Box::into_raw` and is exclusively
            // owned by this call until the CAS below publishes it.
            unsafe { (*block_ptr).next.store(head, Ordering::Relaxed) };
            match self.head.compare_exchange_weak(
                head,
                block_ptr,
                Ordering::Release,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.approx_blocks.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(current) => head = current,
            }
        }
    }

    /// Removes one block from the bag, or returns `None` if it is empty (lock-free).
    pub fn pop_block(&self) -> Option<Box<Block<T>>> {
        // Detach the whole list; `swap` cannot experience ABA.
        let list = self.head.swap(ptr::null_mut(), Ordering::AcqRel);
        if list.is_null() {
            return None;
        }
        // SAFETY: we exclusively own the detached list.
        let rest = unsafe { (*list).next.swap(ptr::null_mut(), Ordering::Relaxed) };
        self.approx_blocks.fetch_sub(1, Ordering::Relaxed);
        // Re-attach the remainder (if any).
        if !rest.is_null() {
            self.prepend_chain(rest);
        }
        // SAFETY: `list` was created by `Box::into_raw` in `push_block` and has been
        // detached from the shared structure, so we own it exclusively.
        Some(unsafe { Box::from_raw(list) })
    }

    /// Removes every block currently in the bag (lock-free, single swap).
    pub fn pop_all(&self) -> Vec<Box<Block<T>>> {
        let mut list = self.head.swap(ptr::null_mut(), Ordering::AcqRel);
        let mut out = Vec::new();
        while !list.is_null() {
            // SAFETY: exclusive ownership of the detached chain.
            let next = unsafe { (*list).next.swap(ptr::null_mut(), Ordering::Relaxed) };
            out.push(unsafe { Box::from_raw(list) });
            list = next;
        }
        self.approx_blocks.fetch_sub(out.len().min(self.approx_len()), Ordering::Relaxed);
        out
    }

    /// Prepends an already-linked chain of blocks whose head is `chain`.
    fn prepend_chain(&self, chain: *mut Block<T>) {
        debug_assert!(!chain.is_null());
        // Find the tail of the chain (bounded by the chain length, which we own).
        let mut tail = chain;
        // SAFETY: the chain is exclusively owned by this call.
        unsafe {
            while !(*tail).next.load(Ordering::Relaxed).is_null() {
                tail = (*tail).next.load(Ordering::Relaxed);
            }
        }
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: tail is part of the privately owned chain until the CAS publishes it.
            unsafe { (*tail).next.store(head, Ordering::Relaxed) };
            match self.head.compare_exchange_weak(head, chain, Ordering::Release, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }
}

impl<T> Default for SharedBlockBag<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for SharedBlockBag<T> {
    fn drop(&mut self) {
        let mut list = *self.head.get_mut();
        while !list.is_null() {
            // SAFETY: on drop we have exclusive access; every block was leaked via
            // `Box::into_raw` in `push_block`.
            let next = unsafe { (*list).next.load(Ordering::Relaxed) };
            drop(unsafe { Box::from_raw(list) });
            list = next;
        }
    }
}

impl<T> fmt::Debug for SharedBlockBag<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedBlockBag").field("approx_blocks", &self.approx_len()).finish()
    }
}

// SAFETY: the shared bag only manipulates block pointers atomically and never dereferences
// the record pointers stored inside blocks.  It is shared between threads by design.
unsafe impl<T: Send> Send for SharedBlockBag<T> {}
unsafe impl<T: Send> Sync for SharedBlockBag<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::ptr::NonNull;
    use std::sync::Arc;

    fn full_block(base: usize, cap: usize) -> Box<Block<u64>> {
        let mut b = Block::with_capacity(cap);
        for i in 0..cap {
            b.push(NonNull::new(((base + i) * 8 + 8) as *mut u64).unwrap());
        }
        b
    }

    #[test]
    fn push_pop_single_thread() {
        let bag: SharedBlockBag<u64> = SharedBlockBag::new();
        assert!(bag.is_empty());
        assert!(bag.pop_block().is_none());
        bag.push_block(full_block(0, 4));
        bag.push_block(full_block(100, 4));
        assert!(!bag.is_empty());
        let a = bag.pop_block().unwrap();
        let b = bag.pop_block().unwrap();
        assert!(bag.pop_block().is_none());
        assert_eq!(a.len() + b.len(), 8);
    }

    #[test]
    fn pop_all_detaches_everything() {
        let bag: SharedBlockBag<u64> = SharedBlockBag::new();
        for i in 0..5 {
            bag.push_block(full_block(i * 100, 3));
        }
        let all = bag.pop_all();
        assert_eq!(all.len(), 5);
        assert!(bag.is_empty());
    }

    #[test]
    fn drop_frees_remaining_blocks() {
        let bag: SharedBlockBag<u64> = SharedBlockBag::new();
        for i in 0..5 {
            bag.push_block(full_block(i * 100, 3));
        }
        drop(bag); // must not leak or double free (checked under sanitizers / miri-like review)
    }

    #[test]
    fn concurrent_push_pop_preserves_all_blocks() {
        let bag: Arc<SharedBlockBag<u64>> = Arc::new(SharedBlockBag::new());
        let producers = 4;
        let blocks_per_producer = 200;
        let cap = 4;

        let mut handles = Vec::new();
        for p in 0..producers {
            let bag = Arc::clone(&bag);
            handles.push(std::thread::spawn(move || {
                for i in 0..blocks_per_producer {
                    bag.push_block(full_block((p * blocks_per_producer + i) * cap, cap));
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let bag = Arc::clone(&bag);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..10_000 {
                    if let Some(b) = bag.pop_block() {
                        got.push(b);
                    }
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut collected: Vec<Box<Block<u64>>> = Vec::new();
        for c in consumers {
            collected.extend(c.join().unwrap());
        }
        collected.extend(bag.pop_all());

        let mut seen: HashSet<usize> = HashSet::new();
        for b in &collected {
            for e in b.iter() {
                assert!(seen.insert(e.as_ptr() as usize), "duplicate record observed");
            }
        }
        assert_eq!(seen.len(), producers * blocks_per_producer * cap);
    }
}

//! Block-based bags of record pointers.
//!
//! This crate implements the *blockbag* substrate described in Section 4 of Brown's
//! "Reclaiming Memory for Lock-Free Data Structures: There has to be a Better Way"
//! (PODC 2015).  DEBRA's limbo bags and the object pool's per-thread pool bags are both
//! block bags: singly linked lists of [`Block`]s, where the head block always contains
//! fewer than `B` records and every other block contains exactly `B` records.  With this
//! invariant, adding and removing a record, and moving all full blocks from one bag to
//! another, all take constant time per block.
//!
//! Three components are provided:
//!
//! * [`Block`] — a fixed-capacity array of record pointers plus an intrusive next link.
//! * [`BlockBag`] — a single-owner bag of blocks with O(1) push/pop and bulk block moves,
//!   used for limbo bags and pool bags.
//! * [`SharedBlockBag`] — a lock-free shared bag of *blocks* (not individual records),
//!   used as the overflow pool shared by all threads.  Records are moved to and from the
//!   shared bag a whole block at a time, which greatly reduces synchronization costs.
//! * [`BlockMemoryPool`] — a small bounded cache of empty blocks so that a thread does not
//!   have to allocate and free block objects on every epoch rotation.
//!
//! The bags store raw record pointers (`NonNull<T>`); they do not own the records and never
//! dereference them.  Ownership and lifetime of the records is managed by the reclaimers
//! and pools built on top (see the `debra` and `smr-alloc` crates).
//!
//! # Example
//!
//! ```
//! use blockbag::{BlockBag, DEFAULT_BLOCK_CAPACITY};
//! use std::ptr::NonNull;
//!
//! let mut bag: BlockBag<u64> = BlockBag::new();
//! let mut records: Vec<Box<u64>> = (0..1000u64).map(Box::new).collect();
//! for r in &mut records {
//!     bag.push(NonNull::from(&mut **r));
//! }
//! assert_eq!(bag.len(), 1000);
//! assert!(bag.size_in_blocks() >= 1000 / DEFAULT_BLOCK_CAPACITY);
//! let full = bag.take_full_blocks();
//! assert!(bag.len() < DEFAULT_BLOCK_CAPACITY);
//! assert_eq!(full.iter().map(|b| b.len()).sum::<usize>() + bag.len(), 1000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bag;
mod block;
mod pool;
mod shared;

pub use bag::{BlockBag, Drain, Iter};
pub use block::{Block, DEFAULT_BLOCK_CAPACITY};
pub use pool::BlockMemoryPool;
pub use shared::SharedBlockBag;

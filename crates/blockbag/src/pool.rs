//! A bounded cache of empty blocks.

use std::fmt;

use crate::block::{Block, DEFAULT_BLOCK_CAPACITY};

/// A bounded per-thread cache of empty [`Block`]s.
///
/// The paper observes that operating on blocks instead of individual records requires
/// blocks themselves to be allocated and deallocated, and that caching a small number of
/// blocks per process (16 in the paper) reduces the number of block allocations by more
/// than 99.9%.  `BlockMemoryPool` is that cache: instead of freeing an empty block, return
/// it here; instead of allocating a new block, ask here first.
pub struct BlockMemoryPool<T> {
    // Boxed for the same reason as `BlockBag`: blocks travel whole between owners.
    #[allow(clippy::vec_box)]
    spare: Vec<Box<Block<T>>>,
    max_spare: usize,
    block_capacity: usize,
    allocated: u64,
    reused: u64,
}

impl<T> BlockMemoryPool<T> {
    /// Default bound on the number of cached blocks (16, as in the paper's experiments).
    pub const DEFAULT_MAX_SPARE: usize = 16;

    /// Creates a pool that caches up to [`Self::DEFAULT_MAX_SPARE`] blocks of
    /// [`DEFAULT_BLOCK_CAPACITY`] entries each.
    pub fn new() -> Self {
        Self::with_limits(Self::DEFAULT_MAX_SPARE, DEFAULT_BLOCK_CAPACITY)
    }

    /// Creates a pool with a custom cache bound and block capacity.
    ///
    /// # Panics
    ///
    /// Panics if `block_capacity` is zero.
    pub fn with_limits(max_spare: usize, block_capacity: usize) -> Self {
        assert!(block_capacity > 0, "block capacity must be positive");
        BlockMemoryPool { spare: Vec::new(), max_spare, block_capacity, allocated: 0, reused: 0 }
    }

    /// Obtains an empty block, reusing a cached one when possible.
    pub fn acquire(&mut self) -> Box<Block<T>> {
        match self.spare.pop() {
            Some(b) => {
                self.reused += 1;
                b
            }
            None => {
                self.allocated += 1;
                Block::with_capacity(self.block_capacity)
            }
        }
    }

    /// Returns a block to the cache; if the cache is full the block is freed.
    ///
    /// The block need not be empty — it is cleared here — but it must no longer contain
    /// record pointers that anyone cares about.
    pub fn release(&mut self, mut block: Box<Block<T>>) {
        if self.spare.len() < self.max_spare {
            block.clear();
            self.spare.push(block);
        }
    }

    /// Number of blocks currently cached.
    pub fn cached(&self) -> usize {
        self.spare.len()
    }

    /// Number of blocks that had to be freshly allocated.
    pub fn allocations(&self) -> u64 {
        self.allocated
    }

    /// Number of acquisitions served from the cache.
    pub fn reuses(&self) -> u64 {
        self.reused
    }

    /// Capacity of the blocks handed out by this pool.
    pub fn block_capacity(&self) -> usize {
        self.block_capacity
    }
}

impl<T> Default for BlockMemoryPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for BlockMemoryPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockMemoryPool")
            .field("cached", &self.spare.len())
            .field("max_spare", &self.max_spare)
            .field("allocated", &self.allocated)
            .field("reused", &self.reused)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ptr::NonNull;

    #[test]
    fn reuses_released_blocks() {
        let mut pool: BlockMemoryPool<u64> = BlockMemoryPool::with_limits(4, 8);
        let blocks: Vec<_> = (0..4).map(|_| pool.acquire()).collect();
        assert_eq!(pool.allocations(), 4);
        for b in blocks {
            pool.release(b);
        }
        assert_eq!(pool.cached(), 4);
        let _b = pool.acquire();
        assert_eq!(pool.reuses(), 1);
        assert_eq!(pool.allocations(), 4);
    }

    #[test]
    fn cache_is_bounded() {
        let mut pool: BlockMemoryPool<u64> = BlockMemoryPool::with_limits(2, 8);
        let blocks: Vec<_> = (0..5).map(|_| pool.acquire()).collect();
        for b in blocks {
            pool.release(b);
        }
        assert_eq!(pool.cached(), 2);
    }

    #[test]
    fn released_blocks_are_cleared() {
        let mut pool: BlockMemoryPool<u64> = BlockMemoryPool::with_limits(2, 8);
        let mut b = pool.acquire();
        b.push(NonNull::<u64>::dangling());
        pool.release(b);
        let b = pool.acquire();
        assert!(b.is_empty());
    }

    #[test]
    fn reuse_fraction_is_high_under_churn() {
        // Mirrors the paper's observation: with a bounded cache, block allocations are rare.
        let mut pool: BlockMemoryPool<u64> = BlockMemoryPool::new();
        let mut held = Vec::new();
        for round in 0..1000 {
            for _ in 0..4 {
                held.push(pool.acquire());
            }
            for b in held.drain(..) {
                pool.release(b);
            }
            let _ = round;
        }
        let total = pool.allocations() + pool.reuses();
        assert!(
            pool.allocations() * 100 < total,
            "block allocations should be <1% of acquisitions"
        );
    }
}

//! Fixed-capacity blocks of record pointers.

use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::AtomicPtr;

/// Default number of record pointers per block (`B` in the paper; 256 in the paper's
/// experiments).
pub const DEFAULT_BLOCK_CAPACITY: usize = 256;

/// A fixed-capacity array of record pointers with an intrusive `next` link.
///
/// Blocks are the unit of bulk transfer between limbo bags, pool bags and the shared pool
/// bag: moving a full block between bags costs O(1) regardless of how many records it
/// contains.  A block never dereferences the record pointers it stores.
///
/// The `next` link is only used while the block is inside a [`SharedBlockBag`]
/// (a lock-free Treiber-style stack of blocks); while a block is owned by a [`BlockBag`]
/// the link is unused and null.
///
/// [`SharedBlockBag`]: crate::SharedBlockBag
/// [`BlockBag`]: crate::BlockBag
pub struct Block<T> {
    entries: Vec<NonNull<T>>,
    capacity: usize,
    pub(crate) next: AtomicPtr<Block<T>>,
}

impl<T> Block<T> {
    /// Creates an empty block with the [`DEFAULT_BLOCK_CAPACITY`].
    pub fn new() -> Box<Self> {
        Self::with_capacity(DEFAULT_BLOCK_CAPACITY)
    }

    /// Creates an empty block that can hold exactly `capacity` record pointers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Box<Self> {
        assert!(capacity > 0, "block capacity must be positive");
        Box::new(Block {
            entries: Vec::with_capacity(capacity),
            capacity,
            next: AtomicPtr::new(std::ptr::null_mut()),
        })
    }

    /// Number of record pointers currently stored in this block.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the block holds no record pointers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if the block is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// The fixed capacity of this block.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes a record pointer. Returns `false` (and does not push) if the block is full.
    #[inline]
    pub fn push(&mut self, record: NonNull<T>) -> bool {
        if self.is_full() {
            return false;
        }
        self.entries.push(record);
        true
    }

    /// Pops the most recently pushed record pointer, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<NonNull<T>> {
        self.entries.pop()
    }

    /// Iterates over the record pointers currently stored in the block.
    pub fn iter(&self) -> impl Iterator<Item = NonNull<T>> + '_ {
        self.entries.iter().copied()
    }

    /// Read-only view of the stored record pointers.
    pub fn entries(&self) -> &[NonNull<T>] {
        &self.entries
    }

    /// Mutable view of the stored record pointers (used to partition a limbo bag in
    /// DEBRA+'s `rotate_and_reclaim`).
    pub(crate) fn entries_mut(&mut self) -> &mut Vec<NonNull<T>> {
        &mut self.entries
    }

    /// Removes all record pointers from the block, returning them.
    pub fn drain(&mut self) -> impl Iterator<Item = NonNull<T>> + '_ {
        self.entries.drain(..)
    }

    /// Clears the block without returning the entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<T> fmt::Debug for Block<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Block").field("len", &self.len()).field("capacity", &self.capacity).finish()
    }
}

// SAFETY: a `Block` only stores raw pointers and never dereferences them; sending the
// container of pointers between threads is safe as long as the records themselves are
// `Send`, which the reclaimers built on top require.
unsafe impl<T: Send> Send for Block<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptr(v: usize) -> NonNull<u64> {
        // Fabricate distinct non-null dangling pointers for container tests; they are never
        // dereferenced.
        NonNull::new((v * 8 + 8) as *mut u64).unwrap()
    }

    #[test]
    fn push_pop_respects_capacity() {
        let mut b: Box<Block<u64>> = Block::with_capacity(4);
        assert!(b.is_empty());
        for i in 0..4 {
            assert!(b.push(ptr(i)));
        }
        assert!(b.is_full());
        assert!(!b.push(ptr(99)), "push into a full block must fail");
        assert_eq!(b.len(), 4);
        assert_eq!(b.pop(), Some(ptr(3)));
        assert_eq!(b.len(), 3);
        assert!(!b.is_full());
    }

    #[test]
    fn default_capacity_matches_paper() {
        let b: Box<Block<u64>> = Block::new();
        assert_eq!(b.capacity(), 256);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Block::<u64>::with_capacity(0);
    }

    #[test]
    fn drain_empties_block() {
        let mut b: Box<Block<u64>> = Block::with_capacity(8);
        for i in 0..5 {
            b.push(ptr(i));
        }
        let drained: Vec<_> = b.drain().collect();
        assert_eq!(drained.len(), 5);
        assert!(b.is_empty());
    }

    #[test]
    fn debug_is_nonempty() {
        let b: Box<Block<u64>> = Block::with_capacity(2);
        assert!(!format!("{b:?}").is_empty());
    }
}

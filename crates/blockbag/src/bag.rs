//! Single-owner bags of record pointers backed by blocks.

use std::fmt;
use std::ptr::NonNull;

use crate::block::{Block, DEFAULT_BLOCK_CAPACITY};

/// Maximum number of empty spare blocks cached inside a [`BlockBag`] (mirrors the paper's
/// bounded per-process block pool of 16 blocks).
const MAX_SPARE_BLOCKS: usize = 16;

/// A single-owner bag of record pointers, stored in fixed-capacity [`Block`]s.
///
/// This is the data structure used for DEBRA's *limbo bags* and for the object pool's
/// per-thread *pool bags* (paper, Section 4, "Block bags").  It maintains the invariant
/// that every block except the most recently filled one is completely full, which makes
/// the following operations cheap:
///
/// * [`push`](BlockBag::push) / [`pop`](BlockBag::pop): O(1);
/// * [`take_full_blocks`](BlockBag::take_full_blocks): O(1) per block moved — this is the
///   paper's `pool->moveFullBlocks(bag)`;
/// * [`partition_and_take_full_blocks`](BlockBag::partition_and_take_full_blocks): a single
///   linear scan used by DEBRA+ to retain records protected by restricted hazard pointers
///   while still moving whole blocks of unprotected records to the pool.
///
/// The bag stores raw record pointers and never dereferences them; the caller retains
/// responsibility for the records' lifetimes.
pub struct BlockBag<T> {
    // Blocks are deliberately boxed: a block must keep a stable allocation so it can move
    // *whole* between bags/sinks in O(1) (the paper's `moveFullBlocks`), not be copied.
    /// Invariant: non-empty; every block except the last is full.
    #[allow(clippy::vec_box)]
    blocks: Vec<Box<Block<T>>>,
    /// Bounded cache of empty blocks, reused instead of allocating.
    #[allow(clippy::vec_box)]
    spare: Vec<Box<Block<T>>>,
    block_capacity: usize,
    len: usize,
}

impl<T> BlockBag<T> {
    /// Creates an empty bag whose blocks hold [`DEFAULT_BLOCK_CAPACITY`] records each.
    pub fn new() -> Self {
        Self::with_block_capacity(DEFAULT_BLOCK_CAPACITY)
    }

    /// Creates an empty bag with a custom block capacity.
    ///
    /// # Panics
    ///
    /// Panics if `block_capacity` is zero.
    pub fn with_block_capacity(block_capacity: usize) -> Self {
        BlockBag {
            blocks: vec![Block::with_capacity(block_capacity)],
            spare: Vec::new(),
            block_capacity,
            len: 0,
        }
    }

    /// Number of record pointers in the bag.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the bag holds no record pointers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks currently forming the bag (including the partially filled head).
    #[inline]
    pub fn size_in_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of *full* blocks currently in the bag.
    #[inline]
    pub fn full_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_full()).count()
    }

    /// The capacity of each block in this bag.
    #[inline]
    pub fn block_capacity(&self) -> usize {
        self.block_capacity
    }

    fn fresh_block(&mut self) -> Box<Block<T>> {
        self.spare.pop().unwrap_or_else(|| Block::with_capacity(self.block_capacity))
    }

    fn recycle_block(&mut self, mut block: Box<Block<T>>) {
        if self.spare.len() < MAX_SPARE_BLOCKS {
            block.clear();
            self.spare.push(block);
        }
        // Otherwise the block is simply dropped (freed).
    }

    /// Adds a record pointer to the bag in O(1) amortized time.
    pub fn push(&mut self, record: NonNull<T>) {
        let needs_new_block = {
            let head = self.blocks.last_mut().expect("bag always has a head block");
            !head.push(record)
        };
        if needs_new_block {
            let mut block = self.fresh_block();
            let pushed = block.push(record);
            debug_assert!(pushed, "fresh block must accept a record");
            self.blocks.push(block);
        }
        self.len += 1;
    }

    /// Removes and returns a record pointer, or `None` if the bag is empty.
    pub fn pop(&mut self) -> Option<NonNull<T>> {
        loop {
            let head_empty = {
                let head = self.blocks.last_mut().expect("bag always has a head block");
                match head.pop() {
                    Some(r) => {
                        self.len -= 1;
                        return Some(r);
                    }
                    None => true,
                }
            };
            debug_assert!(head_empty);
            if self.blocks.len() == 1 {
                return None;
            }
            let empty = self.blocks.pop().expect("more than one block");
            self.recycle_block(empty);
        }
    }

    /// Moves every full block out of the bag, leaving at most `block_capacity - 1` records
    /// behind (the contents of the partially filled head block).
    ///
    /// This is the paper's `moveFullBlocks` operation: O(1) work per block moved, and the
    /// records inside the moved blocks are not touched.
    pub fn take_full_blocks(&mut self) -> Vec<Box<Block<T>>> {
        let mut taken = Vec::new();
        let mut kept = Vec::with_capacity(1);
        for block in self.blocks.drain(..) {
            if block.is_full() {
                taken.push(block);
            } else {
                kept.push(block);
            }
        }
        if kept.is_empty() {
            kept.push(
                self.spare.pop().unwrap_or_else(|| Block::with_capacity(self.block_capacity)),
            );
        }
        self.blocks = kept;
        self.len = self.blocks.iter().map(|b| b.len()).sum();
        taken
    }

    /// Partitions the bag so that every record for which `keep` returns `true` stays in the
    /// bag, then moves out as many *full* blocks of non-kept records as possible.
    ///
    /// This implements DEBRA+'s `rotateAndReclaim` scan (paper, Figure 6): records pointed
    /// to by restricted hazard pointers are retained, and whole blocks of unprotected
    /// records are handed to the pool.  Up to `block_capacity - 1` unprotected records may
    /// remain in the bag (exactly like the paper, which leaves the partially-filled head
    /// block behind); they will be reclaimed on a later rotation.
    ///
    /// Returns the full blocks of non-kept records.
    pub fn partition_and_take_full_blocks(
        &mut self,
        mut keep: impl FnMut(NonNull<T>) -> bool,
    ) -> Vec<Box<Block<T>>> {
        let mut kept: Vec<NonNull<T>> = Vec::new();
        let mut freeable: Vec<NonNull<T>> = Vec::new();
        let mut spare_blocks: Vec<Box<Block<T>>> = Vec::new();
        for mut block in self.blocks.drain(..) {
            for entry in block.entries_mut().drain(..) {
                if keep(entry) {
                    kept.push(entry);
                } else {
                    freeable.push(entry);
                }
            }
            spare_blocks.push(block);
        }

        // Rebuild the bag: kept records first, then the leftover freeable records that do
        // not fill a whole block.
        let leftover = freeable.len() % self.block_capacity;
        let (to_free, stay) = freeable.split_at(freeable.len() - leftover);

        let mut taken = Vec::new();
        let mut to_free_iter = to_free.iter().copied();
        'outer: loop {
            let mut block =
                spare_blocks.pop().unwrap_or_else(|| Block::with_capacity(self.block_capacity));
            loop {
                match to_free_iter.next() {
                    Some(r) => {
                        let ok = block.push(r);
                        debug_assert!(ok);
                        if block.is_full() {
                            taken.push(block);
                            break;
                        }
                    }
                    None => {
                        debug_assert!(block.is_empty());
                        spare_blocks.push(block);
                        break 'outer;
                    }
                }
            }
        }

        // Restore the bag contents.
        self.blocks.clear();
        self.blocks
            .push(spare_blocks.pop().unwrap_or_else(|| Block::with_capacity(self.block_capacity)));
        self.len = 0;
        for r in kept.into_iter().chain(stay.iter().copied()) {
            self.push(r);
        }
        // Cache a bounded number of leftover empty blocks.
        for block in spare_blocks {
            self.recycle_block(block);
        }
        taken
    }

    /// Adds a whole block of records to the bag.
    ///
    /// Full blocks are inserted below the head in O(1); partially filled blocks are drained
    /// into the bag record by record to preserve the "all non-head blocks are full"
    /// invariant.
    pub fn push_block(&mut self, mut block: Box<Block<T>>) {
        if block.is_full() {
            self.len += block.len();
            let head_index = self.blocks.len() - 1;
            self.blocks.insert(head_index, block);
        } else {
            let entries: Vec<NonNull<T>> = block.drain().collect();
            for r in entries {
                self.push(r);
            }
            self.recycle_block(block);
        }
    }

    /// Moves every record from `other` into `self`, leaving `other` empty.
    pub fn append(&mut self, other: &mut BlockBag<T>) {
        for block in other.take_full_blocks() {
            self.push_block(block);
        }
        while let Some(r) = other.pop() {
            self.push(r);
        }
    }

    /// Iterates over every record pointer in the bag.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { blocks: &self.blocks, block_idx: 0, entry_idx: 0 }
    }

    /// Removes and yields every record pointer in the bag.
    pub fn drain(&mut self) -> Drain<'_, T> {
        Drain { bag: self }
    }
}

impl<T> Default for BlockBag<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for BlockBag<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockBag")
            .field("len", &self.len)
            .field("blocks", &self.blocks.len())
            .field("block_capacity", &self.block_capacity)
            .finish()
    }
}

// SAFETY: the bag stores raw pointers without dereferencing them; it may be sent to another
// thread when the records are `Send` (reclaimer hand-off at thread exit).
unsafe impl<T: Send> Send for BlockBag<T> {}

/// Iterator over the record pointers of a [`BlockBag`]; created by [`BlockBag::iter`].
pub struct Iter<'a, T> {
    blocks: &'a [Box<Block<T>>],
    block_idx: usize,
    entry_idx: usize,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = NonNull<T>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let block = self.blocks.get(self.block_idx)?;
            if let Some(&entry) = block.entries().get(self.entry_idx) {
                self.entry_idx += 1;
                return Some(entry);
            }
            self.block_idx += 1;
            self.entry_idx = 0;
        }
    }
}

impl<'a, T> fmt::Debug for Iter<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Iter")
            .field("block_idx", &self.block_idx)
            .field("entry_idx", &self.entry_idx)
            .finish()
    }
}

/// Draining iterator for a [`BlockBag`]; created by [`BlockBag::drain`].
pub struct Drain<'a, T> {
    bag: &'a mut BlockBag<T>,
}

impl<'a, T> Iterator for Drain<'a, T> {
    type Item = NonNull<T>;

    fn next(&mut self) -> Option<Self::Item> {
        self.bag.pop()
    }
}

impl<'a, T> fmt::Debug for Drain<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Drain").field("remaining", &self.bag.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn ptr(v: usize) -> NonNull<u64> {
        NonNull::new((v * 8 + 8) as *mut u64).unwrap()
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut bag: BlockBag<u64> = BlockBag::with_block_capacity(4);
        for i in 0..10 {
            bag.push(ptr(i));
        }
        assert_eq!(bag.len(), 10);
        let mut seen = HashSet::new();
        while let Some(p) = bag.pop() {
            seen.insert(p);
        }
        assert_eq!(seen.len(), 10);
        assert!(bag.is_empty());
        assert_eq!(bag.pop(), None);
    }

    #[test]
    fn invariant_non_head_blocks_full() {
        let mut bag: BlockBag<u64> = BlockBag::with_block_capacity(4);
        for i in 0..22 {
            bag.push(ptr(i));
        }
        // All blocks except the last must be full.
        for block in &bag.blocks[..bag.blocks.len() - 1] {
            assert!(block.is_full());
        }
    }

    #[test]
    fn take_full_blocks_leaves_partial_head() {
        let mut bag: BlockBag<u64> = BlockBag::with_block_capacity(4);
        for i in 0..22 {
            bag.push(ptr(i));
        }
        let full = bag.take_full_blocks();
        let moved: usize = full.iter().map(|b| b.len()).sum();
        assert_eq!(moved + bag.len(), 22);
        assert!(bag.len() < 4, "at most B-1 records may remain");
        assert!(full.iter().all(|b| b.is_full()));
    }

    #[test]
    fn take_full_blocks_when_everything_is_full() {
        let mut bag: BlockBag<u64> = BlockBag::with_block_capacity(4);
        for i in 0..8 {
            bag.push(ptr(i));
        }
        let full = bag.take_full_blocks();
        assert_eq!(full.iter().map(|b| b.len()).sum::<usize>(), 8);
        assert!(bag.is_empty());
        // The bag must still be usable.
        bag.push(ptr(100));
        assert_eq!(bag.len(), 1);
    }

    #[test]
    fn partition_keeps_protected_records() {
        let mut bag: BlockBag<u64> = BlockBag::with_block_capacity(4);
        for i in 0..40 {
            bag.push(ptr(i));
        }
        let protected: HashSet<NonNull<u64>> = (0..40).step_by(7).map(ptr).collect();
        let taken = bag.partition_and_take_full_blocks(|p| protected.contains(&p));
        // No protected record may leave the bag.
        for block in &taken {
            for e in block.iter() {
                assert!(!protected.contains(&e), "protected record was reclaimed");
            }
        }
        // Every record is either still in the bag or in a taken block.
        let in_bag: HashSet<_> = bag.iter().collect();
        let in_taken: HashSet<_> = taken.iter().flat_map(|b| b.iter()).collect();
        assert_eq!(in_bag.len() + in_taken.len(), 40);
        for p in &protected {
            assert!(in_bag.contains(p));
        }
        // Taken blocks are full.
        assert!(taken.iter().all(|b| b.is_full()));
        // At most B-1 unprotected records stay behind.
        assert!(in_bag.len() < protected.len() + bag.block_capacity());
    }

    #[test]
    fn push_block_full_and_partial() {
        let mut bag: BlockBag<u64> = BlockBag::with_block_capacity(4);
        bag.push(ptr(0));

        let mut full = Block::with_capacity(4);
        for i in 10..14 {
            full.push(ptr(i));
        }
        bag.push_block(full);
        assert_eq!(bag.len(), 5);

        let mut partial = Block::with_capacity(4);
        partial.push(ptr(20));
        partial.push(ptr(21));
        bag.push_block(partial);
        assert_eq!(bag.len(), 7);

        let all: HashSet<_> = bag.iter().collect();
        assert_eq!(all.len(), 7);
    }

    #[test]
    fn append_moves_everything() {
        let mut a: BlockBag<u64> = BlockBag::with_block_capacity(4);
        let mut b: BlockBag<u64> = BlockBag::with_block_capacity(4);
        for i in 0..9 {
            a.push(ptr(i));
        }
        for i in 100..117 {
            b.push(ptr(i));
        }
        a.append(&mut b);
        assert_eq!(a.len(), 9 + 17);
        assert!(b.is_empty());
    }

    #[test]
    fn iter_sees_every_record() {
        let mut bag: BlockBag<u64> = BlockBag::with_block_capacity(3);
        let expected: HashSet<_> = (0..17).map(ptr).collect();
        for p in &expected {
            bag.push(*p);
        }
        let seen: HashSet<_> = bag.iter().collect();
        assert_eq!(seen, expected);
        // iter does not consume
        assert_eq!(bag.len(), 17);
    }

    #[test]
    fn drain_empties_bag() {
        let mut bag: BlockBag<u64> = BlockBag::with_block_capacity(3);
        for i in 0..17 {
            bag.push(ptr(i));
        }
        assert_eq!(bag.drain().count(), 17);
        assert!(bag.is_empty());
    }

    #[test]
    fn take_full_blocks_moves_blocks_whole_not_per_record() {
        // The paper's `pool->moveFullBlocks(bag)` contract: a full block travels as one
        // object, so the per-record reclamation cost stays O(1).  Verify structurally that
        // the *same* block allocations leave the bag (pointer identity), with their
        // entries untouched and in push order — i.e. no per-record iteration, copying or
        // re-bagging happened on the hot path.
        let mut bag: BlockBag<u64> = BlockBag::with_block_capacity(4);
        for i in 0..13 {
            bag.push(ptr(i));
        }
        // Identity and contents of the full blocks while still inside the bag.
        let full_before: Vec<(*const Block<u64>, Vec<NonNull<u64>>)> = bag
            .blocks
            .iter()
            .filter(|b| b.is_full())
            .map(|b| (&**b as *const Block<u64>, b.entries().to_vec()))
            .collect();
        assert_eq!(full_before.len(), 3);

        let taken = bag.take_full_blocks();
        let taken_identity: Vec<*const Block<u64>> =
            taken.iter().map(|b| &**b as *const Block<u64>).collect();
        for (addr, entries) in &full_before {
            let pos = taken_identity
                .iter()
                .position(|t| t == addr)
                .expect("every full block must move out as the same allocation");
            assert_eq!(
                taken[pos].entries(),
                &entries[..],
                "a moved block's records must be untouched and in push order"
            );
        }

        // Re-inserting a full block is likewise a whole-block O(1) splice: the same
        // allocation ends up inside the destination bag, below its head block.
        let mut dst: BlockBag<u64> = BlockBag::with_block_capacity(4);
        dst.push(ptr(100));
        let moved = taken.into_iter().next().unwrap();
        let moved_addr = &*moved as *const Block<u64>;
        dst.push_block(moved);
        assert_eq!(dst.len(), 5);
        assert!(
            dst.blocks.iter().any(|b| std::ptr::eq(&**b, moved_addr)),
            "push_block of a full block must splice the same allocation into the bag"
        );
    }

    #[test]
    fn spare_blocks_are_reused() {
        let mut bag: BlockBag<u64> = BlockBag::with_block_capacity(2);
        // Fill and empty the bag repeatedly; the spare list keeps block allocations bounded.
        for _round in 0..10 {
            for i in 0..20 {
                bag.push(ptr(i));
            }
            while bag.pop().is_some() {}
        }
        assert!(bag.spare.len() <= MAX_SPARE_BLOCKS);
        assert!(bag.is_empty());
    }
}

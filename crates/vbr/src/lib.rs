//! Version-based reclamation (VBR): announcement-free optimistic reads over a
//! type-stable page pool.
//!
//! Every scheme in this repo so far pays a *store* on the read path: EBR-family
//! schemes publish an epoch announcement per operation, hazard-pointer-family
//! schemes publish a per-record reservation per step, and IBR publishes an era
//! interval.  VBR pays none.  A reader begins an operation by *loading* the
//! global version clock into a private, thread-local `op_version` — no shared
//! store, no fence — and thereafter validates instead of announcing:
//!
//! * **Clock.**  A single global version counter ([`Vbr::current_version`]),
//!   advanced by retiring threads (every [`VbrConfig::epoch_freq`] retires) and
//!   time-throttled ([`VbrConfig::min_tick_nanos`]) so validation failures are
//!   bounded in frequency, not just in count.
//! * **Birth versions.**  [`ReclaimerThread::record_allocated`] stamps each
//!   record's birth version into a hashed side table
//!   ([`Vbr::birth_version`]).  A checkpoint that observes a clock tick
//!   distrusts any record born after its snapshot.
//! * **Retire versions.**  [`ReclaimerThread::retire`] tags the record with the
//!   current clock value and parks it in a version-keyed limbo batch.  A batch
//!   retired at version `r` is handed to the sink only once the clock reaches
//!   `r + 2`: every reader that could still reach the record (snapshot `v <= r`)
//!   has become stale by then, and stale readers fail their next checkpoint.
//! * **Checkpoints.**  [`ReclaimerThread::check`] and
//!   [`ReclaimerThread::protect`] compare the clock against `op_version`.  Same
//!   version: nothing was retired-and-recycled since the snapshot, the read is
//!   trivially consistent and costs one shared load.  One tick elapsed: the
//!   link word is re-validated and the record's birth version is required to
//!   not postdate the snapshot.  Two ticks: the reader is *stale* — `protect`
//!   refuses and `check` returns [`Neutralized`], which the guard layer turns
//!   into a typed [`Restart`](debra::Restart); the operation re-pins with a
//!   fresh snapshot and retries.
//!
//! # Why this needs a type-stable allocator
//!
//! Between two checkpoints a stale reader may dereference a record that has
//! already been recycled.  That is *machine-safe* only because recycling under
//! VBR returns the slot to a never-unmapping, never-re-typing page pool
//! ([`smr-pagepool`]): the load hits valid memory of the right type and the
//! next checkpoint discards the operation before the stale value can be acted
//! on.  The scheme therefore declares
//! [`AllocatorRequirement::TypeStable`] and [`RecordManager`] registration
//! panics for any allocator without [`Allocator::TYPE_STABLE`].  (Full VBR as
//! published by Sheffi, Herlihy and Petrank closes the remaining
//! checkpoint-to-CAS window with versioned wide CAS on every link; this
//! reproduction keeps the paper's record-manager API — plain word-sized links —
//! and instead bounds the window by time-throttling the clock, documents it,
//! and lets the sanitizer's validation-aware shadow model audit it.)
//!
//! [`smr-pagepool`]: ../smr_pagepool/index.html
//! [`AllocatorRequirement::TypeStable`]: debra::AllocatorRequirement
//! [`Allocator::TYPE_STABLE`]: debra::Allocator::TYPE_STABLE
//! [`RecordManager`]: debra::RecordManager
//! [`Neutralized`]: neutralize::Neutralized

use std::collections::VecDeque;
use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam_utils::CachePadded;
use debra::{
    AllocatorRequirement, CodeModifications, ReadProtection, ReclaimSink, Reclaimer,
    ReclaimerStats, ReclaimerThread, RegistrationError, SchemeProperties, Termination,
    ThreadStatsSlot, TimingAssumptions,
};
use neutralize::Neutralized;

/// Tuning knobs for [`Vbr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VbrConfig {
    /// Attempt a clock tick every this many retires on a thread (and on every
    /// operation start while the thread has limbo batches waiting for the clock).
    pub epoch_freq: usize,
    /// Minimum nanoseconds between clock ticks.  The throttle bounds how often a
    /// long-running reader can be forced to restart: going stale takes two ticks,
    /// i.e. at least `2 * min_tick_nanos` of wall-clock time.  `0` disables the
    /// throttle (used by tests for determinism).
    pub min_tick_nanos: u64,
    /// log2 of the birth-version side table size.  Cells are hashed by record
    /// address; collisions are conservative (a cell holds the max birth version
    /// of the records mapping to it, so a collision can only cause a spurious
    /// restart, never a missed one).
    pub birth_table_bits: u32,
    /// The clock value threads start from.  Version 0 is reserved as "born
    /// before any operation", so the clock starts at 1.
    pub initial_version: u64,
    /// Probe the time throttle (a `clock_gettime` call) only every this many
    /// pins while limbo is waiting.  Keeps the per-operation pin at one shared
    /// load on the common path; at default op rates the probe still fires many
    /// times per `min_tick_nanos` window, so reclamation latency is unchanged.
    pub pin_probe_period: u32,
}

impl Default for VbrConfig {
    fn default() -> Self {
        VbrConfig {
            epoch_freq: 32,
            min_tick_nanos: 100_000, // 100µs: stale restarts need >= 200µs of delay
            birth_table_bits: 14,    // 16384 cells * 8B = 128KiB
            initial_version: 1,
            pin_probe_period: 64,
        }
    }
}

impl VbrConfig {
    /// A deterministic configuration for tests: every retire attempts a tick,
    /// every pin probes, and the throttle is off, so the clock is driven purely
    /// by retire counts and explicit [`Vbr::advance_version`] calls.
    pub fn tiny() -> Self {
        VbrConfig { epoch_freq: 1, min_tick_nanos: 0, pin_probe_period: 1, ..VbrConfig::default() }
    }
}

/// One version-keyed batch of retired records.
struct Batch<T> {
    /// Clock value at retire time; the batch is reclaimable once the clock
    /// reaches `version + 2`.
    version: u64,
    records: Vec<NonNull<T>>,
}

/// Shared state of the VBR scheme: the global version clock, the birth-version
/// side table, and per-thread bookkeeping.
pub struct Vbr<T> {
    /// The global version clock.  Monotonic; saturates at `u64::MAX` (at which
    /// point reclamation of new garbage stops but safety is preserved, mirroring
    /// IBR's era saturation).
    clock: CachePadded<AtomicU64>,
    /// Hashed birth-version table; see [`VbrConfig::birth_table_bits`].
    births: Box<[AtomicU64]>,
    /// Throttle state: nanoseconds (since `tick_origin`) of the last clock tick.
    last_tick_nanos: CachePadded<AtomicU64>,
    tick_origin: Instant,
    stats: Box<[CachePadded<ThreadStatsSlot>]>,
    registered: Box<[AtomicBool]>,
    /// Limbo batches handed back by exiting threads; adopted by `drain_orphans`.
    orphans: Mutex<Vec<NonNull<T>>>,
    config: VbrConfig,
    max_threads: usize,
}

impl<T> Vbr<T> {
    /// Current value of the global version clock.
    pub fn current_version(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Forces a clock tick, bypassing the retire-count and time throttles.
    /// Exposed for tests (deterministic staleness) and the sanitizer harness.
    pub fn advance_version(&self) -> u64 {
        let cur = self.clock.load(Ordering::SeqCst);
        if cur == u64::MAX {
            return cur;
        }
        match self.clock.compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => cur + 1,
            Err(now) => now,
        }
    }

    /// The stamped birth version of `record`'s address cell (an upper bound on
    /// the true birth version under hash collisions; `0` if nothing mapping to
    /// the cell was ever allocated).
    pub fn birth_version(&self, record: NonNull<T>) -> u64 {
        self.births[self.birth_index(record)].load(Ordering::Acquire)
    }

    fn birth_index(&self, record: NonNull<T>) -> usize {
        // Fibonacci hash of the slot address (records in a page pool share
        // alignment, so drop the low bits first).
        let addr = record.as_ptr() as usize as u64 >> 3;
        let h = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.config.birth_table_bits)) as usize
    }

    /// Attempts one clock tick, subject to the time throttle.  Returns `true`
    /// if this call advanced the clock.
    fn try_tick(&self, tid: usize) -> bool {
        if self.config.min_tick_nanos > 0 {
            let now = self.tick_origin.elapsed().as_nanos() as u64;
            let last = self.last_tick_nanos.load(Ordering::Relaxed);
            if now.saturating_sub(last) < self.config.min_tick_nanos {
                return false;
            }
            if self
                .last_tick_nanos
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                return false; // another thread owns this throttle window
            }
        }
        let cur = self.clock.load(Ordering::SeqCst);
        if cur == u64::MAX {
            return false;
        }
        let advanced =
            self.clock.compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst).is_ok();
        if advanced {
            self.stats[tid].epochs_advanced.fetch_add(1, Ordering::Relaxed);
        }
        advanced
    }

    /// Hands back records stranded in the orphan list by exited threads.
    /// Caller takes ownership; records are already past their grace period or
    /// the pool is being torn down.
    pub fn drain_orphans(&self) -> Vec<NonNull<T>> {
        std::mem::take(&mut *self.orphans.lock().unwrap())
    }
}

// SAFETY: the shared state is all atomics, a mutex, and immutable configuration;
// the raw record pointers in `orphans` are owned retired records (no aliasing
// mutable access) and `T: Send` lets them migrate threads.
unsafe impl<T: Send> Send for Vbr<T> {}
unsafe impl<T: Send> Sync for Vbr<T> {}

impl<T: Send + 'static> Reclaimer<T> for Vbr<T> {
    type Thread = VbrThread<T>;

    // Stale readers dereference recycled slots between checkpoints; only a
    // never-unmapping, never-re-typing allocator makes that machine-safe.
    const ALLOCATOR_REQUIREMENT: AllocatorRequirement = AllocatorRequirement::TypeStable;

    fn new(max_threads: usize) -> Self {
        Self::with_config(max_threads, VbrConfig::default())
    }

    fn register(this: &Arc<Self>, tid: usize) -> Result<Self::Thread, RegistrationError> {
        if tid >= this.max_threads {
            return Err(RegistrationError::ThreadIdOutOfRange {
                tid,
                max_threads: this.max_threads,
            });
        }
        if this.registered[tid]
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Err(RegistrationError::AlreadyRegistered { tid });
        }
        Ok(VbrThread {
            global: Arc::clone(this),
            tid,
            op_version: this.config.initial_version,
            quiescent: true,
            limbo: VecDeque::new(),
            limbo_len: 0,
            retires_since_tick: 0,
            pins_since_probe: 0,
            ops_pending: 0,
        })
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    fn name() -> &'static str {
        "VBR"
    }

    fn properties() -> SchemeProperties {
        SchemeProperties {
            name: "VBR",
            code_modifications: CodeModifications {
                per_accessed_record: false, // no per-record announcements: the win
                per_operation: true,        // one clock load into a private snapshot
                per_retired_record: true,   // version tag + limbo batching
                other: "requires a type-stable allocator; stale readers restart (typed Restart)",
            },
            timing_assumptions: TimingAssumptions::None,
            fault_tolerant: true, // a crashed reader publishes nothing, blocks nothing
            termination: Termination::WaitFree,
            can_traverse_retired_to_retired: true,
        }
    }

    fn stats(&self) -> ReclaimerStats {
        let mut agg = ReclaimerStats::default();
        for s in self.stats.iter() {
            s.snapshot_into(&mut agg);
        }
        agg
    }
}

impl<T: Send + 'static> Vbr<T> {
    /// Creates the shared state with an explicit configuration.
    pub fn with_config(max_threads: usize, config: VbrConfig) -> Self {
        assert!(max_threads > 0);
        assert!(config.epoch_freq > 0, "epoch_freq must be positive");
        assert!(config.pin_probe_period > 0, "pin_probe_period must be positive");
        assert!((1..=24).contains(&config.birth_table_bits), "birth_table_bits out of range");
        Vbr {
            clock: CachePadded::new(AtomicU64::new(config.initial_version)),
            births: (0..1usize << config.birth_table_bits).map(|_| AtomicU64::new(0)).collect(),
            last_tick_nanos: CachePadded::new(AtomicU64::new(0)),
            tick_origin: Instant::now(),
            stats: (0..max_threads).map(|_| CachePadded::new(ThreadStatsSlot::default())).collect(),
            registered: (0..max_threads).map(|_| AtomicBool::new(false)).collect(),
            orphans: Mutex::new(Vec::new()),
            config,
            max_threads,
        }
    }
}

impl<T> fmt::Debug for Vbr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vbr")
            .field("clock", &self.clock.load(Ordering::Relaxed))
            .field("max_threads", &self.max_threads)
            .field("config", &self.config)
            .finish()
    }
}

/// Per-thread handle of [`Vbr`].
pub struct VbrThread<T> {
    global: Arc<Vbr<T>>,
    tid: usize,
    /// Private snapshot of the clock, taken at `leave_qstate`.  Never published.
    op_version: u64,
    quiescent: bool,
    /// Version-keyed limbo batches, oldest first.  A batch is reclaimable when
    /// `clock - batch.version >= 2`.
    limbo: VecDeque<Batch<T>>,
    limbo_len: usize,
    retires_since_tick: usize,
    /// Pins since the last time-throttle probe; see [`VbrConfig::pin_probe_period`].
    pins_since_probe: u32,
    /// Locally batched operation count, flushed to the shared stats slot every
    /// [`OPS_FLUSH_PERIOD`] pins and on drop — an RMW on the shared slot every
    /// pin would put back the kind of per-operation shared write this scheme
    /// exists to avoid.
    ops_pending: u64,
}

/// Flush period for the locally batched operation counter.
const OPS_FLUSH_PERIOD: u64 = 64;

impl<T> VbrThread<T> {
    /// The clock snapshot the current operation is running against.
    pub fn op_version(&self) -> u64 {
        self.op_version
    }

    fn stats(&self) -> &ThreadStatsSlot {
        &self.global.stats[self.tid]
    }

    /// `clock - op_version`: 0 = fresh, 1 = validate, >= 2 = stale.  The clock
    /// is monotonic and `op_version` was loaded from it, so plain subtraction
    /// cannot underflow — and saturation at `u64::MAX` falls out naturally
    /// (a reader pinned at `MAX` or `MAX - 1` can never see age >= 2, matching
    /// the fact that batches retired at `MAX - 1` or later are never recycled).
    fn age(&self, clock: u64) -> u64 {
        clock - self.op_version
    }

    /// `clock` is a value of the global clock the caller already loaded; a
    /// slightly stale value only delays a batch to the next drain, never frees
    /// one early (the clock is monotonic).
    fn drain_reclaimable<S: ReclaimSink<T>>(&mut self, clock: u64, sink: &mut S) {
        let mut reclaimed = 0u64;
        while let Some(front) = self.limbo.front() {
            if clock - front.version < 2 {
                break;
            }
            let batch = self.limbo.pop_front().expect("front() was Some");
            self.limbo_len -= batch.records.len();
            reclaimed += batch.records.len() as u64;
            // The batch was retired at `batch.version` and the clock has since
            // advanced by >= 2, so every thread whose snapshot could reach these
            // records is stale and will be refused at its next checkpoint before
            // trusting any value read from them.
            for record in batch.records {
                sink.accept(record);
            }
        }
        if reclaimed > 0 {
            let stats = self.stats();
            stats.reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
            stats.publish_limbo(self.limbo_len as u64, std::mem::size_of::<T>() as u64);
        }
    }
}

impl<T: Send + 'static> ReclaimerThread<T> for VbrThread<T> {
    // Reads are neither announced nor covered by a pin: they are validated at
    // checkpoints against the version clock, and stale readers restart.
    const READ_PROTECTION: ReadProtection = ReadProtection::Validate;

    fn tid(&self) -> usize {
        self.tid
    }

    fn leave_qstate<S: ReclaimSink<T>>(&mut self, sink: &mut S) -> bool {
        self.quiescent = false;
        self.ops_pending += 1;
        if self.ops_pending >= OPS_FLUSH_PERIOD {
            self.stats().operations.fetch_add(self.ops_pending, Ordering::Relaxed);
            self.ops_pending = 0;
        }
        let mut v = self.global.clock.load(Ordering::SeqCst);
        if !self.limbo.is_empty() {
            // Retire-driven ticking starves a thread that retired a few records
            // and then went read-only; nudge the clock from the operation path
            // while this thread still has limbo waiting on it.  Probing the time
            // throttle costs a `clock_gettime`, so only every
            // `pin_probe_period`-th pin pays it — at per-op rates far above
            // `min_tick_nanos` the probe still lands many times per window.
            self.pins_since_probe += 1;
            if self.pins_since_probe >= self.global.config.pin_probe_period {
                self.pins_since_probe = 0;
                if self.global.try_tick(self.tid) {
                    v = self.global.clock.load(Ordering::SeqCst);
                }
            }
            if self.limbo.front().is_some_and(|front| v - front.version >= 2) {
                self.drain_reclaimable(v, sink);
            }
        }
        let changed = v != self.op_version;
        self.op_version = v;
        changed
    }

    fn enter_qstate(&mut self) {
        self.quiescent = true;
    }

    fn is_quiescent(&self) -> bool {
        self.quiescent
    }

    fn record_allocated(&mut self, record: NonNull<T>) {
        // Stamp the birth version.  `fetch_max` keeps hash collisions
        // conservative: the cell can only over-approximate a record's birth,
        // which can only cause a spurious restart.
        let clock = self.global.clock.load(Ordering::SeqCst);
        self.global.births[self.global.birth_index(record)].fetch_max(clock, Ordering::AcqRel);
    }

    unsafe fn retire<S: ReclaimSink<T>>(&mut self, record: NonNull<T>, sink: &mut S) {
        debug_assert!(!self.quiescent, "retire requires a non-quiescent thread");
        let mut clock = self.global.clock.load(Ordering::SeqCst);
        match self.limbo.back_mut() {
            Some(batch) if batch.version == clock => batch.records.push(record),
            _ => self.limbo.push_back(Batch { version: clock, records: vec![record] }),
        }
        self.limbo_len += 1;
        let stats = self.stats();
        stats.retired.fetch_add(1, Ordering::Relaxed);
        stats.publish_limbo(self.limbo_len as u64, std::mem::size_of::<T>() as u64);
        self.retires_since_tick += 1;
        if self.retires_since_tick >= self.global.config.epoch_freq {
            self.retires_since_tick = 0;
            if self.global.try_tick(self.tid) {
                clock = self.global.clock.load(Ordering::SeqCst);
            }
        }
        if self.limbo.front().is_some_and(|front| clock - front.version >= 2) {
            self.drain_reclaimable(clock, sink);
        }
    }

    fn protect<F: FnMut() -> bool>(
        &mut self,
        _slot: usize,
        record: NonNull<T>,
        validate: F,
    ) -> bool {
        let clock = self.global.clock.load(Ordering::Acquire);
        if self.age(clock) == 0 {
            // Fast path — the overwhelmingly common one with a throttled clock:
            // no tick since the snapshot means nothing retired after the
            // snapshot has been recycled, so any record this operation can
            // reach is intact.  One shared load, no store, no validate call.
            // The non-zero tail is outlined so traversal loops inline only
            // this load-compare-branch (the tail would otherwise widen every
            // protect site by the validate closure and the stats bump).
            return true;
        }
        self.protect_cold(clock, record, validate)
    }

    fn check(&self) -> Result<(), Neutralized> {
        if self.age(self.global.clock.load(Ordering::Acquire)) >= 2 {
            self.check_cold();
            return Err(Neutralized);
        }
        Ok(())
    }
}

impl<T: Send + 'static> VbrThread<T> {
    /// The non-fresh tail of [`ReclaimerThread::protect`], kept out of the
    /// inlined hot path.  `clock` is the value the fast path already loaded.
    #[cold]
    #[inline(never)]
    fn protect_cold<F: FnMut() -> bool>(
        &mut self,
        clock: u64,
        record: NonNull<T>,
        mut validate: F,
    ) -> bool {
        if self.age(clock) >= 2 {
            // Stale: some batch retired after our snapshot may already be
            // recycled.  Refuse; the guard layer converts this into a typed
            // Restart and the operation re-pins.
            self.stats().epoch_stalls.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // Exactly one tick elapsed.  Nothing is recycled yet (that takes two),
        // but re-establish consistency before the window can close mid-read:
        // the link word must still lead here, the record must not have been
        // born after our snapshot (a recycled slot re-allocated since), and
        // the clock must still be within the window after both checks.
        validate()
            && self.global.birth_version(record) <= self.op_version
            && self.age(self.global.clock.load(Ordering::Acquire)) < 2
    }

    /// Stats bump for a failed [`ReclaimerThread::check`], outlined like
    /// [`Self::protect_cold`].
    #[cold]
    #[inline(never)]
    fn check_cold(&self) {
        self.stats().epoch_stalls.fetch_add(1, Ordering::Relaxed);
    }
}

impl<T> Drop for VbrThread<T> {
    fn drop(&mut self) {
        if self.ops_pending > 0 {
            self.stats().operations.fetch_add(self.ops_pending, Ordering::Relaxed);
            self.ops_pending = 0;
        }
        // Hand unreclaimed limbo to the global orphan list (the pool adopts it
        // at teardown) and free the registration slot.
        let mut leftover: Vec<NonNull<T>> = Vec::with_capacity(self.limbo_len);
        for batch in self.limbo.drain(..) {
            leftover.extend(batch.records);
        }
        if !leftover.is_empty() {
            self.global.orphans.lock().unwrap().extend(leftover);
        }
        self.stats().publish_limbo(0, std::mem::size_of::<T>() as u64);
        self.global.registered[self.tid].store(false, Ordering::SeqCst);
    }
}

impl<T> fmt::Debug for VbrThread<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VbrThread")
            .field("tid", &self.tid)
            .field("op_version", &self.op_version)
            .field("limbo_len", &self.limbo_len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::CountingSink;

    fn leak(v: u64) -> NonNull<u64> {
        NonNull::from(Box::leak(Box::new(v)))
    }

    /// A sink that frees what it accepts (test records come from `Box::leak`).
    #[derive(Default)]
    struct FreeingSink {
        accepted: usize,
    }
    impl ReclaimSink<u64> for FreeingSink {
        fn accept(&mut self, record: NonNull<u64>) {
            self.accepted += 1;
            drop(unsafe { Box::from_raw(record.as_ptr()) });
        }
    }

    fn vbr(threads: usize) -> Arc<Vbr<u64>> {
        Arc::new(Vbr::with_config(threads, VbrConfig::tiny()))
    }

    fn free_orphans(v: &Vbr<u64>) {
        for r in v.drain_orphans() {
            drop(unsafe { Box::from_raw(r.as_ptr()) });
        }
    }

    #[test]
    fn reclaims_after_two_ticks() {
        let v = vbr(1);
        let mut t = Vbr::register(&v, 0).unwrap();
        let mut sink = FreeingSink::default();
        let _ = t.leave_qstate(&mut sink);
        let r = leak(1);
        unsafe { t.retire(r, &mut sink) }; // epoch_freq=1: the retire itself ticks once
        assert_eq!(sink.accepted, 0, "one tick is not enough");
        v.advance_version();
        t.enter_qstate();
        let _ = t.leave_qstate(&mut sink);
        assert_eq!(sink.accepted, 1, "clock reached retire version + 2");
        let stats = v.stats();
        assert_eq!(stats.retired, 1);
        assert_eq!(stats.reclaimed, 1);
        assert_eq!(stats.pending, 0);
    }

    #[test]
    fn stale_reader_fails_checkpoints() {
        let v = vbr(1);
        let mut t = Vbr::register(&v, 0).unwrap();
        let mut sink = CountingSink::default();
        let _ = t.leave_qstate(&mut sink);
        let r = leak(7);
        assert!(t.check().is_ok());
        assert!(t.protect(0, r, || true), "fresh snapshot: fast path");
        v.advance_version();
        // One tick: protect falls back to validation, check still passes.
        assert!(t.check().is_ok());
        assert!(t.protect(0, r, || true), "one tick: validated read passes");
        assert!(!t.protect(0, r, || false), "one tick: failed link validation refuses");
        v.advance_version();
        // Two ticks: stale, every checkpoint refuses.
        assert!(t.check().is_err(), "stale reader is neutralized at check()");
        assert!(!t.protect(0, r, || true), "stale reader cannot protect");
        assert!(v.stats().epoch_stalls >= 2);
        // Re-pinning clears staleness.
        t.enter_qstate();
        let _ = t.leave_qstate(&mut sink);
        assert!(t.check().is_ok());
        assert!(t.protect(0, r, || true));
        drop(unsafe { Box::from_raw(r.as_ptr()) });
    }

    #[test]
    fn one_tick_rejects_records_born_after_snapshot() {
        let v = vbr(1);
        let mut t = Vbr::register(&v, 0).unwrap();
        let mut sink = CountingSink::default();
        let _ = t.leave_qstate(&mut sink);
        let pinned_at = t.op_version();
        v.advance_version();
        let fresh = leak(9);
        t.record_allocated(fresh); // born at pinned_at + 1
        assert!(v.birth_version(fresh) > pinned_at);
        assert!(
            !t.protect(0, fresh, || true),
            "a record born after the snapshot is distrusted on the validate path"
        );
        drop(unsafe { Box::from_raw(fresh.as_ptr()) });
    }

    #[test]
    fn birth_versions_are_monotone_per_slot() {
        let v = vbr(1);
        let mut t = Vbr::register(&v, 0).unwrap();
        let mut sink = CountingSink::default();
        let _ = t.leave_qstate(&mut sink);
        let r = leak(3);
        t.record_allocated(r);
        let first = v.birth_version(r);
        assert!(first >= 1);
        v.advance_version();
        v.advance_version();
        // Same slot "re-allocated" later must carry a later (or equal) birth.
        t.record_allocated(r);
        let second = v.birth_version(r);
        assert!(second > first, "rebirth advances the birth version ({first} -> {second})");
        // Birth precedes retire version.
        unsafe { t.retire(r, &mut sink) };
        assert!(second <= v.current_version());
    }

    #[test]
    fn retire_batches_are_keyed_by_version() {
        // Throttle out every autonomous tick so `advance_version` alone drives
        // the clock and the drain points are deterministic.
        let v: Arc<Vbr<u64>> = Arc::new(Vbr::with_config(
            1,
            VbrConfig { epoch_freq: 1000, min_tick_nanos: u64::MAX / 4, ..VbrConfig::default() },
        ));
        let mut t = Vbr::register(&v, 0).unwrap();
        let mut sink = FreeingSink::default();
        let _ = t.leave_qstate(&mut sink);
        unsafe { t.retire(leak(1), &mut sink) };
        unsafe { t.retire(leak(2), &mut sink) }; // same version: same batch
        v.advance_version();
        unsafe { t.retire(leak(3), &mut sink) }; // new version: new batch
        assert_eq!(t.limbo.len(), 2, "two version-keyed batches");
        v.advance_version();
        t.enter_qstate();
        let _ = t.leave_qstate(&mut sink);
        assert_eq!(sink.accepted, 2, "only the first batch is two ticks old");
        v.advance_version();
        t.enter_qstate();
        let _ = t.leave_qstate(&mut sink);
        assert_eq!(sink.accepted, 3);
    }

    #[test]
    fn clock_saturates_and_stops_reclaiming_new_garbage() {
        let v: Arc<Vbr<u64>> = Arc::new(Vbr::with_config(
            1,
            VbrConfig { initial_version: u64::MAX - 1, ..VbrConfig::tiny() },
        ));
        let mut t = Vbr::register(&v, 0).unwrap();
        let mut sink = CountingSink::default();
        assert_eq!(v.advance_version(), u64::MAX);
        assert_eq!(v.advance_version(), u64::MAX, "clock saturates");
        let _ = t.leave_qstate(&mut sink);
        let r = leak(4);
        unsafe { t.retire(r, &mut sink) };
        t.enter_qstate();
        let _ = t.leave_qstate(&mut sink);
        assert_eq!(sink.accepted, 0, "garbage retired at MAX is never recycled");
        assert!(t.check().is_ok(), "a reader pinned at MAX can never go stale");
        drop(t);
        free_orphans(&v);
    }

    #[test]
    fn time_throttle_bounds_tick_rate() {
        let v: Arc<Vbr<u64>> = Arc::new(Vbr::with_config(
            1,
            VbrConfig { epoch_freq: 1, min_tick_nanos: u64::MAX / 4, ..VbrConfig::default() },
        ));
        let mut t = Vbr::register(&v, 0).unwrap();
        let mut sink = CountingSink::default();
        let start = v.current_version();
        let _ = t.leave_qstate(&mut sink);
        for i in 0..64 {
            unsafe { t.retire(leak(i), &mut sink) };
        }
        assert_eq!(v.current_version(), start, "throttle held the clock still");
        drop(t);
        free_orphans(&v);
    }

    #[test]
    fn concurrent_retirers_keep_clock_monotone() {
        let v: Arc<Vbr<u64>> = Arc::new(Vbr::with_config(4, VbrConfig::tiny()));
        let start = v.current_version();
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let v = Arc::clone(&v);
                std::thread::spawn(move || {
                    let mut t = Vbr::register(&v, tid).unwrap();
                    let mut sink = FreeingSink::default();
                    let mut last = v.current_version();
                    for i in 0..500u64 {
                        let _ = t.leave_qstate(&mut sink);
                        unsafe { t.retire(leak(i), &mut sink) };
                        let now = v.current_version();
                        assert!(now >= last, "clock went backwards: {last} -> {now}");
                        last = now;
                        t.enter_qstate();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(v.current_version() > start);
        free_orphans(&v);
        let stats = v.stats();
        assert_eq!(stats.retired, 2000);
        assert!(stats.epochs_advanced > 0);
    }

    #[test]
    fn registration_lifecycle_and_properties() {
        let v = vbr(2);
        let t0 = Vbr::register(&v, 0).unwrap();
        assert!(matches!(
            Vbr::register(&v, 0),
            Err(RegistrationError::AlreadyRegistered { tid: 0 })
        ));
        assert!(matches!(
            Vbr::register(&v, 9),
            Err(RegistrationError::ThreadIdOutOfRange { tid: 9, .. })
        ));
        drop(t0);
        assert!(Vbr::register(&v, 0).is_ok());

        let p = <Vbr<u64> as Reclaimer<u64>>::properties();
        assert!(!p.code_modifications.per_accessed_record, "announcement-free reads");
        assert!(p.fault_tolerant);
        assert!(matches!(
            <Vbr<u64> as Reclaimer<u64>>::ALLOCATOR_REQUIREMENT,
            AllocatorRequirement::TypeStable
        ));
        assert!(matches!(
            <VbrThread<u64> as ReclaimerThread<u64>>::READ_PROTECTION,
            ReadProtection::Validate
        ));
        const {
            assert!(!<VbrThread<u64> as ReclaimerThread<u64>>::SUPPORTS_UNPROTECTED_TRAVERSAL);
        }
    }

    #[test]
    fn orphans_are_handed_back_on_thread_exit() {
        let v: Arc<Vbr<u64>> = Arc::new(Vbr::with_config(
            1,
            VbrConfig { epoch_freq: 1000, min_tick_nanos: 0, ..VbrConfig::default() },
        ));
        let mut t = Vbr::register(&v, 0).unwrap();
        let mut sink = CountingSink::default();
        let _ = t.leave_qstate(&mut sink);
        for i in 0..5 {
            unsafe { t.retire(leak(i), &mut sink) };
        }
        drop(t);
        let orphans = v.drain_orphans();
        assert_eq!(orphans.len(), 5, "unreclaimed limbo is orphaned, not leaked");
        for r in orphans {
            drop(unsafe { Box::from_raw(r.as_ptr()) });
        }
        assert_eq!(v.stats().pending, 0, "limbo gauge cleared on exit");
    }
}

//! Interval-based reclamation (IBR) for the Record Manager trait family.
//!
//! This crate implements a 2GEIBR-style scheme in the spirit of Wen, Izraelevitz, Wang,
//! Jones & Scott, *"Interval-Based Memory Reclamation"* (PPoPP 2018) — the tagged-epoch
//! family that also underlies VBR (Sheffi, Herlihy & Petrank, 2021) and Cohen's robust
//! reclamation line — adapted to the [`Reclaimer`]/[`ReclaimerThread`] traits of the
//! `debra` crate so it can be swapped into any data structure by changing one type
//! parameter:
//!
//! * A **global era clock** advances every [`IbrConfig::era_freq`] allocations/retirements.
//! * Every record carries a **birth era** (tagged on allocation, via the Record Manager's
//!   [`record_allocated`](ReclaimerThread::record_allocated) hook) and a **retire era**
//!   (tagged on [`retire`](ReclaimerThread::retire)); together they form the record's
//!   *lifetime interval* `[birth, retire]`.
//! * Every thread publishes a **reservation interval** `[lower, upper]`:
//!   [`leave_qstate`](ReclaimerThread::leave_qstate) sets both bounds to the current era,
//!   and each [`check`](ReclaimerThread::check) / [`protect`](ReclaimerThread::protect)
//!   checkpoint extends `upper` to the era observed there.
//! * A retired record is handed to the [`ReclaimSink`] only when its lifetime interval is
//!   **disjoint from every active reservation** — the 2GEIBR test.  Retired records wait
//!   in a `blockbag` limbo bag; the scan uses
//!   `partition_and_take_full_blocks` so whole blocks of freeable records move to the pool
//!   in O(1) per block, exactly like DEBRA+'s filtered rotation.
//!
//! The decisive property over plain EBR/DEBRA: a **stalled thread only pins records whose
//! lifetime overlaps its reservation**.  Records born after the straggler's reservation
//! are reclaimed immediately, so garbage stays bounded under stalls *without* the OS
//! signals DEBRA+ needs (fault tolerance by interval arithmetic rather than
//! neutralization).
//!
//! # Why `check()` is the read checkpoint
//!
//! The data structures in `lockfree-ds` call [`check`](ReclaimerThread::check) before
//! every shared-record dereference (that is the DEBRA+ checkpoint discipline).  IBR
//! piggybacks on exactly those checkpoints to extend the reservation's upper bound, which
//! is the per-read tag update the IBR papers require ("per accessed record" in the
//! Figure 2 taxonomy) — no additional data structure modifications are needed beyond what
//! DEBRA+ already demanded.
//!
//! # Safety argument (sketch)
//!
//! A thread `T` can only dereference a record `R` it reached from a data structure entry
//! point during its current operation, and the structures announce each such step through
//! [`protect`](ReclaimerThread::protect) with a link-revalidation closure.  IBR's
//! `protect` is the 2GEIBR *validating read*: it publishes `upper ≥ era`, re-validates
//! the link, and retries unless the era was stable across the validation.  A successful
//! protect at stable era `e` therefore proves `R` was still linked — hence unretired —
//! at a moment when `T`'s published reservation already covered every birth era up to
//! `e ≥ birth(R)`.  Retirement happens strictly after unlinking, so `retire(R) ≥ e ≥
//! T.lower`.  Hence `[birth, retire]` intersects `[T.lower, T.upper]` from before `R`
//! could be freed until `T`'s operation ends, and the scan will not free it.  (Torn reads
//! of a reservation being *opened* are benign: a record freed during that window was
//! already unlinked, so the opening thread cannot reach it; reads of a reservation being
//! *closed* only make the scan more conservative.)
//!
//! # Era wraparound
//!
//! Eras are 64-bit and advance at most once per `era_freq` record operations, so physical
//! wraparound would take centuries.  Defensively, the clock **saturates** at `u64::MAX`
//! instead of wrapping: reclamation stops making progress past that point (every interval
//! then intersects every reservation) but safety is preserved.  See
//! `era_saturates_instead_of_wrapping` in the test module.
//!
//! # Implementation note: the interval side table
//!
//! Production IBR implementations embed the era tags in a per-record header.  The Record
//! Manager deliberately keeps records opaque (`T` is the data structure's node type), so
//! this implementation stores intervals in a sharded address-keyed side table.  Tagging is
//! O(1) (one shard lock, uncontended in the common case); the table is bounded by the peak
//! number of distinct record addresses because a recycled record simply overwrites its
//! entry on the next allocation.  Swapping the side table for an intrusive header is a
//! known optimization, not a semantic change.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use blockbag::BlockBag;
use crossbeam_utils::CachePadded;
use debra::{
    CodeModifications, ReclaimSink, Reclaimer, ReclaimerStats, ReclaimerThread, RegistrationError,
    SchemeProperties, Termination, ThreadStatsSlot, TimingAssumptions,
};

/// Reservation slot value meaning "no active reservation" (lower bound).
const INACTIVE_LOWER: u64 = u64::MAX;
/// Reservation slot value meaning "no active reservation" (upper bound).
const INACTIVE_UPPER: u64 = 0;

/// Number of shards in the interval side table.
const INTERVAL_SHARDS: usize = 64;

/// Configuration for [`Ibr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IbrConfig {
    /// Advance the global era once per this many allocations + retirements (per thread).
    /// Smaller values tighten the garbage bound at the cost of more clock traffic.
    pub era_freq: usize,
    /// Minimum number of records in the limbo bag before a disjointness scan runs.  The
    /// effective threshold is `max(scan_freq, 2 * block_capacity)` so that every scan can
    /// emit at least one full block, keeping the amortized scan cost O(1) per record.
    pub scan_freq: usize,
    /// Block capacity of the per-thread limbo bags.
    pub block_capacity: usize,
    /// Starting value of the global era clock (useful for wraparound tests).
    pub initial_era: u64,
}

impl Default for IbrConfig {
    fn default() -> Self {
        IbrConfig {
            era_freq: 32,
            scan_freq: 64,
            block_capacity: blockbag::DEFAULT_BLOCK_CAPACITY,
            initial_era: 1,
        }
    }
}

/// A record's lifetime interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    birth: u64,
    retire: u64,
}

/// Sharded address → lifetime-interval table (see the module docs for why intervals live
/// in a side table rather than a record header).
struct IntervalTable {
    shards: Box<[Mutex<HashMap<usize, Interval>>]>,
}

impl IntervalTable {
    fn new() -> Self {
        IntervalTable { shards: (0..INTERVAL_SHARDS).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    #[inline]
    fn shard(&self, addr: usize) -> &Mutex<HashMap<usize, Interval>> {
        // Shift out allocation-alignment zeros so consecutive records spread across shards.
        &self.shards[(addr >> 6) % INTERVAL_SHARDS]
    }

    /// Records a (re-)allocation: the record's lifetime starts now.
    fn tag_birth(&self, addr: usize, era: u64) {
        let mut shard = self.shard(addr).lock().expect("interval shard poisoned");
        shard.insert(addr, Interval { birth: era, retire: u64::MAX });
    }

    /// Records a retirement.  A record never tagged at allocation (e.g. allocated through
    /// a teardown handle) conservatively gets birth era 0.
    fn tag_retire(&self, addr: usize, era: u64) {
        let mut shard = self.shard(addr).lock().expect("interval shard poisoned");
        shard
            .entry(addr)
            .and_modify(|iv| iv.retire = era)
            .or_insert(Interval { birth: 0, retire: era });
    }

    /// The interval currently on record for `addr` (conservative default when unknown).
    fn get(&self, addr: usize) -> Interval {
        let shard = self.shard(addr).lock().expect("interval shard poisoned");
        shard.get(&addr).copied().unwrap_or(Interval { birth: 0, retire: u64::MAX })
    }
}

impl fmt::Debug for IntervalTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IntervalTable").field("shards", &INTERVAL_SHARDS).finish()
    }
}

/// One thread's published reservation interval.
#[derive(Debug)]
struct Reservation {
    lower: AtomicU64,
    upper: AtomicU64,
}

impl Reservation {
    fn inactive() -> Self {
        Reservation { lower: AtomicU64::new(INACTIVE_LOWER), upper: AtomicU64::new(INACTIVE_UPPER) }
    }
}

/// Shared (global) state of the interval-based reclaimer.
pub struct Ibr<T> {
    era: CachePadded<AtomicU64>,
    reservations: Box<[CachePadded<Reservation>]>,
    intervals: IntervalTable,
    stats: Box<[CachePadded<ThreadStatsSlot>]>,
    registered: Box<[AtomicBool]>,
    orphans: Mutex<Vec<NonNull<T>>>,
    config: IbrConfig,
    max_threads: usize,
}

impl<T: Send + 'static> Ibr<T> {
    /// Creates shared state with a custom configuration.
    pub fn with_config(max_threads: usize, config: IbrConfig) -> Self {
        assert!(max_threads > 0, "max_threads must be positive");
        assert!(config.era_freq > 0 && config.scan_freq > 0);
        Ibr {
            era: CachePadded::new(AtomicU64::new(config.initial_era)),
            reservations: (0..max_threads)
                .map(|_| CachePadded::new(Reservation::inactive()))
                .collect(),
            intervals: IntervalTable::new(),
            stats: (0..max_threads).map(|_| CachePadded::new(ThreadStatsSlot::default())).collect(),
            registered: (0..max_threads).map(|_| AtomicBool::new(false)).collect(),
            orphans: Mutex::new(Vec::new()),
            config,
            max_threads,
        }
    }

    /// Current value of the global era clock.
    pub fn current_era(&self) -> u64 {
        self.era.load(Ordering::SeqCst)
    }

    /// Advances the era clock by one, saturating at `u64::MAX` (see the module docs on
    /// wraparound).  Returns `true` if this thread's CAS moved the clock.
    fn advance_era(&self, tid: usize) -> bool {
        let current = self.era.load(Ordering::SeqCst);
        if current == u64::MAX {
            return false;
        }
        if self
            .era
            .compare_exchange(current, current + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.stats[tid].epochs_advanced.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            // Another thread advanced it; that serves the same purpose.
            false
        }
    }

    /// Snapshots every active reservation interval.
    fn snapshot_reservations(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.max_threads);
        for r in self.reservations.iter() {
            let lower = r.lower.load(Ordering::SeqCst);
            let upper = r.upper.load(Ordering::SeqCst);
            if lower <= upper {
                out.push((lower, upper));
            }
        }
        out
    }
}

impl<T: Send + 'static> Reclaimer<T> for Ibr<T> {
    type Thread = IbrThread<T>;

    fn new(max_threads: usize) -> Self {
        Self::with_config(max_threads, IbrConfig::default())
    }

    fn register(this: &Arc<Self>, tid: usize) -> Result<Self::Thread, RegistrationError> {
        if tid >= this.max_threads {
            return Err(RegistrationError::ThreadIdOutOfRange {
                tid,
                max_threads: this.max_threads,
            });
        }
        if this.registered[tid]
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Err(RegistrationError::AlreadyRegistered { tid });
        }
        this.reservations[tid].lower.store(INACTIVE_LOWER, Ordering::SeqCst);
        this.reservations[tid].upper.store(INACTIVE_UPPER, Ordering::SeqCst);
        let cap = this.config.block_capacity;
        Ok(IbrThread {
            global: Arc::clone(this),
            tid,
            limbo: BlockBag::with_block_capacity(cap),
            ops_since_advance: 0,
            scan_threshold: this.config.scan_freq.max(2 * cap),
            next_scan_at: this.config.scan_freq.max(2 * cap),
        })
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    fn name() -> &'static str {
        "IBR"
    }

    fn properties() -> SchemeProperties {
        SchemeProperties {
            name: "IBR",
            code_modifications: CodeModifications {
                per_accessed_record: true, // reservation upper bound extends per checkpoint
                per_operation: true,
                per_retired_record: true,
                other: "records carry birth/retire era tags",
            },
            timing_assumptions: TimingAssumptions::None,
            // The interval test bounds the garbage a stalled thread can pin to records
            // whose lifetime overlaps its reservation — without OS signals.
            fault_tolerant: true,
            termination: Termination::WaitFree,
            can_traverse_retired_to_retired: true,
        }
    }

    fn stats(&self) -> ReclaimerStats {
        let mut agg = ReclaimerStats::default();
        for s in self.stats.iter() {
            s.snapshot_into(&mut agg);
        }
        agg
    }

    fn drain_orphans(&self) -> Vec<NonNull<T>> {
        std::mem::take(&mut *self.orphans.lock().expect("orphans poisoned"))
    }
}

impl<T> fmt::Debug for Ibr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ibr")
            .field("era", &self.era.load(Ordering::Relaxed))
            .field("max_threads", &self.max_threads)
            .field("config", &self.config)
            .finish()
    }
}

// SAFETY: raw pointers are stored (behind a mutex) but never dereferenced here.
unsafe impl<T: Send> Send for Ibr<T> {}
unsafe impl<T: Send> Sync for Ibr<T> {}

/// Per-thread handle of [`Ibr`].
pub struct IbrThread<T: Send + 'static> {
    global: Arc<Ibr<T>>,
    tid: usize,
    limbo: BlockBag<T>,
    ops_since_advance: usize,
    /// `max(scan_freq, 2 * block_capacity)`: scans below this bag size would churn the
    /// whole bag without being able to emit a single full block.
    scan_threshold: usize,
    /// Bag size at which the next scan runs.  Re-armed after every scan to the surviving
    /// bag size plus `scan_freq`, so a scan that freed little (records pinned by an
    /// overlapping reservation) is not repeated until enough new garbage accumulated —
    /// this is what makes the scan cost amortized O(1) per retired record.
    next_scan_at: usize,
}

impl<T: Send + 'static> IbrThread<T> {
    /// The shared IBR instance this handle belongs to.
    pub fn global(&self) -> &Arc<Ibr<T>> {
        &self.global
    }

    /// Number of records currently waiting in this thread's limbo bag.
    pub fn limbo_len(&self) -> usize {
        self.limbo.len()
    }

    /// This thread's published reservation, or `None` when quiescent.
    pub fn reservation(&self) -> Option<(u64, u64)> {
        let r = &self.global.reservations[self.tid];
        let lower = r.lower.load(Ordering::SeqCst);
        let upper = r.upper.load(Ordering::SeqCst);
        (lower <= upper).then_some((lower, upper))
    }

    #[inline]
    fn extend_upper(&self) {
        let era = self.global.era.load(Ordering::SeqCst);
        let upper = &self.global.reservations[self.tid].upper;
        if upper.load(Ordering::SeqCst) < era {
            upper.store(era, Ordering::SeqCst);
        }
    }

    fn publish_pending(&self) {
        self.global.stats[self.tid]
            .publish_limbo(self.limbo.len() as u64, std::mem::size_of::<T>() as u64);
    }

    fn maybe_advance_era(&mut self) {
        self.ops_since_advance += 1;
        if self.ops_since_advance >= self.global.config.era_freq {
            self.ops_since_advance = 0;
            self.global.advance_era(self.tid);
        }
    }

    /// The 2GEIBR scan: hands every limbo record whose lifetime interval is disjoint from
    /// all active reservations to `sink`, whole blocks at a time.
    fn scan<S: ReclaimSink<T>>(&mut self, sink: &mut S) {
        let reservations = self.global.snapshot_reservations();
        let intervals = &self.global.intervals;
        let mut reclaimed = 0u64;
        for block in self.limbo.partition_and_take_full_blocks(|record| {
            let iv = intervals.get(record.as_ptr() as usize);
            reservations.iter().any(|&(lower, upper)| iv.birth <= upper && iv.retire >= lower)
        }) {
            reclaimed += block.len() as u64;
            sink.accept_block(block);
        }
        if reclaimed > 0 {
            self.global.stats[self.tid].reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
        } else if !self.limbo.is_empty() {
            // A full scan pass that freed nothing: every limbo record overlaps some
            // active reservation — IBR's version of an epoch stall.
            self.global.stats[self.tid].epoch_stalls.fetch_add(1, Ordering::Relaxed);
        }
        self.next_scan_at =
            (self.limbo.len() + self.global.config.scan_freq).max(self.scan_threshold);
        self.publish_pending();
    }
}

impl<T: Send + 'static> ReclaimerThread<T> for IbrThread<T> {
    fn tid(&self) -> usize {
        self.tid
    }

    fn leave_qstate<S: ReclaimSink<T>>(&mut self, sink: &mut S) -> bool {
        let era = self.global.era.load(Ordering::SeqCst);
        let r = &self.global.reservations[self.tid];
        // Store order is irrelevant for safety (see the module docs on torn reads of an
        // opening reservation), but both stores must precede the operation body, which
        // the SeqCst stores guarantee.
        r.upper.store(era, Ordering::SeqCst);
        r.lower.store(era, Ordering::SeqCst);
        self.global.stats[self.tid].operations.fetch_add(1, Ordering::Relaxed);
        self.maybe_advance_era();
        // Opportunistic scan so long-lived handles with little retire traffic still drain.
        if self.limbo.len() >= self.next_scan_at {
            self.scan(sink);
            true
        } else {
            false
        }
    }

    fn enter_qstate(&mut self) {
        let r = &self.global.reservations[self.tid];
        // Close the interval: lower first, so a torn read can only look *wider*, never
        // narrower, than the true reservation.
        r.lower.store(INACTIVE_LOWER, Ordering::SeqCst);
        r.upper.store(INACTIVE_UPPER, Ordering::SeqCst);
    }

    fn is_quiescent(&self) -> bool {
        let r = &self.global.reservations[self.tid];
        r.lower.load(Ordering::SeqCst) > r.upper.load(Ordering::SeqCst)
    }

    fn record_allocated(&mut self, record: NonNull<T>) {
        let era = self.global.era.load(Ordering::SeqCst);
        self.global.intervals.tag_birth(record.as_ptr() as usize, era);
        // Our own allocation must be covered by our reservation, and allocations also
        // drive the era clock (as in the IBR papers).
        self.extend_upper();
        self.maybe_advance_era();
    }

    unsafe fn retire<S: ReclaimSink<T>>(&mut self, record: NonNull<T>, sink: &mut S) {
        let era = self.global.era.load(Ordering::SeqCst);
        self.global.intervals.tag_retire(record.as_ptr() as usize, era);
        self.limbo.push(record);
        self.global.stats[self.tid].retired.fetch_add(1, Ordering::Relaxed);
        self.maybe_advance_era();
        if self.limbo.len() >= self.next_scan_at {
            self.scan(sink);
        } else {
            self.publish_pending();
        }
    }

    /// The 2GEIBR *validating read*: publish an upper bound covering the current era,
    /// re-validate the link through `validate`, and only succeed if the era did not move
    /// while validating.  The era-stability check is what closes the race in which a
    /// record born after the last published upper bound is retired and freed before the
    /// reader's next checkpoint lands: if the era was `e` both before and after a
    /// successful validation, the record was still linked (hence unretired) at a moment
    /// when our published reservation already covered every birth era up to `e`.
    fn protect<F: FnMut() -> bool>(
        &mut self,
        _slot: usize,
        _record: NonNull<T>,
        mut validate: F,
    ) -> bool {
        loop {
            let era = self.global.era.load(Ordering::SeqCst);
            let upper = &self.global.reservations[self.tid].upper;
            if upper.load(Ordering::SeqCst) < era {
                upper.store(era, Ordering::SeqCst);
            }
            if !validate() {
                return false;
            }
            if self.global.era.load(Ordering::SeqCst) == era {
                return true;
            }
            // The era advanced while validating: the record may have been born after the
            // bound we published.  Re-extend and re-validate.
        }
    }

    /// Reservation extension checkpoint: cheap best-effort widening of the upper bound at
    /// the DEBRA+-style checkpoints.  The *load-bearing* coverage of a record first
    /// reached through a link is [`protect`](Self::protect)'s validating read; `check`
    /// keeps the bound fresh between protects and covers this thread's own allocations.
    fn check(&self) -> Result<(), neutralize::Neutralized> {
        self.extend_upper();
        Ok(())
    }
}

impl<T: Send + 'static> Drop for IbrThread<T> {
    fn drop(&mut self) {
        let leftovers: Vec<NonNull<T>> = self.limbo.drain().collect();
        if !leftovers.is_empty() {
            self.global.orphans.lock().expect("orphans poisoned").extend(leftovers);
        }
        self.publish_pending();
        self.enter_qstate();
        self.global.registered[self.tid].store(false, Ordering::SeqCst);
    }
}

impl<T: Send + 'static> fmt::Debug for IbrThread<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IbrThread")
            .field("tid", &self.tid)
            .field("limbo", &self.limbo.len())
            .field("reservation", &self.reservation())
            .finish()
    }
}

/// A loom model of the reservation slots, exercising the open/extend/close store orders
/// against a concurrent scanner snapshot.  Gated behind `--cfg loom` because the `loom`
/// crate is not vendored in this offline workspace; vendor it and run
/// `RUSTFLAGS="--cfg loom" cargo test -p smr-ibr` to execute the model.
#[cfg(loom)]
mod loom_model {
    #[test]
    fn reservation_never_appears_narrower_than_reality() {
        loom::model(|| {
            let lower = loom::sync::Arc::new(loom::sync::atomic::AtomicU64::new(u64::MAX));
            let upper = loom::sync::Arc::new(loom::sync::atomic::AtomicU64::new(0));
            let (l2, u2) = (lower.clone(), upper.clone());
            // Opener: era 5 reservation.
            let t = loom::thread::spawn(move || {
                u2.store(5, loom::sync::atomic::Ordering::SeqCst);
                l2.store(5, loom::sync::atomic::Ordering::SeqCst);
            });
            // Scanner: any snapshot must be either inactive or cover era 5 once open.
            let lo = lower.load(loom::sync::atomic::Ordering::SeqCst);
            let hi = upper.load(loom::sync::atomic::Ordering::SeqCst);
            if lo <= hi {
                assert!(lo <= 5 && 5 <= hi);
            }
            t.join().unwrap();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::CountingSink;

    fn leak(v: u64) -> NonNull<u64> {
        NonNull::from(Box::leak(Box::new(v)))
    }

    struct FreeingSink {
        freed: Vec<usize>,
    }
    impl ReclaimSink<u64> for FreeingSink {
        fn accept(&mut self, record: NonNull<u64>) {
            self.freed.push(record.as_ptr() as usize);
            // SAFETY: test records are leaked boxes reclaimed exactly once.
            unsafe { drop(Box::from_raw(record.as_ptr())) };
        }
    }

    fn tiny() -> IbrConfig {
        IbrConfig { era_freq: 1, scan_freq: 4, block_capacity: 2, initial_era: 1 }
    }

    fn drain_orphans(ibr: &Arc<Ibr<u64>>) {
        for r in ibr.drain_orphans() {
            unsafe { drop(Box::from_raw(r.as_ptr())) };
        }
    }

    /// Allocate-tag + retire a leaked record, like the Record Manager would.
    fn alloc_and_retire<S: ReclaimSink<u64>>(t: &mut IbrThread<u64>, v: u64, sink: &mut S) {
        let r = leak(v);
        t.record_allocated(r);
        unsafe { t.retire(r, sink) };
    }

    #[test]
    fn single_thread_reclaims() {
        let ibr: Arc<Ibr<u64>> = Arc::new(Ibr::with_config(1, tiny()));
        let mut t = Ibr::register(&ibr, 0).unwrap();
        let mut sink = FreeingSink { freed: Vec::new() };
        for i in 0..100u64 {
            let _ = t.leave_qstate(&mut sink);
            alloc_and_retire(&mut t, i, &mut sink);
            t.enter_qstate();
        }
        assert!(!sink.freed.is_empty(), "records must be reclaimed");
        let stats = ibr.stats();
        assert_eq!(stats.retired, 100);
        assert!(stats.reclaimed > 0);
        assert!(stats.epochs_advanced > 0);
        assert_eq!(stats.reclaimed + stats.pending, stats.retired);
        drop(t);
        drain_orphans(&ibr);
    }

    #[test]
    fn active_reservation_protects_overlapping_lifetimes() {
        let ibr: Arc<Ibr<u64>> = Arc::new(Ibr::with_config(2, tiny()));
        let mut a = Ibr::register(&ibr, 0).unwrap();
        let mut b = Ibr::register(&ibr, 1).unwrap();
        let mut sink = FreeingSink { freed: Vec::new() };
        let mut b_sink = CountingSink::default();

        // A record born *before* B's reservation opens and retired during it overlaps
        // B's reservation — it must survive every scan while B is stalled.
        let overlapping = leak(7);
        a.record_allocated(overlapping);

        // B opens a reservation and stalls inside its operation.
        let _ = b.leave_qstate(&mut b_sink);
        let b_reservation = b.reservation().unwrap();

        let _ = a.leave_qstate(&mut sink);
        unsafe { a.retire(overlapping, &mut sink) };
        a.enter_qstate();
        for i in 0..200u64 {
            let _ = a.leave_qstate(&mut sink);
            alloc_and_retire(&mut a, i, &mut sink);
            a.enter_qstate();
        }
        assert!(
            !sink.freed.contains(&(overlapping.as_ptr() as usize)),
            "a record whose lifetime overlaps an active reservation must not be freed \
             (reservation {b_reservation:?})"
        );

        // Once B quiesces, the record becomes reclaimable.
        b.enter_qstate();
        for i in 0..50u64 {
            let _ = a.leave_qstate(&mut sink);
            alloc_and_retire(&mut a, 1000 + i, &mut sink);
            a.enter_qstate();
        }
        assert!(sink.freed.contains(&(overlapping.as_ptr() as usize)));

        drop(a);
        drop(b);
        drain_orphans(&ibr);
    }

    #[test]
    fn stalled_reader_does_not_block_new_garbage() {
        // The decisive IBR property: a stalled thread pins only records whose lifetime
        // overlaps its reservation.  Records born *after* the stall keep being reclaimed
        // and the limbo population stays bounded — no signals needed (contrast with
        // classic EBR, where this scenario pins everything forever).
        let ibr: Arc<Ibr<u64>> = Arc::new(Ibr::with_config(2, tiny()));
        let mut a = Ibr::register(&ibr, 0).unwrap();
        let mut b = Ibr::register(&ibr, 1).unwrap();
        let mut sink = FreeingSink { freed: Vec::new() };
        let mut b_sink = CountingSink::default();

        // B stalls inside an operation, holding a reservation at the current era.
        let _ = b.leave_qstate(&mut b_sink);

        let mut max_pending = 0u64;
        for i in 0..20_000u64 {
            let _ = a.leave_qstate(&mut sink);
            alloc_and_retire(&mut a, i, &mut sink);
            a.enter_qstate();
            max_pending = max_pending.max(ibr.stats().pending);
        }
        assert!(
            sink.freed.len() > 15_000,
            "new garbage must keep flowing despite the stalled reader (freed {})",
            sink.freed.len()
        );
        assert!(
            max_pending < 1_000,
            "garbage must stay bounded under a stalled reader, got {max_pending}"
        );

        drop(a);
        drop(b);
        drain_orphans(&ibr);
    }

    #[test]
    fn era_saturates_instead_of_wrapping() {
        // Start the clock at the end of its range: advancing must saturate at u64::MAX
        // (never wrap to small values, which would make old reservations look disjoint
        // from new records — a use-after-free).  Reclamation degrades to "nothing
        // overlapping an active reservation is freed" but stays safe and non-panicking.
        let config = IbrConfig { initial_era: u64::MAX - 2, ..tiny() };
        let ibr: Arc<Ibr<u64>> = Arc::new(Ibr::with_config(2, config));
        let mut a = Ibr::register(&ibr, 0).unwrap();
        let mut b = Ibr::register(&ibr, 1).unwrap();
        let mut sink = FreeingSink { freed: Vec::new() };
        let mut b_sink = CountingSink::default();

        let guarded = leak(42);
        a.record_allocated(guarded);
        let _ = b.leave_qstate(&mut b_sink); // reservation at ~u64::MAX
        let _ = a.leave_qstate(&mut sink);
        unsafe { a.retire(guarded, &mut sink) };
        a.enter_qstate();
        for i in 0..500u64 {
            let _ = a.leave_qstate(&mut sink);
            alloc_and_retire(&mut a, i, &mut sink);
            a.enter_qstate();
        }
        assert_eq!(ibr.current_era(), u64::MAX, "the era clock must saturate, not wrap");
        assert!(
            !sink.freed.contains(&(guarded.as_ptr() as usize)),
            "saturation must never free a record overlapping an active reservation"
        );

        // The documented degradation: records retired at the saturated era intersect
        // every active reservation (including the scanning thread's own), so reclamation
        // of *new* garbage stops — but everything stays functional and safe.  Records
        // whose retire era predates the saturation point remain reclaimable.
        b.enter_qstate();
        for i in 0..100u64 {
            let _ = a.leave_qstate(&mut sink);
            alloc_and_retire(&mut a, 1000 + i, &mut sink);
            a.enter_qstate();
        }
        let stats = ibr.stats();
        assert_eq!(stats.retired, 601);
        assert_eq!(stats.reclaimed + stats.pending, stats.retired);
        assert_eq!(ibr.current_era(), u64::MAX);

        drop(a);
        drop(b);
        drain_orphans(&ibr);
    }

    #[test]
    fn checkpoints_extend_the_reservation_upper_bound() {
        let ibr: Arc<Ibr<u64>> = Arc::new(Ibr::with_config(2, tiny()));
        let mut a = Ibr::register(&ibr, 0).unwrap();
        let mut b = Ibr::register(&ibr, 1).unwrap();
        let mut sink = CountingSink::default();

        let _ = a.leave_qstate(&mut sink);
        let (lower, upper) = a.reservation().unwrap();
        assert_eq!(lower, upper);

        // B drives the era forward; A's checkpoint must extend its upper bound so records
        // born later are still covered while A dereferences them.
        for _ in 0..50 {
            let _ = b.leave_qstate(&mut sink);
            b.enter_qstate();
        }
        assert!(ibr.current_era() > upper);
        assert!(a.check().is_ok());
        let (lower2, upper2) = a.reservation().unwrap();
        assert_eq!(lower2, lower, "the lower bound must not move mid-operation");
        assert_eq!(upper2, ibr.current_era(), "check() must extend the upper bound");

        // protect() is the validating read: it extends the upper bound before running the
        // validation and reports the validation's verdict so the caller can restart.
        for _ in 0..50 {
            let _ = b.leave_qstate(&mut sink);
            b.enter_qstate();
        }
        let mut rec = Box::new(5u64);
        assert!(a.protect(0, NonNull::from(&mut *rec), || true));
        assert_eq!(a.reservation().unwrap().1, ibr.current_era());
        assert!(
            !a.protect(0, NonNull::from(&mut *rec), || false),
            "a failed link validation must propagate so the traversal restarts"
        );

        a.enter_qstate();
        assert!(a.is_quiescent());
    }

    /// Miri-compatible smoke test for the reservation slots: a worker races
    /// open/extend/close transitions against a scanner taking snapshots.  Small iteration
    /// counts so `cargo miri test -p smr-ibr reservation_slots_smoke` finishes quickly
    /// when miri is available.
    #[test]
    fn reservation_slots_smoke() {
        let ibr: Arc<Ibr<u64>> = Arc::new(Ibr::with_config(3, tiny()));
        let stop = Arc::new(AtomicBool::new(false));

        let worker = {
            let ibr = Arc::clone(&ibr);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut t = Ibr::register(&ibr, 1).unwrap();
                let mut sink = CountingSink::default();
                while !stop.load(Ordering::Acquire) {
                    let _ = t.leave_qstate(&mut sink);
                    let _ = t.check();
                    let (lower, upper) = t.reservation().expect("active inside op");
                    assert!(lower <= upper);
                    t.enter_qstate();
                }
            })
        };

        let mut driver = Ibr::register(&ibr, 0).unwrap();
        let mut sink = CountingSink::default();
        for _ in 0..200 {
            let _ = driver.leave_qstate(&mut sink);
            driver.enter_qstate();
            // Scanner view: every snapshot is a well-formed interval.
            for (lower, upper) in ibr.snapshot_reservations() {
                assert!(lower <= upper);
            }
        }
        stop.store(true, Ordering::Release);
        worker.join().unwrap();
    }

    #[test]
    fn registration_lifecycle_and_properties() {
        let ibr: Arc<Ibr<u64>> = Arc::new(Ibr::new(2));
        let t0 = Ibr::register(&ibr, 0).unwrap();
        assert!(matches!(
            Ibr::register(&ibr, 0),
            Err(RegistrationError::AlreadyRegistered { tid: 0 })
        ));
        assert!(matches!(
            Ibr::register(&ibr, 9),
            Err(RegistrationError::ThreadIdOutOfRange { tid: 9, .. })
        ));
        drop(t0);
        assert!(Ibr::register(&ibr, 0).is_ok());

        let p = <Ibr<u64> as Reclaimer<u64>>::properties();
        assert_eq!(p.name, "IBR");
        assert!(p.fault_tolerant);
        assert!(p.can_traverse_retired_to_retired);
        assert!(p.code_modifications.per_accessed_record);
        assert_eq!(p.termination, Termination::WaitFree);
        assert_eq!(p.timing_assumptions, TimingAssumptions::None);
        assert_eq!(<Ibr<u64> as Reclaimer<u64>>::name(), "IBR");
    }

    #[test]
    fn orphans_are_handed_back_on_thread_exit() {
        let ibr: Arc<Ibr<u64>> = Arc::new(Ibr::with_config(2, tiny()));
        let mut a = Ibr::register(&ibr, 0).unwrap();
        let mut b = Ibr::register(&ibr, 1).unwrap();
        let mut a_sink = CountingSink::default();
        let mut b_sink = CountingSink::default();

        // B's reservation pins A's retired records; A then exits with a loaded limbo bag.
        let _ = b.leave_qstate(&mut b_sink);
        let _ = a.leave_qstate(&mut a_sink);
        for i in 0..10u64 {
            let r = leak(i);
            a.record_allocated(r);
            unsafe { a.retire(r, &mut a_sink) };
        }
        a.enter_qstate();
        drop(a);
        b.enter_qstate();
        drop(b);
        let reclaimed_via_sink = a_sink.accepted as u64;
        let orphans = ibr.drain_orphans();
        assert_eq!(orphans.len() as u64 + reclaimed_via_sink, 10);
        for r in orphans {
            unsafe { drop(Box::from_raw(r.as_ptr())) };
        }
    }
}

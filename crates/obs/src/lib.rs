//! `smr-obs` — observability primitives for the SMR benchmark harness.
//!
//! Throughput alone hides exactly the behaviour the source paper's sharpest claims are
//! about: tail latency under oversubscription and the size of the limbo backlog when a
//! reader stalls (Brown, PODC '15, Figure 9).  This crate provides the recording
//! machinery the workload harness threads through every trial, built around one
//! discipline: **the timed loop may not allocate, lock, or write a shared cacheline**.
//! Anything that does would perturb the very tail it is trying to measure — a single
//! `malloc` on the op path is a syscall-shaped latency spike attributed to the wrong
//! victim.
//!
//! The pipeline has three stages:
//!
//! 1. [`Clock`] — a raw timestamp source (RDTSC on x86_64, the monotonic clock
//!    elsewhere), calibrated once per trial.  The hot path reads raw ticks; conversion
//!    to nanoseconds happens at drain time, off the timed path.
//! 2. [`SampleRing`] — a fixed-capacity, power-of-two, pre-allocated reservoir of raw
//!    samples, one ring per (thread × operation kind).  Reservoir sampling (Vitter's
//!    Algorithm R, driven by a SplitMix64 stream) keeps a uniform sample of the whole
//!    trial in bounded memory, so memory use is independent of trial length.
//! 3. [`LatencyHistogram`] — an HDR-style log-bucketed histogram the rings drain into
//!    *after* the stop flag.  Merging is associative and commutative, so per-thread
//!    histograms combine into the trial-level [`LatencySummary`] in any order.

mod clock;
mod hist;
mod ring;

pub use clock::Clock;
pub use hist::{LatencyHistogram, LatencyReport, LatencySummary, MAX_OP_KINDS};
pub use ring::SampleRing;

//! The pre-allocated reservoir sample ring.
//!
//! One ring per (worker thread × operation kind): in the common single-writer case the
//! ring's cachelines belong to exactly one core, so recording is a handful of relaxed
//! operations on thread-local memory — no allocation, no lock, no shared-cacheline
//! write.  All state is nevertheless atomic, so a ring that *is* shared by several
//! writers (tests do this deliberately) stays memory-safe and never exceeds capacity;
//! only the statistical guarantee of Algorithm R degrades to approximate under
//! concurrent interleavings.
//!
//! Reservoir sampling keeps memory bounded regardless of trial length: after `seen`
//! samples, every offered value had probability `capacity / seen` of being retained —
//! a uniform sample of the whole trial, not just its tail (which is what a plain
//! overwrite ring would keep).

use std::sync::atomic::{AtomicU64, Ordering};

const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output function over an already-advanced state word.
#[inline(always)]
fn mix(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fixed-capacity, power-of-two reservoir of `u64` samples.
pub struct SampleRing {
    slots: Box<[AtomicU64]>,
    /// Total samples ever offered (`record` calls), not the retained count.
    seen: AtomicU64,
    /// SplitMix64 state; advanced with a single `fetch_add` so concurrent writers each
    /// draw a distinct word and a single writer draws a deterministic stream.
    rng: AtomicU64,
    seed: u64,
}

impl SampleRing {
    /// Creates a ring with `capacity` rounded up to the next power of two.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "a zero-capacity reservoir retains nothing");
        let cap = capacity.next_power_of_two();
        SampleRing {
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            seen: AtomicU64::new(0),
            rng: AtomicU64::new(seed),
            seed,
        }
    }

    /// Slot count (always a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total samples offered so far.
    pub fn seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// Number of samples currently retained (`min(seen, capacity)`).
    pub fn len(&self) -> usize {
        (self.seen() as usize).min(self.capacity())
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.seen() == 0
    }

    /// Offers a sample to the reservoir (Algorithm R).  The first `capacity` samples
    /// always land; afterwards sample `n` replaces a random retained slot with
    /// probability `capacity / n`.
    #[inline(always)]
    pub fn record(&self, value: u64) {
        let n = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        let cap = self.slots.len() as u64;
        if n <= cap {
            self.slots[(n - 1) as usize].store(value, Ordering::Relaxed);
        } else {
            let z = mix(self
                .rng
                .fetch_add(SPLITMIX_GAMMA, Ordering::Relaxed)
                .wrapping_add(SPLITMIX_GAMMA));
            let j = z % n;
            if j < cap {
                self.slots[j as usize].store(value, Ordering::Relaxed);
            }
        }
    }

    /// Copies out the retained samples (drain time, after the timed loop).
    pub fn samples(&self) -> Vec<u64> {
        self.slots[..self.len()].iter().map(|s| s.load(Ordering::Relaxed)).collect()
    }

    /// Empties the ring and restarts the deterministic sampling stream from the seed.
    pub fn reset(&self) {
        self.seen.store(0, Ordering::Relaxed);
        self.rng.store(self.seed, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for SampleRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SampleRing")
            .field("capacity", &self.capacity())
            .field("seen", &self.seen())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(SampleRing::new(1, 0).capacity(), 1);
        assert_eq!(SampleRing::new(100, 0).capacity(), 128);
        assert_eq!(SampleRing::new(4096, 0).capacity(), 4096);
    }

    #[test]
    fn first_capacity_samples_are_all_retained_in_order() {
        let ring = SampleRing::new(8, 42);
        for v in 0..8u64 {
            ring.record(v * 10);
        }
        assert_eq!(ring.samples(), vec![0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.seen(), 8);
    }

    #[test]
    fn reservoir_is_deterministic_per_seed() {
        let run = |seed| {
            let ring = SampleRing::new(64, seed);
            for v in 0..10_000u64 {
                ring.record(v);
            }
            ring.samples()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn reset_restarts_the_stream() {
        let ring = SampleRing::new(32, 99);
        for v in 0..1000u64 {
            ring.record(v);
        }
        let first = ring.samples();
        ring.reset();
        assert!(ring.is_empty());
        for v in 0..1000u64 {
            ring.record(v);
        }
        assert_eq!(ring.samples(), first);
    }

    #[test]
    fn reservoir_sample_is_roughly_uniform_over_the_stream() {
        // 64 slots over 64k samples: the retained sample's mean should sit near the
        // stream's mean, not near its tail (which a plain overwrite ring would keep).
        let ring = SampleRing::new(64, 3);
        let n = 65_536u64;
        for v in 0..n {
            ring.record(v);
        }
        let samples = ring.samples();
        assert_eq!(samples.len(), 64);
        let mean = samples.iter().sum::<u64>() as f64 / 64.0;
        let stream_mean = (n - 1) as f64 / 2.0;
        assert!(
            (mean - stream_mean).abs() < stream_mean * 0.5,
            "reservoir mean {mean} too far from stream mean {stream_mean}"
        );
    }
}

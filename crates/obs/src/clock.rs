//! The trial clock: raw timestamps on the hot path, nanoseconds at drain time.
//!
//! On x86_64 the raw read is `RDTSC` (~10 cycles, no syscall, no `Instant` bookkeeping);
//! the tick rate is calibrated once against the monotonic clock when the [`Clock`] is
//! created, before the timed loop starts.  On other targets the raw read falls back to
//! the monotonic clock itself (a vDSO call on Linux — still allocation- and lock-free),
//! and ticks simply *are* nanoseconds.

use std::time::Instant;

/// A calibrated timestamp source.  `raw()` is the only call the timed loop makes;
/// everything else runs before the start gate or after the stop flag.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    /// Nanoseconds per raw tick (1.0 on targets where raw reads are already in ns).
    ns_per_tick: f64,
    /// Anchor for the non-TSC fallback (also used during calibration).
    anchor: Instant,
}

impl Clock {
    /// Creates a clock, calibrating the raw tick rate against the monotonic clock.
    /// Calibration busy-waits for about a millisecond; do it once per trial, outside
    /// the timed window.
    pub fn new() -> Self {
        let anchor = Instant::now();
        let ns_per_tick = Self::calibrate(anchor);
        Clock { ns_per_tick, anchor }
    }

    #[cfg(target_arch = "x86_64")]
    fn calibrate(anchor: Instant) -> f64 {
        let t0 = raw_ticks(anchor);
        let w0 = anchor.elapsed();
        // ~1ms busy-wait: long enough for sub-0.1% calibration error, short enough to
        // be invisible next to a trial's duration.
        while anchor.elapsed() - w0 < std::time::Duration::from_millis(1) {
            std::hint::spin_loop();
        }
        let t1 = raw_ticks(anchor);
        let w1 = anchor.elapsed();
        let ticks = t1.saturating_sub(t0);
        if ticks == 0 {
            return 1.0; // A TSC that did not move: treat raw reads as ns and move on.
        }
        (w1 - w0).as_nanos() as f64 / ticks as f64
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn calibrate(_anchor: Instant) -> f64 {
        1.0
    }

    /// Reads the raw timestamp.  This is the one call made inside the timed loop.
    #[inline(always)]
    pub fn raw(&self) -> u64 {
        raw_ticks(self.anchor)
    }

    /// Converts a raw-tick delta to nanoseconds (drain time only).
    ///
    /// Deltas that convert to more than 60 seconds are clamped to zero: on hardware
    /// without an invariant, cross-core-synchronized TSC a thread migration can produce
    /// a garbage (effectively negative, hence enormous after wrapping) delta, and one
    /// such outlier would otherwise own `max` forever.
    pub fn delta_to_ns(&self, delta_ticks: u64) -> u64 {
        let ns = delta_ticks as f64 * self.ns_per_tick;
        if ns > 60.0e9 {
            0
        } else {
            ns as u64
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn raw_ticks(_anchor: Instant) -> u64 {
    // SAFETY: RDTSC has no memory or register preconditions; it is unsafe only because
    // core::arch intrinsics are uniformly unsafe.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn raw_ticks(anchor: Instant) -> u64 {
    anchor.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_reads_are_monotonic_enough_to_time_a_sleep() {
        let clock = Clock::new();
        let t0 = clock.raw();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let t1 = clock.raw();
        let ns = clock.delta_to_ns(t1.wrapping_sub(t0));
        // Sleep granularity is coarse; accept a wide band around 10ms.
        assert!(ns > 5_000_000, "10ms sleep measured as {ns}ns");
        assert!(ns < 1_000_000_000, "10ms sleep measured as {ns}ns");
    }

    #[test]
    fn absurd_deltas_are_clamped_to_zero() {
        let clock = Clock::new();
        assert_eq!(clock.delta_to_ns(u64::MAX / 2), 0);
    }
}

//! The HDR-style log-bucketed latency histogram.
//!
//! Values below `2^LINEAR_BITS` get exact one-per-value buckets; above that, every
//! octave `[2^e, 2^(e+1))` is split into `2^(LINEAR_BITS-1)` equal sub-buckets, so the
//! relative quantization error is bounded by `2^(1-LINEAR_BITS)` (≈1.6% at the default
//! 7 bits) at any magnitude — nanoseconds to minutes in ~30KB of counters.  Quantiles
//! report a bucket's *upper* bound (clamped to the observed maximum), so the
//! approximation errs toward overstating a tail, never hiding one.

/// Bits of the exact linear region; also fixes the per-octave resolution.
const LINEAR_BITS: u32 = 7;
const LINEAR_LIMIT: u64 = 1 << LINEAR_BITS;
const SUB_BUCKETS: u32 = 1 << (LINEAR_BITS - 1);
const BUCKETS: usize = LINEAR_LIMIT as usize + ((64 - LINEAR_BITS) as usize) * SUB_BUCKETS as usize;

/// Maximum distinct operation kinds a [`LatencyReport`] tracks (insert/delete/search for
/// maps; enqueue/dequeue/empty-dequeue for bags).
pub const MAX_OP_KINDS: usize = 3;

/// A fixed-size log-bucketed histogram of `u64` values (nanoseconds, by convention).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0u64; BUCKETS].into_boxed_slice().try_into().unwrap(),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    #[inline]
    fn index(value: u64) -> usize {
        if value < LINEAR_LIMIT {
            value as usize
        } else {
            let e = 63 - value.leading_zeros();
            let sub = (value >> (e - (LINEAR_BITS - 1))) & (SUB_BUCKETS as u64 - 1);
            LINEAR_LIMIT as usize + (e - LINEAR_BITS) as usize * SUB_BUCKETS as usize + sub as usize
        }
    }

    /// The highest value a bucket covers (the quantile representative).
    fn bucket_upper(index: usize) -> u64 {
        if index < LINEAR_LIMIT as usize {
            index as u64
        } else {
            let off = index - LINEAR_LIMIT as usize;
            let e = LINEAR_BITS + (off / SUB_BUCKETS as usize) as u32;
            let sub = (off % SUB_BUCKETS as usize) as u64;
            let width = 1u64 << (e - (LINEAR_BITS - 1));
            let low = (1u64 << e) + sub * width;
            // `low + (width - 1)`: the top bucket's upper bound is exactly `u64::MAX`,
            // so adding `width` before subtracting would overflow.
            low + (width - 1)
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket upper bound clamped to the observed
    /// maximum; 0 when empty.  Within a bucket the estimate can only overstate, and by
    /// at most `2^(1-LINEAR_BITS)` (≈1.6%) relative.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Adds another histogram's contents into this one.  Merging is associative and
    /// commutative (counter addition), so per-thread histograms combine in any order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Condenses the histogram into the fixed-size summary the trial results carry.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_ns: self.mean(),
            p50_ns: self.quantile(0.50),
            p90_ns: self.quantile(0.90),
            p99_ns: self.quantile(0.99),
            p999_ns: self.quantile(0.999),
            max_ns: self.max,
        }
    }
}

impl PartialEq for LatencyHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.max == other.max
            && self.counts[..] == other.counts[..]
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("max", &self.max)
            .finish()
    }
}

/// The quantile summary of one operation kind's latency distribution, in nanoseconds.
/// `Copy` so trial results stay plain value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Number of sampled operations the summary is built from.
    pub count: u64,
    /// Mean sampled latency.
    pub mean_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Largest sampled latency (exact).
    pub max_ns: u64,
}

/// Per-trial latency summaries: one per operation kind plus the combined distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyReport {
    /// `false` when the trial ran with recording disabled (all summaries zero).
    pub enabled: bool,
    /// Per-kind summaries; the kind indices are fixed by the harness (maps:
    /// insert/delete/search; bags: enqueue/dequeue/empty-dequeue).
    pub per_kind: [LatencySummary; MAX_OP_KINDS],
    /// Summary over all kinds combined.
    pub all: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact quantile of a sorted sample using the same "ceil rank" convention as the
    /// histogram (the oracle the proptest suite also checks against).
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[target - 1]
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 5, 17, 99, 127] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 127);
        assert_eq!(h.max(), 127);
        assert_eq!(h.count(), 6);
        // All values < 128 sit in one-per-value buckets: quantiles are exact.
        assert_eq!(h.quantile(0.5), 5);
    }

    #[test]
    fn quantiles_track_the_oracle_within_relative_error() {
        let mut values: Vec<u64> = (0..10_000u64).map(|i| (i * i) % 1_000_000 + 1).collect();
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&values, q);
            let approx = h.quantile(q);
            // The histogram reports a bucket upper bound: never below the exact value,
            // and at most one sub-bucket width (2^(1-LINEAR_BITS) relative) above.
            assert!(approx >= exact, "q={q}: approx {approx} < exact {exact}");
            let bound = exact + exact / 32 + 1;
            assert!(approx <= bound, "q={q}: approx {approx} > bound {bound}");
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let build = |vals: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = build(&[1, 500, 70_000]);
        let b = build(&[2, 2, 1_000_000_000]);
        let c = build(&[42; 10]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);

        assert_eq!(ab_c, a_bc);
        assert_eq!(ab, ba);
        assert_eq!(ab_c.summary().count, 16);
    }

    #[test]
    fn summary_orders_its_quantiles() {
        let mut h = LatencyHistogram::new();
        for i in 0..100_000u64 {
            h.record(i % 77_777);
        }
        let s = h.summary();
        assert!(s.p50_ns <= s.p90_ns);
        assert!(s.p90_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.p999_ns);
        assert!(s.p999_ns <= s.max_ns);
        assert_eq!(s.count, 100_000);
    }

    #[test]
    fn huge_values_do_not_overflow_the_bucket_math() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}

//! ThreadScan-lite: a fence-free hazard-pointer variant with signal-assisted scanning.

use std::collections::HashSet;
use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

use blockbag::BlockBag;
use crossbeam_utils::CachePadded;
use debra::{
    CodeModifications, ReclaimSink, Reclaimer, ReclaimerStats, ReclaimerThread, RegistrationError,
    SchemeProperties, Termination, ThreadStatsSlot, TimingAssumptions,
};
use neutralize::{NeutralizeSlot, SignalDriver, ThreadRegistration};
use parking_lot::Mutex as ReclaimLock;

/// Configuration for [`ThreadScanLite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadScanConfig {
    /// Reference slots per thread (the explicit stand-in for ThreadScan's private-memory
    /// scan; see the crate docs).
    pub slots_per_thread: usize,
    /// Retired records a thread accumulates before it starts a reclamation pass.
    pub scan_threshold: usize,
    /// Block capacity of the per-thread delete buffers.
    pub block_capacity: usize,
}

impl Default for ThreadScanConfig {
    fn default() -> Self {
        ThreadScanConfig { slots_per_thread: 8, scan_threshold: 512, block_capacity: 64 }
    }
}

struct RefSlots {
    slots: Box<[AtomicPtr<u8>]>,
}

/// A simplified ThreadScan (Alistarh et al., SPAA'15): local references are announced like
/// hazard pointers but **without a memory fence per announcement**; a thread that wants to
/// reclaim takes a global reclamation lock, signals every registered thread, waits for each
/// to acknowledge (the signal handler's atomic counter doubles as the missing fence), and
/// then frees every retired record not referenced by anyone.
///
/// Like the original ThreadScan it is *not* fault tolerant (the reclaimer waits for
/// acknowledgements and holds a global lock), and it must not be used with data structures
/// where operations traverse pointers from retired records to other retired records.
/// `DESIGN.md` describes how this stand-in differs from the original (which scans raw
/// stacks and registers instead of explicit slots).
pub struct ThreadScanLite<T> {
    refs: Box<[CachePadded<RefSlots>]>,
    slots: Box<[Arc<NeutralizeSlot>]>,
    stats: Box<[CachePadded<ThreadStatsSlot>]>,
    registered: Box<[AtomicBool]>,
    reclaim_lock: ReclaimLock<()>,
    driver: SignalDriver,
    orphans: Mutex<Vec<NonNull<T>>>,
    config: ThreadScanConfig,
    max_threads: usize,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Send + 'static> ThreadScanLite<T> {
    /// Creates shared state with a custom configuration and signal driver.
    pub fn with_config(max_threads: usize, config: ThreadScanConfig, driver: SignalDriver) -> Self {
        assert!(max_threads > 0);
        ThreadScanLite {
            refs: (0..max_threads)
                .map(|_| {
                    CachePadded::new(RefSlots {
                        slots: (0..config.slots_per_thread)
                            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                            .collect(),
                    })
                })
                .collect(),
            slots: (0..max_threads).map(|_| Arc::new(NeutralizeSlot::new())).collect(),
            stats: (0..max_threads).map(|_| CachePadded::new(ThreadStatsSlot::default())).collect(),
            registered: (0..max_threads).map(|_| AtomicBool::new(false)).collect(),
            reclaim_lock: ReclaimLock::new(()),
            driver,
            orphans: Mutex::new(Vec::new()),
            config,
            max_threads,
            _marker: std::marker::PhantomData,
        }
    }

    fn collect_references(&self) -> HashSet<usize> {
        let mut set = HashSet::new();
        for slots in self.refs.iter() {
            for s in slots.slots.iter() {
                let p = s.load(Ordering::SeqCst);
                if !p.is_null() {
                    set.insert(p as usize);
                }
            }
        }
        set
    }

    /// Signals every other registered thread and waits for each to acknowledge.
    fn signal_and_await(&self, my_tid: usize) {
        let before: Vec<u64> = self.slots.iter().map(|s| s.stats().signals_received).collect();
        #[allow(clippy::needless_range_loop)] // tid indexes three parallel per-thread arrays
        for tid in 0..self.max_threads {
            if tid == my_tid || !self.registered[tid].load(Ordering::SeqCst) {
                continue;
            }
            if !self.driver.neutralize(&self.slots[tid]) {
                continue; // not registered with the driver (e.g. already exiting)
            }
            // ThreadScan's blocking wait: until the target has run its handler (its ack
            // counter advanced) we cannot be sure its reference announcements are visible.
            // Yield on every check: the target can only run its handler if it gets CPU
            // time, and on a single-core host a spinning waiter would deny it exactly that
            // for a whole scheduling quantum.
            while self.registered[tid].load(Ordering::SeqCst)
                && self.slots[tid].stats().signals_received <= before[tid]
            {
                std::thread::yield_now();
            }
        }
    }
}

impl<T: Send + 'static> Reclaimer<T> for ThreadScanLite<T> {
    type Thread = ThreadScanLiteThread<T>;

    fn new(max_threads: usize) -> Self {
        Self::with_config(max_threads, ThreadScanConfig::default(), SignalDriver::best_available())
    }

    fn register(this: &Arc<Self>, tid: usize) -> Result<Self::Thread, RegistrationError> {
        if tid >= this.max_threads {
            return Err(RegistrationError::ThreadIdOutOfRange {
                tid,
                max_threads: this.max_threads,
            });
        }
        if this.registered[tid]
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Err(RegistrationError::AlreadyRegistered { tid });
        }
        let registration = this.driver.register_current_thread(Arc::clone(&this.slots[tid]));
        Ok(ThreadScanLiteThread {
            global: Arc::clone(this),
            tid,
            retired: BlockBag::with_block_capacity(this.config.block_capacity),
            quiescent: true,
            _registration: registration,
        })
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    fn name() -> &'static str {
        "ThreadScan"
    }

    fn properties() -> SchemeProperties {
        SchemeProperties {
            name: "ThreadScan (lite)",
            code_modifications: CodeModifications {
                per_accessed_record: true,
                per_operation: false,
                per_retired_record: true,
                other: "",
            },
            timing_assumptions: TimingAssumptions::ForProgress,
            fault_tolerant: false,
            termination: Termination::Blocking,
            can_traverse_retired_to_retired: false,
        }
    }

    fn stats(&self) -> ReclaimerStats {
        let mut agg = ReclaimerStats::default();
        for s in self.stats.iter() {
            s.snapshot_into(&mut agg);
        }
        agg
    }

    fn drain_orphans(&self) -> Vec<NonNull<T>> {
        std::mem::take(&mut *self.orphans.lock().expect("orphans poisoned"))
    }
}

impl<T> fmt::Debug for ThreadScanLite<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadScanLite")
            .field("max_threads", &self.max_threads)
            .field("config", &self.config)
            .finish()
    }
}

// SAFETY: raw pointers are stored but never dereferenced by the reclaimer.
unsafe impl<T: Send> Send for ThreadScanLite<T> {}
unsafe impl<T: Send> Sync for ThreadScanLite<T> {}

/// Per-thread handle of [`ThreadScanLite`].
pub struct ThreadScanLiteThread<T: Send + 'static> {
    global: Arc<ThreadScanLite<T>>,
    tid: usize,
    retired: BlockBag<T>,
    quiescent: bool,
    _registration: ThreadRegistration,
}

impl<T: Send + 'static> ThreadScanLiteThread<T> {
    fn scan<S: ReclaimSink<T>>(&mut self, sink: &mut S) {
        let global = Arc::clone(&self.global);
        // Only one thread reclaims at a time (ThreadScan's global reclamation lock).
        let _guard = global.reclaim_lock.lock();
        global.signal_and_await(self.tid);
        let referenced = global.collect_references();
        let mut reclaimed = 0u64;
        for block in self
            .retired
            .partition_and_take_full_blocks(|p| referenced.contains(&(p.as_ptr() as usize)))
        {
            reclaimed += block.len() as u64;
            sink.accept_block(block);
        }
        let stats = &global.stats[self.tid];
        stats.reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
        stats.publish_limbo(self.retired.len() as u64, std::mem::size_of::<T>() as u64);
    }
}

impl<T: Send + 'static> ReclaimerThread<T> for ThreadScanLiteThread<T> {
    fn tid(&self) -> usize {
        self.tid
    }

    fn leave_qstate<S: ReclaimSink<T>>(&mut self, _sink: &mut S) -> bool {
        self.quiescent = false;
        self.global.stats[self.tid].operations.fetch_add(1, Ordering::Relaxed);
        false
    }

    fn enter_qstate(&mut self) {
        for s in self.global.refs[self.tid].slots.iter() {
            if !s.load(Ordering::Relaxed).is_null() {
                s.store(std::ptr::null_mut(), Ordering::Relaxed);
            }
        }
        self.quiescent = true;
    }

    fn is_quiescent(&self) -> bool {
        self.quiescent
    }

    unsafe fn retire<S: ReclaimSink<T>>(&mut self, record: NonNull<T>, sink: &mut S) {
        self.retired.push(record);
        let stats = &self.global.stats[self.tid];
        stats.retired.fetch_add(1, Ordering::Relaxed);
        stats.publish_limbo(self.retired.len() as u64, std::mem::size_of::<T>() as u64);
        if self.retired.len() >= self.global.config.scan_threshold {
            self.scan(sink);
        }
    }

    fn protect<F: FnMut() -> bool>(
        &mut self,
        slot: usize,
        record: NonNull<T>,
        mut validate: F,
    ) -> bool {
        let slots = &self.global.refs[self.tid].slots;
        assert!(slot < slots.len(), "reference slot {slot} out of range");
        // The whole point of ThreadScan: no fence here (Relaxed store).  Visibility to a
        // reclaimer is established by the signal/acknowledgement handshake during scans.
        slots[slot].store(record.as_ptr() as *mut u8, Ordering::Relaxed);
        if validate() {
            true
        } else {
            slots[slot].store(std::ptr::null_mut(), Ordering::Relaxed);
            false
        }
    }

    fn unprotect(&mut self, slot: usize) {
        let slots = &self.global.refs[self.tid].slots;
        assert!(slot < slots.len(), "reference slot {slot} out of range");
        slots[slot].store(std::ptr::null_mut(), Ordering::Relaxed);
    }

    fn is_protected(&self, record: NonNull<T>) -> bool {
        let addr = record.as_ptr() as *mut u8;
        self.global.refs[self.tid].slots.iter().any(|s| s.load(Ordering::Relaxed) == addr)
    }

    fn protection_slots(&self) -> usize {
        self.global.config.slots_per_thread
    }
}

impl<T: Send + 'static> Drop for ThreadScanLiteThread<T> {
    fn drop(&mut self) {
        for s in self.global.refs[self.tid].slots.iter() {
            s.store(std::ptr::null_mut(), Ordering::SeqCst);
        }
        let leftovers: Vec<NonNull<T>> = self.retired.drain().collect();
        if !leftovers.is_empty() {
            self.global.orphans.lock().expect("orphans poisoned").extend(leftovers);
        }
        self.global.registered[self.tid].store(false, Ordering::SeqCst);
    }
}

impl<T: Send + 'static> fmt::Debug for ThreadScanLiteThread<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadScanLiteThread")
            .field("tid", &self.tid)
            .field("retired", &self.retired.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::CountingSink;

    fn leak(v: u64) -> NonNull<u64> {
        NonNull::from(Box::leak(Box::new(v)))
    }

    struct FreeingSink {
        freed: Vec<usize>,
    }
    impl ReclaimSink<u64> for FreeingSink {
        fn accept(&mut self, record: NonNull<u64>) {
            self.freed.push(record.as_ptr() as usize);
            unsafe { drop(Box::from_raw(record.as_ptr())) };
        }
    }

    fn tiny() -> ThreadScanConfig {
        ThreadScanConfig { slots_per_thread: 2, scan_threshold: 16, block_capacity: 4 }
    }

    #[test]
    fn reclaims_unreferenced_records_and_keeps_referenced_ones() {
        let ts: Arc<ThreadScanLite<u64>> =
            Arc::new(ThreadScanLite::with_config(2, tiny(), SignalDriver::simulated()));
        let mut a = ThreadScanLite::register(&ts, 0).unwrap();
        let mut b = ThreadScanLite::register(&ts, 1).unwrap();
        let mut sink = FreeingSink { freed: Vec::new() };
        let mut b_sink = CountingSink::default();

        let held = leak(999);
        let _ = b.leave_qstate(&mut b_sink);
        assert!(b.protect(0, held, || true));

        let _ = a.leave_qstate(&mut sink);
        unsafe { a.retire(held, &mut sink) };
        for i in 0..200u64 {
            unsafe { a.retire(leak(i), &mut sink) };
        }
        a.enter_qstate();

        assert!(!sink.freed.is_empty());
        assert!(!sink.freed.contains(&(held.as_ptr() as usize)));
        assert!(ts.stats().reclaimed > 0);

        b.enter_qstate();
        let _ = a.leave_qstate(&mut sink);
        for i in 0..100u64 {
            unsafe { a.retire(leak(1000 + i), &mut sink) };
        }
        a.enter_qstate();
        assert!(sink.freed.contains(&(held.as_ptr() as usize)));

        drop(a);
        drop(b);
        for r in ts.drain_orphans() {
            unsafe { drop(Box::from_raw(r.as_ptr())) };
        }
    }
}

//! Michael-style hazard pointers.

use std::collections::HashSet;
use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

use blockbag::BlockBag;
use crossbeam_utils::CachePadded;
use debra::{
    CodeModifications, ReclaimSink, Reclaimer, ReclaimerStats, ReclaimerThread, RegistrationError,
    SchemeProperties, Termination, ThreadStatsSlot, TimingAssumptions,
};

/// Configuration for [`HazardPointers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HpConfig {
    /// Hazard pointer slots per thread (`k` in the paper's analysis).  Lock-free lists and
    /// trees typically need 2–3; the default leaves headroom.
    pub slots_per_thread: usize,
    /// Extra retired records accumulated beyond `n*k` before a scan is triggered
    /// (the paper's Ω(nk) term; a larger value trades memory for fewer scans).
    pub scan_slack: usize,
    /// Block capacity of the per-thread retired bags.
    pub block_capacity: usize,
}

impl Default for HpConfig {
    fn default() -> Self {
        HpConfig { slots_per_thread: 8, scan_slack: 256, block_capacity: 64 }
    }
}

/// Per-thread hazard pointer announcement slots (single writer, all threads read).
struct HpSlots {
    slots: Box<[AtomicPtr<u8>]>,
}

impl HpSlots {
    fn new(k: usize) -> Self {
        HpSlots { slots: (0..k).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect() }
    }
}

/// Michael's hazard pointers (the paper's "HP" baseline), tuned for throughput the same way
/// the paper tunes it: each process accumulates a large buffer of retired records before
/// scanning, so the amortized cost of retiring a record is O(1).
///
/// Before reading a record's fields the data structure must [`protect`] it and re-validate
/// that it is still reachable; a memory fence is issued as part of the SeqCst announcement
/// store (this per-access fence is precisely the overhead DEBRA avoids).  As discussed at
/// length in Section 3 of the paper, structures in which operations traverse pointers from
/// retired records cannot use HP without giving up lock-freedom; the `lockfree-ds` crate
/// follows the paper's experimental choice of restarting such operations.
///
/// [`protect`]: ReclaimerThread::protect
pub struct HazardPointers<T> {
    hp: Box<[CachePadded<HpSlots>]>,
    stats: Box<[CachePadded<ThreadStatsSlot>]>,
    registered: Box<[AtomicBool]>,
    orphans: Mutex<Vec<NonNull<T>>>,
    config: HpConfig,
    max_threads: usize,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Send + 'static> HazardPointers<T> {
    /// Creates shared hazard pointer state with a custom configuration.
    pub fn with_config(max_threads: usize, config: HpConfig) -> Self {
        assert!(max_threads > 0);
        assert!(config.slots_per_thread > 0);
        HazardPointers {
            hp: (0..max_threads)
                .map(|_| CachePadded::new(HpSlots::new(config.slots_per_thread)))
                .collect(),
            stats: (0..max_threads).map(|_| CachePadded::new(ThreadStatsSlot::default())).collect(),
            registered: (0..max_threads).map(|_| AtomicBool::new(false)).collect(),
            orphans: Mutex::new(Vec::new()),
            config,
            max_threads,
            _marker: std::marker::PhantomData,
        }
    }

    /// Collects every announced hazard pointer into a set of addresses.
    fn collect_hazards(&self) -> HashSet<usize> {
        let mut set = HashSet::with_capacity(self.max_threads * self.config.slots_per_thread);
        for slots in self.hp.iter() {
            for s in slots.slots.iter() {
                let p = s.load(Ordering::SeqCst);
                if !p.is_null() {
                    set.insert(p as usize);
                }
            }
        }
        set
    }

    /// Returns `true` if any thread currently announces a hazard pointer to `record`.
    pub fn is_protected_by_any(&self, record: NonNull<T>) -> bool {
        let addr = record.as_ptr() as *mut u8;
        self.hp.iter().any(|slots| slots.slots.iter().any(|s| s.load(Ordering::SeqCst) == addr))
    }
}

impl<T: Send + 'static> Reclaimer<T> for HazardPointers<T> {
    type Thread = HazardPointersThread<T>;

    fn new(max_threads: usize) -> Self {
        Self::with_config(max_threads, HpConfig::default())
    }

    fn register(this: &Arc<Self>, tid: usize) -> Result<Self::Thread, RegistrationError> {
        if tid >= this.max_threads {
            return Err(RegistrationError::ThreadIdOutOfRange {
                tid,
                max_threads: this.max_threads,
            });
        }
        if this.registered[tid]
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Err(RegistrationError::AlreadyRegistered { tid });
        }
        Ok(HazardPointersThread {
            global: Arc::clone(this),
            tid,
            retired: BlockBag::with_block_capacity(this.config.block_capacity),
            quiescent: true,
        })
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    fn name() -> &'static str {
        "HP"
    }

    fn properties() -> SchemeProperties {
        SchemeProperties {
            name: "HP",
            code_modifications: CodeModifications {
                per_accessed_record: true,
                per_operation: false,
                per_retired_record: true,
                other: "write recovery code for when a process fails to acquire a HP",
            },
            timing_assumptions: TimingAssumptions::None,
            fault_tolerant: true,
            termination: Termination::WaitFree,
            can_traverse_retired_to_retired: false,
        }
    }

    fn stats(&self) -> ReclaimerStats {
        let mut agg = ReclaimerStats::default();
        for s in self.stats.iter() {
            s.snapshot_into(&mut agg);
        }
        agg
    }

    fn drain_orphans(&self) -> Vec<NonNull<T>> {
        std::mem::take(&mut *self.orphans.lock().expect("orphans poisoned"))
    }
}

impl<T> fmt::Debug for HazardPointers<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HazardPointers")
            .field("max_threads", &self.max_threads)
            .field("config", &self.config)
            .finish()
    }
}

// SAFETY: raw pointers are stored but never dereferenced by the reclaimer itself.
unsafe impl<T: Send> Send for HazardPointers<T> {}
unsafe impl<T: Send> Sync for HazardPointers<T> {}

/// Per-thread handle of [`HazardPointers`].
pub struct HazardPointersThread<T: Send + 'static> {
    global: Arc<HazardPointers<T>>,
    tid: usize,
    retired: BlockBag<T>,
    quiescent: bool,
}

impl<T: Send + 'static> HazardPointersThread<T> {
    fn scan_threshold(&self) -> usize {
        let nk = self.global.max_threads * self.global.config.slots_per_thread;
        nk + nk.max(self.global.config.scan_slack)
    }

    /// Scans all hazard pointers and hands every unprotected retired record to the sink
    /// (the amortized-O(1) bulk scan described in the paper's related-work section).
    fn scan<S: ReclaimSink<T>>(&mut self, sink: &mut S) {
        let hazards = self.global.collect_hazards();
        let mut reclaimed = 0u64;
        for block in self
            .retired
            .partition_and_take_full_blocks(|p| hazards.contains(&(p.as_ptr() as usize)))
        {
            reclaimed += block.len() as u64;
            sink.accept_block(block);
        }
        let stats = &self.global.stats[self.tid];
        stats.reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
        stats.publish_limbo(self.retired.len() as u64, std::mem::size_of::<T>() as u64);
    }

    fn my_slots(&self) -> &HpSlots {
        &self.global.hp[self.tid]
    }
}

impl<T: Send + 'static> ReclaimerThread<T> for HazardPointersThread<T> {
    fn tid(&self) -> usize {
        self.tid
    }

    fn leave_qstate<S: ReclaimSink<T>>(&mut self, _sink: &mut S) -> bool {
        self.quiescent = false;
        self.global.stats[self.tid].operations.fetch_add(1, Ordering::Relaxed);
        false
    }

    fn enter_qstate(&mut self) {
        // Release every hazard pointer held by this thread.
        for s in self.my_slots().slots.iter() {
            if !s.load(Ordering::Relaxed).is_null() {
                s.store(std::ptr::null_mut(), Ordering::Release);
            }
        }
        self.quiescent = true;
    }

    fn is_quiescent(&self) -> bool {
        self.quiescent
    }

    unsafe fn retire<S: ReclaimSink<T>>(&mut self, record: NonNull<T>, sink: &mut S) {
        self.retired.push(record);
        let stats = &self.global.stats[self.tid];
        stats.retired.fetch_add(1, Ordering::Relaxed);
        stats.publish_limbo(self.retired.len() as u64, std::mem::size_of::<T>() as u64);
        if self.retired.len() >= self.scan_threshold() {
            self.scan(sink);
        }
    }

    fn protect<F: FnMut() -> bool>(
        &mut self,
        slot: usize,
        record: NonNull<T>,
        mut validate: F,
    ) -> bool {
        let slots = &self.global.hp[self.tid].slots;
        assert!(slot < slots.len(), "hazard pointer slot {slot} out of range");
        // SeqCst store doubles as the memory fence the paper requires after each HP
        // announcement, so that a concurrent scanner cannot miss it.
        slots[slot].store(record.as_ptr() as *mut u8, Ordering::SeqCst);
        if validate() {
            true
        } else {
            slots[slot].store(std::ptr::null_mut(), Ordering::SeqCst);
            false
        }
    }

    fn unprotect(&mut self, slot: usize) {
        let slots = &self.global.hp[self.tid].slots;
        assert!(slot < slots.len(), "hazard pointer slot {slot} out of range");
        slots[slot].store(std::ptr::null_mut(), Ordering::Release);
    }

    fn is_protected(&self, record: NonNull<T>) -> bool {
        let addr = record.as_ptr() as *mut u8;
        self.my_slots().slots.iter().any(|s| s.load(Ordering::Relaxed) == addr)
    }

    fn protection_slots(&self) -> usize {
        self.global.config.slots_per_thread
    }
}

impl<T: Send + 'static> Drop for HazardPointersThread<T> {
    fn drop(&mut self) {
        for s in self.my_slots().slots.iter() {
            s.store(std::ptr::null_mut(), Ordering::SeqCst);
        }
        let leftovers: Vec<NonNull<T>> = self.retired.drain().collect();
        if !leftovers.is_empty() {
            self.global.orphans.lock().expect("orphans poisoned").extend(leftovers);
        }
        self.global.registered[self.tid].store(false, Ordering::SeqCst);
    }
}

impl<T: Send + 'static> fmt::Debug for HazardPointersThread<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HazardPointersThread")
            .field("tid", &self.tid)
            .field("retired", &self.retired.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::CountingSink;

    fn leak(v: u64) -> NonNull<u64> {
        NonNull::from(Box::leak(Box::new(v)))
    }

    struct FreeingSink {
        freed: Vec<usize>,
    }
    impl ReclaimSink<u64> for FreeingSink {
        fn accept(&mut self, record: NonNull<u64>) {
            self.freed.push(record.as_ptr() as usize);
            // SAFETY: test records are leaked boxes reclaimed exactly once.
            unsafe { drop(Box::from_raw(record.as_ptr())) };
        }
    }

    fn small_config() -> HpConfig {
        HpConfig { slots_per_thread: 2, scan_slack: 8, block_capacity: 4 }
    }

    #[test]
    fn protect_validate_and_release() {
        let hp: Arc<HazardPointers<u64>> = Arc::new(HazardPointers::with_config(2, small_config()));
        let mut t = HazardPointers::register(&hp, 0).unwrap();
        let mut sink = CountingSink::default();
        let r = leak(1);

        let _ = t.leave_qstate(&mut sink);
        assert!(t.protect(0, r, || true));
        assert!(t.is_protected(r));
        assert!(hp.is_protected_by_any(r));

        // Failed validation clears the announcement.
        let r2 = leak(2);
        assert!(!t.protect(1, r2, || false));
        assert!(!t.is_protected(r2));

        t.enter_qstate();
        assert!(!t.is_protected(r), "enter_qstate releases all hazard pointers");

        unsafe {
            drop(Box::from_raw(r.as_ptr()));
            drop(Box::from_raw(r2.as_ptr()));
        }
    }

    #[test]
    fn protected_records_are_not_reclaimed_by_scan() {
        let hp: Arc<HazardPointers<u64>> = Arc::new(HazardPointers::with_config(2, small_config()));
        let mut victim_owner = HazardPointers::register(&hp, 0).unwrap();
        let mut reader = HazardPointers::register(&hp, 1).unwrap();
        let mut sink = FreeingSink { freed: Vec::new() };
        let mut reader_sink = CountingSink::default();

        let protected = leak(42);
        let _ = reader.leave_qstate(&mut reader_sink);
        assert!(reader.protect(0, protected, || true));

        let _ = victim_owner.leave_qstate(&mut sink);
        unsafe { victim_owner.retire(protected, &mut sink) };
        // Retire plenty more records to force several scans.
        for i in 0..200u64 {
            unsafe { victim_owner.retire(leak(i), &mut sink) };
        }
        victim_owner.enter_qstate();

        assert!(!sink.freed.is_empty(), "scans must reclaim unprotected records");
        assert!(
            !sink.freed.contains(&(protected.as_ptr() as usize)),
            "a record protected by another thread must not be reclaimed"
        );

        // Once the reader releases its hazard pointer, the record becomes reclaimable.
        reader.enter_qstate();
        let _ = victim_owner.leave_qstate(&mut sink);
        for i in 0..200u64 {
            unsafe { victim_owner.retire(leak(i), &mut sink) };
        }
        victim_owner.enter_qstate();
        assert!(sink.freed.contains(&(protected.as_ptr() as usize)));

        drop(victim_owner);
        drop(reader);
        for r in hp.drain_orphans() {
            unsafe { drop(Box::from_raw(r.as_ptr())) };
        }
    }

    #[test]
    fn scan_is_amortized() {
        // With n*k = 4 and slack 8, scans should happen roughly once every >= 12 retires,
        // not on every retire.
        let hp: Arc<HazardPointers<u64>> = Arc::new(HazardPointers::with_config(2, small_config()));
        let mut t = HazardPointers::register(&hp, 0).unwrap();
        let mut sink = FreeingSink { freed: Vec::new() };
        let _ = t.leave_qstate(&mut sink);
        for i in 0..11u64 {
            unsafe { t.retire(leak(i), &mut sink) };
        }
        assert!(sink.freed.is_empty(), "no scan before the threshold");
        for i in 0..10u64 {
            unsafe { t.retire(leak(100 + i), &mut sink) };
        }
        assert!(!sink.freed.is_empty(), "a scan must have been triggered past the threshold");
        t.enter_qstate();

        drop(t);
        for r in hp.drain_orphans() {
            unsafe { drop(Box::from_raw(r.as_ptr())) };
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn protecting_into_invalid_slot_panics() {
        let hp: Arc<HazardPointers<u64>> = Arc::new(HazardPointers::with_config(1, small_config()));
        let mut t = HazardPointers::register(&hp, 0).unwrap();
        let mut b = Box::new(7u64);
        let _ = t.protect(99, NonNull::from(&mut *b), || true);
    }
}

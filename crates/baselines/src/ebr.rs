//! Classical epoch based reclamation (Fraser-style), as characterized in the paper.

use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use blockbag::BlockBag;
use crossbeam_utils::CachePadded;
use debra::{
    CodeModifications, ReadProtection, ReclaimSink, Reclaimer, ReclaimerStats, ReclaimerThread,
    RegistrationError, SchemeProperties, Termination, ThreadStatsSlot, TimingAssumptions,
};

/// Announcement value of a thread that has never executed an operation.
const IDLE: u64 = u64::MAX;

/// Configuration for [`ClassicEbr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EbrConfig {
    /// Block capacity of the per-thread limbo bags.
    pub block_capacity: usize,
}

impl Default for EbrConfig {
    fn default() -> Self {
        EbrConfig { block_capacity: blockbag::DEFAULT_BLOCK_CAPACITY }
    }
}

/// Classical epoch based reclamation, implemented the way the paper describes it
/// (Section 3, "Epochs") so DEBRA's improvements can be measured against it:
///
/// * every `leave_qstate` reads **all** announcements (Θ(n) per operation, versus DEBRA's
///   amortized O(1) incremental scan);
/// * a thread's announcement persists *between* operations, so a thread that is parked
///   after finishing an operation still prevents every other thread from reclaiming
///   (DEBRA's quiescent bit removes exactly this failure mode);
/// * not fault tolerant: a thread that stalls inside an operation blocks reclamation
///   forever.
///
/// One simplification relative to Fraser's original is noted in `DESIGN.md`: limbo bags are
/// per-thread rather than shared, which only changes constant factors (it strictly favours
/// classic EBR, making the measured DEBRA advantage conservative).
pub struct ClassicEbr<T> {
    epoch: CachePadded<AtomicU64>,
    announce: Box<[CachePadded<AtomicU64>]>,
    stats: Box<[CachePadded<ThreadStatsSlot>]>,
    registered: Box<[AtomicBool]>,
    orphans: Mutex<Vec<NonNull<T>>>,
    config: EbrConfig,
    max_threads: usize,
}

impl<T: Send + 'static> ClassicEbr<T> {
    /// Creates shared state with a custom configuration.
    pub fn with_config(max_threads: usize, config: EbrConfig) -> Self {
        assert!(max_threads > 0);
        ClassicEbr {
            epoch: CachePadded::new(AtomicU64::new(0)),
            announce: (0..max_threads).map(|_| CachePadded::new(AtomicU64::new(IDLE))).collect(),
            stats: (0..max_threads).map(|_| CachePadded::new(ThreadStatsSlot::default())).collect(),
            registered: (0..max_threads).map(|_| AtomicBool::new(false)).collect(),
            orphans: Mutex::new(Vec::new()),
            config,
            max_threads,
        }
    }

    /// Current global epoch.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}

impl<T: Send + 'static> Reclaimer<T> for ClassicEbr<T> {
    type Thread = ClassicEbrThread<T>;

    fn new(max_threads: usize) -> Self {
        Self::with_config(max_threads, EbrConfig::default())
    }

    fn register(this: &Arc<Self>, tid: usize) -> Result<Self::Thread, RegistrationError> {
        if tid >= this.max_threads {
            return Err(RegistrationError::ThreadIdOutOfRange {
                tid,
                max_threads: this.max_threads,
            });
        }
        if this.registered[tid]
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Err(RegistrationError::AlreadyRegistered { tid });
        }
        this.announce[tid].store(IDLE, Ordering::SeqCst);
        let cap = this.config.block_capacity;
        Ok(ClassicEbrThread {
            global: Arc::clone(this),
            tid,
            bags: [
                BlockBag::with_block_capacity(cap),
                BlockBag::with_block_capacity(cap),
                BlockBag::with_block_capacity(cap),
            ],
            current: 0,
            last_seen_epoch: None,
            quiescent: true,
        })
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    fn name() -> &'static str {
        "EBR"
    }

    fn properties() -> SchemeProperties {
        SchemeProperties {
            name: "EBR",
            code_modifications: CodeModifications {
                per_accessed_record: false,
                per_operation: true,
                per_retired_record: true,
                other: "",
            },
            timing_assumptions: TimingAssumptions::None,
            fault_tolerant: false,
            termination: Termination::WaitFree,
            can_traverse_retired_to_retired: true,
        }
    }

    fn stats(&self) -> ReclaimerStats {
        let mut agg = ReclaimerStats::default();
        for s in self.stats.iter() {
            s.snapshot_into(&mut agg);
        }
        agg
    }

    fn drain_orphans(&self) -> Vec<NonNull<T>> {
        std::mem::take(&mut *self.orphans.lock().expect("orphans poisoned"))
    }
}

impl<T> fmt::Debug for ClassicEbr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassicEbr")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("max_threads", &self.max_threads)
            .finish()
    }
}

// SAFETY: raw pointers are stored (behind a mutex) but never dereferenced here.
unsafe impl<T: Send> Send for ClassicEbr<T> {}
unsafe impl<T: Send> Sync for ClassicEbr<T> {}

/// Per-thread handle of [`ClassicEbr`].
pub struct ClassicEbrThread<T: Send + 'static> {
    global: Arc<ClassicEbr<T>>,
    tid: usize,
    bags: [BlockBag<T>; 3],
    current: usize,
    last_seen_epoch: Option<u64>,
    quiescent: bool,
}

impl<T: Send + 'static> ClassicEbrThread<T> {
    fn rotate_and_reclaim<S: ReclaimSink<T>>(&mut self, sink: &mut S) {
        self.current = (self.current + 1) % 3;
        let mut reclaimed = 0u64;
        for block in self.bags[self.current].take_full_blocks() {
            reclaimed += block.len() as u64;
            sink.accept_block(block);
        }
        let stats = &self.global.stats[self.tid];
        stats.reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
        stats.publish_limbo(
            self.bags.iter().map(BlockBag::len).sum::<usize>() as u64,
            std::mem::size_of::<T>() as u64,
        );
    }
}

impl<T: Send + 'static> ReclaimerThread<T> for ClassicEbrThread<T> {
    // Epoch-style: records retired after an operation begins outlive the operation, so
    // unvalidated traversal (and therefore helping) is sound.
    const READ_PROTECTION: ReadProtection = ReadProtection::Pin;

    fn tid(&self) -> usize {
        self.tid
    }

    fn leave_qstate<S: ReclaimSink<T>>(&mut self, sink: &mut S) -> bool {
        self.quiescent = false;
        let global = Arc::clone(&self.global);
        let epoch = global.epoch.load(Ordering::SeqCst);
        global.announce[self.tid].store(epoch, Ordering::SeqCst);

        let mut rotated = false;
        if self.last_seen_epoch != Some(epoch) {
            self.last_seen_epoch = Some(epoch);
            self.rotate_and_reclaim(sink);
            rotated = true;
        }

        // Classic EBR: scan *every* announcement on every operation.
        let all_announced = global.announce.iter().all(|a| {
            let v = a.load(Ordering::SeqCst);
            v == epoch || v == IDLE
        });
        if all_announced {
            if global
                .epoch
                .compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                global.stats[self.tid].epochs_advanced.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            // Classic EBR's weakness: one thread parked on an old announcement (even
            // between operations — see `enter_qstate`) stalls everyone's epoch.
            global.stats[self.tid].epoch_stalls.fetch_add(1, Ordering::Relaxed);
        }
        global.stats[self.tid].operations.fetch_add(1, Ordering::Relaxed);
        rotated
    }

    fn enter_qstate(&mut self) {
        // Deliberately leaves the announcement in place: in classic EBR a thread parked
        // between operations still holds back the epoch (the behaviour DEBRA fixes).
        self.quiescent = true;
    }

    fn is_quiescent(&self) -> bool {
        self.quiescent
    }

    unsafe fn retire<S: ReclaimSink<T>>(&mut self, record: NonNull<T>, _sink: &mut S) {
        self.bags[self.current].push(record);
        let stats = &self.global.stats[self.tid];
        stats.retired.fetch_add(1, Ordering::Relaxed);
        stats.publish_limbo(
            self.bags.iter().map(BlockBag::len).sum::<usize>() as u64,
            std::mem::size_of::<T>() as u64,
        );
    }
}

impl<T: Send + 'static> Drop for ClassicEbrThread<T> {
    fn drop(&mut self) {
        let leftovers: Vec<NonNull<T>> =
            self.bags.iter_mut().flat_map(|b| b.drain().collect::<Vec<_>>()).collect();
        if !leftovers.is_empty() {
            self.global.orphans.lock().expect("orphans poisoned").extend(leftovers);
        }
        // An exited thread no longer holds back the epoch.
        self.global.announce[self.tid].store(IDLE, Ordering::SeqCst);
        self.global.registered[self.tid].store(false, Ordering::SeqCst);
    }
}

impl<T: Send + 'static> fmt::Debug for ClassicEbrThread<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassicEbrThread")
            .field("tid", &self.tid)
            .field("pending", &self.bags.iter().map(BlockBag::len).sum::<usize>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::CountingSink;

    fn leak(v: u64) -> NonNull<u64> {
        NonNull::from(Box::leak(Box::new(v)))
    }

    struct FreeingSink {
        freed: usize,
    }
    impl ReclaimSink<u64> for FreeingSink {
        fn accept(&mut self, record: NonNull<u64>) {
            unsafe { drop(Box::from_raw(record.as_ptr())) };
            self.freed += 1;
        }
    }

    fn tiny() -> EbrConfig {
        EbrConfig { block_capacity: 1 }
    }

    #[test]
    fn single_thread_reclaims() {
        let ebr: Arc<ClassicEbr<u64>> = Arc::new(ClassicEbr::with_config(1, tiny()));
        let mut t = ClassicEbr::register(&ebr, 0).unwrap();
        let mut sink = FreeingSink { freed: 0 };
        for i in 0..100u64 {
            let _ = t.leave_qstate(&mut sink);
            unsafe { t.retire(leak(i), &mut sink) };
            t.enter_qstate();
        }
        assert!(sink.freed > 0);
        let stats = ebr.stats();
        assert_eq!(stats.retired, 100);
        assert!(stats.epochs_advanced > 0);
        drop(t);
        for r in ebr.drain_orphans() {
            unsafe { drop(Box::from_raw(r.as_ptr())) };
        }
    }

    #[test]
    fn idle_thread_between_operations_blocks_reclamation() {
        // This is exactly the weakness DEBRA fixes: a thread that has *finished* its
        // operation but does not start a new one still pins the epoch.
        let ebr: Arc<ClassicEbr<u64>> = Arc::new(ClassicEbr::with_config(2, tiny()));
        let mut a = ClassicEbr::register(&ebr, 0).unwrap();
        let mut b = ClassicEbr::register(&ebr, 1).unwrap();
        let mut sink = CountingSink::default();

        // B performs one full operation, then goes idle (announcement sticks around).
        let _ = b.leave_qstate(&mut sink);
        b.enter_qstate();
        let b_epoch_at_idle = ebr.current_epoch();

        let mut retired = Vec::new();
        for i in 0..300u64 {
            let _ = a.leave_qstate(&mut sink);
            let r = leak(i);
            retired.push(r);
            unsafe { a.retire(r, &mut sink) };
            a.enter_qstate();
        }
        // The epoch can advance at most twice past B's announcement (it then waits for B),
        // so essentially nothing can be reclaimed.
        assert!(ebr.current_epoch() <= b_epoch_at_idle + 2);
        assert!(
            sink.accepted <= 2,
            "an idle thread should stall classic EBR (got {} reclamations)",
            sink.accepted
        );

        drop(a);
        drop(b);
        for r in ebr.drain_orphans() {
            unsafe { drop(Box::from_raw(r.as_ptr())) };
        }
        // Free whatever the counting sink "reclaimed" (it does not own memory): nothing to
        // do — records were either freed via orphans above or counted-but-leaked (<= 2).
        let _ = retired;
    }

    #[test]
    fn grace_period_respected_across_threads() {
        let ebr: Arc<ClassicEbr<u64>> = Arc::new(ClassicEbr::with_config(2, tiny()));
        let mut a = ClassicEbr::register(&ebr, 0).unwrap();
        let mut b = ClassicEbr::register(&ebr, 1).unwrap();
        let mut sink = CountingSink::default();

        // B is inside an operation; A retires a record.
        let _ = b.leave_qstate(&mut sink);
        let _ = a.leave_qstate(&mut sink);
        let r = leak(1);
        unsafe { a.retire(r, &mut sink) };
        a.enter_qstate();

        for _ in 0..50 {
            let _ = a.leave_qstate(&mut sink);
            a.enter_qstate();
        }
        assert_eq!(sink.accepted, 0, "record must not be reclaimed while B is stuck in its op");

        // B keeps performing operations, so its announcement keeps up and epochs advance.
        for _ in 0..50 {
            let _ = b.leave_qstate(&mut sink);
            b.enter_qstate();
            let _ = a.leave_qstate(&mut sink);
            a.enter_qstate();
        }
        assert!(sink.accepted >= 1);

        unsafe { drop(Box::from_raw(r.as_ptr())) };
        drop(a);
        drop(b);
        for o in ebr.drain_orphans() {
            unsafe { drop(Box::from_raw(o.as_ptr())) };
        }
    }
}

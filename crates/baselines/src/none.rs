//! The "no reclamation" baseline.

use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use debra::{
    CodeModifications, ReadProtection, ReclaimSink, Reclaimer, ReclaimerStats, ReclaimerThread,
    RegistrationError, SchemeProperties, Termination, ThreadStatsSlot, TimingAssumptions,
};

/// The paper's "None" baseline: retired records are simply abandoned.
///
/// Used as the throughput upper bound in every experiment (a data structure that performs
/// no reclamation pays no overhead but its memory footprint grows without bound).  Records
/// are released only when the backing allocator is torn down (e.g. the bump arena) or when
/// the data structure is dropped.
pub struct NoReclaim<T> {
    stats: Box<[CachePadded<ThreadStatsSlot>]>,
    registered: Box<[std::sync::atomic::AtomicBool]>,
    max_threads: usize,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Send + 'static> Reclaimer<T> for NoReclaim<T> {
    type Thread = NoReclaimThread<T>;

    fn new(max_threads: usize) -> Self {
        assert!(max_threads > 0);
        NoReclaim {
            stats: (0..max_threads).map(|_| CachePadded::new(ThreadStatsSlot::default())).collect(),
            registered: (0..max_threads)
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect(),
            max_threads,
            _marker: std::marker::PhantomData,
        }
    }

    fn register(this: &Arc<Self>, tid: usize) -> Result<Self::Thread, RegistrationError> {
        if tid >= this.max_threads {
            return Err(RegistrationError::ThreadIdOutOfRange {
                tid,
                max_threads: this.max_threads,
            });
        }
        if this.registered[tid]
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Err(RegistrationError::AlreadyRegistered { tid });
        }
        Ok(NoReclaimThread { global: Arc::clone(this), tid, quiescent: true })
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    fn name() -> &'static str {
        "None"
    }

    fn properties() -> SchemeProperties {
        SchemeProperties {
            name: "None",
            code_modifications: CodeModifications {
                per_accessed_record: false,
                per_operation: false,
                per_retired_record: false,
                other: "memory footprint grows without bound",
            },
            timing_assumptions: TimingAssumptions::None,
            fault_tolerant: true, // vacuously: nothing is ever reclaimed
            termination: Termination::WaitFree,
            can_traverse_retired_to_retired: true,
        }
    }

    fn stats(&self) -> ReclaimerStats {
        let mut agg = ReclaimerStats::default();
        for s in self.stats.iter() {
            s.snapshot_into(&mut agg);
        }
        agg
    }
}

impl<T> fmt::Debug for NoReclaim<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NoReclaim").field("max_threads", &self.max_threads).finish()
    }
}

/// Per-thread handle of [`NoReclaim`].
pub struct NoReclaimThread<T> {
    global: Arc<NoReclaim<T>>,
    tid: usize,
    quiescent: bool,
}

impl<T: Send + 'static> ReclaimerThread<T> for NoReclaimThread<T> {
    // Nothing is ever freed, so any traversal is trivially sound.
    const READ_PROTECTION: ReadProtection = ReadProtection::Pin;

    fn tid(&self) -> usize {
        self.tid
    }

    fn leave_qstate<S: ReclaimSink<T>>(&mut self, _sink: &mut S) -> bool {
        self.quiescent = false;
        self.global.stats[self.tid].operations.fetch_add(1, Ordering::Relaxed);
        false
    }

    fn enter_qstate(&mut self) {
        self.quiescent = true;
    }

    fn is_quiescent(&self) -> bool {
        self.quiescent
    }

    unsafe fn retire<S: ReclaimSink<T>>(&mut self, _record: NonNull<T>, _sink: &mut S) {
        // Abandon the record: the whole point of this baseline.  The limbo gauge only
        // ever grows — the unbounded-garbage contrast every bounded scheme is measured
        // against.
        let stats = &self.global.stats[self.tid];
        stats.retired.fetch_add(1, Ordering::Relaxed);
        let pending = stats.pending.load(Ordering::Relaxed) + 1;
        stats.publish_limbo(pending, std::mem::size_of::<T>() as u64);
    }
}

impl<T> Drop for NoReclaimThread<T> {
    fn drop(&mut self) {
        self.global.registered[self.tid].store(false, Ordering::SeqCst);
    }
}

impl<T> fmt::Debug for NoReclaimThread<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NoReclaimThread").field("tid", &self.tid).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::CountingSink;

    #[test]
    fn retire_abandons_records() {
        let none: Arc<NoReclaim<u64>> = Arc::new(NoReclaim::new(1));
        let mut t = NoReclaim::register(&none, 0).unwrap();
        let mut sink = CountingSink::default();
        let mut boxes: Vec<Box<u64>> = (0..10).map(Box::new).collect();
        let _ = t.leave_qstate(&mut sink);
        for b in &mut boxes {
            unsafe { t.retire(NonNull::from(&mut **b), &mut sink) };
        }
        t.enter_qstate();
        assert_eq!(sink.accepted, 0, "None must never reclaim");
        let stats = none.stats();
        assert_eq!(stats.retired, 10);
        assert_eq!(stats.pending, 10);
        assert_eq!(stats.reclaimed, 0);
    }

    #[test]
    fn registration_lifecycle() {
        let none: Arc<NoReclaim<u64>> = Arc::new(NoReclaim::new(2));
        let t0 = NoReclaim::register(&none, 0).unwrap();
        assert!(NoReclaim::register(&none, 0).is_err());
        drop(t0);
        assert!(NoReclaim::register(&none, 0).is_ok());
        assert!(NoReclaim::register(&none, 7).is_err());
    }

    #[test]
    fn properties_reflect_no_reclamation() {
        let p = <NoReclaim<u64> as Reclaimer<u64>>::properties();
        assert!(!p.code_modifications.per_retired_record);
        assert!(p.can_traverse_retired_to_retired);
    }
}

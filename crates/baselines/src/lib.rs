//! Baseline safe-memory-reclamation schemes.
//!
//! These are the schemes the paper's evaluation (Section 7) compares DEBRA and DEBRA+
//! against, implemented from scratch against the same [`Reclaimer`](debra::Reclaimer)
//! trait so that any of them can be dropped into a data structure by changing one type
//! parameter of the Record Manager:
//!
//! * [`NoReclaim`] — performs no reclamation at all (the paper's "None" line, the upper
//!   bound on throughput and the lower bound on memory hygiene).
//! * [`ClassicEbr`] — classical epoch based reclamation in the style the paper attributes
//!   to Fraser: every operation scans *all* announcements, and a thread parked between
//!   operations still blocks reclamation.  Serves to isolate which of DEBRA's changes buy
//!   the performance and robustness.
//! * [`HazardPointers`] — Michael-style hazard pointers with per-access announcements,
//!   per-announcement memory fences, and amortized O(1) scanning on retire.  Following the
//!   paper's experimental setup, the data structures in `lockfree-ds` use it by restarting
//!   operations whenever they cannot certify that a record is still in the data structure
//!   (which, as Section 3 explains at length, sacrifices lock-freedom for many structures).
//! * [`ThreadScanLite`] — a simplified stand-in for ThreadScan: no per-access memory
//!   fences on the fast path; reclamation takes a global lock, signals every thread and
//!   waits for each of them to acknowledge (or become quiescent), then frees unprotected
//!   records.  Captures ThreadScan's performance profile and its blocking/fault-intolerant
//!   nature; see `DESIGN.md` for why the original's stack/register scanning is not
//!   reproducible in safe Rust.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ebr;
mod hazard;
mod none;
mod threadscan;

pub use ebr::{ClassicEbr, ClassicEbrThread, EbrConfig};
pub use hazard::{HazardPointers, HazardPointersThread, HpConfig};
pub use none::{NoReclaim, NoReclaimThread};
pub use threadscan::{ThreadScanConfig, ThreadScanLite, ThreadScanLiteThread};

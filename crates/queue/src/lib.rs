//! Lock-free FIFO and LIFO containers written against the **safe guard layer** of the
//! Record Manager abstraction: the Michael–Scott MPMC queue ([`MsQueue`]) and the Treiber
//! stack ([`TreiberStack`]).
//!
//! These are the repository's first **non-map** structures: the paper's evaluation (and
//! every structure in `lockfree-ds`/`smr-hashmap`) is map-shaped, where garbage
//! generation scales with the *update ratio* of the operation mix.  A queue has no such
//! regime — **every successful dequeue retires a node** — so limbo pressure is
//! proportional to raw throughput, which is what makes queues the canonical stress case
//! for a reclamation scheme (Cohen's "Every Data Structure Deserves Lock-Free Memory
//! Reclamation" uses exactly this argument).  Both structures implement
//! [`lockfree_ds::ConcurrentBag`], run under all seven schemes of this workspace, and —
//! like the whole crate — contain no `unsafe` code at all, enforced by
//! `#![forbid(unsafe_code)]`.
//!
//! # The dequeue protection window (HP / ThreadScan / IBR)
//!
//! The queue's traversal-free hot path needs only a **two-shield window**: the sentinel
//! head and its successor.  The successor's protection cannot use the validated
//! [`Shield::protect`](debra::Shield::protect) protocol, because the link it was read
//! from — the head node's `next` — is written exactly once and never changes: re-reading
//! it validates nothing (it still matches long after the successor has been dequeued,
//! retired and freed).  The sound protocol (Michael 2004) validates **the head link
//! itself**: as long as `head` still points at our shield-protected sentinel, the
//! successor cannot yet have been retired, because retiring it requires the head to
//! first advance onto it.  That cross-link validation is the guard layer's
//! [`Shield::protect_anchored`](debra::Shield::protect_anchored) primitive, added for
//! this structure (no map-shaped traversal needs it: maps always re-validate the link
//! they followed).
//!
//! The Treiber stack is simpler still: one shield on the top node, validated against the
//! `top` link it was read from — plain [`Shield::protect_loaded`](debra::Shield::protect_loaded).
//! In both structures the winner of the unlink CAS is the unique retirer (the guard
//! layer's documented retire-once contract), and ABA on the unlink CAS is ruled out by
//! the protection itself: the compared node is protected for the whole window, so it
//! cannot be freed and recycled into a new head/top with the same address.
//!
//! # Neutralization (DEBRA+)
//!
//! Operation bodies run under [`DomainHandle::run`](debra::DomainHandle::run) and
//! surface every checkpoint as the typed [`Restart`]: a dequeue neutralized between
//! protecting its window and its head CAS unwinds, recovers and restarts — the cloned
//! value of the failed attempt is dropped, so no value is ever delivered twice.  After
//! the decision CAS of an operation succeeds there are **no further checkpoints**, so a
//! successful push/pop is never re-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use debra::{
    Allocator, Atomic, Domain, DomainHandle, Guard, Pool, Reclaimer, RecordManager,
    RegistrationError, Restart, Shared,
};
use lockfree_ds::ConcurrentBag;

// ---------------------------------------------------------------------------------------
// Michael–Scott queue

/// A node of [`MsQueue`].
///
/// The queue always holds one *sentinel* node: the node `head` points to carries no
/// value (`None` only for the initial sentinel; a dequeued node keeps its value until
/// the node is recycled, which is harmless — the value was already delivered from the
/// successor position).  `next` is written exactly once, by the enqueue that links the
/// successor in, and never changes afterwards.
pub struct QueueNode<V> {
    value: Option<V>,
    next: Atomic<QueueNode<V>>,
}

impl<V: fmt::Debug> fmt::Debug for QueueNode<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueNode").field("value", &self.value).finish()
    }
}

/// A lock-free MPMC FIFO queue (Michael & Scott, PODC 1996), parameterized by the Record
/// Manager (reclaimer `R`, pool `P`, allocator `A`) through a [`Domain`].
///
/// `head` points at the current sentinel; the first real element is the sentinel's
/// successor.  A dequeue advances `head` onto the successor (which becomes the new
/// sentinel) and retires the old sentinel; an enqueue links a node after `tail` and then
/// swings `tail` (lagging `tail` is helped forward by both operations — the help is a
/// plain CAS on the `tail` word and dereferences nothing, so it is sound under every
/// scheme, unlike descriptor helping).
pub struct MsQueue<V, R, P, A>
where
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<QueueNode<V>>,
    P: Pool<QueueNode<V>>,
    A: Allocator<QueueNode<V>>,
{
    head: Atomic<QueueNode<V>>,
    tail: Atomic<QueueNode<V>>,
    domain: Domain<QueueNode<V>, R, P, A>,
}

/// Shorthand for the per-thread handle type used by [`MsQueue`].
pub type QueueHandle<V, R, P, A> = DomainHandle<QueueNode<V>, R, P, A>;

/// Shorthand for the guard type of [`MsQueue`] operations.
pub type QueueGuard<V, R, P, A> = Guard<QueueNode<V>, R, P, A>;

impl<V, R, P, A> MsQueue<V, R, P, A>
where
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<QueueNode<V>>,
    P: Pool<QueueNode<V>>,
    A: Allocator<QueueNode<V>>,
{
    /// Creates an empty queue backed by `manager`.
    pub fn new(manager: Arc<RecordManager<QueueNode<V>, R, P, A>>) -> Self {
        Self::in_domain(Domain::with_manager(manager))
    }

    /// Creates an empty queue backed by an existing [`Domain`] (sharing its thread
    /// leases).
    pub fn in_domain(domain: Domain<QueueNode<V>, R, P, A>) -> Self {
        // The initial sentinel is published at construction time, while the structure is
        // still private to this thread; `head` and `tail` both point at it.
        let guard = domain.pin();
        let sentinel = guard.alloc(QueueNode { value: None, next: Atomic::null() });
        let tail = Atomic::from_shared(sentinel.shared());
        let head = Atomic::from_owned(sentinel);
        drop(guard);
        MsQueue { head, tail, domain }
    }

    /// The Record Manager backing this queue.
    pub fn manager(&self) -> &Arc<RecordManager<QueueNode<V>, R, P, A>> {
        self.domain.manager()
    }

    /// The reclamation domain backing this queue.
    pub fn domain(&self) -> &Domain<QueueNode<V>, R, P, A> {
        &self.domain
    }

    /// Leases a per-thread handle; see [`ConcurrentBag::register`].
    pub fn register(&self) -> Result<QueueHandle<V, R, P, A>, RegistrationError> {
        self.domain.try_handle()
    }

    fn enqueue_body(&self, guard: &QueueGuard<V, R, P, A>, value: &V) -> Result<(), Restart> {
        let mut tail_shield = guard.shield();
        // The node is allocated once per operation; a lost link CAS recycles it through
        // `discard` and retries with a fresh allocation inside the loop below.
        loop {
            guard.check()?;
            let tail_word = self.tail.load(Ordering::Acquire, guard);
            // Announce-and-validate the tail node against the tail link (the tail never
            // lags behind the head: a dequeuer whose sentinel equals the tail swings the
            // tail before advancing the head, so a validated tail is never retired).
            let Ok(tail) = tail_shield.protect_loaded(&self.tail, tail_word) else {
                continue;
            };
            let tail_ref = tail.as_ref().expect("the queue always holds a sentinel node");
            let next = tail_ref.next.load(Ordering::Acquire, guard);
            if !next.is_null() {
                // The tail lags: help it forward.  A plain word CAS — nothing is
                // dereferenced — so this help is sound under every scheme.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                );
                continue;
            }
            let node = guard.alloc(QueueNode { value: Some(value.clone()), next: Atomic::null() });
            if let Err(restart) = guard.check() {
                // Not yet published: recycle immediately, then unwind to recovery.
                guard.discard(node);
                return Err(restart);
            }
            match tail_ref.next.compare_exchange_owned(
                Shared::null(),
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(published) => {
                    // Linearized: swing the tail (best effort; failures mean someone
                    // helped already).  No checkpoint may run between the successful
                    // link CAS and returning, or a neutralization would re-enqueue.
                    let _ = self.tail.compare_exchange(
                        tail,
                        published,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    );
                    return Ok(());
                }
                Err(node) => {
                    // Another enqueue won the race; recycle and retry.
                    guard.discard(node);
                    continue;
                }
            }
        }
    }

    fn dequeue_body(&self, guard: &QueueGuard<V, R, P, A>) -> Result<Option<V>, Restart> {
        let mut head_shield = guard.shield();
        let mut next_shield = guard.shield();
        loop {
            guard.check()?;
            let head_word = self.head.load(Ordering::Acquire, guard);
            // Shield 1: the sentinel, validated against the head link it was read from.
            let Ok(head) = head_shield.protect_loaded(&self.head, head_word) else {
                continue;
            };
            let head_ref = head.as_ref().expect("the queue always holds a sentinel node");
            let tail = self.tail.load(Ordering::Acquire, guard);
            let next_word = head_ref.next.load(Ordering::Acquire, guard);
            // Shield 2: the successor — anchored to the *head link* (see the module
            // docs: re-validating `head_ref.next` would be worthless, since next links
            // never change; "the head has not moved off our protected sentinel" is what
            // proves the successor is not yet retired).
            let Ok(next) = next_shield.protect_anchored(next_word, &self.head, head) else {
                continue;
            };
            if head == tail {
                let Some(next_ref) = next.as_ref() else {
                    // head == tail and no successor: linearizably empty.
                    return Ok(None);
                };
                let _ = next_ref; // the successor exists: the tail lags — help it.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                );
                continue;
            }
            let Some(next_ref) = next.as_ref() else {
                // Transient inconsistency (head advanced between our head and next
                // reads); restart the window.
                continue;
            };
            // Read the value out of the successor *before* the head CAS (after the CAS
            // this thread must not fail another checkpoint, and other threads may
            // recycle the old sentinel the moment we retire it).
            let value =
                next_ref.value.clone().expect("every node behind the sentinel carries a value");
            if let Err(restart) = guard.check() {
                // Neutralized mid-dequeue, before the decision CAS: drop the cloned
                // value and restart — nothing was linearized.
                drop(value);
                return Err(restart);
            }
            match self.head.compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire, guard)
            {
                Ok(()) => {
                    // The old sentinel was unlinked by this thread (unique CAS winner)
                    // and is retired exactly once, here.
                    guard.retire(head);
                    return Ok(Some(value));
                }
                Err(_) => continue,
            }
        }
    }

    /// Counts the elements by a full traversal; test/diagnostic helper.
    ///
    /// The traversal announces no per-node protection, which only epoch-style schemes
    /// honor; under protection-based schemes (HP, ThreadScan, IBR) call it only when no
    /// other thread is updating the queue.
    pub fn len(&self, handle: &mut QueueHandle<V, R, P, A>) -> usize {
        handle.run(|guard| {
            let mut n = 0;
            // The sentinel carries no element: start counting at its successor.
            let mut curr = self.head.load(Ordering::Acquire, guard);
            while let Some(node) = curr.as_ref() {
                let next = node.next.load(Ordering::Acquire, guard);
                if !next.is_null() {
                    n += 1;
                }
                curr = next;
            }
            Ok(n)
        })
    }

    /// Returns `true` if the queue is empty (diagnostic helper; see [`MsQueue::len`]).
    pub fn is_empty(&self, handle: &mut QueueHandle<V, R, P, A>) -> bool {
        self.len(handle) == 0
    }
}

impl<V, R, P, A> ConcurrentBag<V> for MsQueue<V, R, P, A>
where
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<QueueNode<V>>,
    P: Pool<QueueNode<V>>,
    A: Allocator<QueueNode<V>>,
{
    type Handle = QueueHandle<V, R, P, A>;

    fn register(&self) -> Result<Self::Handle, RegistrationError> {
        self.domain.try_handle()
    }

    fn push(&self, handle: &mut Self::Handle, value: V) {
        handle.run(|guard| self.enqueue_body(guard, &value))
    }

    fn pop(&self, handle: &mut Self::Handle) -> Option<V> {
        handle.run(|guard| self.dequeue_body(guard))
    }
}

impl<V, R, P, A> Drop for MsQueue<V, R, P, A>
where
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<QueueNode<V>>,
    P: Pool<QueueNode<V>>,
    A: Allocator<QueueNode<V>>,
{
    fn drop(&mut self) {
        // Exclusive access during drop (`&mut self`); the chain from the sentinel covers
        // every live node exactly once.
        self.domain.free_reachable(self.head.load_ptr(Ordering::Relaxed), |node| {
            node.next.load_ptr(Ordering::Relaxed)
        });
    }
}

impl<V, R, P, A> fmt::Debug for MsQueue<V, R, P, A>
where
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<QueueNode<V>>,
    P: Pool<QueueNode<V>>,
    A: Allocator<QueueNode<V>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MsQueue").field("reclaimer", &R::name()).finish()
    }
}

// ---------------------------------------------------------------------------------------
// Treiber stack

/// A node of [`TreiberStack`].
pub struct StackNode<V> {
    value: V,
    next: Atomic<StackNode<V>>,
}

impl<V: fmt::Debug> fmt::Debug for StackNode<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StackNode").field("value", &self.value).finish()
    }
}

/// A lock-free LIFO stack (Treiber, 1986), parameterized by the Record Manager through a
/// [`Domain`].
///
/// Pushes CAS a private node onto `top`; pops protect the top node (one shield,
/// validated against the `top` link), CAS `top` to its successor, and the winner retires
/// the popped node.  The protection doubles as the ABA defense: the compared node cannot
/// be freed and recycled into a new top with the same address while announced.
pub struct TreiberStack<V, R, P, A>
where
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<StackNode<V>>,
    P: Pool<StackNode<V>>,
    A: Allocator<StackNode<V>>,
{
    top: Atomic<StackNode<V>>,
    domain: Domain<StackNode<V>, R, P, A>,
}

/// Shorthand for the per-thread handle type used by [`TreiberStack`].
pub type StackHandle<V, R, P, A> = DomainHandle<StackNode<V>, R, P, A>;

/// Shorthand for the guard type of [`TreiberStack`] operations.
pub type StackGuard<V, R, P, A> = Guard<StackNode<V>, R, P, A>;

impl<V, R, P, A> TreiberStack<V, R, P, A>
where
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<StackNode<V>>,
    P: Pool<StackNode<V>>,
    A: Allocator<StackNode<V>>,
{
    /// Creates an empty stack backed by `manager`.
    pub fn new(manager: Arc<RecordManager<StackNode<V>, R, P, A>>) -> Self {
        Self::in_domain(Domain::with_manager(manager))
    }

    /// Creates an empty stack backed by an existing [`Domain`] (sharing its thread
    /// leases).
    pub fn in_domain(domain: Domain<StackNode<V>, R, P, A>) -> Self {
        TreiberStack { top: Atomic::null(), domain }
    }

    /// The Record Manager backing this stack.
    pub fn manager(&self) -> &Arc<RecordManager<StackNode<V>, R, P, A>> {
        self.domain.manager()
    }

    /// The reclamation domain backing this stack.
    pub fn domain(&self) -> &Domain<StackNode<V>, R, P, A> {
        &self.domain
    }

    /// Leases a per-thread handle; see [`ConcurrentBag::register`].
    pub fn register(&self) -> Result<StackHandle<V, R, P, A>, RegistrationError> {
        self.domain.try_handle()
    }

    fn push_body(&self, guard: &StackGuard<V, R, P, A>, value: &V) -> Result<(), Restart> {
        loop {
            guard.check()?;
            let top = self.top.load(Ordering::Acquire, guard);
            // The top is only *compared*, never dereferenced, on the push path — no
            // shield needed.
            let node =
                guard.alloc(StackNode { value: value.clone(), next: Atomic::from_shared(top) });
            if let Err(restart) = guard.check() {
                guard.discard(node);
                return Err(restart);
            }
            match self.top.compare_exchange_owned(
                top,
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(_) => return Ok(()),
                Err(node) => {
                    guard.discard(node);
                    continue;
                }
            }
        }
    }

    fn pop_body(&self, guard: &StackGuard<V, R, P, A>) -> Result<Option<V>, Restart> {
        let mut top_shield = guard.shield();
        loop {
            guard.check()?;
            let top_word = self.top.load(Ordering::Acquire, guard);
            if top_word.is_null() {
                return Ok(None);
            }
            let Ok(top) = top_shield.protect_loaded(&self.top, top_word) else {
                continue;
            };
            let top_ref = top.as_ref().expect("checked non-null above");
            let next = top_ref.next.load(Ordering::Acquire, guard);
            // Clone before the decision CAS (no checkpoint may run after it).
            let value = top_ref.value.clone();
            if let Err(restart) = guard.check() {
                drop(value);
                return Err(restart);
            }
            match self.top.compare_exchange(top, next, Ordering::AcqRel, Ordering::Acquire, guard) {
                Ok(()) => {
                    // Unlinked by this thread (unique CAS winner): retired exactly once.
                    guard.retire(top);
                    return Ok(Some(value));
                }
                Err(_) => continue,
            }
        }
    }

    /// Counts the elements by a full traversal; test/diagnostic helper (same epoch-only
    /// caveat as [`MsQueue::len`]).
    pub fn len(&self, handle: &mut StackHandle<V, R, P, A>) -> usize {
        handle.run(|guard| {
            let mut n = 0;
            let mut curr = self.top.load(Ordering::Acquire, guard);
            while let Some(node) = curr.as_ref() {
                n += 1;
                curr = node.next.load(Ordering::Acquire, guard);
            }
            Ok(n)
        })
    }

    /// Returns `true` if the stack is empty (diagnostic helper).
    pub fn is_empty(&self, handle: &mut StackHandle<V, R, P, A>) -> bool {
        self.len(handle) == 0
    }
}

impl<V, R, P, A> ConcurrentBag<V> for TreiberStack<V, R, P, A>
where
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<StackNode<V>>,
    P: Pool<StackNode<V>>,
    A: Allocator<StackNode<V>>,
{
    type Handle = StackHandle<V, R, P, A>;

    fn register(&self) -> Result<Self::Handle, RegistrationError> {
        self.domain.try_handle()
    }

    fn push(&self, handle: &mut Self::Handle, value: V) {
        handle.run(|guard| self.push_body(guard, &value))
    }

    fn pop(&self, handle: &mut Self::Handle) -> Option<V> {
        handle.run(|guard| self.pop_body(guard))
    }
}

impl<V, R, P, A> Drop for TreiberStack<V, R, P, A>
where
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<StackNode<V>>,
    P: Pool<StackNode<V>>,
    A: Allocator<StackNode<V>>,
{
    fn drop(&mut self) {
        self.domain.free_reachable(self.top.load_ptr(Ordering::Relaxed), |node| {
            node.next.load_ptr(Ordering::Relaxed)
        });
    }
}

impl<V, R, P, A> fmt::Debug for TreiberStack<V, R, P, A>
where
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<StackNode<V>>,
    P: Pool<StackNode<V>>,
    A: Allocator<StackNode<V>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TreiberStack").field("reclaimer", &R::name()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::Debra;
    use smr_alloc::{SystemAllocator, ThreadPool};

    type QNode = QueueNode<u64>;
    type TestQueue = MsQueue<u64, Debra<QNode>, ThreadPool<QNode>, SystemAllocator<QNode>>;
    type SNode = StackNode<u64>;
    type TestStack = TreiberStack<u64, Debra<SNode>, ThreadPool<SNode>, SystemAllocator<SNode>>;

    fn new_queue(threads: usize) -> TestQueue {
        MsQueue::new(Arc::new(RecordManager::new(threads)))
    }

    fn new_stack(threads: usize) -> TestStack {
        TreiberStack::new(Arc::new(RecordManager::new(threads)))
    }

    #[test]
    fn queue_is_fifo_sequentially() {
        let q = new_queue(1);
        let mut h = q.register().unwrap();
        assert_eq!(q.pop(&mut h), None);
        for i in 0..100u64 {
            q.push(&mut h, i);
        }
        assert_eq!(q.len(&mut h), 100);
        for i in 0..100u64 {
            assert_eq!(q.pop(&mut h), Some(i), "FIFO order");
        }
        assert_eq!(q.pop(&mut h), None);
        assert!(q.is_empty(&mut h));
    }

    #[test]
    fn stack_is_lifo_sequentially() {
        let s = new_stack(1);
        let mut h = s.register().unwrap();
        assert_eq!(s.pop(&mut h), None);
        for i in 0..100u64 {
            s.push(&mut h, i);
        }
        assert_eq!(s.len(&mut h), 100);
        for i in (0..100u64).rev() {
            assert_eq!(s.pop(&mut h), Some(i), "LIFO order");
        }
        assert_eq!(s.pop(&mut h), None);
        assert!(s.is_empty(&mut h));
    }

    #[test]
    fn queue_interleaved_push_pop_keeps_order() {
        let q = new_queue(1);
        let mut h = q.register().unwrap();
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        // Deterministic interleaving: pushes run ahead of pops by a varying amount.
        for round in 0..200u64 {
            for _ in 0..(round % 5) + 1 {
                q.push(&mut h, next_push);
                next_push += 1;
            }
            for _ in 0..(round % 3) + 1 {
                if next_pop < next_push {
                    assert_eq!(q.pop(&mut h), Some(next_pop));
                    next_pop += 1;
                } else {
                    assert_eq!(q.pop(&mut h), None);
                }
            }
        }
        while next_pop < next_push {
            assert_eq!(q.pop(&mut h), Some(next_pop));
            next_pop += 1;
        }
        assert_eq!(q.pop(&mut h), None);
    }

    /// MPMC transfer: every pushed value is popped exactly once, and each producer's
    /// values come out in FIFO order relative to each other.
    #[test]
    fn queue_concurrent_transfer_is_lossless_and_per_producer_fifo() {
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER_PRODUCER: u64 = 5_000;
        let q = Arc::new(new_queue(PRODUCERS + CONSUMERS + 1));
        let mut joins = Vec::new();
        for p in 0..PRODUCERS as u64 {
            let q = Arc::clone(&q);
            joins.push(std::thread::spawn(move || {
                let mut h = q.register().unwrap();
                for i in 0..PER_PRODUCER {
                    q.push(&mut h, (p << 32) | i);
                }
                Vec::new()
            }));
        }
        let total = PRODUCERS as u64 * PER_PRODUCER;
        let popped = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for _ in 0..CONSUMERS {
            let q = Arc::clone(&q);
            let popped = Arc::clone(&popped);
            joins.push(std::thread::spawn(move || {
                let mut h = q.register().unwrap();
                let mut got = Vec::new();
                while popped.load(std::sync::atomic::Ordering::Relaxed) < total {
                    match q.pop(&mut h) {
                        Some(v) => {
                            got.push(v);
                            popped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        None => std::thread::yield_now(),
                    }
                }
                got
            }));
        }
        let mut all: Vec<u64> = Vec::new();
        let mut per_consumer: Vec<Vec<u64>> = Vec::new();
        for j in joins {
            let got = j.join().unwrap();
            if !got.is_empty() {
                per_consumer.push(got.clone());
                all.extend(got);
            }
        }
        // Lossless, no duplicates.
        assert_eq!(all.len() as u64, total);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len() as u64, total, "no value may be delivered twice");
        // Per-producer FIFO: within one consumer's stream, any two values of the same
        // producer appear in increasing sequence order.
        for stream in &per_consumer {
            let mut last = [None::<u64>; PRODUCERS];
            for v in stream {
                let (p, seq) = ((v >> 32) as usize, v & 0xFFFF_FFFF);
                if let Some(prev) = last[p] {
                    assert!(seq > prev, "producer {p} order violated: {seq} after {prev}");
                }
                last[p] = Some(seq);
            }
        }
    }

    #[test]
    fn stack_concurrent_transfer_is_lossless() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 5_000;
        let s = Arc::new(new_stack(THREADS + 1));
        let mut joins = Vec::new();
        for t in 0..THREADS as u64 {
            let s = Arc::clone(&s);
            joins.push(std::thread::spawn(move || {
                let mut h = s.register().unwrap();
                let mut got = Vec::new();
                for i in 0..PER_THREAD {
                    s.push(&mut h, (t << 32) | i);
                    if i % 2 == 0 {
                        if let Some(v) = s.pop(&mut h) {
                            got.push(v);
                        }
                    }
                }
                got
            }));
        }
        let mut all: Vec<u64> = Vec::new();
        for j in joins {
            all.extend(j.join().unwrap());
        }
        // Drain the rest.
        let mut h = s.register().unwrap();
        while let Some(v) = s.pop(&mut h) {
            all.push(v);
        }
        assert_eq!(all.len() as u64, THREADS as u64 * PER_THREAD);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len() as u64, THREADS as u64 * PER_THREAD, "no duplicates");
    }
}

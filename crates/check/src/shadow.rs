//! The shadow lifecycle table and its hook functions.
//!
//! One process-global table maps record addresses to shadow cells. Hooks build
//! a possible [`Violation`] while holding the table lock, release the lock,
//! then hand it to the report sink (`report::emit`) — so panic mode never
//! poisons the table and never fires under a held lock.
//!
//! Hook ordering contracts (they matter for soundness — see DESIGN.md §9):
//!
//! * `on_protect_begin` runs *before* the real announcement overwrites a slot
//!   (clearing the old shadow protection early can at worst hide a real
//!   violation for one race window, never invent one), and
//!   `on_protect_commit` runs *after* the real protect validated (the real
//!   announcement is already visible, so the scheme cannot free the record
//!   between validation and shadow registration).
//! * `on_unprotect` / `on_runprotect_all` run *before* the real clear, for the
//!   same one-sided reason.
//! * `on_retire` / free checks run *before* the real action so record mode can
//!   suppress the dangerous transition (returning `false`), keeping flagged
//!   runs memory-safe.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::report::{self, Violation, ViolationKind};

/// Shadow lifecycle states. `Freed` also covers never-published records that
/// were discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Handed out by the allocator, not yet CAS'd into a shared location.
    Allocated,
    /// Snapshotted into another (possibly still-private) record's link
    /// (`Atomic::from_shared`): the record becomes reachable *transitively*
    /// the moment its holder is published, which the shadow table cannot
    /// observe — so `Linked` records may be retired without a publish event
    /// (the EFRB BST's new-subtree pattern: children are linked into a
    /// descriptor privately and published by the descriptor's one CAS).
    Linked,
    /// Reachable through the data structure (published at least once).
    Published,
    /// Unlinked and handed to `retire`; awaiting the scheme's grace period.
    Retired,
    /// Handed back to the pool/allocator; dereferencing is use-after-free.
    Freed,
    /// Re-allocated over a `Retired` record *without* an intervening per-record free
    /// event.  Legal only for managers whose scheme validates reads against a version
    /// clock (`validate_reads`): version-based reclamation may recycle a retired slot
    /// straight from limbo once the clock has advanced far enough, and type stability
    /// keeps the transition machine-safe.  Behaves like `Allocated` for the rest of the
    /// lifecycle; under any other scheme the same reuse is an `AllocOverLive` violation.
    Revived,
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct ProtKey {
    mgr: u64,
    tid: usize,
    slot: usize,
    restricted: bool,
}

struct Cell {
    mgr: u64,
    state: State,
    type_name: &'static str,
    /// Shadow-clock stamp of the retire (0 while not retired).
    retired_at: u64,
    retire_tid: usize,
    retire_stack: Option<Arc<str>>,
    /// Announcements currently covering this record (shield slots and
    /// restricted hazards). Tiny in practice.
    protectors: Vec<ProtKey>,
}

struct ManagerInfo {
    scheme: &'static str,
    /// Renders the scheme's live `ReclaimerStats`/epoch state for violation
    /// reports. Must not call back into this module.
    state_provider: Box<dyn Fn() -> String + Send + Sync>,
    /// `true` if the scheme has currently neutralized thread `tid` (DEBRA+ crash
    /// recovery).  A neutralized thread's operation is doomed to restart at its next
    /// checkpoint, so derefs it issues on already-reclaimed records inside that window
    /// are the scheme's documented tolerance, not protocol violations.  Must not call
    /// back into this module.
    neutralized_probe: Box<dyn Fn(usize) -> bool + Send + Sync>,
    /// `true` for schemes with `ReadProtection::Validate` (version-based reclamation):
    /// readers announce nothing, so a record may be retired — or even recycled — while
    /// an optimistic read is in flight.  The scheme's contract is that such a read is
    /// discarded at the next version checkpoint and the dereference itself is
    /// machine-safe by type stability; the shadow model therefore excuses stale deref
    /// reports and admits the [`State::Revived`] reuse transition for these managers.
    validate_reads: bool,
}

struct PageRange {
    base: usize,
    len: usize,
    type_name: &'static str,
}

#[derive(Default)]
struct Table {
    cells: HashMap<usize, Cell>,
    /// (mgr, tid, slot) → protected address, for shield-slot announcements.
    slots: HashMap<(u64, usize, usize), usize>,
    /// (mgr, tid) → addresses under restricted (DEBRA+) protection.
    rprot: HashMap<(u64, usize), Vec<usize>>,
    managers: HashMap<u64, ManagerInfo>,
    /// Typed page ranges reported by the page pool, sorted by base.
    pages: Vec<PageRange>,
}

fn lock() -> MutexGuard<'static, Table> {
    static TABLE: OnceLock<Mutex<Table>> = OnceLock::new();
    TABLE.get_or_init(Default::default).lock().unwrap_or_else(PoisonError::into_inner)
}

/// Global shadow clock: one total order over pins and retires.
static CLOCK: AtomicU64 = AtomicU64::new(1);
static NEXT_MGR: AtomicU64 = AtomicU64::new(1);

fn tick() -> u64 {
    CLOCK.fetch_add(1, Ordering::SeqCst)
}

/// Per-(thread, manager) operation context: pin depth and the shadow-clock
/// stamp of the outermost pin.
struct PinCtx {
    tid: usize,
    depth: usize,
    pinned_at: u64,
    requires_protection: bool,
}

thread_local! {
    static PINS: RefCell<HashMap<u64, PinCtx>> = RefCell::new(HashMap::new());
}

fn build(t: &Table, kind: ViolationKind, addr: usize, mgr: u64, detail: String) -> Violation {
    let (type_name, retire_stack) = match t.cells.get(&addr) {
        Some(c) => (c.type_name, c.retire_stack.clone()),
        None => ("<untracked>", None),
    };
    let (scheme, scheme_state) = match t.managers.get(&mgr) {
        Some(m) => (m.scheme, (m.state_provider)()),
        None => ("<unknown>", String::from("<manager gone>")),
    };
    Violation {
        kind,
        addr,
        type_name,
        scheme,
        detail,
        scheme_state,
        retire_stack,
        site_stack: report::capture_site_stack(),
    }
}

/// Registers a `RecordManager` instance; the returned id keys all its hooks.
/// `state_provider` renders the scheme's live stats for violation reports;
/// `neutralized_probe` reports whether a given thread is currently neutralized
/// (always `false` for schemes without crash recovery); `validate_reads` is
/// `true` for version-validating schemes (`ReadProtection::Validate`), whose
/// optimistic-read tolerance the shadow model must honour (see
/// [`State::Revived`]).
pub fn register_manager(
    scheme: &'static str,
    state_provider: Box<dyn Fn() -> String + Send + Sync>,
    neutralized_probe: Box<dyn Fn(usize) -> bool + Send + Sync>,
    validate_reads: bool,
) -> u64 {
    let id = NEXT_MGR.fetch_add(1, Ordering::SeqCst);
    lock()
        .managers
        .insert(id, ManagerInfo { scheme, state_provider, neutralized_probe, validate_reads });
    id
}

/// `true` if `mgr` was registered as a version-validating (`Validate`) scheme.
fn validates_reads(t: &Table, mgr: u64) -> bool {
    t.managers.get(&mgr).is_some_and(|m| m.validate_reads)
}

/// Tears down a manager's shadow state after its stragglers were reclaimed.
/// Any cell still not `Freed` is a leak: counted, summarized on stderr, and
/// added to [`leaked_records`](crate::leaked_records). Returns the leak count.
pub fn unregister_manager(mgr: u64) -> usize {
    let (leaked, scheme) = {
        let mut t = lock();
        let scheme = t.managers.remove(&mgr).map(|m| m.scheme).unwrap_or("?");
        let mut leaked: Vec<(usize, &'static str, State)> = Vec::new();
        t.cells.retain(|addr, c| {
            if c.mgr != mgr {
                return true;
            }
            if c.state != State::Freed {
                leaked.push((*addr, c.type_name, c.state));
            }
            false
        });
        t.slots.retain(|k, _| k.0 != mgr);
        t.rprot.retain(|k, _| k.0 != mgr);
        (leaked, scheme)
    };
    if !leaked.is_empty() {
        report::note_leaked(leaked.len() as u64);
        eprintln!(
            "[smr-check] manager teardown (scheme {scheme}): {} record(s) never freed",
            leaked.len()
        );
        for (addr, ty, st) in leaked.iter().take(8) {
            eprintln!("[smr-check]   leaked {addr:#x} ({ty}) in state {st:?}");
        }
        if leaked.len() > 8 {
            eprintln!("[smr-check]   ... and {} more", leaked.len() - 8);
        }
    }
    leaked.len()
}

/// Registers a typed page mapped by the page pool; `on_alloc` checks the
/// type-stability contract against these ranges.
pub fn note_typed_page(type_name: &'static str, base: usize, len: usize) {
    let mut t = lock();
    let idx = t.pages.partition_point(|p| p.base < base);
    t.pages.insert(idx, PageRange { base, len, type_name });
}

fn page_type(t: &Table, addr: usize) -> Option<&'static str> {
    let idx = t.pages.partition_point(|p| p.base <= addr);
    let p = t.pages.get(idx.checked_sub(1)?)?;
    (addr < p.base + p.len).then_some(p.type_name)
}

/// Allocator handed out `addr` for a new record of `type_name`.
pub fn on_alloc(mgr: u64, tid: usize, addr: usize, type_name: &'static str) {
    let v = {
        let mut t = lock();
        let mut v = None;
        if let Some(page_ty) = page_type(&t, addr) {
            if page_ty != type_name {
                v = Some(build(
                    &t,
                    ViolationKind::TypeMismatch,
                    addr,
                    mgr,
                    format!(
                        "page typed for {page_ty} recycled as {type_name} by thread {tid} \
                         (type-stability contract broken)"
                    ),
                ));
            }
        }
        let mut revived = false;
        if v.is_none() {
            if let Some(c) = t.cells.get(&addr) {
                if c.mgr == mgr && c.state != State::Freed {
                    if c.state == State::Retired && validates_reads(&t, mgr) {
                        // Version-validating schemes may recycle a retired slot without
                        // a per-record free event: readers that could still see it are
                        // fenced off by the version clock, not by the free.  Record the
                        // legal `Revived` transition instead of `AllocOverLive`.
                        revived = true;
                    } else {
                        v = Some(build(
                            &t,
                            ViolationKind::AllocOverLive,
                            addr,
                            mgr,
                            format!(
                                "allocator handed thread {tid} an address whose previous record \
                                 is still {:?}",
                                c.state
                            ),
                        ));
                    }
                }
            }
        }
        t.cells.insert(
            addr,
            Cell {
                mgr,
                state: if revived { State::Revived } else { State::Allocated },
                type_name,
                retired_at: 0,
                retire_tid: usize::MAX,
                retire_stack: None,
                protectors: Vec::new(),
            },
        );
        v
    };
    if let Some(v) = v {
        report::emit(v);
    }
}

/// Direct deallocation of a never-published record (`discard`). Returns
/// whether the real deallocation should proceed.
pub fn on_dealloc(mgr: u64, tid: usize, addr: usize) -> bool {
    let (v, proceed) = {
        let mut t = lock();
        match t.cells.get_mut(&addr) {
            None => (None, true),
            Some(c) => match c.state {
                // `Linked` may be discarded: the holder of the link snapshot was
                // never published (a lost insert discards the whole private subtree).
                State::Allocated | State::Linked | State::Revived => {
                    c.state = State::Freed;
                    (None, true)
                }
                State::Freed => (
                    Some(build(
                        &t,
                        ViolationKind::DoubleFree,
                        addr,
                        mgr,
                        format!("thread {tid} discarded an already-freed record"),
                    )),
                    false,
                ),
                st => (
                    Some(build(
                        &t,
                        ViolationKind::FreeUnretired,
                        addr,
                        mgr,
                        format!("thread {tid} discarded a record in state {st:?} (published records must be retired, not discarded)"),
                    )),
                    false,
                ),
            },
        }
    };
    if let Some(v) = v {
        report::emit(v);
    }
    proceed
}

/// A private link snapshot now points at `addr` (`Atomic::from_shared`):
/// the record may become reachable transitively when its holder is
/// published, so it graduates from `Allocated` to `Linked`.  Already
/// published (or null/untracked) targets are left alone.
pub fn on_link(addr: usize) {
    let mut t = lock();
    if let Some(c) = t.cells.get_mut(&addr) {
        if matches!(c.state, State::Allocated | State::Revived) {
            c.state = State::Linked;
        }
    }
}

/// A record became reachable (owned CAS publication or construction-time
/// store). Untracked addresses are ignored.
///
/// For CAS publication this runs *before* the real CAS (with
/// [`on_publish_revert`] undoing it on failure): were it recorded after, a
/// concurrent thread could legally pop and retire the just-published record
/// inside the hook lag and be misreported as retiring an unpublished one.
/// Pre-recording is safe because the record is still private — no other
/// thread can act on it until the real CAS succeeds.
pub fn on_publish(addr: usize) {
    let v = {
        let mut t = lock();
        match t.cells.get_mut(&addr) {
            None => None,
            Some(c) => match c.state {
                State::Allocated | State::Linked | State::Revived => {
                    c.state = State::Published;
                    None
                }
                State::Published => None,
                st => {
                    let mgr = c.mgr;
                    Some(build(
                        &t,
                        ViolationKind::PublishAfterRetire,
                        addr,
                        mgr,
                        format!("record in state {st:?} was published into a shared location"),
                    ))
                }
            },
        }
    };
    if let Some(v) = v {
        report::emit(v);
    }
}

/// Undoes a pre-recorded [`on_publish`] after the real publication CAS
/// failed.  The record is still private to the calling thread, so the
/// sequential revert cannot race anything.
pub fn on_publish_revert(addr: usize) {
    let mut t = lock();
    if let Some(c) = t.cells.get_mut(&addr) {
        if c.state == State::Published {
            c.state = State::Allocated;
        }
    }
}

/// Pre-retire check. Returns whether the real retire should proceed (record
/// mode suppresses double/late retires to keep the run memory-safe).
pub fn on_retire(mgr: u64, tid: usize, addr: usize) -> bool {
    let (v, proceed) = {
        let mut t = lock();
        match t.cells.get_mut(&addr) {
            None => (None, true),
            Some(c) => match c.state {
                State::Published | State::Linked | State::Allocated | State::Revived => {
                    // `Linked` retires silently: the record was snapshotted into
                    // another record's link and may well be reachable (transitive
                    // publication, invisible to the shadow table).
                    let was_unpublished = matches!(c.state, State::Allocated | State::Revived);
                    c.state = State::Retired;
                    c.retired_at = tick();
                    c.retire_tid = tid;
                    c.retire_stack = if report::capture_retire_stacks() {
                        report::capture_site_stack().map(Arc::from)
                    } else {
                        None
                    };
                    let v = was_unpublished.then(|| {
                        build(
                            &t,
                            ViolationKind::RetireUnpublished,
                            addr,
                            mgr,
                            format!(
                                "thread {tid} retired a record that was never published \
                                 (use discard for unpublished records)"
                            ),
                        )
                    });
                    (v, true)
                }
                State::Retired => {
                    let (first_tid, at) = (c.retire_tid, c.retired_at);
                    (
                        Some(build(
                            &t,
                            ViolationKind::DoubleRetire,
                            addr,
                            mgr,
                            format!(
                                "thread {tid} retired a record already retired by thread \
                                 {first_tid} at shadow time {at}"
                            ),
                        )),
                        false,
                    )
                }
                State::Freed => (
                    Some(build(
                        &t,
                        ViolationKind::RetireAfterFree,
                        addr,
                        mgr,
                        format!("thread {tid} retired an already-freed record"),
                    )),
                    false,
                ),
            },
        }
    };
    if let Some(v) = v {
        report::emit(v);
    }
    proceed
}

/// The reclaimer decided `addr` is safe to hand to the pool/allocator.
/// Returns whether the real free should proceed.
pub fn on_free(mgr: u64, tid: usize, addr: usize) -> bool {
    let (v, proceed) = {
        let mut t = lock();
        match t.cells.get_mut(&addr) {
            None => (None, true),
            Some(c) => match c.state {
                State::Retired => {
                    if let Some(p) = c.protectors.first().copied() {
                        (
                            Some(build(
                                &t,
                                ViolationKind::FreeWhileProtected,
                                addr,
                                mgr,
                                format!(
                                    "thread {tid} freed a record still covered by a live \
                                     announcement (thread {}, {} slot {})",
                                    p.tid,
                                    if p.restricted { "restricted" } else { "shield" },
                                    p.slot
                                ),
                            )),
                            false,
                        )
                    } else {
                        c.state = State::Freed;
                        (None, true)
                    }
                }
                State::Freed => (
                    Some(build(
                        &t,
                        ViolationKind::DoubleFree,
                        addr,
                        mgr,
                        format!("thread {tid}: reclaimer freed the same record twice"),
                    )),
                    false,
                ),
                st => (
                    Some(build(
                        &t,
                        ViolationKind::FreeUnretired,
                        addr,
                        mgr,
                        format!("thread {tid}: reclaimer freed a record in state {st:?}"),
                    )),
                    false,
                ),
            },
        }
    };
    if let Some(v) = v {
        report::emit(v);
    }
    proceed
}

/// Unconditional transition to `Freed` for teardown paths (straggler
/// reclamation, `Domain::free_reachable`/`free_graph`), which legitimately
/// free records in any state once the domain is quiescent.
pub fn on_teardown_free(addr: usize) {
    let mut t = lock();
    if let Some(c) = t.cells.get_mut(&addr) {
        c.state = State::Freed;
        c.protectors.clear();
    }
}

/// Thread `tid` entered an operation on `mgr` (`leave_qstate`).
/// `requires_protection` is `!SUPPORTS_UNPROTECTED_TRAVERSAL` of the scheme.
pub fn on_pin(mgr: u64, tid: usize, requires_protection: bool) {
    PINS.with(|p| {
        let mut pins = p.borrow_mut();
        let ctx =
            pins.entry(mgr).or_insert(PinCtx { tid, depth: 0, pinned_at: 0, requires_protection });
        ctx.tid = tid;
        if ctx.depth == 0 {
            ctx.pinned_at = tick();
        }
        ctx.depth += 1;
    });
}

/// Thread left an operation on `mgr` (`enter_qstate`).
pub fn on_unpin(mgr: u64) {
    PINS.with(|p| {
        let mut pins = p.borrow_mut();
        if let Some(ctx) = pins.get_mut(&mgr) {
            ctx.depth = ctx.depth.saturating_sub(1);
            if ctx.depth == 0 {
                pins.remove(&mgr);
            }
        }
    });
}

fn clear_slot(t: &mut Table, mgr: u64, tid: usize, slot: usize) {
    if let Some(addr) = t.slots.remove(&(mgr, tid, slot)) {
        if let Some(c) = t.cells.get_mut(&addr) {
            c.protectors
                .retain(|p| !(p.mgr == mgr && p.tid == tid && p.slot == slot && !p.restricted));
        }
    }
}

/// Called *before* the real protect overwrites slot `slot`'s announcement:
/// drops the previous shadow protection so a concurrent free of the old
/// record is not misreported.
pub fn on_protect_begin(mgr: u64, tid: usize, slot: usize) {
    clear_slot(&mut lock(), mgr, tid, slot);
}

/// Called *after* a protect validated: the real announcement already keeps
/// the scheme from freeing `addr`, so registration cannot race a legal free.
pub fn on_protect_commit(mgr: u64, tid: usize, slot: usize, addr: usize) {
    let mut t = lock();
    if t.cells.contains_key(&addr) {
        t.slots.insert((mgr, tid, slot), addr);
        let key = ProtKey { mgr, tid, slot, restricted: false };
        let c = t.cells.get_mut(&addr).expect("checked above");
        if !c.protectors.contains(&key) {
            c.protectors.push(key);
        }
    }
}

/// Called *before* the real unprotect clears slot `slot`.
pub fn on_unprotect(mgr: u64, tid: usize, slot: usize) {
    clear_slot(&mut lock(), mgr, tid, slot);
}

/// Called *after* a restricted (DEBRA+) protection of `addr` succeeded.
pub fn on_rprotect(mgr: u64, tid: usize, addr: usize) {
    let mut t = lock();
    if t.cells.contains_key(&addr) {
        let list = t.rprot.entry((mgr, tid)).or_default();
        if !list.contains(&addr) {
            list.push(addr);
        }
        let slot = t.rprot[&(mgr, tid)].len() - 1;
        let key = ProtKey { mgr, tid, slot, restricted: true };
        let c = t.cells.get_mut(&addr).expect("checked above");
        if !c.protectors.contains(&key) {
            c.protectors.push(key);
        }
    }
}

/// Called *before* the real `r_unprotect_all` clears the restricted slots.
pub fn on_runprotect_all(mgr: u64, tid: usize) {
    let mut t = lock();
    if let Some(addrs) = t.rprot.remove(&(mgr, tid)) {
        for addr in addrs {
            if let Some(c) = t.cells.get_mut(&addr) {
                c.protectors.retain(|p| !(p.mgr == mgr && p.tid == tid && p.restricted));
            }
        }
    }
}

/// Validates a `Shared::as_ref` of `addr`. Untracked addresses (records not
/// managed by any live manager, e.g. static sentinels) are ignored.
pub fn on_deref(addr: usize) {
    let v = {
        let t = lock();
        let Some(c) = t.cells.get(&addr) else {
            return;
        };
        // A thread the crash-recovery protocol has neutralized mid-operation may issue
        // one more deref on a record it loaded before the signal landed — the reclaimer
        // treats it as quiescent from the instant the handler acknowledges, so the
        // record can already be retired or even freed.  The operation is doomed to
        // restart at its next checkpoint (every fallible guard step re-checks), so the
        // stale read is never acted upon; the scheme documents this tolerance and the
        // shadow model excuses it rather than reporting a violation.
        let neutralized = |mgr: u64| {
            PINS.with(|p| {
                p.borrow().get(&mgr).is_some_and(|ctx| {
                    t.managers.get(&mgr).is_some_and(|m| (m.neutralized_probe)(ctx.tid))
                })
            })
        };
        // Version-validating schemes announce nothing per record, so an optimistic read
        // can legally land on a record that was retired — or already recycled — after
        // the reader snapshotted the version clock.  Type stability makes the load
        // machine-safe and the reader's next checkpoint discards the result, so for
        // these managers a stale deref is the scheme working as specified, not a
        // violation.  (Lifecycle misuse — double retire, free-unretired, type-unstable
        // reuse — is still reported for them by the other hooks.)
        let validates = validates_reads(&t, c.mgr);
        match c.state {
            State::Allocated | State::Linked | State::Published | State::Revived => None,
            State::Freed => {
                let mgr = c.mgr;
                if neutralized(mgr) || validates {
                    None
                } else {
                    Some(build(
                        &t,
                        ViolationKind::UseAfterFree,
                        addr,
                        mgr,
                        "dereference of a record the reclamation pipeline already freed".into(),
                    ))
                }
            }
            State::Retired => {
                let mgr = c.mgr;
                if neutralized(mgr) || validates {
                    return;
                }
                let (retired_at, retire_tid) = (c.retired_at, c.retire_tid);
                PINS.with(|p| {
                    let pins = p.borrow();
                    match pins.get(&mgr) {
                        None => Some(build(
                            &t,
                            ViolationKind::DerefOutsideOperation,
                            addr,
                            mgr,
                            format!(
                                "retired (by thread {retire_tid}) record dereferenced outside \
                                 any operation on its manager"
                            ),
                        )),
                        Some(ctx) => {
                            let covered =
                                c.protectors.iter().any(|pk| pk.mgr == mgr && pk.tid == ctx.tid);
                            if covered {
                                None
                            } else if ctx.requires_protection {
                                Some(build(
                                    &t,
                                    ViolationKind::DerefRetiredUnprotected,
                                    addr,
                                    mgr,
                                    format!(
                                        "thread {} dereferenced a retired record with no \
                                         covering announcement under a scheme that requires \
                                         protection",
                                        ctx.tid
                                    ),
                                ))
                            } else if retired_at < ctx.pinned_at {
                                Some(build(
                                    &t,
                                    ViolationKind::DerefRetiredStale,
                                    addr,
                                    mgr,
                                    format!(
                                        "thread {} (pinned at shadow time {}) dereferenced a \
                                         record retired earlier (shadow time {retired_at}) — \
                                         reclaimable on another interleaving",
                                        ctx.tid, ctx.pinned_at
                                    ),
                                ))
                            } else {
                                None
                            }
                        }
                    }
                })
            }
        }
    };
    if let Some(v) = v {
        report::emit(v);
    }
}

/// Test-only helper: current shadow state of `addr`, if tracked.
pub fn state_of(addr: usize) -> Option<State> {
    lock().cells.get(&addr).map(|c| c.state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ViolationKind as K;
    use std::sync::Mutex as StdMutex;

    // The shadow table is process-global; serialize unit tests touching it.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn mgr() -> u64 {
        register_manager("test", Box::new(|| "state".into()), Box::new(|_| false), false)
    }

    fn validating_mgr() -> u64 {
        register_manager("test-vbr", Box::new(|| "state".into()), Box::new(|_| false), true)
    }

    #[test]
    fn lifecycle_happy_path_records_nothing() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let before = report::total_violations();
        let m = mgr();
        on_alloc(m, 0, 0x1000, "Node");
        on_publish(0x1000);
        on_pin(m, 0, false);
        on_deref(0x1000);
        assert!(on_retire(m, 0, 0x1000));
        on_deref(0x1000); // retired after our pin: legal under epoch schemes
        on_unpin(m);
        assert!(on_free(m, 0, 0x1000));
        assert_eq!(state_of(0x1000), Some(State::Freed));
        assert_eq!(unregister_manager(m), 0);
        assert_eq!(report::total_violations(), before);
    }

    #[test]
    fn double_retire_and_double_free_are_flagged_and_suppressed() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let m = mgr();
        let dr = report::count(K::DoubleRetire);
        on_alloc(m, 0, 0x2000, "Node");
        on_publish(0x2000);
        assert!(on_retire(m, 0, 0x2000));
        assert!(!on_retire(m, 1, 0x2000), "second retire must be suppressed");
        assert_eq!(report::count(K::DoubleRetire), dr + 1);
        let df = report::count(K::DoubleFree);
        assert!(on_free(m, 0, 0x2000));
        assert!(!on_free(m, 0, 0x2000));
        assert_eq!(report::count(K::DoubleFree), df + 1);
        unregister_manager(m);
    }

    #[test]
    fn use_after_free_deref_is_flagged() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let m = mgr();
        let uaf = report::count(K::UseAfterFree);
        on_alloc(m, 0, 0x3000, "Node");
        on_publish(0x3000);
        on_retire(m, 0, 0x3000);
        on_free(m, 0, 0x3000);
        on_pin(m, 0, true);
        on_deref(0x3000);
        on_unpin(m);
        assert_eq!(report::count(K::UseAfterFree), uaf + 1);
        unregister_manager(m);
    }

    #[test]
    fn protection_blocks_free_and_permits_deref() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let m = mgr();
        on_alloc(m, 7, 0x4000, "Node");
        on_publish(0x4000);
        on_pin(m, 7, true);
        on_protect_begin(m, 7, 3);
        on_protect_commit(m, 7, 3, 0x4000);
        let before = report::total_violations();
        on_retire(m, 1, 0x4000);
        on_deref(0x4000); // covered by our slot-3 announcement: clean
        assert_eq!(report::total_violations(), before);
        let fwp = report::count(K::FreeWhileProtected);
        assert!(!on_free(m, 1, 0x4000), "free under live announcement");
        assert_eq!(report::count(K::FreeWhileProtected), fwp + 1);
        on_unprotect(m, 7, 3);
        assert!(on_free(m, 1, 0x4000));
        on_unpin(m);
        unregister_manager(m);
    }

    #[test]
    fn stale_epoch_deref_is_flagged_only_when_retired_before_pin() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let m = mgr();
        on_alloc(m, 0, 0x5000, "Node");
        on_publish(0x5000);
        on_retire(m, 1, 0x5000);
        let stale = report::count(K::DerefRetiredStale);
        on_pin(m, 0, false); // pinned after the retire
        on_deref(0x5000);
        on_unpin(m);
        assert_eq!(report::count(K::DerefRetiredStale), stale + 1);
        on_teardown_free(0x5000);
        unregister_manager(m);
    }

    #[test]
    fn teardown_reports_leaks() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let m = mgr();
        let leaked = report::leaked_records();
        on_alloc(m, 0, 0x6000, "Node");
        on_publish(0x6000);
        assert_eq!(unregister_manager(m), 1);
        assert_eq!(report::leaked_records(), leaked + 1);
    }

    #[test]
    fn revived_reuse_is_legal_only_under_validation() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        // Validate-capable manager: alloc over a retired (never freed) slot is the
        // legal Revived transition, and the record continues a normal lifecycle.
        let m = validating_mgr();
        let before = report::total_violations();
        on_alloc(m, 0, 0x7000, "Node");
        on_publish(0x7000);
        assert!(on_retire(m, 0, 0x7000));
        on_alloc(m, 1, 0x7000, "Node"); // reuse straight from limbo
        assert_eq!(state_of(0x7000), Some(State::Revived));
        on_publish(0x7000);
        assert_eq!(state_of(0x7000), Some(State::Published));
        assert!(on_retire(m, 1, 0x7000));
        assert!(on_free(m, 1, 0x7000));
        assert_eq!(report::total_violations(), before);
        unregister_manager(m);

        // The same reuse under a non-validating manager is AllocOverLive.
        let m = mgr();
        let aol = report::count(K::AllocOverLive);
        on_alloc(m, 0, 0x7100, "Node");
        on_publish(0x7100);
        assert!(on_retire(m, 0, 0x7100));
        on_alloc(m, 1, 0x7100, "Node");
        assert_eq!(report::count(K::AllocOverLive), aol + 1);
        assert_eq!(state_of(0x7100), Some(State::Allocated));
        on_dealloc(m, 1, 0x7100);
        unregister_manager(m);
    }

    #[test]
    fn stale_deref_is_excused_for_validating_managers() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let m = validating_mgr();
        let before = report::total_violations();
        on_alloc(m, 0, 0x7200, "Node");
        on_publish(0x7200);
        on_retire(m, 1, 0x7200);
        on_pin(m, 0, false); // pinned after the retire: stale under pin schemes
        on_deref(0x7200); // retired deref: excused (version checkpoint discards it)
        on_free(m, 1, 0x7200);
        on_deref(0x7200); // freed deref: the optimistic-read window, also excused
        on_unpin(m);
        assert_eq!(report::total_violations(), before);
        unregister_manager(m);
    }

    #[test]
    fn typed_page_mismatch_is_flagged() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let m = mgr();
        note_typed_page("Big", 0x10_0000, 0x1000);
        let tm = report::count(K::TypeMismatch);
        on_alloc(m, 0, 0x10_0040, "Small");
        assert_eq!(report::count(K::TypeMismatch), tm + 1);
        on_dealloc(m, 0, 0x10_0040);
        unregister_manager(m);
    }
}

//! `smr-check` — the dynamic half of the workspace's correctness tooling: a
//! pointer-race sanitizer for SMR-managed records.
//!
//! Every record handed out by a `RecordManager` is mirrored in a process-global
//! *shadow table* that tracks its lifecycle:
//!
//! ```text
//!   Allocated ──publish──▶ Published ──retire──▶ Retired ──free──▶ Freed
//!       │                                                            │
//!       └────────────discard (never published)────────────────────▶──┘
//!                                   Freed ──alloc (reuse)──▶ Allocated
//! ```
//!
//! The safe layer (`crates/core`, behind `cfg(feature = "smr_sanitize")`) calls
//! the [`shadow`] hooks at every lifecycle edge, plus:
//!
//! * **pin/unpin** — entering/leaving an operation (`leave_qstate`/`enter_qstate`),
//!   stamped with a global shadow clock so retires can be ordered against pins;
//! * **protect/unprotect** — shield-slot and restricted (DEBRA+) announcements,
//!   mirrored per `(manager, thread, slot)`;
//! * **deref** — every `Shared::as_ref` consults the table and reports a
//!   violation if the record is `Freed`, or `Retired` without a covering
//!   protection under a scheme that requires one, or `Retired` *before* the
//!   current operation's pin under an epoch scheme (the record could already
//!   have been reclaimed on another interleaving).
//!
//! Violations are recorded in [`report`] with the scheme's live
//! `ReclaimerStats`, the retire-site stack (when enabled) and the
//! violation-site stack. In panic mode ([`report::set_panic_on_violation`] or
//! `SMR_SANITIZE_PANIC=1`) the hook panics *before* the dangerous action
//! executes, so mutation tests observe re-injected historical bugs without
//! committing real undefined behaviour; in record mode the shadow layer
//! additionally *suppresses* the dangerous retire/free (leaking the record
//! instead), so a flagged run remains memory-safe either way.
//!
//! This crate is deliberately dependency-free and uses plain `std` locking: it
//! only ever runs inside sanitized builds, never on a production hot path.

pub mod report;
pub mod shadow;

pub use report::{
    count, leaked_records, reset, set_capture_retire_stacks, set_panic_on_violation,
    take_violations, total_violations, Violation, ViolationKind,
};

//! Violation reporting: per-kind counters, a retained violation log, and the
//! panic-before-danger mode used by mutation tests.

use std::backtrace::Backtrace;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// The classes of protocol violation the shadow table can detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ViolationKind {
    /// A `Shared::as_ref` on a record the reclamation pipeline already freed.
    UseAfterFree = 0,
    /// Deref of a retired record with no covering announcement, under a scheme
    /// that does not support unprotected traversal (HP / ThreadScan / IBR).
    DerefRetiredUnprotected = 1,
    /// Deref of a record retired *before* the current operation's pin, under an
    /// epoch scheme — reachable only through a stale link, and already
    /// reclaimable on another interleaving.
    DerefRetiredStale = 2,
    /// Deref of a retired record from a thread that is not inside any
    /// operation on the owning manager (no `leave_qstate` in effect).
    DerefOutsideOperation = 3,
    /// The same record retired twice — the skiplist double-free bug class.
    DoubleRetire = 4,
    /// Retire of a record that was never published into a shared location
    /// (should have been `discard`ed instead).
    RetireUnpublished = 5,
    /// Retire of a record the pipeline already freed.
    RetireAfterFree = 6,
    /// The reclaimer handed a record to the free path without it ever being
    /// retired.
    FreeUnretired = 7,
    /// The reclaimer freed the same record twice.
    DoubleFree = 8,
    /// The reclaimer freed a record while a shadow-registered announcement
    /// (shield slot or restricted hazard) still covered it — the HP
    /// mark-stripping bug class.
    FreeWhileProtected = 9,
    /// The allocator handed out an address whose previous record (same
    /// manager) was never freed.
    AllocOverLive = 10,
    /// A record was published (CAS'd into a shared location) after it had
    /// already been retired or freed — the BST helping-resurrection bug class.
    PublishAfterRetire = 11,
    /// A page-pool address was recycled for a different record type,
    /// violating the type-stability contract.
    TypeMismatch = 12,
}

pub(crate) const KIND_COUNT: usize = 13;

const KIND_NAMES: [&str; KIND_COUNT] = [
    "use-after-free",
    "deref-retired-unprotected",
    "deref-retired-stale",
    "deref-outside-operation",
    "double-retire",
    "retire-unpublished",
    "retire-after-free",
    "free-unretired",
    "double-free",
    "free-while-protected",
    "alloc-over-live",
    "publish-after-retire",
    "type-mismatch",
];

impl ViolationKind {
    /// Stable kebab-case name (used in reports and the DESIGN.md catalogue).
    pub fn name(self) -> &'static str {
        KIND_NAMES[self as usize]
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One detected protocol violation, with enough context to debug it: both
/// stacks (violation site, and retire site when capture is enabled), the
/// owning scheme's live stats, and a human-readable detail line.
#[derive(Debug)]
pub struct Violation {
    /// What rule was broken.
    pub kind: ViolationKind,
    /// Address of the record involved.
    pub addr: usize,
    /// `type_name` of the record as registered at allocation.
    pub type_name: &'static str,
    /// Reclamation scheme of the owning manager (`"debra"`, `"hp"`, …).
    pub scheme: &'static str,
    /// Human-readable description of the exact transition that failed.
    pub detail: String,
    /// The owning scheme's `ReclaimerStats` (and epoch state) at detection
    /// time, rendered by the manager's state provider.
    pub scheme_state: String,
    /// Stack captured at the retire site, if retire-stack capture was enabled
    /// (`set_capture_retire_stacks` / `SMR_SANITIZE_RETIRE_STACKS=1`).
    pub retire_stack: Option<Arc<str>>,
    /// Stack captured at the violation site.
    pub site_stack: Option<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[smr-check] {} @ {:#x} ({}, scheme {}): {} | scheme state: {}",
            self.kind, self.addr, self.type_name, self.scheme, self.detail, self.scheme_state
        )?;
        if let Some(rs) = &self.retire_stack {
            write!(f, "\n--- retire site ---\n{rs}")?;
        }
        if let Some(ss) = &self.site_stack {
            write!(f, "\n--- violation site ---\n{ss}")?;
        }
        Ok(())
    }
}

static COUNTS: [AtomicU64; KIND_COUNT] = [const { AtomicU64::new(0) }; KIND_COUNT];
static TOTAL: AtomicU64 = AtomicU64::new(0);
static LEAKED: AtomicU64 = AtomicU64::new(0);

fn log() -> &'static Mutex<Vec<Violation>> {
    static LOG: OnceLock<Mutex<Vec<Violation>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

// Tri-state runtime switches: 0 = unset (fall back to the environment
// variable), 1 = off, 2 = on.
static PANIC_MODE: AtomicU8 = AtomicU8::new(0);
static RETIRE_STACKS: AtomicU8 = AtomicU8::new(0);

fn tristate(flag: &AtomicU8, env: &str) -> bool {
    match flag.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => std::env::var_os(env).is_some_and(|v| v == "1"),
    }
}

/// Panic at the violation site *before* the dangerous action executes.
/// Mutation tests use this to observe re-injected bugs without real UB.
/// Overrides the `SMR_SANITIZE_PANIC` environment variable.
pub fn set_panic_on_violation(on: bool) {
    PANIC_MODE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

pub(crate) fn panic_on_violation() -> bool {
    tristate(&PANIC_MODE, "SMR_SANITIZE_PANIC")
}

/// Capture a backtrace at every `retire` so violations can show the retire
/// site. Costly (one `Backtrace::force_capture` per retire) — off by default;
/// overrides the `SMR_SANITIZE_RETIRE_STACKS` environment variable.
pub fn set_capture_retire_stacks(on: bool) {
    RETIRE_STACKS.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

pub(crate) fn capture_retire_stacks() -> bool {
    tristate(&RETIRE_STACKS, "SMR_SANITIZE_RETIRE_STACKS")
}

pub(crate) fn capture_site_stack() -> Option<String> {
    Some(Backtrace::force_capture().to_string())
}

/// Records `v` (counter + retained log + one line on stderr), then panics if
/// panic mode is on. Callers invoke this *after* releasing shadow-table locks
/// and *before* performing the action the violation describes.
pub(crate) fn emit(v: Violation) {
    COUNTS[v.kind as usize].fetch_add(1, Ordering::Relaxed);
    TOTAL.fetch_add(1, Ordering::Relaxed);
    let line = format!("{v}");
    eprintln!("{line}");
    log().lock().unwrap_or_else(PoisonError::into_inner).push(v);
    if panic_on_violation() {
        panic!("smr-check violation: {line}");
    }
}

pub(crate) fn note_leaked(n: u64) {
    LEAKED.fetch_add(n, Ordering::Relaxed);
}

/// Total violations recorded since the last [`reset`].
pub fn total_violations() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

/// Violations of one kind since the last [`reset`].
pub fn count(kind: ViolationKind) -> u64 {
    COUNTS[kind as usize].load(Ordering::Relaxed)
}

/// Records reported as never-freed at manager teardown since the last
/// [`reset`].
pub fn leaked_records() -> u64 {
    LEAKED.load(Ordering::Relaxed)
}

/// Drains and returns the retained violation log (counters are untouched).
pub fn take_violations() -> Vec<Violation> {
    std::mem::take(&mut *log().lock().unwrap_or_else(PoisonError::into_inner))
}

/// Clears the retained log, all per-kind counters, and the leak gauge.
pub fn reset() {
    log().lock().unwrap_or_else(PoisonError::into_inner).clear();
    for c in &COUNTS {
        c.store(0, Ordering::Relaxed);
    }
    TOTAL.store(0, Ordering::Relaxed);
    LEAKED.store(0, Ordering::Relaxed);
}

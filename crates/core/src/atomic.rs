//! Typed, tagged atomic pointers for the safe guard layer: [`Atomic`], [`Shared`] and
//! [`Owned`].
//!
//! These are the crossbeam-epoch-shaped pointer types of the safe API (see the sibling
//! [`guard`](crate::guard) module).  A lock-free structure stores its links as
//! `Atomic<Node>` words; traversals read them into `Shared<'g, Node>` values whose
//! lifetime `'g` is tied to a live [`Guard`](crate::Guard), so a pointer can never be
//! dereferenced after the operation that protected it has ended; and not-yet-published
//! records are carried as [`Owned`] values, which can only enter the structure through
//! [`Atomic::compare_exchange_owned`] (publication) or leave through
//! [`Guard::discard`](crate::Guard::discard) (recycling), so a private node can never be
//! freed while reachable.
//!
//! The *mark bit* idiom of Harris-style lists is supported directly: the low bits of a
//! record pointer (available because records are aligned) carry a caller-chosen tag, read
//! with [`Shared::tag`] and set with [`Shared::with_tag`].

use std::fmt;
use std::marker::PhantomData;
use std::mem::align_of;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The tag bits available in pointers to `T` (the alignment-low bits).
#[inline]
const fn low_bits<T>() -> usize {
    align_of::<T>() - 1
}

#[inline]
fn ptr_of<T>(word: usize) -> *mut T {
    (word & !low_bits::<T>()) as *mut T
}

/// A pin witness: a type whose shared borrow proves the current thread is inside a data
/// structure operation (non-quiescent), so `Shared` values derived from it are safe to
/// hold for its lifetime.  Implemented by [`Guard`](crate::Guard); sealed so no other
/// witness can be forged.
pub trait Pinned: private::Sealed {}

pub(crate) mod private {
    /// Seal for [`super::Pinned`].
    pub trait Sealed {}
}

/// An atomic, taggable pointer to a record of `T` — one link word of a lock-free data
/// structure.
///
/// The null pointer (word 0) represents "no successor".  All reads hand out
/// [`Shared<'g, T>`] values tied to a live guard; all writes go through compare-and-swap,
/// so the type has no unsynchronized store operation to misuse.
pub struct Atomic<T> {
    word: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

impl<T> Atomic<T> {
    /// Creates a null link.
    pub const fn null() -> Self {
        Atomic { word: AtomicUsize::new(0), _marker: PhantomData }
    }

    /// Creates a link holding the same pointer (and tag) as `shared`.
    ///
    /// This is how a private node's links are initialized before publication; writing a
    /// plain snapshot is safe because the node is not reachable by other threads yet.
    pub fn from_shared(shared: Shared<'_, T>) -> Self {
        #[cfg(feature = "smr_sanitize")]
        if !shared.is_null() {
            // The target may now become reachable transitively (when the record
            // holding this link is published), which the shadow table cannot
            // observe — mark it as linked so its retire is not misreported.
            smr_check::shadow::on_link(shared.as_ptr() as usize);
        }
        Atomic { word: AtomicUsize::new(shared.word), _marker: PhantomData }
    }

    /// Creates a link that *publishes* the private record `owned` without a CAS.
    ///
    /// This is the construction-time publication path for sentinel records (a list head,
    /// a tree root) that are installed while the structure is still private to the
    /// constructing thread; once the structure is shared, publication must go through
    /// [`Atomic::compare_exchange_owned`].  Consuming the [`Owned`] is what transfers
    /// ownership of the record to the structure.
    pub fn from_owned(owned: Owned<T>) -> Self {
        let ptr = owned.into_ptr().as_ptr();
        #[cfg(feature = "smr_sanitize")]
        smr_check::shadow::on_publish(ptr as usize);
        Atomic { word: AtomicUsize::new(ptr as usize), _marker: PhantomData }
    }

    /// Reads the link into a [`Shared`] tied to `guard`.
    #[inline]
    pub fn load<'g, G: Pinned>(&self, ord: Ordering, _guard: &'g G) -> Shared<'g, T> {
        Shared::from_word(self.word.load(ord))
    }

    /// Reads the link's pointer (tag stripped) without a guard.
    ///
    /// The returned raw pointer is safe to *obtain* at any time but carries no protection;
    /// dereferencing it is `unsafe` as usual.  Teardown code (e.g. `Drop` traversals that
    /// hand the structure to [`Domain::free_reachable`](crate::Domain::free_reachable))
    /// uses this to walk links with exclusive access.
    #[inline]
    pub fn load_ptr(&self, ord: Ordering) -> *mut T {
        ptr_of(self.word.load(ord))
    }

    /// Raw word read (pointer and tag); crate-internal, used by the protect loop.
    #[inline]
    pub(crate) fn load_word(&self, ord: Ordering) -> usize {
        self.word.load(ord)
    }

    /// Compare-and-swap from `current` to `new` (both pointer and tag participate).
    ///
    /// # Errors
    ///
    /// On failure returns the actual value of the link.
    #[inline]
    pub fn compare_exchange<'g, G: Pinned>(
        &self,
        current: Shared<'_, T>,
        new: Shared<'_, T>,
        success: Ordering,
        failure: Ordering,
        _guard: &'g G,
    ) -> Result<(), Shared<'g, T>> {
        match self.word.compare_exchange(current.word, new.word, success, failure) {
            Ok(_) => Ok(()),
            Err(actual) => Err(Shared::from_word(actual)),
        }
    }

    /// Publishes the private record `new` by compare-and-swapping the link from `current`
    /// to it.  On success the record becomes shared (and must from then on be removed via
    /// marking + [`Guard::retire`](crate::Guard::retire), never freed directly).
    ///
    /// # Errors
    ///
    /// On failure the still-private record is handed back so the caller can retry with it
    /// or recycle it through [`Guard::discard`](crate::Guard::discard).
    #[inline]
    pub fn compare_exchange_owned<'g, G: Pinned>(
        &self,
        current: Shared<'_, T>,
        new: Owned<T>,
        success: Ordering,
        failure: Ordering,
        guard: &'g G,
    ) -> Result<Shared<'g, T>, Owned<T>> {
        self.compare_exchange_owned_tagged(current, new, 0, success, failure, guard)
    }

    /// Like [`compare_exchange_owned`](Self::compare_exchange_owned), but publishes the
    /// record with `tag` in the link's low bits.  This is how descriptor-based structures
    /// (the external BST) install a fresh descriptor together with its state flag in one
    /// CAS (the EFRB `IFlag`/`DFlag` decision CAS).
    ///
    /// # Errors
    ///
    /// On failure the still-private record is handed back, as in `compare_exchange_owned`.
    #[inline]
    pub fn compare_exchange_owned_tagged<'g, G: Pinned>(
        &self,
        current: Shared<'_, T>,
        new: Owned<T>,
        tag: usize,
        success: Ordering,
        failure: Ordering,
        _guard: &'g G,
    ) -> Result<Shared<'g, T>, Owned<T>> {
        debug_assert!(tag <= low_bits::<T>(), "tag {tag} does not fit in the alignment bits");
        let word = (new.ptr.as_ptr() as usize) | tag;
        // Shadow ordering contract: record the publication *before* the CAS (reverted on
        // failure) — recorded after, a concurrent thread could pop and retire the
        // just-published record inside the hook lag and be misreported.  Pre-recording
        // cannot race: the record stays private until the CAS succeeds.
        #[cfg(feature = "smr_sanitize")]
        smr_check::shadow::on_publish(new.ptr.as_ptr() as usize);
        match self.word.compare_exchange(current.word, word, success, failure) {
            // `new` has no destructor — consuming it here is what transfers ownership of
            // the record to the structure.
            Ok(_) => Ok(Shared::from_word(word)),
            Err(_) => {
                #[cfg(feature = "smr_sanitize")]
                smr_check::shadow::on_publish_revert(new.ptr.as_ptr() as usize);
                Err(new)
            }
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let word = self.word.load(Ordering::Relaxed);
        f.debug_struct("Atomic")
            .field("ptr", &ptr_of::<T>(word))
            .field("tag", &(word & low_bits::<T>()))
            .finish()
    }
}

// SAFETY: an `Atomic<T>` is a word-sized atomic cell; sharing it across threads shares
// access to records of `T`, so it is `Send`/`Sync` exactly when `T` is.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

/// A tagged record pointer valid for the lifetime `'g` of the [`Guard`](crate::Guard) (or
/// [`Shield`](crate::Shield) protection) it was loaded under.
///
/// `Shared` is `Copy`; all copies carry `'g`, so the borrow checker prevents any of them
/// from outliving the guard:
///
/// ```compile_fail
/// use debra::{Atomic, Debra, Domain};
/// use smr_alloc::{SystemAllocator, ThreadPool};
///
/// type D = Domain<u64, Debra<u64>, ThreadPool<u64>, SystemAllocator<u64>>;
/// let domain: D = Domain::new(1);
/// let link: Atomic<u64> = Atomic::null();
/// let escaped = {
///     let guard = domain.pin();
///     link.load(std::sync::atomic::Ordering::Acquire, &guard)
/// }; // ERROR: `guard` does not live long enough
/// let _ = escaped.as_ref();
/// ```
pub struct Shared<'g, T> {
    word: usize,
    _marker: PhantomData<(&'g (), *mut T)>,
}

impl<'g, T> Shared<'g, T> {
    /// The null pointer (no record).
    pub const fn null() -> Self {
        Shared { word: 0, _marker: PhantomData }
    }

    pub(crate) fn from_word(word: usize) -> Self {
        Shared { word, _marker: PhantomData }
    }

    pub(crate) fn word(&self) -> usize {
        self.word
    }

    /// `true` if the pointer (ignoring the tag) is null.
    #[inline]
    pub fn is_null(&self) -> bool {
        ptr_of::<T>(self.word).is_null()
    }

    /// The tag carried in the pointer's low bits (e.g. the Harris mark bit).
    #[inline]
    pub fn tag(&self) -> usize {
        self.word & low_bits::<T>()
    }

    /// The same pointer with its tag replaced by `tag`.
    #[inline]
    pub fn with_tag(&self, tag: usize) -> Shared<'g, T> {
        debug_assert!(tag <= low_bits::<T>(), "tag {tag} does not fit in the alignment bits");
        Shared::from_word((self.word & !low_bits::<T>()) | tag)
    }

    /// The record pointer with the tag stripped.
    #[inline]
    pub fn as_ptr(&self) -> *mut T {
        ptr_of(self.word)
    }

    /// A reference to the record, or `None` for null.
    ///
    /// The reference lives for `'g` — as long as the guard the pointer was loaded under —
    /// which is what makes traversal code safe to write without `unsafe`: the record
    /// cannot be reclaimed while the operation that protected it is still running.  A
    /// `Shared` obtained from a *validated* [`Shield::protect`](crate::Shield::protect)
    /// is safe under every scheme; one obtained from a bare [`Atomic::load`] is safe
    /// under epoch-style schemes only (see the guard module docs for the discipline).
    ///
    /// **Soundness caveat** (the one deliberate hole in the safe layer, mirroring the
    /// raw API's documented `len` contract): under protection-based schemes (HP,
    /// ThreadScan, IBR) dereferencing a `Shared` that did *not* come from a validated
    /// protect — e.g. a whole-structure diagnostic traversal racing concurrent removals —
    /// can touch freed memory.  Such traversals must only run when no other thread is
    /// updating the structure, as the diagnostic helpers (`len`, `bucket_histogram`)
    /// document.
    #[inline]
    pub fn as_ref(&self) -> Option<&'g T> {
        // Sanitized builds validate the access against the shadow lifecycle table (and,
        // in panic mode, abort *before* the dereference happens).
        #[cfg(feature = "smr_sanitize")]
        if !ptr_of::<T>(self.word).is_null() {
            smr_check::shadow::on_deref(ptr_of::<T>(self.word) as usize);
        }
        // SAFETY: non-null records reachable through a guard-scoped load are kept alive
        // for 'g by the reclamation scheme (epoch pin or validated protection slot); see
        // the module-level discipline discussion.
        unsafe { ptr_of::<T>(self.word).as_ref() }
    }
}

impl<'g, T> Clone for Shared<'g, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'g, T> Copy for Shared<'g, T> {}

impl<'g, T> PartialEq for Shared<'g, T> {
    /// Word equality: pointer *and* tag, which is exactly what link CAS operations compare.
    fn eq(&self, other: &Self) -> bool {
        self.word == other.word
    }
}
impl<'g, T> Eq for Shared<'g, T> {}

impl<'g, T> fmt::Debug for Shared<'g, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared").field("ptr", &self.as_ptr()).field("tag", &self.tag()).finish()
    }
}

/// A record that has been allocated through the Record Manager but not yet published.
///
/// The only ways to consume an `Owned` are [`Atomic::compare_exchange_owned`]
/// (publication) and [`Guard::discard`](crate::Guard::discard) (recycling a node whose
/// insertion lost its CAS), which is what lets `discard` be a safe function: an `Owned`
/// is always unreachable and uniquely held.  Dropping an `Owned` without consuming it
/// leaks the record (memory-safe, but wasteful) — the type is `#[must_use]` for that
/// reason.
#[must_use = "an Owned record must be published (compare_exchange_owned) or recycled (Guard::discard); dropping it leaks"]
pub struct Owned<T> {
    ptr: NonNull<T>,
}

impl<T> Owned<T> {
    pub(crate) fn from_ptr(ptr: NonNull<T>) -> Self {
        Owned { ptr }
    }

    pub(crate) fn into_ptr(self) -> NonNull<T> {
        self.ptr
    }

    /// A pointer view of the not-yet-published record, for wiring it into other private
    /// records before publication (e.g. a descriptor that references the new child it
    /// will install) or for announcing it to recovery code
    /// ([`Recovery::protect`](crate::Recovery::protect)).
    ///
    /// The returned [`Shared`] borrows the `Owned`, so it cannot outlive the record's
    /// private phase; snapshots taken from it (via [`Atomic::from_shared`]) are plain
    /// words and stay valid for as long as the record itself.
    #[inline]
    pub fn shared(&self) -> Shared<'_, T> {
        Shared::from_word(self.ptr.as_ptr() as usize)
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the record is uniquely held (allocated, never published).
        unsafe { self.ptr.as_ref() }
    }
}

impl<T> std::ops::DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`.
        unsafe { self.ptr.as_mut() }
    }
}

impl<T> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Owned").field("ptr", &self.ptr).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_live_in_the_alignment_bits() {
        let s: Shared<'_, u64> = Shared::null();
        assert!(s.is_null());
        assert_eq!(s.tag(), 0);
        let t = s.with_tag(1);
        assert_eq!(t.tag(), 1);
        assert!(t.is_null(), "the tag does not make a null pointer non-null");
        assert_ne!(s, t, "equality compares the full word, tag included");
        assert_eq!(t.with_tag(0), s);
    }

    #[test]
    fn atomic_null_roundtrip() {
        let a: Atomic<u64> = Atomic::null();
        assert!(a.load_ptr(Ordering::Relaxed).is_null());
        assert_eq!(a.load_word(Ordering::Relaxed), 0);
    }
}

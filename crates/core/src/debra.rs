//! DEBRA: distributed epoch based reclamation (paper, Section 4).

use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use blockbag::BlockBag;
use crossbeam_utils::CachePadded;
use neutralize::{AnnounceWord, NeutralizeSlot};

use crate::config::DebraConfig;
use crate::properties::SchemeProperties;
use crate::stats::{aggregate, ReclaimerStats, ThreadStatsSlot};
use crate::traits::{ReadProtection, ReclaimSink, Reclaimer, ReclaimerThread, RegistrationError};

/// Raw epoch increment: the least significant bit of announcement words is the quiescent
/// bit, so epochs advance by 2.
pub(crate) const EPOCH_INCREMENT: u64 = 2;

/// Shared state of the DEBRA reclaimer.
///
/// DEBRA is a *distributed* variant of epoch based reclamation:
///
/// * each thread keeps **three private limbo bags** instead of shared ones, and rotation /
///   reclamation proceed independently per thread;
/// * the cost of checking other threads' epoch announcements is **amortized** over many
///   operations — each `leave_qstate` checks at most one announcement;
/// * a thread's announcement carries a **quiescent bit**, so a thread that is *between*
///   operations (or has crashed between operations) does not prevent others from advancing
///   the epoch and reclaiming memory.
///
/// Every operation start/end and every retired record costs O(1) steps in the worst case.
///
/// See [`DebraPlus`](crate::DebraPlus) for the fault tolerant extension.
pub struct Debra<T> {
    pub(crate) epoch: CachePadded<AtomicU64>,
    pub(crate) slots: Box<[Arc<NeutralizeSlot>]>,
    registered: Box<[AtomicBool]>,
    pub(crate) stats: Box<[CachePadded<ThreadStatsSlot>]>,
    pub(crate) config: DebraConfig,
    max_threads: usize,
    /// Retired records handed back by exited threads; reclaimed at teardown.
    orphans: Mutex<Vec<NonNull<T>>>,
}

impl<T: Send> Debra<T> {
    /// Creates DEBRA shared state for `max_threads` threads with a custom configuration.
    pub fn with_config(max_threads: usize, config: DebraConfig) -> Self {
        assert!(max_threads > 0, "max_threads must be positive");
        Debra {
            epoch: CachePadded::new(AtomicU64::new(0)),
            slots: (0..max_threads).map(|_| Arc::new(NeutralizeSlot::new())).collect(),
            registered: (0..max_threads).map(|_| AtomicBool::new(false)).collect(),
            stats: (0..max_threads).map(|_| CachePadded::new(ThreadStatsSlot::default())).collect(),
            config,
            max_threads,
            orphans: Mutex::new(Vec::new()),
        }
    }

    /// The current global epoch (epoch bits only; advances by 2 internally).
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The per-thread announcement slot for `tid` (used by DEBRA+ and by tests).
    pub(crate) fn slot(&self, tid: usize) -> &NeutralizeSlot {
        &self.slots[tid]
    }

    /// A clonable handle to the announcement slot for `tid` (used by DEBRA+ to register the
    /// owning thread with the signal driver).
    pub(crate) fn slot_arc(&self, tid: usize) -> Arc<NeutralizeSlot> {
        Arc::clone(&self.slots[tid])
    }

    pub(crate) fn do_register(&self, tid: usize) -> Result<(), RegistrationError> {
        if tid >= self.max_threads {
            return Err(RegistrationError::ThreadIdOutOfRange {
                tid,
                max_threads: self.max_threads,
            });
        }
        if self.registered[tid]
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Err(RegistrationError::AlreadyRegistered { tid });
        }
        // A (re-)registered thread starts quiescent at the current epoch.
        self.slots[tid].store_announce(
            AnnounceWord::pack(AnnounceWord::epoch(self.epoch.load(Ordering::SeqCst)), true),
            Ordering::SeqCst,
        );
        self.slots[tid].clear_neutralized();
        Ok(())
    }

    pub(crate) fn deregister(&self, tid: usize) {
        self.slots[tid].set_quiescent();
        self.registered[tid].store(false, Ordering::SeqCst);
    }

    pub(crate) fn push_orphans(&self, records: impl IntoIterator<Item = NonNull<T>>) {
        let mut orphans = self.orphans.lock().expect("orphan list poisoned");
        orphans.extend(records);
    }
}

impl<T: Send> Reclaimer<T> for Debra<T>
where
    T: 'static,
{
    type Thread = DebraThread<T>;

    fn new(max_threads: usize) -> Self {
        Self::with_config(max_threads, DebraConfig::default())
    }

    fn register(this: &Arc<Self>, tid: usize) -> Result<Self::Thread, RegistrationError> {
        this.do_register(tid)?;
        Ok(DebraThread::new(Arc::clone(this), tid))
    }

    fn max_threads(&self) -> usize {
        self.max_threads
    }

    fn name() -> &'static str {
        "DEBRA"
    }

    fn properties() -> SchemeProperties {
        SchemeProperties::debra()
    }

    fn stats(&self) -> ReclaimerStats {
        aggregate(&self.stats)
    }

    fn drain_orphans(&self) -> Vec<NonNull<T>> {
        let mut orphans = self.orphans.lock().expect("orphan list poisoned");
        std::mem::take(&mut *orphans)
    }
}

impl<T> fmt::Debug for Debra<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Debra")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("max_threads", &self.max_threads)
            .field("config", &self.config)
            .finish()
    }
}

// SAFETY: the only non-Sync field is the orphan list of raw pointers, which is protected by
// a mutex and never dereferenced here; records are `Send`.
unsafe impl<T: Send> Send for Debra<T> {}
unsafe impl<T: Send> Sync for Debra<T> {}

/// Per-thread handle of [`Debra`].
pub struct DebraThread<T: Send + 'static> {
    global: Arc<Debra<T>>,
    tid: usize,
    bags: [BlockBag<T>; 3],
    /// Index (into `bags`) of the limbo bag for the current epoch.
    current: usize,
    /// Next thread whose announcement should be checked.
    check_next: usize,
    /// Number of `leave_qstate` calls since another thread's announcement was last checked.
    ops_since_check: usize,
}

impl<T: Send + 'static> DebraThread<T> {
    pub(crate) fn new(global: Arc<Debra<T>>, tid: usize) -> Self {
        let cap = global.config.block_capacity;
        DebraThread {
            global,
            tid,
            bags: [
                BlockBag::with_block_capacity(cap),
                BlockBag::with_block_capacity(cap),
                BlockBag::with_block_capacity(cap),
            ],
            current: 0,
            check_next: 0,
            ops_since_check: 0,
        }
    }

    /// The shared DEBRA instance this handle belongs to.
    pub fn global(&self) -> &Arc<Debra<T>> {
        &self.global
    }

    /// Total number of records currently waiting in this thread's limbo bags.
    pub fn limbo_len(&self) -> usize {
        self.bags.iter().map(BlockBag::len).sum()
    }

    /// Number of blocks in the limbo bag of the current epoch (used by DEBRA+'s
    /// neutralization heuristic and exposed for tests).
    pub fn current_bag_blocks(&self) -> usize {
        self.bags[self.current].size_in_blocks()
    }

    /// Number of blocks in the *oldest* limbo bag — the bag that will become the current
    /// bag (and be reclaimed) on the next rotation.  Used by DEBRA+ to decide whether it is
    /// worth scanning the restricted hazard pointers.
    pub(crate) fn oldest_bag_blocks(&self) -> usize {
        self.bags[(self.current + 1) % 3].size_in_blocks()
    }

    fn publish_pending(&self) {
        let pending = self.limbo_len() as u64;
        self.global.stats[self.tid].publish_limbo(pending, std::mem::size_of::<T>() as u64);
    }

    /// Rotates the limbo bags and reclaims the records retired two epochs ago
    /// (the paper's `rotateAndReclaim`).
    fn rotate_and_reclaim<S: ReclaimSink<T>>(&mut self, sink: &mut S) {
        self.current = (self.current + 1) % 3;
        let bag = &mut self.bags[self.current];
        let mut reclaimed = 0u64;
        for block in bag.take_full_blocks() {
            reclaimed += block.len() as u64;
            sink.accept_block(block);
        }
        if reclaimed > 0 {
            self.global.stats[self.tid].reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
        }
    }

    /// DEBRA+'s variant of `rotateAndReclaim` (paper, Figure 6): the oldest limbo bag is
    /// reused as the new current bag, and — only if it holds at least
    /// `scan_threshold_blocks` blocks, so the scan is amortized O(1) per record — its
    /// records are partitioned so that records for which `keep` returns `true` (those
    /// protected by restricted hazard pointers) stay in the bag while whole blocks of
    /// unprotected records are moved to the sink.
    pub(crate) fn rotate_and_reclaim_filtered<S: ReclaimSink<T>>(
        &mut self,
        sink: &mut S,
        scan_threshold_blocks: usize,
        keep: impl FnMut(NonNull<T>) -> bool,
    ) {
        self.current = (self.current + 1) % 3;
        let bag = &mut self.bags[self.current];
        if bag.size_in_blocks() < scan_threshold_blocks {
            return;
        }
        let mut reclaimed = 0u64;
        for block in bag.partition_and_take_full_blocks(keep) {
            reclaimed += block.len() as u64;
            sink.accept_block(block);
        }
        if reclaimed > 0 {
            self.global.stats[self.tid].reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
        }
    }

    /// Core of `leave_qstate`, shared between DEBRA and DEBRA+.
    ///
    /// `suspect` is called for a thread that is non-quiescent and has not announced the
    /// current epoch; it returns `true` if the thread may nevertheless be treated as
    /// quiescent (DEBRA+ neutralizes it; plain DEBRA always returns `false`).
    pub(crate) fn leave_qstate_impl<S, F, R>(
        &mut self,
        sink: &mut S,
        mut rotate: R,
        mut suspect: F,
    ) -> bool
    where
        S: ReclaimSink<T>,
        F: FnMut(&mut Self, usize) -> bool,
        R: FnMut(&mut Self, &mut S),
    {
        let global = Arc::clone(&self.global);
        let n = global.max_threads;
        let config = global.config;
        let read_epoch = global.epoch.load(Ordering::SeqCst);
        let my_announce = global.slots[self.tid].load_announce(Ordering::SeqCst);

        let mut result = false;
        if !AnnounceWord::epoch_matches(read_epoch, my_announce) {
            // We are announcing a new epoch: everything retired two epochs ago is safe.
            self.ops_since_check = 0;
            self.check_next = 0;
            rotate(self, sink);
            result = true;
        }

        // Incrementally scan announcements: one (or fewer) per leave_qstate call.
        self.ops_since_check += 1;
        if self.ops_since_check >= config.check_threshold {
            self.ops_since_check = 0;
            let other = self.check_next % n;
            let other_word = global.slots[other].load_announce(Ordering::SeqCst);
            let other_ok = other == self.tid
                || AnnounceWord::epoch_matches(read_epoch, other_word)
                || AnnounceWord::is_quiescent(other_word)
                || suspect(self, other);
            if !other_ok {
                // A non-quiescent thread still on the old epoch blocks the advance —
                // the oversubscription stall of the paper's Figure 9.
                self.global.stats[self.tid].epoch_stalls.fetch_add(1, Ordering::Relaxed);
            }
            if other_ok {
                self.check_next += 1;
                let c = self.check_next;
                if c >= n && c >= config.increment_threshold {
                    if global
                        .epoch
                        .compare_exchange(
                            read_epoch,
                            read_epoch + EPOCH_INCREMENT,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        self.global.stats[self.tid].epochs_advanced.fetch_add(1, Ordering::Relaxed);
                    }
                    self.check_next = 0;
                }
            }
        }

        // Announce the epoch we read, with the quiescent bit cleared.
        global.slots[self.tid].store_announce(
            AnnounceWord::pack(AnnounceWord::epoch(read_epoch), false),
            Ordering::SeqCst,
        );
        self.global.stats[self.tid].operations.fetch_add(1, Ordering::Relaxed);
        self.publish_pending();
        result
    }

    pub(crate) fn retire_impl(&mut self, record: NonNull<T>) {
        // Note: no quiescence assertion here.  Plain DEBRA asserts in its `retire` wrapper;
        // under DEBRA+ a neutralization signal sets the quiescent bit *mid-operation*, and a
        // thread whose decision CAS already succeeded legitimately retires records while its
        // announcement reads quiescent (the completion phase of a decided operation).
        self.bags[self.current].push(record);
        self.global.stats[self.tid].retired.fetch_add(1, Ordering::Relaxed);
        self.publish_pending();
    }

    pub(crate) fn enter_qstate_impl(&mut self) {
        self.global.slots[self.tid].set_quiescent();
    }

    pub(crate) fn is_quiescent_impl(&self) -> bool {
        self.global.slots[self.tid].is_quiescent()
    }

    pub(crate) fn orphan_bags(&mut self) {
        let records: Vec<NonNull<T>> =
            self.bags.iter_mut().flat_map(|bag| bag.drain().collect::<Vec<_>>()).collect();
        if !records.is_empty() {
            self.global.push_orphans(records);
        }
        self.publish_pending();
    }
}

impl<T: Send + 'static> ReclaimerThread<T> for DebraThread<T> {
    // Epoch-style: records retired after an operation begins outlive the operation, so
    // unvalidated traversal (and therefore helping) is sound.
    const READ_PROTECTION: ReadProtection = ReadProtection::Pin;

    fn tid(&self) -> usize {
        self.tid
    }

    fn leave_qstate<S: ReclaimSink<T>>(&mut self, sink: &mut S) -> bool {
        self.leave_qstate_impl(sink, |this, sink| this.rotate_and_reclaim(sink), |_, _| false)
    }

    fn enter_qstate(&mut self) {
        self.enter_qstate_impl();
    }

    fn is_quiescent(&self) -> bool {
        self.is_quiescent_impl()
    }

    unsafe fn retire<S: ReclaimSink<T>>(&mut self, record: NonNull<T>, _sink: &mut S) {
        debug_assert!(
            !self.is_quiescent(),
            "retire must be called while non-quiescent (inside a data structure operation)"
        );
        self.retire_impl(record);
    }
}

impl<T: Send + 'static> Drop for DebraThread<T> {
    fn drop(&mut self) {
        // Records still in limbo bags are not yet safe to free: hand them to the global so
        // they can be reclaimed at teardown (or by a future fault tolerant collector).
        self.orphan_bags();
        self.global.deregister(self.tid);
    }
}

impl<T: Send + 'static> fmt::Debug for DebraThread<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DebraThread")
            .field("tid", &self.tid)
            .field("limbo_len", &self.limbo_len())
            .field("current", &self.current)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::CountingSink;

    fn tiny_config() -> DebraConfig {
        DebraConfig { check_threshold: 1, increment_threshold: 1, block_capacity: 4 }
    }

    fn leak(v: u64) -> NonNull<u64> {
        NonNull::from(Box::leak(Box::new(v)))
    }

    /// Frees reclaimed test records (which are leaked boxes) and records how many.
    struct FreeingSink {
        freed: usize,
    }
    impl ReclaimSink<u64> for FreeingSink {
        fn accept(&mut self, record: NonNull<u64>) {
            // SAFETY: test records are leaked boxes reclaimed exactly once.
            unsafe { drop(Box::from_raw(record.as_ptr())) };
            self.freed += 1;
        }
    }

    #[test]
    fn single_thread_reclaims_after_epoch_advances() {
        let debra: Arc<Debra<u64>> = Arc::new(Debra::with_config(1, tiny_config()));
        let mut t = Debra::register(&debra, 0).unwrap();
        let mut sink = FreeingSink { freed: 0 };

        // Retire a bunch of records across operations; with increment_threshold = 1 and a
        // single thread the epoch advances every operation, so records flow to the sink
        // after at most a few operations.
        for i in 0..200u64 {
            let _ = t.leave_qstate(&mut sink);
            unsafe { t.retire(leak(i), &mut sink) };
            t.enter_qstate();
        }
        assert!(sink.freed > 0, "records must eventually be reclaimed");
        let stats = debra.stats();
        assert_eq!(stats.retired, 200);
        assert!(stats.reclaimed > 0);
        assert!(stats.epochs_advanced > 0);
        // Everything not reclaimed is still pending in limbo bags.
        assert_eq!(stats.reclaimed + stats.pending, stats.retired);

        // Drain the rest on teardown so the test does not leak.
        drop(t);
        for r in debra.drain_orphans() {
            unsafe { drop(Box::from_raw(r.as_ptr())) };
        }
    }

    #[test]
    fn non_quiescent_thread_blocks_reclamation() {
        let debra: Arc<Debra<u64>> = Arc::new(Debra::with_config(2, tiny_config()));
        let mut a = Debra::register(&debra, 0).unwrap();
        let mut b = Debra::register(&debra, 1).unwrap();
        let mut sink = CountingSink::default();

        // Thread B starts an operation and never finishes it.
        let _ = b.leave_qstate(&mut sink);
        let b_records: Vec<NonNull<u64>> = (0..10).map(leak).collect();
        let _ = &b_records;

        // Thread A retires many records; because B is non-quiescent and stuck at an old
        // epoch, the epoch can never advance twice, so nothing is reclaimed.
        let mut retained: Vec<NonNull<u64>> = Vec::new();
        for i in 0..500u64 {
            let _ = a.leave_qstate(&mut sink);
            let r = leak(i);
            retained.push(r);
            unsafe { a.retire(r, &mut sink) };
            a.enter_qstate();
        }
        assert_eq!(sink.accepted, 0, "no reclamation while a thread is stuck non-quiescent");

        // Once B finishes its operation, A can advance the epoch and reclaim.
        b.enter_qstate();
        for _ in 0..50 {
            let _ = a.leave_qstate(&mut sink);
            a.enter_qstate();
        }
        assert!(sink.accepted > 0, "reclamation resumes after the stuck thread finishes");

        // Cleanup: free all leaked test records.
        drop(a);
        drop(b);
        for r in debra.drain_orphans() {
            unsafe { drop(Box::from_raw(r.as_ptr())) };
        }
        for r in retained {
            // Records accepted by CountingSink were not freed; free every allocation here.
            // (Records still in orphan bags were freed just above; the sets are disjoint
            // because CountingSink does not free and orphans were drained first.)
            let _ = r; // freed via orphans when still in bags; the rest leak-checked below
        }
        for r in b_records {
            unsafe { drop(Box::from_raw(r.as_ptr())) };
        }
    }

    #[test]
    fn quiescent_thread_does_not_block_reclamation() {
        // DEBRA's partial fault tolerance: a registered thread that is *between* operations
        // (quiescent) never prevents others from reclaiming.
        let debra: Arc<Debra<u64>> = Arc::new(Debra::with_config(2, tiny_config()));
        let mut a = Debra::register(&debra, 0).unwrap();
        let _b = Debra::register(&debra, 1).unwrap(); // never performs an operation

        let mut sink = FreeingSink { freed: 0 };
        for i in 0..200u64 {
            let _ = a.leave_qstate(&mut sink);
            unsafe { a.retire(leak(i), &mut sink) };
            a.enter_qstate();
        }
        assert!(sink.freed > 0, "an idle (quiescent) thread must not block reclamation");

        drop(a);
        for r in debra.drain_orphans() {
            unsafe { drop(Box::from_raw(r.as_ptr())) };
        }
    }

    #[test]
    fn grace_period_spans_two_epoch_changes() {
        // Drive two handles deterministically from one OS thread and check that a record
        // retired while another thread is non-quiescent is not reclaimed until that thread
        // has passed through a quiescent state.  Block capacity 1 so that even a single
        // record forms a full (reclaimable) block.
        let debra: Arc<Debra<u64>> = Arc::new(Debra::with_config(
            2,
            DebraConfig { check_threshold: 1, increment_threshold: 1, block_capacity: 1 },
        ));
        let mut a = Debra::register(&debra, 0).unwrap();
        let mut b = Debra::register(&debra, 1).unwrap();
        let mut sink = CountingSink::default();

        // B is inside an operation when A retires the record.
        let _ = b.leave_qstate(&mut sink);
        let _ = a.leave_qstate(&mut sink);
        let record = leak(7);
        unsafe { a.retire(record, &mut sink) };
        a.enter_qstate();

        // A performs many operations; B stays inside its operation: no reclamation.
        for _ in 0..100 {
            let _ = a.leave_qstate(&mut sink);
            a.enter_qstate();
        }
        assert_eq!(sink.accepted, 0);

        // B finishes; after A performs more operations the record is reclaimed.
        b.enter_qstate();
        for _ in 0..100 {
            let _ = a.leave_qstate(&mut sink);
            a.enter_qstate();
        }
        assert!(sink.accepted >= 1);

        unsafe { drop(Box::from_raw(record.as_ptr())) };
        drop(a);
        drop(b);
        for r in debra.drain_orphans() {
            unsafe { drop(Box::from_raw(r.as_ptr())) };
        }
    }

    #[test]
    fn registration_errors() {
        let debra: Arc<Debra<u64>> = Arc::new(Debra::new(2));
        let t0 = Debra::register(&debra, 0).unwrap();
        assert!(matches!(
            Debra::register(&debra, 0),
            Err(RegistrationError::AlreadyRegistered { tid: 0 })
        ));
        assert!(matches!(
            Debra::register(&debra, 5),
            Err(RegistrationError::ThreadIdOutOfRange { tid: 5, .. })
        ));
        drop(t0);
        // After dropping the handle the slot can be reused.
        assert!(Debra::register(&debra, 0).is_ok());
    }

    #[test]
    fn multithreaded_stress_every_record_accounted_for() {
        use std::sync::atomic::AtomicUsize;

        // Every reclaimed record is freed through the sink; afterwards every retired record
        // must have been handed out exactly once — either to a sink or to the orphan list.
        // (Freeing through `Box::from_raw` means any double reclamation would be a double
        // free, caught by the allocator / sanitizers; the count conservation check below
        // catches lost records.)
        struct TrackingSink {
            freed: Arc<AtomicUsize>,
        }
        impl ReclaimSink<u64> for TrackingSink {
            fn accept(&mut self, record: NonNull<u64>) {
                self.freed.fetch_add(1, Ordering::Relaxed);
                // SAFETY: each record is a leaked box reclaimed exactly once.
                unsafe { drop(Box::from_raw(record.as_ptr())) };
            }
        }

        let threads = 4;
        let per_thread_ops = 3_000u64;
        let debra: Arc<Debra<u64>> = Arc::new(Debra::with_config(
            threads,
            DebraConfig { check_threshold: 1, increment_threshold: 2, block_capacity: 16 },
        ));
        let freed = Arc::new(AtomicUsize::new(0));

        let mut joins = Vec::new();
        for tid in 0..threads {
            let debra = Arc::clone(&debra);
            let freed = Arc::clone(&freed);
            joins.push(std::thread::spawn(move || {
                let mut t = Debra::register(&debra, tid).unwrap();
                let mut sink = TrackingSink { freed };
                for i in 0..per_thread_ops {
                    let _ = t.leave_qstate(&mut sink);
                    unsafe { t.retire(leak(i), &mut sink) };
                    t.enter_qstate();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }

        let stats = debra.stats();
        assert_eq!(stats.retired, threads as u64 * per_thread_ops);
        assert!(stats.reclaimed > 0, "some reclamation must have happened");

        let orphans = debra.drain_orphans();
        assert_eq!(
            freed.load(Ordering::Relaxed) + orphans.len(),
            (threads as u64 * per_thread_ops) as usize,
            "every retired record is accounted for exactly once"
        );
        assert_eq!(freed.load(Ordering::Relaxed) as u64, stats.reclaimed);
        for r in orphans {
            unsafe { drop(Box::from_raw(r.as_ptr())) };
        }
    }
}

//! Restricted hazard pointers used by DEBRA+ recovery code.

use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

/// A fixed-capacity, single-writer multi-reader array of *restricted hazard pointers*
/// (the paper's `RProtected[pid]` "arraystack").
///
/// DEBRA+ uses hazard pointers in a very limited way: before an operation's `help`
/// procedure runs, the operation `RProtect`s the descriptor and every record `help` will
/// access, so that a *neutralized* thread can still safely execute `help` from its recovery
/// code while it is quiescent.  `RProtect` and `RUnprotectAll` are O(1); other threads scan
/// the array when deciding which records in their limbo bags can be moved to the pool.
///
/// The array is written only by its owning thread (and by the owning thread's signal
/// handler context, which never touches it), and read by all threads, so plain atomic
/// loads/stores suffice.
pub struct RProtectArray<T> {
    slots: Box<[AtomicPtr<T>]>,
    /// Number of occupied slots (single-writer; readers may observe a stale value, which is
    /// safe because they also see the non-null pointers in the occupied prefix).
    len: AtomicUsize,
}

impl<T> RProtectArray<T> {
    /// Creates an array with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        RProtectArray {
            slots: (0..capacity).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Maximum number of simultaneously protected records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently protected records.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire).min(self.slots.len())
    }

    /// Returns `true` if no records are currently protected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Announces a restricted hazard pointer to `record` (the paper's `RProtect`).
    ///
    /// Idempotent and reentrant: protecting a record that is already protected is a no-op,
    /// which matters because a thread can be neutralized in the middle of announcing and
    /// will re-run the announcement in its next attempt.
    ///
    /// # Panics
    ///
    /// Panics if the array is full (the data structure asked for more `RProtect` slots than
    /// were configured).
    pub fn protect(&self, record: NonNull<T>) {
        if self.contains(record) {
            return;
        }
        let idx = self.len.load(Ordering::Relaxed);
        assert!(
            idx < self.slots.len(),
            "RProtect capacity exceeded ({} slots); increase DebraPlusConfig::rprotect_slots",
            self.slots.len()
        );
        self.slots[idx].store(record.as_ptr(), Ordering::SeqCst);
        self.len.store(idx + 1, Ordering::SeqCst);
    }

    /// Releases every restricted hazard pointer (the paper's `RUnprotectAll`); O(#protected).
    pub fn unprotect_all(&self) {
        let n = self.len.load(Ordering::Relaxed).min(self.slots.len());
        for slot in &self.slots[..n] {
            slot.store(std::ptr::null_mut(), Ordering::SeqCst);
        }
        self.len.store(0, Ordering::SeqCst);
    }

    /// Returns `true` if `record` is currently protected by this array
    /// (the paper's `isRProtected`).
    pub fn contains(&self, record: NonNull<T>) -> bool {
        let n = self.len.load(Ordering::Acquire).min(self.slots.len());
        self.slots[..n].iter().any(|s| s.load(Ordering::Acquire) == record.as_ptr())
    }

    /// Iterates over the currently protected records (used when other threads scan all
    /// restricted hazard pointers before reclaiming their limbo bags).
    pub fn iter(&self) -> impl Iterator<Item = NonNull<T>> + '_ {
        // Read the full array rather than only the announced prefix: a concurrent writer
        // may have stored a pointer but not yet published the new length, and it is always
        // safe to over-approximate the protected set.
        self.slots.iter().filter_map(|s| NonNull::new(s.load(Ordering::Acquire)))
    }
}

impl<T> fmt::Debug for RProtectArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RProtectArray")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

// SAFETY: only raw pointers are stored, never dereferenced by this type.
unsafe impl<T: Send> Send for RProtectArray<T> {}
unsafe impl<T: Send> Sync for RProtectArray<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptr(v: usize) -> NonNull<u64> {
        NonNull::new((v * 8 + 8) as *mut u64).unwrap()
    }

    #[test]
    fn protect_contains_unprotect() {
        let a: RProtectArray<u64> = RProtectArray::new(4);
        assert!(a.is_empty());
        a.protect(ptr(1));
        a.protect(ptr(2));
        assert!(a.contains(ptr(1)));
        assert!(a.contains(ptr(2)));
        assert!(!a.contains(ptr(3)));
        assert_eq!(a.len(), 2);
        a.unprotect_all();
        assert!(a.is_empty());
        assert!(!a.contains(ptr(1)));
    }

    #[test]
    fn protect_is_idempotent() {
        let a: RProtectArray<u64> = RProtectArray::new(2);
        a.protect(ptr(1));
        a.protect(ptr(1));
        a.protect(ptr(1));
        assert_eq!(a.len(), 1);
    }

    #[test]
    #[should_panic(expected = "RProtect capacity exceeded")]
    fn overflow_panics() {
        let a: RProtectArray<u64> = RProtectArray::new(2);
        a.protect(ptr(1));
        a.protect(ptr(2));
        a.protect(ptr(3));
    }

    #[test]
    fn iter_reports_protected_records() {
        let a: RProtectArray<u64> = RProtectArray::new(8);
        for i in 0..5 {
            a.protect(ptr(i));
        }
        let collected: Vec<_> = a.iter().collect();
        assert_eq!(collected.len(), 5);
    }
}

//! The Record Manager trait family: `Reclaimer`, `Pool`, `Allocator` and the glue between
//! them.
//!
//! These traits are the Rust rendition of the paper's Record Manager abstraction
//! (Section 6): a data structure is written once against
//! [`RecordManagerThread`](crate::RecordManagerThread) and the concrete reclamation,
//! pooling and allocation schemes are chosen by filling in type parameters — the compiler
//! monomorphizes the calls, so a scheme whose `protect` is a no-op (like DEBRA) costs
//! nothing, exactly as with the paper's C++ templates.

use std::ptr::NonNull;
use std::sync::Arc;

use blockbag::Block;
use neutralize::Neutralized;

use crate::properties::SchemeProperties;
use crate::stats::{PoolStats, ReclaimerStats};

/// Error returned when registering a thread with a shared component fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistrationError {
    /// The requested thread id is `>= max_threads`.
    ThreadIdOutOfRange {
        /// The requested thread id.
        tid: usize,
        /// The maximum number of threads the component was created for.
        max_threads: usize,
    },
    /// The requested thread id is already registered.
    AlreadyRegistered {
        /// The requested thread id.
        tid: usize,
    },
    /// Every thread slot is currently leased (returned by the automatic slot leasing of
    /// [`Domain`](crate::Domain) when `max_threads` threads are already active).
    Exhausted {
        /// The maximum number of threads the component was created for.
        max_threads: usize,
    },
}

impl std::fmt::Display for RegistrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistrationError::ThreadIdOutOfRange { tid, max_threads } => {
                write!(f, "thread id {tid} out of range (max_threads = {max_threads})")
            }
            RegistrationError::AlreadyRegistered { tid } => {
                write!(f, "thread id {tid} is already registered")
            }
            RegistrationError::Exhausted { max_threads } => {
                write!(f, "all {max_threads} thread slots are currently leased")
            }
        }
    }
}

impl std::error::Error for RegistrationError {}

/// How a scheme lets readers dereference shared records — the generalization of the old
/// `SUPPORTS_UNPROTECTED_TRAVERSAL` bool (which only distinguished epoch-style pinning
/// from per-access announcement).
///
/// | variant    | reader cost per access        | schemes                              |
/// |------------|-------------------------------|--------------------------------------|
/// | `Announce` | shared store + validation     | HP, ThreadScan, IBR                  |
/// | `Pin`      | none (epoch pin per op)       | none (leak), EBR, DEBRA, DEBRA+      |
/// | `Validate` | local version check           | VBR                                  |
///
/// `Announce` schemes publish a per-record (or per-interval) reservation before every
/// dereference and re-validate reachability afterwards.  `Pin` schemes announce once per
/// operation; while the thread stays non-quiescent nothing retired after the pin is freed,
/// so unvalidated traversal — and helping — is sound.  `Validate` schemes (version-based
/// reclamation) announce *nothing*: readers snapshot a global version clock when the
/// operation starts and every checkpoint merely compares the clock against the snapshot,
/// restarting the operation (typed [`Restart`](crate::Restart)) once enough ticks have
/// passed that retired records may have been recycled.  Dereferencing is kept machine-safe
/// not by protection but by *type stability* of the allocator (see
/// [`Allocator::TYPE_STABLE`]), which is why `Validate` schemes must also declare
/// [`AllocatorRequirement::TypeStable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadProtection {
    /// Per-access announcement (hazard-pointer style): `protect` publishes a reservation
    /// and runs the validation closure.
    Announce,
    /// Per-operation epoch pin: `protect` is a validated no-op; unprotected traversal and
    /// helping are sound while the thread is non-quiescent.
    Pin,
    /// No announcement at all: `protect`/`check` compile to a version-clock comparison
    /// that fails the operation (restart) instead of blocking reclamation.
    Validate,
}

/// What a reclamation scheme demands of the allocator underneath it.
///
/// Most schemes guarantee that a record handed to the sink is unreachable, so any
/// allocator — including ones that unmap pages or re-type memory — is sound.  Version
/// based schemes ([`ReadProtection::Validate`]) tolerate transient stale dereferences and
/// are only machine-safe when record memory is *type stable*: never unmapped and never
/// reused for a different type ([`Allocator::TYPE_STABLE`]).  The pairing is checked once
/// at Record Manager construction (see `RecordManager::from_parts`), turning a latent
/// unsoundness into an immediate, explainable panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocatorRequirement {
    /// Any allocator is sound.
    Any,
    /// Only type-stable, never-unmapping allocators are sound (`ALLOCATOR=pagepool`).
    TypeStable,
}

/// A destination for records that have become safe to reuse or free.
///
/// Reclaimers do not free records themselves; they hand them to a sink — normally the
/// [`PoolThread`] of the same Record Manager, which either caches them for reuse or passes
/// them on to the [`AllocatorThread`].  Accepting whole [`Block`]s mirrors the paper's
/// `pool->moveFullBlocks(bag)` and keeps the per-record reclamation cost at O(1).
pub trait ReclaimSink<T> {
    /// Accepts a single reclaimed record.
    fn accept(&mut self, record: NonNull<T>);

    /// Accepts a whole block of reclaimed records.
    ///
    /// The default implementation drains the block into [`accept`](Self::accept);
    /// block-aware sinks (pool bags) override it to move the block in O(1).
    // The box is the point: the whole allocation changes owner (see `BlockBag`).
    #[allow(clippy::boxed_local)]
    fn accept_block(&mut self, mut block: Box<Block<T>>) {
        let records: Vec<NonNull<T>> = block.drain().collect();
        for r in records {
            self.accept(r);
        }
    }
}

/// A sink that counts (and otherwise discards) reclaimed records.  Useful in tests and for
/// reclaimers whose caller manages memory elsewhere.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of records accepted so far.
    pub accepted: usize,
}

impl<T> ReclaimSink<T> for CountingSink {
    fn accept(&mut self, _record: NonNull<T>) {
        self.accepted += 1;
    }
}

/// Shared (global) state of a safe memory reclamation scheme.
///
/// One value of this type is shared by all threads operating on one (or more) data
/// structures; each participating thread registers to obtain a [`ReclaimerThread`] handle.
///
/// # Safety contract
///
/// Implementations must guarantee that a record handed to a [`ReclaimSink`] can no longer
/// be reached by any thread that follows the scheme's usage protocol (the protocol itself —
/// which calls must be made and when — is described per scheme).
pub trait Reclaimer<T: Send>: Send + Sync + Sized + 'static {
    /// Per-thread handle type.
    type Thread: ReclaimerThread<T> + 'static;

    /// Creates shared state for up to `max_threads` threads with default configuration.
    fn new(max_threads: usize) -> Self;

    /// Registers thread slot `tid` (`0 <= tid < max_threads`) and returns its handle.
    ///
    /// # Errors
    ///
    /// Fails if `tid` is out of range or already registered.
    fn register(this: &Arc<Self>, tid: usize) -> Result<Self::Thread, RegistrationError>;

    /// Maximum number of threads this instance supports.
    fn max_threads(&self) -> usize;

    /// Short human-readable name of the scheme (e.g. `"DEBRA+"`).
    fn name() -> &'static str;

    /// Qualitative properties of the scheme (used to regenerate the paper's Figure 2).
    fn properties() -> SchemeProperties;

    /// Aggregated statistics across all threads.
    fn stats(&self) -> ReclaimerStats;

    /// Retired records handed back by threads that have exited before the records became
    /// safe to free.  Called during teardown, when the caller guarantees that no thread is
    /// still accessing the data structure.
    fn drain_orphans(&self) -> Vec<NonNull<T>> {
        Vec::new()
    }

    /// What this scheme demands of the allocator it is paired with.  Checked once at
    /// Record Manager construction; the default (`Any`) matches every scheme in the
    /// paper.  Version-based schemes override this with
    /// [`AllocatorRequirement::TypeStable`] because their optimistic reads are only
    /// machine-safe over never-unmapping, type-pure record pages.
    const ALLOCATOR_REQUIREMENT: AllocatorRequirement = AllocatorRequirement::Any;

    /// `true` if thread `tid` is currently neutralized (signalled by the crash-recovery
    /// protocol and not yet past its next checkpoint).  Always `false` for schemes
    /// without neutralization.  Must be safe to call from any thread — diagnostic
    /// tooling (the smr-check sanitizer) probes it to excuse the one-load-wide window
    /// where a just-neutralized thread dereferences a record the reclaimer already
    /// reclaimed (the operation is doomed to restart at its next checkpoint, so the
    /// stale read is never acted upon).
    fn is_thread_neutralized(&self, _tid: usize) -> bool {
        false
    }
}

/// Per-thread handle of a [`Reclaimer`].
///
/// The handle is intentionally not `Send`: it encapsulates thread-local state such as limbo
/// bags and hazard pointer slots.
///
/// # Usage protocol
///
/// * Call [`leave_qstate`](Self::leave_qstate) at the start and
///   [`enter_qstate`](Self::enter_qstate) at the end of every data structure operation,
///   and do not hold pointers to records across operations.
/// * Call [`retire`](Self::retire) exactly once for each record removed from the data
///   structure, while non-quiescent.
/// * For schemes that require per-access protection (hazard pointers), call
///   [`protect`](Self::protect) before reading a record's fields and only proceed if it
///   returns `true`.
/// * For schemes with crash recovery (DEBRA+), consult [`check`](Self::check) at every
///   checkpoint and run the recovery protocol when it reports [`Neutralized`].
pub trait ReclaimerThread<T: Send> {
    /// `true` if this scheme supports crash recovery / neutralization (DEBRA+).
    const SUPPORTS_CRASH_RECOVERY: bool = false;

    /// How this scheme protects readers — see [`ReadProtection`].  The default is the
    /// safe choice (`Announce`: per-access validated protection, no helping);
    /// epoch-style schemes opt into `Pin`, version-based schemes into `Validate`.
    const READ_PROTECTION: ReadProtection = ReadProtection::Announce;

    /// `true` when a non-quiescent thread may dereference any record that was reachable
    /// at some point during its operation *without* a per-access validated
    /// [`protect`](Self::protect) — the epoch-style guarantee (no reclamation, EBR,
    /// DEBRA, DEBRA+: nothing retired after the operation began is freed while the
    /// thread stays non-quiescent).
    ///
    /// This is the capability that makes **helping** sound: completing another thread's
    /// operation follows descriptor fields into records the helper never protected, on
    /// which no validating read can be performed (there is no link to re-validate
    /// against).  Schemes whose safety argument is tied to their own validated accesses
    /// must not claim it: hazard pointers and ThreadScan (per-slot announcements),
    /// and IBR — whose interval reservation covers exactly the records reached through
    /// its *validating reads*, not the unvalidated descriptor-field loads of a helping
    /// path.  (Claiming it for IBR is how the seed's external BST corrupted
    /// itself: a stale helper's child CAS could race record recycling and resurrect an
    /// already-removed, marked node, permanently livelocking every validated traversal.)
    /// Version-based schemes must not claim it either: a helper's CAS cannot be covered
    /// by a version re-check on a link it never read.
    ///
    /// Derived from [`READ_PROTECTION`](Self::READ_PROTECTION): only `Pin` schemes
    /// traverse unprotected.  Kept as a named constant because it is the capability
    /// consumers actually gate on (helping in the BST, sanitizer deref tracking).
    const SUPPORTS_UNPROTECTED_TRAVERSAL: bool =
        matches!(Self::READ_PROTECTION, ReadProtection::Pin);

    /// The thread slot this handle was registered with.
    fn tid(&self) -> usize;

    /// Announces that a data structure operation is starting (the thread leaves its
    /// quiescent state).  Reclaimed records, if any, are handed to `sink`.
    ///
    /// Returns `true` if the thread's epoch announcement changed (which is when limbo bags
    /// are rotated) — mirroring the paper's `leaveQstate` return value.
    #[must_use = "the return value reports whether the epoch announcement changed"]
    fn leave_qstate<S: ReclaimSink<T>>(&mut self, sink: &mut S) -> bool;

    /// Announces that the current data structure operation has finished (the thread enters
    /// its quiescent state).  O(1).
    fn enter_qstate(&mut self);

    /// Returns `true` if the thread is currently quiescent.
    fn is_quiescent(&self) -> bool;

    /// Informs the reclaimer that `record` was just handed out by the allocator/pool.
    ///
    /// Interval-based schemes use this to tag the record's *birth era*; every other scheme
    /// leaves the default no-op (which the compiler removes after monomorphization, so the
    /// hook costs nothing where it is unused).  Called by
    /// [`RecordManagerThread::allocate`](crate::RecordManagerThread::allocate) for both
    /// fresh and pool-recycled records.
    fn record_allocated(&mut self, _record: NonNull<T>) {}

    /// Hands a record that has been removed from the data structure to the reclaimer.
    ///
    /// O(1) in the worst case for DEBRA/DEBRA+.  The record will eventually be passed to a
    /// [`ReclaimSink`] once no thread can hold a pointer to it.
    ///
    /// # Safety
    ///
    /// * `record` must have been removed from the data structure (unreachable from its
    ///   entry points for operations that start after this call);
    /// * `record` must not be retired more than once per allocation;
    /// * the calling thread must be non-quiescent.
    unsafe fn retire<S: ReclaimSink<T>>(&mut self, record: NonNull<T>, sink: &mut S);

    /// Attempts to protect `record` so that its fields may be read (hazard-pointer
    /// semantics).  `validate` must return `true` iff the record is still reachable in the
    /// data structure; it is called *after* the protection has been announced.
    ///
    /// Epoch-based schemes implement this as a no-op that returns `true` (and the compiler
    /// removes the call entirely after monomorphization).
    #[must_use = "a false result means the record may already be retired and must not be accessed"]
    fn protect<F: FnMut() -> bool>(
        &mut self,
        _slot: usize,
        _record: NonNull<T>,
        mut _validate: F,
    ) -> bool {
        true
    }

    /// Releases the protection slot `slot`.
    fn unprotect(&mut self, _slot: usize) {}

    /// Returns `true` if this thread currently protects `record`.
    fn is_protected(&self, _record: NonNull<T>) -> bool {
        false
    }

    /// Number of per-thread protection slots offered by this scheme (0 for epoch-based
    /// schemes).
    fn protection_slots(&self) -> usize {
        0
    }

    // ---- crash recovery (DEBRA+) ------------------------------------------------------

    /// Announces a *restricted* hazard pointer for use by recovery code
    /// (the paper's `RProtect`).  No-op for schemes without crash recovery.
    fn r_protect(&mut self, _record: NonNull<T>) {}

    /// Releases every restricted hazard pointer (the paper's `RUnprotectAll`).
    fn r_unprotect_all(&mut self) {}

    /// Returns `true` if this thread holds a restricted hazard pointer to `record`
    /// (the paper's `isRProtected`).
    fn is_r_protected(&self, _record: NonNull<T>) -> bool {
        false
    }

    /// Checkpoint: returns `Err(Neutralized)` if this thread has been neutralized since it
    /// last left a quiescent state.  Wait-free, O(1).  Data structure operation bodies call
    /// this before dereferencing shared records and before performing CAS steps.
    #[must_use = "ignoring a Neutralized result defeats the DEBRA+ recovery protocol"]
    fn check(&self) -> Result<(), Neutralized> {
        Ok(())
    }

    /// Returns `true` if this thread has been neutralized and has not yet begun recovery.
    fn is_neutralized(&self) -> bool {
        false
    }

    /// Acknowledges a neutralization: clears the neutralized flag so the thread can run its
    /// recovery code and restart the operation.  The thread stays quiescent until its next
    /// [`leave_qstate`](Self::leave_qstate).
    fn begin_recovery(&mut self) {}
}

/// Shared (global) state of a memory allocator.
///
/// The allocator is the component that actually obtains memory for records and returns it
/// to the operating system; it is also the source of the *allocated bytes* metric used by
/// the paper's memory-footprint experiment (Figure 9, right).
pub trait Allocator<T>: Send + Sync + Sized + 'static {
    /// Per-thread handle type.
    type Thread: AllocatorThread<T> + 'static;

    /// `true` iff record memory is *type stable*: once a page has held records of type
    /// `T` it is never unmapped and never reused for another type for the lifetime of
    /// the process.  This is the property version-based reclamation needs to make its
    /// optimistic (possibly stale) reads machine-safe — a racing load through a recycled
    /// pointer still lands on a valid, aligned record of the same type and cannot fault.
    /// Only the page-store allocator (`smr-pagepool`) provides it; the default is the
    /// honest `false`.
    const TYPE_STABLE: bool = false;

    /// Creates shared allocator state for up to `max_threads` threads.
    fn new(max_threads: usize) -> Self;

    /// Creates a per-thread handle.  Unlike reclaimer registration this never fails and may
    /// be called several times for the same `tid` (e.g. for teardown handles).
    fn register(this: &Arc<Self>, tid: usize) -> Self::Thread;

    /// Short human-readable name (e.g. `"bump"`).
    fn name() -> &'static str;

    /// Total bytes of record memory ever requested from this allocator.
    fn allocated_bytes(&self) -> u64;

    /// Total number of records ever allocated from this allocator.
    fn allocated_records(&self) -> u64;
}

/// Per-thread handle of an [`Allocator`].
pub trait AllocatorThread<T> {
    /// Allocates memory for one record and moves `value` into it.
    fn allocate(&mut self, value: T) -> NonNull<T>;

    /// Releases a record's memory back to the allocator, dropping its value if the concrete
    /// allocator supports individual deallocation (see each allocator's documentation).
    ///
    /// # Safety
    ///
    /// * `record` must have been allocated by an allocator of the same family (same global
    ///   instance);
    /// * the caller must have exclusive access to the record (no concurrent readers);
    /// * the record must not be used after this call.
    unsafe fn deallocate(&mut self, record: NonNull<T>);
}

/// Shared (global) state of an object pool.
///
/// The pool sits between the reclaimer and the allocator: reclaimed records are cached and
/// preferentially reused by subsequent allocations, which shrinks the memory footprint and
/// improves cache behaviour (this is how DEBRA sometimes *beats* performing no reclamation
/// at all in the paper's Experiment 2).
pub trait Pool<T>: Send + Sync + Sized + 'static {
    /// Per-thread handle type.
    type Thread: PoolThread<T> + 'static;

    /// Creates shared pool state for up to `max_threads` threads.
    fn new(max_threads: usize) -> Self;

    /// Creates the per-thread handle for slot `tid`.
    fn register(this: &Arc<Self>, tid: usize) -> Self::Thread;

    /// Short human-readable name (e.g. `"thread-pool"`).
    fn name() -> &'static str;

    /// Removes and returns every record currently cached in shared pool structures.
    /// Called during teardown so the Record Manager can free them.
    fn drain_shared(&self) -> Vec<NonNull<T>>;

    /// Aggregated allocation-pipeline statistics (magazine hits/misses, page store
    /// gauges).  Pools that do not keep counters return the all-zero default.
    fn stats(&self) -> PoolStats {
        PoolStats::default()
    }
}

/// Per-thread handle of a [`Pool`].
///
/// A pool thread handle is also a [`ReclaimSink`]: reclaimers push reclaimed records (or
/// whole blocks of them) straight into the pool.
pub trait PoolThread<T>: ReclaimSink<T> {
    /// Takes a recycled record out of the pool, if one is available.  The record's previous
    /// value is still in place; the caller is responsible for replacing it.
    fn try_take(&mut self) -> Option<NonNull<T>>;

    /// Allocates a record containing `value`, preferring to recycle one from the pool and
    /// falling back to `alloc`.
    fn allocate<A: AllocatorThread<T>>(&mut self, value: T, alloc: &mut A) -> NonNull<T> {
        match self.try_take() {
            Some(record) => {
                // SAFETY: a record in the pool is reachable by no thread (the reclaimer
                // established that before handing it to the sink), still holds the valid
                // value it had when it was retired, and we have exclusive access to it.
                unsafe {
                    std::ptr::drop_in_place(record.as_ptr());
                    std::ptr::write(record.as_ptr(), value);
                }
                record
            }
            None => alloc.allocate(value),
        }
    }

    /// Gives a record (with a valid value, no longer reachable by anyone) to the pool.
    /// Depending on the pool's policy it is cached for reuse or freed through `alloc`.
    ///
    /// # Safety
    ///
    /// Same conditions as [`AllocatorThread::deallocate`].
    unsafe fn deallocate<A: AllocatorThread<T>>(&mut self, record: NonNull<T>, alloc: &mut A);

    /// Number of records currently cached by this thread's local pool bag.
    fn cached(&self) -> usize;

    /// Moves locally cached records to the pool's shared structures (called when the thread
    /// handle is dropped so that no record is lost).
    fn flush_to_shared(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_counts_records_and_blocks() {
        let mut sink = CountingSink::default();
        let mut b: Box<Block<u64>> = Block::with_capacity(4);
        for i in 0..4usize {
            b.push(NonNull::new((i * 8 + 8) as *mut u64).unwrap());
        }
        ReclaimSink::<u64>::accept(&mut sink, NonNull::new(1024 as *mut u64).unwrap());
        ReclaimSink::<u64>::accept_block(&mut sink, b);
        assert_eq!(sink.accepted, 5);
    }

    #[test]
    fn registration_error_display() {
        let e = RegistrationError::ThreadIdOutOfRange { tid: 9, max_threads: 4 };
        assert!(e.to_string().contains('9'));
        let e = RegistrationError::AlreadyRegistered { tid: 3 };
        assert!(e.to_string().contains('3'));
    }
}

//! The record lifecycle state machine (the paper's Figure 1).
//!
//! Used by debug assertions and by tests to check that reclaimers never reclaim a record
//! that was not retired, never retire a record twice, and so on.

/// The lifecycle of a record (Figure 1 of the paper).
///
/// ```text
/// Unallocated --allocate--> Uninitialized --insert--> Inserted --remove--> Retired
///      ^                                                                      |
///      +---------------------------- free ------------------------------------+
///                              (or: reuse --> Uninitialized)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecordLifecycle {
    /// Not allocated (or freed back to the allocator).
    #[default]
    Unallocated,
    /// Allocated but not yet initialized / published.
    Uninitialized,
    /// Reachable from an entry point of the data structure.
    Inserted,
    /// Removed from the data structure; waiting until it is safe to free.
    Retired,
}

impl RecordLifecycle {
    /// Returns `true` if transitioning from `self` to `next` is legal in the lifecycle
    /// state machine of Figure 1.
    pub fn can_transition_to(self, next: RecordLifecycle) -> bool {
        use RecordLifecycle::*;
        matches!(
            (self, next),
            (Unallocated, Uninitialized)   // allocate
                | (Uninitialized, Inserted) // initialize + insert
                | (Inserted, Retired)       // remove from the data structure
                | (Retired, Unallocated)    // free
                | (Retired, Uninitialized) // reuse straight from the pool
        )
    }

    /// Applies a transition, panicking (in debug builds the caller typically asserts) if it
    /// is illegal.  Returns the new state.
    pub fn transition(self, next: RecordLifecycle) -> Result<RecordLifecycle, LifecycleError> {
        if self.can_transition_to(next) {
            Ok(next)
        } else {
            Err(LifecycleError { from: self, to: next })
        }
    }
}

/// Error returned by [`RecordLifecycle::transition`] for an illegal transition, e.g. a
/// double retire or a free of a record that is still in the data structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleError {
    /// State before the attempted transition.
    pub from: RecordLifecycle,
    /// Attempted target state.
    pub to: RecordLifecycle,
}

impl std::fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "illegal record lifecycle transition {:?} -> {:?}", self.from, self.to)
    }
}

impl std::error::Error for LifecycleError {}

#[cfg(test)]
mod tests {
    use super::RecordLifecycle::*;

    #[test]
    fn legal_cycle() {
        let mut s = Unallocated;
        for next in [Uninitialized, Inserted, Retired, Unallocated] {
            s = s.transition(next).unwrap();
        }
        assert_eq!(s, Unallocated);
    }

    #[test]
    fn reuse_from_pool_is_legal() {
        assert!(Retired.can_transition_to(Uninitialized));
    }

    #[test]
    fn double_retire_is_illegal() {
        assert!(!Retired.can_transition_to(Retired));
        let err = Retired.transition(Retired).unwrap_err();
        assert_eq!(err.from, Retired);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn freeing_a_live_record_is_illegal() {
        assert!(!Inserted.can_transition_to(Unallocated));
        assert!(!Uninitialized.can_transition_to(Unallocated));
    }
}

//! DEBRA and DEBRA+ — distributed epoch based reclamation for lock-free data structures —
//! together with the **Record Manager** abstraction that separates memory reclamation from
//! data structure code.
//!
//! This crate is the primary contribution of the reproduction of Trevor Brown's
//! *"Reclaiming Memory for Lock-Free Data Structures: There has to be a Better Way"*
//! (PODC 2015):
//!
//! * [`Debra`] — a distributed variant of epoch based reclamation (EBR).  Compared to
//!   classical EBR it (i) lets reclamation continue while a slow process is *between*
//!   operations (partial fault tolerance), (ii) amortizes the cost of scanning other
//!   processes' epoch announcements over many operations, and (iii) replaces shared limbo
//!   bags with per-thread, block-based limbo bags (see the `blockbag` crate).  Each
//!   operation start/end and each retired record costs O(1) steps.
//! * [`DebraPlus`] — the first *fault tolerant* epoch based reclamation scheme.  A process
//!   that has not announced the current epoch for a long time is **neutralized** with an OS
//!   signal (see the `neutralize` crate); from that moment on other processes may treat it
//!   as quiescent, so the number of records waiting to be freed is bounded by O(mn²).
//! * [`RecordManager`] — the lock-free generalization of the C++ `Allocator` abstraction:
//!   a compile-time composition of a [`Reclaimer`], a [`Pool`] and an [`Allocator`] that a
//!   data structure uses for all allocation, retirement and reclamation, so that the
//!   reclamation scheme can be swapped by changing a single type parameter.
//! * [`Domain`] / [`Guard`] / [`Shield`] / [`ShieldSet`] / [`Recovery`] — the **safe
//!   layer** over the Record Manager (module [`guard`]): automatic per-thread slot
//!   leasing, RAII operation brackets, typed [`Restart`] instead of caller-side
//!   neutralization checks, multi-role protection windows with store-free rotation,
//!   RAII restricted-hazard-pointer scopes for DEBRA+ completion phases, and
//!   [`Atomic`]/[`Shared`]/[`Owned`] pointers (module [`atomic`]) whose lifetimes tie
//!   every dereference to a live guard — data structures written on it need no `unsafe`
//!   at all (the structure crates are `#![forbid(unsafe_code)]`).
//!
//! Baseline schemes (no reclamation, classical EBR, hazard pointers, …) implementing the
//! same traits live in the `smr-baselines` crate; allocators and pools live in `smr-alloc`;
//! lock-free data structures exercising the abstraction live in `lockfree-ds`.
//!
//! # Quick start
//!
//! ```
//! use debra::{Debra, RecordManager, Reclaimer, ReclaimerThread, ReclaimSink};
//! use std::ptr::NonNull;
//! use std::sync::Arc;
//!
//! // A trivial sink that immediately frees reclaimed records (normally the Pool does this).
//! struct FreeSink;
//! impl ReclaimSink<u64> for FreeSink {
//!     fn accept(&mut self, record: NonNull<u64>) {
//!         // SAFETY: records below are leaked boxes and reclaimed exactly once.
//!         unsafe { drop(Box::from_raw(record.as_ptr())) }
//!     }
//! }
//!
//! let debra: Arc<Debra<u64>> = Arc::new(Debra::new(2));
//! let mut t0 = Debra::register(&debra, 0).unwrap();
//! let mut sink = FreeSink;
//!
//! t0.leave_qstate(&mut sink);                 // begin a data structure operation
//! let record = NonNull::from(Box::leak(Box::new(42u64)));
//! // ... the record would be inserted into and later removed from a data structure ...
//! unsafe { t0.retire(record, &mut sink) };    // O(1): goes into the current limbo bag
//! t0.enter_qstate();                          // end of the operation
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atomic;
pub mod config;
pub mod debra;
pub mod debra_plus;
pub mod guard;
pub mod lifecycle;
pub mod properties;
pub mod record_manager;
pub mod rprotect;
pub mod stats;
pub mod traits;

pub use crate::atomic::{Atomic, Owned, Pinned, Shared};
pub use crate::config::{DebraConfig, DebraPlusConfig};
pub use crate::debra::{Debra, DebraThread};
pub use crate::debra_plus::{DebraPlus, DebraPlusThread};
pub use crate::guard::{
    Domain, DomainHandle, Guard, Protected, Recovery, Restart, Shield, ShieldSet,
};
pub use crate::lifecycle::RecordLifecycle;
pub use crate::properties::{CodeModifications, SchemeProperties, Termination, TimingAssumptions};
pub use crate::record_manager::{OpGuard, RecordManager, RecordManagerThread};
pub use crate::rprotect::RProtectArray;
pub use crate::stats::{PoolStats, ReclaimerStats, ThreadStatsSlot};
pub use crate::traits::{
    Allocator, AllocatorRequirement, AllocatorThread, CountingSink, Pool, PoolThread,
    ReadProtection, ReclaimSink, Reclaimer, ReclaimerThread, RegistrationError,
};

pub use neutralize::Neutralized;

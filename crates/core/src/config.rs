//! Tuning knobs for DEBRA and DEBRA+.

/// Configuration for [`Debra`](crate::Debra).
///
/// The defaults correspond to the constants used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DebraConfig {
    /// Number of `leave_qstate` calls between two checks of another thread's announcement
    /// (the paper's `CHECK_THRESH`, used to reduce cross-socket cache misses on NUMA
    /// systems).  1 means "check one announcement on every operation".
    pub check_threshold: usize,
    /// Minimum number of `leave_qstate` calls before this thread attempts to increment the
    /// epoch (the paper's `INCR_THRESH`, 100 in the paper's experiments).  Prevents a
    /// single-threaded execution from rotating bags on every operation.
    pub increment_threshold: usize,
    /// Number of record pointers per limbo bag block (the paper's `B`, 256).
    pub block_capacity: usize,
}

impl Default for DebraConfig {
    fn default() -> Self {
        DebraConfig {
            check_threshold: 1,
            increment_threshold: 100,
            block_capacity: blockbag::DEFAULT_BLOCK_CAPACITY,
        }
    }
}

/// Configuration for [`DebraPlus`](crate::DebraPlus).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DebraPlusConfig {
    /// The underlying DEBRA configuration.
    pub debra: DebraConfig,
    /// When this thread's current limbo bag holds at least this many **blocks** and another
    /// thread is blocking the epoch, the other thread is suspected of having crashed and is
    /// neutralized (the paper's `SUSPECT_THRESHOLD_IN_BLOCKS`).
    pub suspect_threshold_blocks: usize,
    /// A limbo bag is scanned against the restricted hazard pointers (and its unprotected
    /// full blocks reclaimed) only when it holds at least this many blocks, giving expected
    /// amortized O(1) work per reclaimed record.
    pub scan_threshold_blocks: usize,
    /// Number of restricted hazard pointer (`RProtect`) slots per thread.  Must be at least
    /// the number of records accessed by the data structure's `help` routine plus one for
    /// the descriptor.
    pub rprotect_slots: usize,
}

impl Default for DebraPlusConfig {
    fn default() -> Self {
        DebraPlusConfig {
            debra: DebraConfig::default(),
            suspect_threshold_blocks: 2,
            scan_threshold_blocks: 1,
            rprotect_slots: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = DebraConfig::default();
        assert_eq!(c.increment_threshold, 100);
        assert_eq!(c.block_capacity, 256);
        let p = DebraPlusConfig::default();
        assert!(p.rprotect_slots >= 4);
        assert!(p.suspect_threshold_blocks >= 1);
    }
}

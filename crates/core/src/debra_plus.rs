//! DEBRA+: fault tolerant distributed epoch based reclamation (paper, Section 5).

use std::collections::HashSet;
use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use neutralize::{Neutralized, SignalDriver, ThreadRegistration};

use crate::config::DebraPlusConfig;
use crate::debra::{Debra, DebraThread};
use crate::properties::SchemeProperties;
use crate::rprotect::RProtectArray;
use crate::stats::ReclaimerStats;
use crate::traits::{ReadProtection, ReclaimSink, Reclaimer, ReclaimerThread, RegistrationError};

/// Shared state of the DEBRA+ reclaimer.
///
/// DEBRA+ extends [`Debra`] with *neutralization*, making it the first fault tolerant epoch
/// based reclamation scheme:
///
/// * When a thread `p` notices that some thread `q` has neither announced the current epoch
///   nor become quiescent, and `p`'s current limbo bag has grown beyond a threshold, `p`
///   **neutralizes** `q` by sending it an OS signal
///   ([`suspect_neutralized`](crate::DebraPlusConfig::suspect_threshold_blocks)).  From that
///   moment `p` may treat `q` as quiescent, so a crashed or descheduled thread can delay
///   reclamation only briefly: at any time O(mn²) records are waiting to be freed, where
///   `m` is the largest number of records retired by one operation.
/// * A neutralized thread runs *recovery code* while quiescent.  So that the recovery code
///   can safely access its operation descriptor (and the records the descriptor refers
///   to), DEBRA+ provides **restricted hazard pointers**
///   ([`r_protect`](ReclaimerThread::r_protect)); reclamation skips records that are
///   R-protected by any thread.
///
/// # Neutralization model in this reproduction
///
/// The paper's signal handler performs a `siglongjmp` straight into the recovery code.
/// Jumping out of arbitrary Rust frames from a signal handler is unsound, so this
/// implementation uses *checked neutralization*: the handler (see the `neutralize` crate)
/// sets the thread's quiescent bit and a `neutralized` flag, and the operation body
/// observes the flag at its next checkpoint ([`check`](ReclaimerThread::check)) — every
/// record access and CAS in the data structures of the `lockfree-ds` crate is preceded by
/// such a checkpoint — and unwinds to the recovery code by returning
/// [`Neutralized`].  Records reclaimed by other threads while a neutralized thread is still
/// running toward its next checkpoint are recycled through the Record Manager's pool
/// (type-stable memory), so a stale access reads a valid record of the right type; see
/// `DESIGN.md` for the full discussion of this substitution.
pub struct DebraPlus<T> {
    base: Arc<Debra<T>>,
    rprotected: Box<[RProtectArray<T>]>,
    driver: SignalDriver,
    config: DebraPlusConfig,
}

impl<T: Send + 'static> DebraPlus<T> {
    /// Creates DEBRA+ shared state with a custom configuration and signal driver.
    ///
    /// Use [`SignalDriver::best_available`] for real POSIX-signal neutralization, or
    /// [`SignalDriver::simulated`] for deterministic tests / non-Unix platforms.
    pub fn with_config(max_threads: usize, config: DebraPlusConfig, driver: SignalDriver) -> Self {
        let base = Arc::new(Debra::with_config(max_threads, config.debra));
        DebraPlus {
            base,
            rprotected: (0..max_threads)
                .map(|_| RProtectArray::new(config.rprotect_slots))
                .collect(),
            driver,
            config,
        }
    }

    /// The underlying DEBRA instance (epoch, announcements, limbo bag bookkeeping).
    pub fn base(&self) -> &Arc<Debra<T>> {
        &self.base
    }

    /// The signal driver used for neutralization.
    pub fn driver(&self) -> &SignalDriver {
        &self.driver
    }

    /// The configuration this instance was created with.
    pub fn config(&self) -> &DebraPlusConfig {
        &self.config
    }

    /// The restricted hazard pointer array of thread `tid`.
    pub fn rprotected(&self, tid: usize) -> &RProtectArray<T> {
        &self.rprotected[tid]
    }

    /// Collects every currently R-protected record (by any thread) into a hash set of
    /// addresses.  Called only when a limbo bag has grown past the scan threshold, so the
    /// expected amortized cost per reclaimed record is O(1).
    fn all_rprotected(&self) -> HashSet<usize> {
        let mut set = HashSet::new();
        for array in self.rprotected.iter() {
            for p in array.iter() {
                set.insert(p.as_ptr() as usize);
            }
        }
        set
    }

    /// Total number of neutralizations observed by all threads' signal handlers.
    pub fn neutralizations(&self) -> u64 {
        (0..self.base.max_threads()).map(|tid| self.base.slot(tid).stats().neutralizations).sum()
    }
}

impl<T: Send + 'static> Reclaimer<T> for DebraPlus<T> {
    type Thread = DebraPlusThread<T>;

    fn new(max_threads: usize) -> Self {
        Self::with_config(max_threads, DebraPlusConfig::default(), SignalDriver::best_available())
    }

    fn register(this: &Arc<Self>, tid: usize) -> Result<Self::Thread, RegistrationError> {
        this.base.do_register(tid)?;
        let inner = DebraThread::new(Arc::clone(&this.base), tid);
        // Register the *calling* thread as the target of neutralization signals for `tid`.
        // (A DEBRA+ thread handle must therefore be created on the thread that will use it.)
        let registration = this.driver.register_current_thread(this.base.slot_arc(tid));
        Ok(DebraPlusThread { inner, plus: Arc::clone(this), _registration: registration })
    }

    fn max_threads(&self) -> usize {
        self.base.max_threads()
    }

    fn name() -> &'static str {
        "DEBRA+"
    }

    fn properties() -> SchemeProperties {
        SchemeProperties::debra_plus()
    }

    fn stats(&self) -> ReclaimerStats {
        let mut stats = self.base.stats();
        stats.neutralized = self.neutralizations();
        stats
    }

    fn drain_orphans(&self) -> Vec<NonNull<T>> {
        self.base.drain_orphans()
    }

    fn is_thread_neutralized(&self, tid: usize) -> bool {
        self.base.slot(tid).is_neutralized()
    }
}

impl<T> fmt::Debug for DebraPlus<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DebraPlus")
            .field("config", &self.config)
            .field("driver", &self.driver)
            .finish()
    }
}

/// Per-thread handle of [`DebraPlus`].
///
/// Must be created (via [`Reclaimer::register`]) on the thread that will use it, because
/// registration also installs the neutralization signal target for the calling OS thread.
pub struct DebraPlusThread<T: Send + 'static> {
    inner: DebraThread<T>,
    plus: Arc<DebraPlus<T>>,
    _registration: ThreadRegistration,
}

impl<T: Send + 'static> DebraPlusThread<T> {
    /// The shared DEBRA+ instance this handle belongs to.
    pub fn global(&self) -> &Arc<DebraPlus<T>> {
        &self.plus
    }

    /// Total number of records currently waiting in this thread's limbo bags.
    pub fn limbo_len(&self) -> usize {
        self.inner.limbo_len()
    }
}

impl<T: Send + 'static> ReclaimerThread<T> for DebraPlusThread<T> {
    const SUPPORTS_CRASH_RECOVERY: bool = true;
    // Epoch-style (see `DebraThread`): unvalidated traversal and helping are sound.
    const READ_PROTECTION: ReadProtection = ReadProtection::Pin;

    fn tid(&self) -> usize {
        self.inner.tid()
    }

    fn leave_qstate<S: ReclaimSink<T>>(&mut self, sink: &mut S) -> bool {
        let plus = Arc::clone(&self.plus);
        let tid = self.inner.tid();
        // Starting a new operation (or retrying after recovery): any pending neutralization
        // has served its purpose (the thread is provably at a quiescent point right now).
        plus.base.slot(tid).clear_neutralized();

        let scan_threshold = plus.config.scan_threshold_blocks;
        let suspect_threshold = plus.config.suspect_threshold_blocks;
        let plus_rotate = Arc::clone(&plus);
        let plus_suspect = Arc::clone(&plus);

        self.inner.leave_qstate_impl(
            sink,
            move |this, sink| {
                // Rotate limbo bags; reclaim only records not protected by any restricted
                // hazard pointer, and only when the bag is big enough to amortize the scan.
                if this.oldest_bag_blocks() >= scan_threshold {
                    let protected = plus_rotate.all_rprotected();
                    this.rotate_and_reclaim_filtered(sink, scan_threshold, |p| {
                        protected.contains(&(p.as_ptr() as usize))
                    });
                } else {
                    // Nothing worth scanning: rotate without freeing (the records will be
                    // examined once the bag has grown past the threshold).
                    this.rotate_and_reclaim_filtered(sink, usize::MAX, |_| true);
                }
            },
            move |this, other| {
                // `other` is non-quiescent and has not announced the current epoch.  If our
                // limbo bag is getting large, suspect it of having crashed and neutralize it
                // (the paper's `suspectNeutralized`).
                if this.current_bag_blocks() < suspect_threshold {
                    return false;
                }
                let sent = plus_suspect.driver.neutralize(plus_suspect.base.slot(other));
                if sent {
                    plus_suspect.base.stats[this.tid()]
                        .signals_sent
                        .fetch_add(1, Ordering::Relaxed);
                }
                sent
            },
        )
    }

    fn enter_qstate(&mut self) {
        self.inner.enter_qstate_impl();
    }

    fn is_quiescent(&self) -> bool {
        self.inner.is_quiescent_impl()
    }

    unsafe fn retire<S: ReclaimSink<T>>(&mut self, record: NonNull<T>, _sink: &mut S) {
        self.inner.retire_impl(record);
    }

    fn r_protect(&mut self, record: NonNull<T>) {
        self.plus.rprotected[self.inner.tid()].protect(record);
    }

    fn r_unprotect_all(&mut self) {
        self.plus.rprotected[self.inner.tid()].unprotect_all();
    }

    fn is_r_protected(&self, record: NonNull<T>) -> bool {
        self.plus.rprotected[self.inner.tid()].contains(record)
    }

    fn check(&self) -> Result<(), Neutralized> {
        if self.is_neutralized() {
            Err(Neutralized)
        } else {
            Ok(())
        }
    }

    fn is_neutralized(&self) -> bool {
        self.plus.base.slot(self.inner.tid()).is_neutralized()
    }

    fn begin_recovery(&mut self) {
        let tid = self.inner.tid();
        self.plus.base.stats[tid].neutralized.fetch_add(1, Ordering::Relaxed);
        self.plus.base.slot(tid).clear_neutralized();
        // The thread stays quiescent (the handler already set the quiescent bit); recovery
        // code may access only R-protected records until the next `leave_qstate`.
    }
}

impl<T: Send + 'static> Drop for DebraPlusThread<T> {
    fn drop(&mut self) {
        self.plus.rprotected[self.inner.tid()].unprotect_all();
        // `inner`'s Drop hands the remaining limbo records to the global orphan list and
        // deregisters the slot; `_registration`'s Drop detaches the signal target.
    }
}

impl<T: Send + 'static> fmt::Debug for DebraPlusThread<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DebraPlusThread")
            .field("tid", &self.inner.tid())
            .field("limbo_len", &self.inner.limbo_len())
            .field("neutralized", &self.is_neutralized())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DebraConfig;
    use crate::traits::CountingSink;

    fn tiny_config() -> DebraPlusConfig {
        DebraPlusConfig {
            debra: DebraConfig { check_threshold: 1, increment_threshold: 1, block_capacity: 4 },
            suspect_threshold_blocks: 1,
            scan_threshold_blocks: 1,
            rprotect_slots: 8,
        }
    }

    fn leak(v: u64) -> NonNull<u64> {
        NonNull::from(Box::leak(Box::new(v)))
    }

    struct FreeingSink {
        freed: Vec<usize>,
    }
    impl ReclaimSink<u64> for FreeingSink {
        fn accept(&mut self, record: NonNull<u64>) {
            self.freed.push(record.as_ptr() as usize);
            // SAFETY: test records are leaked boxes reclaimed exactly once.
            unsafe { drop(Box::from_raw(record.as_ptr())) };
        }
    }

    fn drain_leaked(plus: &Arc<DebraPlus<u64>>) {
        for r in plus.drain_orphans() {
            unsafe { drop(Box::from_raw(r.as_ptr())) };
        }
    }

    #[test]
    fn stalled_thread_is_neutralized_and_reclamation_continues() {
        let plus: Arc<DebraPlus<u64>> =
            Arc::new(DebraPlus::with_config(2, tiny_config(), SignalDriver::simulated()));
        let mut a = DebraPlus::register(&plus, 0).unwrap();
        let mut b = DebraPlus::register(&plus, 1).unwrap();
        let mut sink = FreeingSink { freed: Vec::new() };
        let mut b_sink = CountingSink::default();

        // B starts an operation and stalls (never calls enter_qstate).
        let _ = b.leave_qstate(&mut b_sink);
        assert!(!b.is_quiescent());

        // A keeps retiring records; with DEBRA this would block reclamation forever, but
        // DEBRA+ neutralizes B once A's limbo bag exceeds the suspect threshold.
        for i in 0..2_000u64 {
            let _ = a.leave_qstate(&mut sink);
            unsafe { a.retire(leak(i), &mut sink) };
            a.enter_qstate();
        }
        assert!(!sink.freed.is_empty(), "reclamation must continue despite the stalled thread");
        let stats = plus.stats();
        assert!(stats.signals_sent > 0, "a neutralization signal must have been sent");
        assert!(plus.neutralizations() > 0);

        // The stalled thread observes its neutralization at its next checkpoint.
        assert!(b.is_neutralized());
        assert_eq!(b.check(), Err(Neutralized));
        assert!(b.is_quiescent(), "the handler made the stalled thread quiescent");

        // Recovery: acknowledge, then resume normal operation.
        b.begin_recovery();
        assert!(!b.is_neutralized());
        assert!(b.check().is_ok());
        let _ = b.leave_qstate(&mut b_sink);
        b.enter_qstate();

        drop(a);
        drop(b);
        drain_leaked(&plus);
    }

    #[test]
    fn bounded_garbage_under_stalled_thread() {
        // The paper's bound: with neutralization, the number of records waiting to be freed
        // stays bounded (O(c + nm) per thread) even though one thread never finishes its
        // operation.
        let plus: Arc<DebraPlus<u64>> =
            Arc::new(DebraPlus::with_config(2, tiny_config(), SignalDriver::simulated()));
        let mut a = DebraPlus::register(&plus, 0).unwrap();
        let mut b = DebraPlus::register(&plus, 1).unwrap();
        let mut sink = FreeingSink { freed: Vec::new() };
        let mut b_sink = CountingSink::default();
        let _ = b.leave_qstate(&mut b_sink);

        let mut max_pending = 0u64;
        for i in 0..20_000u64 {
            let _ = a.leave_qstate(&mut sink);
            unsafe { a.retire(leak(i), &mut sink) };
            a.enter_qstate();
            max_pending = max_pending.max(plus.stats().pending);
        }
        // With block_capacity = 4 and the tiny thresholds the bound is a few dozen records;
        // use a generous constant that would still catch unbounded growth (which would reach
        // ~20k here).
        assert!(
            max_pending < 500,
            "pending records should stay bounded under neutralization, got {max_pending}"
        );

        drop(a);
        drop(b);
        drain_leaked(&plus);
    }

    #[test]
    fn rprotected_records_survive_reclamation() {
        let plus: Arc<DebraPlus<u64>> =
            Arc::new(DebraPlus::with_config(2, tiny_config(), SignalDriver::simulated()));
        let mut a = DebraPlus::register(&plus, 0).unwrap();
        let mut b = DebraPlus::register(&plus, 1).unwrap();
        let mut sink = FreeingSink { freed: Vec::new() };

        // B announces a restricted hazard pointer to a record that A is about to retire
        // (as recovery code would for its descriptor).
        let target = leak(4242);
        b.r_protect(target);
        assert!(b.is_r_protected(target));

        let mut a_sink = CountingSink::default();
        let _ = a.leave_qstate(&mut a_sink);
        unsafe { a.retire(target, &mut a_sink) };
        a.enter_qstate();

        // Drive A until plenty of reclamation has happened.
        for i in 0..2_000u64 {
            let _ = a.leave_qstate(&mut sink);
            unsafe { a.retire(leak(i), &mut sink) };
            a.enter_qstate();
        }
        assert!(!sink.freed.is_empty());
        assert!(
            !sink.freed.contains(&(target.as_ptr() as usize)),
            "an R-protected record must never be reclaimed"
        );

        // Once unprotected, the record is eventually reclaimed.
        b.r_unprotect_all();
        assert!(!b.is_r_protected(target));
        for _ in 0..2_000u64 {
            let _ = a.leave_qstate(&mut sink);
            a.enter_qstate();
        }
        assert!(
            sink.freed.contains(&(target.as_ptr() as usize)),
            "after RUnprotectAll the record becomes reclaimable"
        );

        drop(a);
        drop(b);
        drain_leaked(&plus);
    }

    #[cfg(unix)]
    #[test]
    fn posix_neutralization_end_to_end() {
        use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};

        let plus: Arc<DebraPlus<u64>> =
            Arc::new(DebraPlus::with_config(2, tiny_config(), SignalDriver::best_available()));
        let stop = Arc::new(AtomicBool::new(false));
        let worker_started = Arc::new(AtomicBool::new(false));
        let worker_recovered = Arc::new(AtomicBool::new(false));

        // Worker: starts an operation and spins inside it, checking its neutralization flag
        // like a data structure operation body would, and recovering when it fires.
        let worker = {
            let plus = Arc::clone(&plus);
            let stop = Arc::clone(&stop);
            let worker_started = Arc::clone(&worker_started);
            let worker_recovered = Arc::clone(&worker_recovered);
            std::thread::spawn(move || {
                let mut t = DebraPlus::register(&plus, 1).unwrap();
                let mut sink = CountingSink::default();
                let _ = t.leave_qstate(&mut sink);
                worker_started.store(true, AtomicOrdering::Release);
                while !stop.load(AtomicOrdering::Acquire) {
                    if t.check().is_err() {
                        t.begin_recovery();
                        worker_recovered.store(true, AtomicOrdering::Release);
                        let _ = t.leave_qstate(&mut sink);
                    }
                    // Yield, don't just spin: on a single-core host a bare spin would
                    // starve the retiring thread for a whole scheduling quantum.
                    std::thread::yield_now();
                }
                t.enter_qstate();
            })
        };

        // Wait until the worker is provably inside its (never-ending) operation, so that
        // reclamation below can only proceed by neutralizing it.
        while !worker_started.load(Ordering::Acquire) {
            std::thread::yield_now();
        }

        // Main thread: retire records until reclamation proceeds (which requires the worker
        // to have been neutralized at least once, because it never becomes quiescent on its
        // own while spinning).
        let mut a = DebraPlus::register(&plus, 0).unwrap();
        let mut sink = FreeingSink { freed: Vec::new() };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let mut i = 0u64;
        // Keep retiring until the worker has also *observed* its neutralization: treating
        // the worker as quiescent only requires `pthread_kill` to succeed, so reclamation
        // can finish long before the worker's signal handler has even run.
        while (sink.freed.len() < 100 || !worker_recovered.load(Ordering::Acquire))
            && std::time::Instant::now() < deadline
        {
            let _ = a.leave_qstate(&mut sink);
            unsafe { a.retire(leak(i), &mut sink) };
            a.enter_qstate();
            i += 1;
        }
        stop.store(true, Ordering::Release);
        worker.join().unwrap();

        assert!(sink.freed.len() >= 100, "reclamation should proceed under POSIX neutralization");
        assert!(plus.stats().signals_sent > 0);
        assert!(worker_recovered.load(Ordering::Acquire), "the worker should observe and recover");

        drop(a);
        drain_leaked(&plus);
    }
}

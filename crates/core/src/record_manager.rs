//! The Record Manager: compile-time composition of a reclaimer, a pool and an allocator
//! (paper, Section 6).

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;
use std::sync::Arc;

use neutralize::Neutralized;

use crate::traits::{
    Allocator, AllocatorRequirement, AllocatorThread, Pool, PoolThread, ReadProtection, Reclaimer,
    ReclaimerThread, RegistrationError,
};

/// Shared state of a Record Manager: one reclaimer, one pool and one allocator, chosen at
/// compile time.
///
/// A data structure is written once against [`RecordManagerThread`]; swapping the
/// reclamation scheme (or the pool, or the allocator) is a one-line change of the type
/// parameters, with no runtime dispatch — the compiler monomorphizes and inlines the
/// scheme-specific calls, exactly like the C++ template parameters used in the paper.
///
/// # Example
///
/// ```text
/// // One line decides the whole memory management strategy of the data structure
/// // (the pool and allocator types live in the sibling `smr-alloc` crate):
/// type Manager = RecordManager<Node, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
/// ```
/// See the workspace examples (`examples/reclaimer_swap.rs`) for the full picture.
pub struct RecordManager<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    reclaimer: Arc<R>,
    pool: Arc<P>,
    alloc: Arc<A>,
    max_threads: usize,
    /// This manager's id in the smr-check shadow table.
    #[cfg(feature = "smr_sanitize")]
    shadow_mgr: u64,
    _marker: PhantomData<fn(T)>,
}

impl<T, R, P, A> RecordManager<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    /// Creates a Record Manager for up to `max_threads` threads, constructing each
    /// component with its default configuration.
    pub fn new(max_threads: usize) -> Self {
        Self::from_parts(
            Arc::new(R::new(max_threads)),
            Arc::new(P::new(max_threads)),
            Arc::new(A::new(max_threads)),
        )
    }

    /// Composes a Record Manager from already-constructed (possibly custom-configured)
    /// components.  All components must have been created for the same number of threads.
    pub fn from_parts(reclaimer: Arc<R>, pool: Arc<P>, alloc: Arc<A>) -> Self {
        // Scheme/allocator compatibility gate: a version-based scheme over a non
        // type-stable allocator is not a performance bug, it is unsound (a stale
        // optimistic read could land on unmapped or re-typed memory).  Both sides of the
        // condition are associated constants, so for every legal pairing the branch
        // compiles out entirely.
        if matches!(R::ALLOCATOR_REQUIREMENT, AllocatorRequirement::TypeStable) && !A::TYPE_STABLE {
            panic!(
                "{} requires ALLOCATOR=pagepool: its optimistic reads are machine-safe only \
                 over type-stable, never-unmapping record pages, and allocator `{}` does not \
                 guarantee type stability",
                R::name(),
                A::name()
            );
        }
        let max_threads = reclaimer.max_threads();
        #[cfg(feature = "smr_sanitize")]
        let shadow_mgr = {
            let r = Arc::clone(&reclaimer);
            let probe = Arc::clone(&reclaimer);
            smr_check::shadow::register_manager(
                R::name(),
                Box::new(move || format!("{:?}", r.stats())),
                Box::new(move |tid| probe.is_thread_neutralized(tid)),
                matches!(
                    <R::Thread as ReclaimerThread<T>>::READ_PROTECTION,
                    ReadProtection::Validate
                ),
            )
        };
        RecordManager {
            reclaimer,
            pool,
            alloc,
            max_threads,
            #[cfg(feature = "smr_sanitize")]
            shadow_mgr,
            _marker: PhantomData,
        }
    }

    /// Registers thread slot `tid` and returns its per-thread handle.
    ///
    /// Must be called on the thread that will use the handle (some reclaimers — DEBRA+ —
    /// bind the handle to the calling OS thread for signal delivery).
    ///
    /// # Errors
    ///
    /// Fails if `tid` is out of range or already registered with the reclaimer.
    pub fn register(
        self: &Arc<Self>,
        tid: usize,
    ) -> Result<RecordManagerThread<T, R, P, A>, RegistrationError> {
        let reclaimer = R::register(&self.reclaimer, tid)?;
        let pool = P::register(&self.pool, tid);
        let alloc = A::register(&self.alloc, tid);
        Ok(RecordManagerThread {
            reclaimer,
            pool,
            alloc,
            tid,
            #[cfg(feature = "smr_sanitize")]
            shadow_mgr: self.shadow_mgr,
        })
    }

    /// Registers the lowest currently-free thread slot and returns its per-thread handle
    /// (no manual `tid` bookkeeping; slots freed by dropped handles are reused).
    ///
    /// Like [`register`](Self::register), must be called on the thread that will use the
    /// handle.  The safe layer's [`Domain`](crate::Domain) adds thread-local caching on
    /// top of this.
    ///
    /// # Errors
    ///
    /// Fails with [`RegistrationError::Exhausted`] when all slots are taken.
    pub fn register_auto(
        self: &Arc<Self>,
    ) -> Result<RecordManagerThread<T, R, P, A>, RegistrationError> {
        for tid in 0..self.max_threads {
            match self.register(tid) {
                Ok(handle) => return Ok(handle),
                Err(RegistrationError::AlreadyRegistered { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(RegistrationError::Exhausted { max_threads: self.max_threads })
    }

    /// The shared reclaimer instance.
    pub fn reclaimer(&self) -> &Arc<R> {
        &self.reclaimer
    }

    /// The shared pool instance.
    pub fn pool(&self) -> &Arc<P> {
        &self.pool
    }

    /// The shared allocator instance.
    pub fn allocator(&self) -> &Arc<A> {
        &self.alloc
    }

    /// Maximum number of threads this manager supports.
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// Returns an allocator handle suitable for teardown work (freeing the records still
    /// reachable from a data structure when it is dropped).  May be called from any thread;
    /// the caller must guarantee that no other thread is still operating on the records it
    /// frees.
    pub fn teardown_allocator(&self) -> A::Thread {
        A::register(&self.alloc, 0)
    }

    /// Frees every record still cached in the pool's shared structures or parked in the
    /// reclaimer's orphan list.
    ///
    /// Called automatically when the Record Manager is dropped; it may also be called
    /// explicitly at a point where the caller knows that no thread is operating on any data
    /// structure using this manager (e.g. between benchmark trials).
    pub fn reclaim_stragglers(&self) {
        let mut alloc = A::register(&self.alloc, 0);
        for record in self.reclaimer.drain_orphans() {
            #[cfg(feature = "smr_sanitize")]
            smr_check::shadow::on_teardown_free(record.as_ptr() as usize);
            // SAFETY: teardown — the caller guarantees no thread can reach these records.
            unsafe { alloc.deallocate(record) };
        }
        for record in self.pool.drain_shared() {
            #[cfg(feature = "smr_sanitize")]
            smr_check::shadow::on_teardown_free(record.as_ptr() as usize);
            // SAFETY: as above.
            unsafe { alloc.deallocate(record) };
        }
    }

    /// This manager's id in the smr-check shadow table (sanitized builds only).
    #[cfg(feature = "smr_sanitize")]
    pub fn shadow_mgr(&self) -> u64 {
        self.shadow_mgr
    }
}

impl<T, R, P, A> Drop for RecordManager<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn drop(&mut self) {
        self.reclaim_stragglers();
        // Tear down this manager's shadow state, reporting never-freed records.
        #[cfg(feature = "smr_sanitize")]
        let _ = smr_check::shadow::unregister_manager(self.shadow_mgr);
    }
}

impl<T, R, P, A> fmt::Debug for RecordManager<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecordManager")
            .field("reclaimer", &R::name())
            .field("pool", &P::name())
            .field("allocator", &A::name())
            .field("max_threads", &self.max_threads)
            .finish()
    }
}

/// Per-thread handle of a [`RecordManager`]: the single object through which a data
/// structure allocates, retires and protects records.
pub struct RecordManagerThread<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    reclaimer: R::Thread,
    pool: P::Thread,
    alloc: A::Thread,
    tid: usize,
    #[cfg(feature = "smr_sanitize")]
    shadow_mgr: u64,
}

impl<T, R, P, A> RecordManagerThread<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    /// The thread slot this handle was registered with.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Allocates a record containing `value`, recycling one from the pool when possible.
    pub fn allocate(&mut self, value: T) -> NonNull<T> {
        let record = self.pool.allocate(value, &mut self.alloc);
        // Interval-based schemes tag the record's birth era here; a no-op elsewhere.
        self.reclaimer.record_allocated(record);
        #[cfg(feature = "smr_sanitize")]
        smr_check::shadow::on_alloc(
            self.shadow_mgr,
            self.tid,
            record.as_ptr() as usize,
            std::any::type_name::<T>(),
        );
        record
    }

    /// Immediately returns a record to the pool / allocator.
    ///
    /// Use this only for records that were never published in the data structure (e.g. a
    /// node allocated for an insert that lost its CAS); published records must go through
    /// [`retire`](Self::retire) instead.
    ///
    /// # Safety
    ///
    /// The record must have been allocated through this Record Manager family, must not be
    /// reachable by any thread, and must not be used again.
    pub unsafe fn deallocate(&mut self, record: NonNull<T>) {
        #[cfg(feature = "smr_sanitize")]
        if !smr_check::shadow::on_dealloc(self.shadow_mgr, self.tid, record.as_ptr() as usize) {
            // Shadow table vetoed the deallocation (double free / published record):
            // leak the record instead of compounding the bug.
            return;
        }
        self.pool.deallocate(record, &mut self.alloc);
    }

    /// Hands a record that has been removed from the data structure to the reclaimer; it
    /// will be recycled or freed once no thread can still hold a pointer to it.
    ///
    /// # Safety
    ///
    /// See [`ReclaimerThread::retire`].
    pub unsafe fn retire(&mut self, record: NonNull<T>) {
        #[cfg(feature = "smr_sanitize")]
        {
            if !smr_check::shadow::on_retire(self.shadow_mgr, self.tid, record.as_ptr() as usize) {
                // Double/late retire: suppress the dangerous second retire so record
                // mode stays memory-safe (the violation has been reported).
                return;
            }
            let mut sink =
                SanitizedSink { inner: &mut self.pool, mgr: self.shadow_mgr, tid: self.tid };
            self.reclaimer.retire(record, &mut sink)
        }
        #[cfg(not(feature = "smr_sanitize"))]
        self.reclaimer.retire(record, &mut self.pool);
    }

    /// Announces the start of a data structure operation.
    #[must_use = "the return value reports whether the epoch announcement changed"]
    pub fn leave_qstate(&mut self) -> bool {
        #[cfg(feature = "smr_sanitize")]
        {
            // Per-record protection is expected only of announcing schemes: pin schemes
            // reserve by epoch, validate schemes by version check — neither announces.
            smr_check::shadow::on_pin(
                self.shadow_mgr,
                self.tid,
                matches!(
                    <R::Thread as ReclaimerThread<T>>::READ_PROTECTION,
                    ReadProtection::Announce
                ),
            );
            let mut sink =
                SanitizedSink { inner: &mut self.pool, mgr: self.shadow_mgr, tid: self.tid };
            self.reclaimer.leave_qstate(&mut sink)
        }
        #[cfg(not(feature = "smr_sanitize"))]
        self.reclaimer.leave_qstate(&mut self.pool)
    }

    /// Announces the end of the current data structure operation.
    pub fn enter_qstate(&mut self) {
        self.reclaimer.enter_qstate();
        #[cfg(feature = "smr_sanitize")]
        smr_check::shadow::on_unpin(self.shadow_mgr);
    }

    /// Returns `true` if this thread is between operations.
    pub fn is_quiescent(&self) -> bool {
        self.reclaimer.is_quiescent()
    }

    /// Starts an operation and returns a guard that ends it when dropped.
    ///
    /// The guard dereferences to the thread handle so that the operation body can keep
    /// allocating, retiring and protecting records through it.
    pub fn guard(&mut self) -> OpGuard<'_, T, R, P, A> {
        let _ = self.leave_qstate();
        OpGuard { thread: self }
    }

    /// Attempts to protect `record` (hazard-pointer semantics); see
    /// [`ReclaimerThread::protect`].
    #[must_use = "a false result means the record may already be retired and must not be accessed"]
    pub fn protect<F: FnMut() -> bool>(
        &mut self,
        slot: usize,
        record: NonNull<T>,
        validate: F,
    ) -> bool {
        // Shadow ordering contract: the old slot protection is cleared *before* the real
        // announcement is overwritten, and the new one registered only *after* the real
        // protect validated (see smr-check's shadow module docs).  Only announcing
        // schemes make a per-record promise worth tracking: pin schemes implement
        // `protect` as a validated no-op (the pin is the reservation) and validate
        // schemes as a version check (nothing is ever reserved) — registering a
        // per-record protection those schemes never promised would produce
        // free-while-protected false positives (e.g. under DEBRA+ neutralization,
        // which voids the epoch reservation).
        #[cfg(feature = "smr_sanitize")]
        let track =
            matches!(<R::Thread as ReclaimerThread<T>>::READ_PROTECTION, ReadProtection::Announce);
        #[cfg(feature = "smr_sanitize")]
        if track {
            smr_check::shadow::on_protect_begin(self.shadow_mgr, self.tid, slot);
        }
        let ok = self.reclaimer.protect(slot, record, validate);
        #[cfg(feature = "smr_sanitize")]
        if track && ok {
            smr_check::shadow::on_protect_commit(
                self.shadow_mgr,
                self.tid,
                slot,
                record.as_ptr() as usize,
            );
        }
        ok
    }

    /// Releases protection slot `slot`.
    pub fn unprotect(&mut self, slot: usize) {
        #[cfg(feature = "smr_sanitize")]
        smr_check::shadow::on_unprotect(self.shadow_mgr, self.tid, slot);
        self.reclaimer.unprotect(slot);
    }

    /// Returns `true` if this thread currently protects `record`.
    pub fn is_protected(&self, record: NonNull<T>) -> bool {
        self.reclaimer.is_protected(record)
    }

    /// Number of per-thread protection slots offered by the chosen reclaimer (0 for
    /// epoch-based schemes).  Constant after monomorphization; data structures use it to
    /// detect schemes whose `protect` is a real announcement rather than a no-op.
    pub fn protection_slots(&self) -> usize {
        self.reclaimer.protection_slots()
    }

    /// `true` if the chosen reclaimer supports crash recovery / neutralization (DEBRA+).
    /// Constant after monomorphization, so recovery-only code is compiled out for other
    /// schemes (the paper's `supportsCrashRecovery` predicate).
    pub fn supports_crash_recovery(&self) -> bool {
        <R::Thread as ReclaimerThread<T>>::SUPPORTS_CRASH_RECOVERY
    }

    /// `true` if the chosen reclaimer permits dereferencing records without a per-access
    /// validated protect — the epoch-style capability that makes *helping* sound; see
    /// [`ReclaimerThread::SUPPORTS_UNPROTECTED_TRAVERSAL`].  Constant after
    /// monomorphization, so the non-helping branch compiles out.
    pub fn supports_unprotected_traversal(&self) -> bool {
        <R::Thread as ReclaimerThread<T>>::SUPPORTS_UNPROTECTED_TRAVERSAL
    }

    /// How the chosen reclaimer protects readers (announce / pin / validate); see
    /// [`crate::ReadProtection`].  Constant after monomorphization.
    pub fn read_protection(&self) -> ReadProtection {
        <R::Thread as ReclaimerThread<T>>::READ_PROTECTION
    }

    /// Checkpoint: fails with [`Neutralized`] if this thread has been neutralized.
    #[inline]
    #[must_use = "ignoring a Neutralized result defeats the DEBRA+ recovery protocol"]
    pub fn check(&self) -> Result<(), Neutralized> {
        self.reclaimer.check()
    }

    /// Returns `true` if this thread has been neutralized and has not yet begun recovery.
    pub fn is_neutralized(&self) -> bool {
        self.reclaimer.is_neutralized()
    }

    /// Acknowledges a neutralization before running recovery code.
    pub fn begin_recovery(&mut self) {
        self.reclaimer.begin_recovery();
    }

    /// Announces a restricted hazard pointer for recovery code (DEBRA+'s `RProtect`).
    pub fn r_protect(&mut self, record: NonNull<T>) {
        self.reclaimer.r_protect(record);
        #[cfg(feature = "smr_sanitize")]
        smr_check::shadow::on_rprotect(self.shadow_mgr, self.tid, record.as_ptr() as usize);
    }

    /// Releases all restricted hazard pointers (DEBRA+'s `RUnprotectAll`).
    pub fn r_unprotect_all(&mut self) {
        #[cfg(feature = "smr_sanitize")]
        smr_check::shadow::on_runprotect_all(self.shadow_mgr, self.tid);
        self.reclaimer.r_unprotect_all();
    }

    /// Returns `true` if this thread holds a restricted hazard pointer to `record`.
    pub fn is_r_protected(&self, record: NonNull<T>) -> bool {
        self.reclaimer.is_r_protected(record)
    }

    /// Direct access to the reclaimer thread handle (for scheme-specific extensions).
    pub fn reclaimer_mut(&mut self) -> &mut R::Thread {
        &mut self.reclaimer
    }

    /// Direct access to the pool thread handle.
    pub fn pool_mut(&mut self) -> &mut P::Thread {
        &mut self.pool
    }

    /// Direct access to the allocator thread handle.
    pub fn allocator_mut(&mut self) -> &mut A::Thread {
        &mut self.alloc
    }
}

impl<T, R, P, A> Drop for RecordManagerThread<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn drop(&mut self) {
        // Locally cached pool records must survive the thread: push them to the shared
        // pool so other threads (or teardown) can reuse or free them.
        self.pool.flush_to_shared();
    }
}

impl<T, R, P, A> fmt::Debug for RecordManagerThread<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecordManagerThread")
            .field("tid", &self.tid)
            .field("reclaimer", &R::name())
            .finish()
    }
}

/// RAII guard for one data structure operation; created by [`RecordManagerThread::guard`].
///
/// Dereferences to the underlying [`RecordManagerThread`]; calls
/// [`enter_qstate`](RecordManagerThread::enter_qstate) when dropped.
#[must_use = "the operation lasts exactly as long as the OpGuard; dropping it immediately ends the operation"]
pub struct OpGuard<'a, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    thread: &'a mut RecordManagerThread<T, R, P, A>,
}

impl<'a, T, R, P, A> Deref for OpGuard<'a, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    type Target = RecordManagerThread<T, R, P, A>;

    fn deref(&self) -> &Self::Target {
        self.thread
    }
}

impl<'a, T, R, P, A> DerefMut for OpGuard<'a, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.thread
    }
}

impl<'a, T, R, P, A> Drop for OpGuard<'a, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn drop(&mut self) {
        self.thread.enter_qstate();
    }
}

impl<'a, T, R, P, A> fmt::Debug for OpGuard<'a, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpGuard").field("tid", &self.thread.tid).finish()
    }
}

impl<'a, T, R, P, A> crate::atomic::private::Sealed for OpGuard<'a, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
}

/// An `OpGuard` witnesses that the thread is non-quiescent (it called `leave_qstate` on
/// construction and holds the thread handle exclusively until drop), which is exactly the
/// [`Pinned`](crate::Pinned) contract — so raw-layer code can use the typed
/// [`Atomic`](crate::Atomic)/[`Shared`](crate::Shared) pointers too.
impl<'a, T, R, P, A> crate::atomic::Pinned for OpGuard<'a, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
}

/// A [`ReclaimSink`](crate::traits::ReclaimSink) wrapper that validates every record
/// through the shadow table before handing it to the real sink (the pool).  Records the
/// shadow table vetoes (double free, free under a live announcement) are leaked instead
/// of forwarded, keeping flagged runs memory-safe.
///
/// The block fast-path is deliberately not overridden: the default `accept_block` drains
/// into `accept`, which is where the per-record check lives.  Sanitized builds trade the
/// O(1) block hand-off for per-record checking by design.
#[cfg(feature = "smr_sanitize")]
struct SanitizedSink<'a, S> {
    inner: &'a mut S,
    mgr: u64,
    tid: usize,
}

#[cfg(feature = "smr_sanitize")]
impl<'a, T, S: crate::traits::ReclaimSink<T>> crate::traits::ReclaimSink<T>
    for SanitizedSink<'a, S>
{
    fn accept(&mut self, record: NonNull<T>) {
        if smr_check::shadow::on_free(self.mgr, self.tid, record.as_ptr() as usize) {
            self.inner.accept(record);
        }
    }
}

//! Qualitative properties of reclamation schemes (the paper's Figure 2).

use std::fmt;

/// Which kinds of code modifications a scheme requires from the data structure programmer
/// (the first three rows of Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CodeModifications {
    /// Code must be inserted for every record the operation accesses (e.g. hazard pointer
    /// announcements).
    pub per_accessed_record: bool,
    /// Code must be inserted at the start/end of every data structure operation.
    pub per_operation: bool,
    /// Code must be inserted whenever a record is removed from the data structure.
    pub per_retired_record: bool,
    /// Free-form description of any other required modifications (Figure 2's footnotes).
    pub other: &'static str,
}

/// Whether a scheme relies on timing assumptions (Figure 2, "Special timing assumptions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TimingAssumptions {
    /// Fully asynchronous: no timing assumptions.
    #[default]
    None,
    /// Timing assumptions are needed only for progress (e.g. ThreadScan).
    ForProgress,
    /// Timing assumptions are needed for correctness (e.g. QSense's rooster processes).
    ForCorrectness,
}

/// Progress guarantee of the memory reclamation procedures themselves
/// (Figure 2, "Termination of memory reclamation procedures").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Termination {
    /// Lock-free.
    LockFree,
    /// Wait-free.
    WaitFree,
    /// Blocking (a crashed process can block reclamation forever).
    Blocking,
    /// Wait-free provided the operating system's signalling mechanism is wait-free
    /// (the paper's "W_sig", which applies to DEBRA+).
    WaitFreeIfSignalsWaitFree,
    /// Lock-free provided auxiliary processes never crash (the paper's "L_rooster").
    LockFreeIfAuxiliaryAlive,
}

impl fmt::Display for Termination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Termination::LockFree => "lock-free",
            Termination::WaitFree => "wait-free",
            Termination::Blocking => "blocking",
            Termination::WaitFreeIfSignalsWaitFree => "wait-free (if OS signals are wait-free)",
            Termination::LockFreeIfAuxiliaryAlive => "lock-free (if auxiliary processes live)",
        };
        f.write_str(s)
    }
}

impl fmt::Display for TimingAssumptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TimingAssumptions::None => "none",
            TimingAssumptions::ForProgress => "for progress",
            TimingAssumptions::ForCorrectness => "for correctness",
        };
        f.write_str(s)
    }
}

/// One row of the paper's Figure 2: the qualitative properties of a reclamation scheme.
///
/// Every [`Reclaimer`](crate::Reclaimer) reports its properties through
/// [`Reclaimer::properties`](crate::Reclaimer::properties); the `smr-workloads` crate
/// collects them to regenerate the Figure 2 comparison table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchemeProperties {
    /// Human-readable scheme name (e.g. `"DEBRA+"`).
    pub name: &'static str,
    /// Required code modifications.
    pub code_modifications: CodeModifications,
    /// Timing assumptions, if any.
    pub timing_assumptions: TimingAssumptions,
    /// Whether a crashed process can only prevent a *bounded* number of records from being
    /// reclaimed.
    pub fault_tolerant: bool,
    /// Progress guarantee of the reclamation procedures.
    pub termination: Termination,
    /// Whether operations may traverse a pointer from a retired record to another retired
    /// record (the property that breaks HP/ThreadScan/StackTrack for many data structures).
    pub can_traverse_retired_to_retired: bool,
}

impl SchemeProperties {
    /// Properties reported by the paper for DEBRA (Figure 2).
    pub fn debra() -> Self {
        SchemeProperties {
            name: "DEBRA",
            code_modifications: CodeModifications {
                per_accessed_record: false,
                per_operation: true,
                per_retired_record: true,
                other: "",
            },
            timing_assumptions: TimingAssumptions::None,
            fault_tolerant: false,
            termination: Termination::WaitFree,
            can_traverse_retired_to_retired: true,
        }
    }

    /// Properties reported by the paper for DEBRA+ (Figure 2).
    pub fn debra_plus() -> Self {
        SchemeProperties {
            name: "DEBRA+",
            code_modifications: CodeModifications {
                per_accessed_record: false,
                per_operation: true,
                per_retired_record: true,
                other: "write crash recovery code (trivial for many data structures)",
            },
            timing_assumptions: TimingAssumptions::None,
            fault_tolerant: true,
            termination: Termination::WaitFreeIfSignalsWaitFree,
            can_traverse_retired_to_retired: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debra_rows_match_figure_2() {
        let d = SchemeProperties::debra();
        assert!(!d.fault_tolerant);
        assert!(d.can_traverse_retired_to_retired);
        assert_eq!(d.termination, Termination::WaitFree);
        assert!(!d.code_modifications.per_accessed_record);

        let dp = SchemeProperties::debra_plus();
        assert!(dp.fault_tolerant);
        assert!(dp.can_traverse_retired_to_retired);
        assert_eq!(dp.termination, Termination::WaitFreeIfSignalsWaitFree);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert!(!Termination::LockFree.to_string().is_empty());
        assert!(!TimingAssumptions::ForProgress.to_string().is_empty());
    }
}

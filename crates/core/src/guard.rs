//! The safe guard layer: [`Domain`], [`DomainHandle`], [`Guard`] and [`Shield`].
//!
//! The Record Manager ([`RecordManager`]/[`RecordManagerThread`]) reproduces the paper's
//! Section 6 interface faithfully — and, like the original C++, it is a raw interface:
//! callers pick `tid` slots by hand, juggle bare `NonNull<T>`, must pair
//! `protect`/`unprotect` themselves and must remember to re-check neutralization at every
//! checkpoint.  This module encodes that contract in the type system so data structures
//! can be written without `unsafe`:
//!
//! * [`Domain`] owns the Record Manager and **leases per-thread handles automatically**:
//!   the first use on a thread registers the lowest free `tid` slot, and the slot is
//!   recycled when the thread's last [`DomainHandle`]/[`Guard`] is dropped (or the thread
//!   exits) — no manual `tid` bookkeeping, and no "already registered" dead ends.
//! * [`Guard`] is the RAII witness of one data structure operation: [`Domain::pin`] /
//!   [`DomainHandle::pin`] call `leave_qstate`, dropping the guard calls `enter_qstate`,
//!   and every fallible step surfaces DEBRA+ neutralization as the typed [`Restart`]
//!   error instead of a caller-side flag check.
//! * [`Shield`] is a leased per-thread protection slot.  [`Shield::protect`] wraps the
//!   validated announce-then-revalidate loop required by HP / ThreadScan / IBR in one
//!   place (a no-op compiled to nothing under epoch schemes) and returns a
//!   [`Shared<'g, T>`](Shared) whose lifetime ties every dereference to the live
//!   guard.
//!
//! # The protection discipline, in types
//!
//! A [`Shared`] obtained from `Shield::protect` is safe to dereference
//! under **every** scheme for as long as (a) the guard is alive — the `'g` lifetime
//! enforces this — and (b) the shield has not been re-pointed at another record and the
//! protected record has not been unlinked — which is the structure's algorithmic
//! invariant (e.g. Michael's "validate the link you followed"), localized here instead of
//! re-audited in every data structure.  A `Shared` obtained from a bare
//! [`Atomic::load`] is safe under epoch-style schemes (the guard
//! itself pins the records); protection-based schemes additionally require the
//! `protect` validation, which is why traversal code goes through shields.
//!
//! # Reentrancy
//!
//! Guards are cheap and reentrant: pinning while already pinned on the same thread just
//! increments a depth counter.  The one contract (checked in debug builds) is that `Drop`
//! implementations of keys/values must not call back into the same domain — the guard
//! layer hands the per-thread Record Manager handle out from an `UnsafeCell`, and
//! re-entering mid-allocation would alias it.
//!
//! ```compile_fail
//! use debra::{Debra, Domain};
//! use smr_alloc::{SystemAllocator, ThreadPool};
//!
//! type D = Domain<u64, Debra<u64>, ThreadPool<u64>, SystemAllocator<u64>>;
//! let domain: D = Domain::new(1);
//! let guard = domain.pin();
//! let shield = guard.shield();
//! drop(guard); // ERROR: `guard` is still borrowed by `shield`
//! let _ = &shield;
//! ```

use std::any::Any;
use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::HashMap;
use std::fmt;
use std::mem::ManuallyDrop;
use std::ptr::NonNull;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use neutralize::Neutralized;

use crate::atomic::{private::Sealed, Atomic, Owned, Pinned, Shared};
use crate::record_manager::{RecordManager, RecordManagerThread};
use crate::traits::{
    Allocator, AllocatorThread, Pool, ReadProtection, Reclaimer, ReclaimerThread, RegistrationError,
};

/// Typed "start this operation over" error.
///
/// Returned by the fallible guard operations when the thread has been neutralized
/// (DEBRA+) or a protection could not be validated (HP / ThreadScan / IBR: the link
/// changed between the announce and the re-read, so the target may already be retired).
/// Propagate it out of the operation body; [`Domain::run`] / [`DomainHandle::run`]
/// perform the recovery protocol and restart the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Restart;

impl fmt::Display for Restart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("operation must restart (neutralized or protection invalidated)")
    }
}

impl std::error::Error for Restart {}

impl From<Neutralized> for Restart {
    fn from(_: Neutralized) -> Self {
        Restart
    }
}

/// Source of unique [`Domain`] identities (the key of the per-thread lease registry).
static NEXT_DOMAIN_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread lease registry: domain id -> `Rc<Lease<...>>` (type-erased).  One lease
    /// — one Record Manager `tid` slot — per (thread, domain) pair.
    static LEASES: RefCell<HashMap<u64, Rc<dyn Any>>> = RefCell::new(HashMap::new());
}

/// The per-(thread, domain) state behind [`DomainHandle`] and [`Guard`]: the leased
/// Record Manager thread handle plus the pin depth and shield slot bookkeeping.
struct Lease<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    handle: UnsafeCell<RecordManagerThread<T, R, P, A>>,
    /// Nesting depth of live pins; `leave_qstate` on 0 -> 1, `enter_qstate` on 1 -> 0.
    pin_depth: Cell<usize>,
    /// Bitmap of shield slots currently leased to live [`Shield`]s / [`ShieldSet`]s.
    shield_slots: Cell<u32>,
    /// `true` while a [`Recovery`] scope is alive on this thread (they must not nest:
    /// dropping an inner scope would release the outer scope's restricted hazard
    /// pointers too, since `RUnprotectAll` is all-or-nothing).
    recovery_active: Cell<bool>,
    /// Debug-only reentrancy detector for the `UnsafeCell` handle access.
    #[cfg(debug_assertions)]
    borrowed: Cell<bool>,
}

impl<T, R, P, A> Lease<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    /// Runs `f` with exclusive access to the leased handle.
    ///
    /// Soundness: the lease is thread-local (behind `Rc`), so no other thread can reach
    /// the handle; `f` is internal guard-layer code that never calls back into user code
    /// while the borrow is live, except where documented (value `Drop` during pool
    /// recycling) — which the debug-only flag turns into a loud failure instead of UB.
    #[inline]
    fn with_handle<Out>(&self, f: impl FnOnce(&mut RecordManagerThread<T, R, P, A>) -> Out) -> Out {
        #[cfg(debug_assertions)]
        let _reentry = {
            assert!(
                !self.borrowed.replace(true),
                "reentrant Domain access (a Drop impl of a key/value called back into the domain?)"
            );
            ReentryReset(&self.borrowed)
        };
        // SAFETY: see above.
        f(unsafe { &mut *self.handle.get() })
    }
}

#[cfg(debug_assertions)]
struct ReentryReset<'a>(&'a Cell<bool>);

#[cfg(debug_assertions)]
impl Drop for ReentryReset<'_> {
    fn drop(&mut self) {
        self.0.set(false);
    }
}

/// An `Rc<Lease>` wrapper shared by [`DomainHandle`] and [`Guard`] that prunes the
/// thread-local registry entry when the *last user-held* reference drops, so the Record
/// Manager `tid` slot is recycled promptly (not only at thread exit).
struct LeaseRef<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    lease: ManuallyDrop<Rc<Lease<T, R, P, A>>>,
    domain_id: u64,
}

impl<T, R, P, A> LeaseRef<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    #[inline]
    fn lease(&self) -> &Lease<T, R, P, A> {
        &self.lease
    }

    fn clone_ref(&self) -> Self {
        LeaseRef { lease: self.lease.clone(), domain_id: self.domain_id }
    }
}

impl<T, R, P, A> Drop for LeaseRef<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn drop(&mut self) {
        // SAFETY: `lease` is taken exactly once, here; no other code path drops it.
        let lease = unsafe { ManuallyDrop::take(&mut self.lease) };
        // 2 == the registry's Rc plus ours: we are the last user-held reference, so the
        // registry entry can go, deregistering the slot.  `try_with`/`try_borrow_mut`
        // because this can run during thread teardown (registry already gone) or — in
        // perverse cases — while the registry is borrowed; the entry then simply stays
        // until thread exit, which is still correct.
        if Rc::strong_count(&lease) == 2 {
            let id = self.domain_id;
            let _ = LEASES.try_with(|map| {
                if let Ok(mut map) = map.try_borrow_mut() {
                    map.remove(&id);
                }
            });
        }
    }
}

/// A reclamation domain: the safe owner of a [`RecordManager`].
///
/// A `Domain` is what a data structure stores instead of a bare
/// `Arc<RecordManager<...>>`.  It adds automatic per-thread slot leasing — any thread may
/// call [`pin`](Domain::pin) (or take a [`handle`](Domain::handle)) at any time, and slot
/// `tid` bookkeeping happens behind the scenes with recycling — plus the guard-based
/// operation protocol.  Cloning a `Domain` is cheap and yields a handle to the *same*
/// domain (same slots, same records).
///
/// The reclamation scheme is still a compile-time choice: swapping `R` (or `P`, `A`)
/// remains the one-line change that is the paper's headline claim, and every guard-layer
/// call monomorphizes down to the scheme-specific code with no dynamic dispatch.
pub struct Domain<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    manager: Arc<RecordManager<T, R, P, A>>,
    id: u64,
}

impl<T, R, P, A> Domain<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    /// Creates a domain for up to `max_threads` concurrently active threads, constructing
    /// the Record Manager components with their default configurations.
    pub fn new(max_threads: usize) -> Self {
        Self::with_manager(Arc::new(RecordManager::new(max_threads)))
    }

    /// Wraps an already-composed Record Manager in a domain.
    pub fn with_manager(manager: Arc<RecordManager<T, R, P, A>>) -> Self {
        Domain { manager, id: NEXT_DOMAIN_ID.fetch_add(1, Ordering::Relaxed) }
    }

    /// The underlying Record Manager (for statistics and teardown).
    pub fn manager(&self) -> &Arc<RecordManager<T, R, P, A>> {
        &self.manager
    }

    /// Maximum number of threads that can hold leases concurrently.
    pub fn max_threads(&self) -> usize {
        self.manager.max_threads()
    }

    /// Returns (creating if necessary) the calling thread's lease for this domain.
    fn lease(&self) -> Result<LeaseRef<T, R, P, A>, RegistrationError> {
        LEASES.with(|map| {
            let mut map = map.borrow_mut();
            if let Some(entry) = map.get(&self.id) {
                let lease = Rc::clone(entry)
                    .downcast::<Lease<T, R, P, A>>()
                    .expect("lease registry entry has the domain's type");
                return Ok(LeaseRef { lease: ManuallyDrop::new(lease), domain_id: self.id });
            }
            // First use on this thread: lease the lowest free slot.  Slots freed by
            // dropped handles (or exited threads) are reused — see `LeaseRef::drop` and
            // the reclaimers' handle `Drop` impls.
            let handle = self.manager.register_auto()?;
            let lease = Rc::new(Lease {
                handle: UnsafeCell::new(handle),
                pin_depth: Cell::new(0),
                shield_slots: Cell::new(0),
                recovery_active: Cell::new(false),
                #[cfg(debug_assertions)]
                borrowed: Cell::new(false),
            });
            map.insert(self.id, Rc::clone(&lease) as Rc<dyn Any>);
            Ok(LeaseRef { lease: ManuallyDrop::new(lease), domain_id: self.id })
        })
    }

    /// Leases a per-thread handle, registering the calling thread on first use.
    ///
    /// Hold the handle for the duration of a thread's involvement with the structure:
    /// pinning through a handle is a few nanoseconds, while a bare [`Domain::pin`] after
    /// the thread's last handle/guard was dropped has to re-register a slot.
    ///
    /// # Errors
    ///
    /// Fails with [`RegistrationError::Exhausted`] when `max_threads` other threads
    /// currently hold leases.
    pub fn try_handle(&self) -> Result<DomainHandle<T, R, P, A>, RegistrationError> {
        Ok(DomainHandle { lease: self.lease()? })
    }

    /// Leases a per-thread handle; panics when the domain's thread capacity is exhausted.
    pub fn handle(&self) -> DomainHandle<T, R, P, A> {
        self.try_handle().expect("domain thread capacity exhausted")
    }

    /// Pins the current thread: announces the start of a data structure operation and
    /// returns the guard that ends it when dropped.
    ///
    /// Panics when the domain's thread capacity is exhausted (use [`Domain::try_handle`]
    /// to detect that case).
    pub fn pin(&self) -> Guard<T, R, P, A> {
        Guard::enter(self.lease().expect("domain thread capacity exhausted"))
    }

    /// Runs one whole data structure operation: pins, calls `body`, and — if the body
    /// asks for a [`Restart`] — performs the DEBRA+ recovery protocol (release restricted
    /// hazard pointers, acknowledge the neutralization) and retries until the body
    /// completes.
    pub fn run<Out>(
        &self,
        mut body: impl FnMut(&Guard<T, R, P, A>) -> Result<Out, Restart>,
    ) -> Out {
        let handle = self.handle();
        handle.run(&mut body)
    }

    /// Frees every record in the chain starting at `root`, following `next_of`.
    ///
    /// Teardown helper for `Drop` implementations: walks `root`, `next_of(root)`, … until
    /// null, returning each record's memory to the allocator.  Tag bits must already be
    /// stripped (as [`Atomic::load_ptr`] does).
    ///
    /// # Contract (not checked by the type system)
    ///
    /// Teardown only: the caller must have exclusive access to every record in the chain
    /// (no concurrent operation can reach them — in practice, the structure is being
    /// dropped, which `&mut self` of the `Drop` impl witnesses), each record must have
    /// been allocated through this domain's Record Manager family, and the chain must
    /// not alias records freed elsewhere.  Violations are use-after-free/double-free
    /// bugs; see [`Guard::retire`] for the discussion of the safe layer's documented
    /// holes.
    pub fn free_reachable(&self, root: *mut T, next_of: impl Fn(&T) -> *mut T) {
        let mut alloc = self.manager.teardown_allocator();
        let mut cursor = root;
        while let Some(record) = NonNull::new(cursor) {
            #[cfg(feature = "smr_sanitize")]
            smr_check::shadow::on_teardown_free(record.as_ptr() as usize);
            // SAFETY: exclusive access per the documented teardown contract; each record
            // is freed exactly once (a chain visits every node once).
            unsafe {
                cursor = next_of(record.as_ref());
                alloc.deallocate(record);
            }
        }
    }

    /// Frees every record reachable from `root` through `children_of`, deduplicating by
    /// address — the graph-shaped sibling of [`free_reachable`](Self::free_reachable)
    /// for structures whose records can be referenced more than once (the external BST's
    /// delete descriptors are referenced by up to two internal nodes).
    ///
    /// `children_of` receives each visited record and pushes the records it references
    /// into the provided stack; null pointers and already-visited records are skipped.
    ///
    /// # Contract (not checked by the type system)
    ///
    /// As for [`free_reachable`](Self::free_reachable): teardown only, exclusive access
    /// to every reachable record, all records allocated through this domain's family.
    pub fn free_graph(&self, root: *mut T, mut children_of: impl FnMut(&T, &mut Vec<*mut T>)) {
        let mut alloc = self.manager.teardown_allocator();
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![root];
        let mut children = Vec::new();
        while let Some(cursor) = stack.pop() {
            let Some(record) = NonNull::new(cursor) else { continue };
            if !visited.insert(cursor as usize) {
                continue;
            }
            #[cfg(feature = "smr_sanitize")]
            smr_check::shadow::on_teardown_free(record.as_ptr() as usize);
            // SAFETY: exclusive access per the documented teardown contract; the visited
            // set guarantees each record is read and freed exactly once, and children are
            // collected *before* the record's memory is returned.
            unsafe {
                children_of(record.as_ref(), &mut children);
                stack.append(&mut children);
                alloc.deallocate(record);
            }
        }
    }
}

impl<T, R, P, A> Clone for Domain<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn clone(&self) -> Self {
        Domain { manager: Arc::clone(&self.manager), id: self.id }
    }
}

impl<T, R, P, A> fmt::Debug for Domain<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Domain").field("id", &self.id).field("manager", &self.manager).finish()
    }
}

/// A thread's lease on a [`Domain`]: the cheap, reusable source of [`Guard`]s.
///
/// Obtained with [`Domain::handle`] on the thread that will use it; not sendable to other
/// threads.  Dropping a thread's last handle (with no live guards) releases the leased
/// Record Manager slot for reuse by other threads.
#[must_use = "a DomainHandle holds this thread's slot lease; drop it to release the slot"]
pub struct DomainHandle<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    lease: LeaseRef<T, R, P, A>,
}

impl<T, R, P, A> DomainHandle<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    /// Pins the current thread through this handle (no registry lookup).
    #[inline]
    pub fn pin(&self) -> Guard<T, R, P, A> {
        Guard::enter(self.lease.clone_ref())
    }

    /// Runs one whole operation with restart-on-[`Restart`] recovery; see
    /// [`Domain::run`].
    pub fn run<Out>(
        &self,
        mut body: impl FnMut(&Guard<T, R, P, A>) -> Result<Out, Restart>,
    ) -> Out {
        loop {
            let guard = self.pin();
            match body(&guard) {
                Ok(out) => return out,
                Err(Restart) => guard.recover(),
            }
        }
    }

    /// The Record Manager thread slot this handle leases (diagnostics).
    pub fn tid(&self) -> usize {
        self.lease.lease().with_handle(|h| h.tid())
    }

    /// Opens a [`Recovery`] scope on this thread (see [`Recovery`]).  Opened from the
    /// handle — rather than from a guard — when the restricted protections must survive
    /// neutralization-induced restarts of the operation body, i.e. span several guards
    /// (the skip list's resumable insert completion).
    pub fn recovery(&self) -> Recovery<T, R, P, A> {
        Recovery::open(self.lease.clone_ref())
    }

    /// `true` if the chosen reclaimer supports crash recovery / neutralization (DEBRA+);
    /// constant after monomorphization.  Structures use it to skip opening [`Recovery`]
    /// scopes entirely under schemes where they would be pure bookkeeping.
    #[inline]
    pub fn supports_crash_recovery(&self) -> bool {
        self.lease.lease().with_handle(|h| h.supports_crash_recovery())
    }
}

impl<T, R, P, A> fmt::Debug for DomainHandle<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DomainHandle").field("tid", &self.tid()).finish()
    }
}

/// The RAII witness of one data structure operation (the paper's
/// `leaveQstate`/`enterQstate` bracket, plus neutralization checkpoints as typed errors).
///
/// Created by [`Domain::pin`] or [`DomainHandle::pin`]; ends the operation when dropped.
/// Guards are reentrant: pinning while pinned is just a depth increment, and the
/// operation ends when the outermost guard drops.
#[must_use = "the operation lasts exactly as long as the Guard; dropping it immediately ends the operation"]
pub struct Guard<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    lease: LeaseRef<T, R, P, A>,
    /// Cached pointer to the lease's handle cell: the protect hot path runs once per
    /// traversal step, and resolving it through `LeaseRef -> Rc -> Lease` each time
    /// costs pointer chases the raw protocol never paid.  Valid for the guard's
    /// lifetime because the guard's `lease` keeps the `Lease` alive.
    handle: NonNull<RecordManagerThread<T, R, P, A>>,
}

impl<T, R, P, A> Guard<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    #[inline]
    fn enter(lease: LeaseRef<T, R, P, A>) -> Self {
        let handle = {
            let l = lease.lease();
            let depth = l.pin_depth.get();
            if depth == 0 {
                let _ = l.with_handle(|h| h.leave_qstate());
            }
            l.pin_depth.set(depth + 1);
            // SAFETY: the cell pointer is non-null; see the field docs for validity.
            unsafe { NonNull::new_unchecked(l.handle.get()) }
        };
        Guard { lease, handle }
    }

    #[inline]
    fn lease(&self) -> &Lease<T, R, P, A> {
        self.lease.lease()
    }

    /// Checkpoint: fails with [`Restart`] if this thread has been neutralized (DEBRA+).
    /// A no-op that always succeeds under every other scheme (compiled out).
    #[inline]
    pub fn check(&self) -> Result<(), Restart> {
        // SAFETY: shared read access to the thread-local handle; no `&mut` outstanding
        // (guard methods never hold one across user code).
        let handle = unsafe { self.handle.as_ref() };
        handle.check().map_err(Restart::from)
    }

    /// Leases a protection slot as a [`Shield`].
    ///
    /// Panics if more than 32 shields are alive at once on this thread (protection-based
    /// schemes offer far fewer slots; the list/hash map traversals use two).
    #[inline]
    pub fn shield(&self) -> Shield<'_, T, R, P, A> {
        Shield { guard: self, slot: self.claim_slot() }
    }

    /// Leases `N` protection slots at once as a [`ShieldSet`] — the multi-role
    /// generalization of a pair of shields, for traversals whose protection window spans
    /// more than two records (the BST's grandparent/parent/leaf window plus its
    /// descriptor slots; the skip list's per-level predecessor/current pair).
    ///
    /// Panics if the total number of live shield slots on this thread would exceed 32
    /// (protection-based schemes offer far fewer; the BST uses a set of six).
    #[inline]
    pub fn shield_set<const N: usize>(&self) -> ShieldSet<'_, N, T, R, P, A> {
        // Capacity is checked up front: a panic mid-claim would leak the slots already
        // claimed (the set is never constructed, so its Drop never releases them).
        let taken = self.lease().shield_slots.get().count_ones() as usize;
        assert!(taken + N <= 32, "too many live Shields on this thread");
        ShieldSet { guard: self, slots: std::array::from_fn(|_| self.claim_slot()) }
    }

    #[inline]
    fn claim_slot(&self) -> usize {
        let slots = self.lease().shield_slots.get();
        let slot = slots.trailing_ones() as usize;
        assert!(slot < 32, "too many live Shields on this thread");
        self.lease().shield_slots.set(slots | (1 << slot));
        slot
    }

    /// Opens a [`Recovery`] scope on this thread: the RAII bracket of DEBRA+'s
    /// restricted hazard pointers (see [`Recovery`]).  Equivalent to
    /// [`DomainHandle::recovery`]; offered on the guard so an operation body can open a
    /// per-attempt scope without plumbing the handle through.
    pub fn recovery(&self) -> Recovery<T, R, P, A> {
        Recovery::open(self.lease.clone_ref())
    }

    /// Allocates a record (recycling from the pool when possible) as a private
    /// [`Owned`] value, ready to be published with
    /// [`Atomic::compare_exchange_owned`](crate::Atomic::compare_exchange_owned).
    pub fn alloc(&self, value: T) -> Owned<T> {
        Owned::from_ptr(self.lease().with_handle(|h| h.allocate(value)))
    }

    /// Returns a never-published record to the pool (e.g. the node of an insert that
    /// lost its CAS).  Safe because an [`Owned`] is by construction unreachable and
    /// uniquely held.
    pub fn discard(&self, record: Owned<T>) {
        let ptr = record.into_ptr();
        // SAFETY: `Owned` records are allocated by this domain's manager, unpublished
        // and uniquely held, so immediate deallocation is sound.
        self.lease().with_handle(|h| unsafe { h.deallocate(ptr) });
    }

    /// Hands a record that has been removed from the data structure to the reclaimer
    /// (the paper's `retire(tid, rec)`, with the tag stripped from `record`).
    ///
    /// # Contract (not checked by the type system)
    ///
    /// `record` must have been made unreachable from the structure's entry points for
    /// operations that start after this call, must be retired at most once per
    /// allocation, and must be non-null (checked).  In every structure in this
    /// repository the obligation is discharged by a unique CAS winner — the thread whose
    /// unlink (or descriptor hand-off) CAS succeeded owns the retirement — which is an
    /// *algorithmic* linearization argument the type system cannot see.  This is the
    /// safe layer's second documented hole (the first is [`Shared::as_ref`] on an
    /// unvalidated load): a structure that retires a still-reachable record, or retires
    /// twice, has a use-after-free/double-free bug even though no `unsafe` block marks
    /// the site.  The localized rule of thumb: call `retire` only immediately after the
    /// CAS that made you the unique unlinker.
    pub fn retire(&self, record: Shared<'_, T>) {
        let ptr = NonNull::new(record.as_ptr()).expect("cannot retire a null pointer");
        // SAFETY: the documented contract above — unreachable for later operations,
        // retired exactly once by the unique unlink-CAS winner.
        self.lease().with_handle(|h| unsafe { h.retire(ptr) });
    }

    /// Performs the recovery protocol after a [`Restart`]: acknowledges a pending
    /// neutralization (a no-op outside DEBRA+).  [`Domain::run`]/[`DomainHandle::run`]
    /// call this automatically.
    ///
    /// Restricted hazard pointers are deliberately *not* released here: they belong to
    /// the [`Recovery`] scope that announced them, which may span several restarts (an
    /// insert whose decision CAS already succeeded keeps its published record protected
    /// across the recovery gap until its completion phase finishes — the DEBRA+
    /// completion-phase protocol).  Unwinding drops the scope, and the drop releases.
    pub fn recover(&self) {
        self.lease().with_handle(|h| {
            if h.is_neutralized() {
                h.begin_recovery();
            }
        });
    }

    /// The safe helping-policy hook: `true` when the reclamation scheme permits
    /// *helping* another thread's operation to completion.
    ///
    /// Helping dereferences the helpee's records (reached through its descriptor
    /// fields), which the helper holds no per-access protection for and which admit no
    /// validating read (there is no link word to re-validate against).  That is safe
    /// exactly when the scheme's protection is operation-wide — epoch-style schemes,
    /// whose non-quiescent announcement pins every record retired during the operation
    /// — and unsafe under schemes whose safety argument is tied to their own validated
    /// accesses: hazard pointers and ThreadScan (per-slot announcements), and IBR
    /// (interval reservations cover the records reached through its validating reads).
    /// Under those schemes structures must back off and let the operation's owner
    /// finish instead (the restriction of the paper's Section 3).  Constant after
    /// monomorphization, so the non-helping branch compiles out.
    #[inline]
    pub fn helping_allowed(&self) -> bool {
        self.lease().with_handle(|h| h.supports_unprotected_traversal())
    }

    /// `true` if the chosen reclaimer supports crash recovery / neutralization (DEBRA+);
    /// the paper's `supportsCrashRecovery` predicate, constant after monomorphization.
    #[inline]
    pub fn supports_crash_recovery(&self) -> bool {
        self.lease().with_handle(|h| h.supports_crash_recovery())
    }

    /// The Record Manager thread slot backing this guard (diagnostics).
    pub fn tid(&self) -> usize {
        self.lease().with_handle(|h| h.tid())
    }

    /// The traversal hot path: one handle fetch, the neutralization checkpoint, and the
    /// announce-then-validate protocol, all in one inlined unit so that epoch-based
    /// schemes (whose `check` and `protect` are no-ops) compile it down to the raw
    /// protocol's plain loads.
    ///
    /// `allow_tagged` is `false` for the Harris/Michael link discipline (a tagged word
    /// means the *source* node is logically deleted, so the target may already be retired
    /// and the traversal must restart) and `true` for packed descriptor words whose tag
    /// bits carry an operation state (the EFRB `update` word), where a flagged word is
    /// precisely the state being validated.  `extra` is conjoined with the link
    /// re-validation — structures use it for invariants the link equality alone cannot
    /// express (e.g. "the parent is not marked"); for the common case it is `|| true`
    /// and monomorphizes away.
    #[inline(always)]
    pub(crate) fn protect_in_slot(
        &self,
        slot: usize,
        link: &Atomic<T>,
        expected: Option<usize>,
        allow_tagged: bool,
        mut extra: impl FnMut() -> bool,
    ) -> Result<Shared<'_, T>, Restart> {
        // SAFETY: thread-local handle, no `&mut` outstanding (see `Lease::with_handle`);
        // the validate closure below only loads `Atomic`s of the data structure, never
        // re-enters the guard layer.
        let handle = unsafe { &mut *self.handle.as_ptr() };
        // Validate-on-read schemes (VBR) re-run the exact same staleness probe inside
        // `protect` below — a leading `check` would load the same clock word twice per
        // traversal step for nothing.  For every other scheme `check` is the DEBRA+
        // neutralization checkpoint (or a no-op) and stays.  Constant after
        // monomorphization, so the branch compiles out either way.
        if !matches!(<R::Thread as ReclaimerThread<T>>::READ_PROTECTION, ReadProtection::Validate) {
            handle.check()?;
        }
        let word = match expected {
            // The caller already read the link (the traversal's previous `next` load):
            // no redundant re-read on the hot path — exactly the raw protocol's load
            // count.  The validating re-read below still compares against the link.
            Some(word) => word,
            None => link.load_word(std::sync::atomic::Ordering::Acquire),
        };
        let loaded = Shared::<T>::from_word(word);
        if !allow_tagged && loaded.tag() != 0 {
            // See the method docs: under the link discipline a tagged word must not
            // validate (the use-after-free window the raw implementations had to
            // re-check by hand).
            return Err(Restart);
        }
        let Some(record) = NonNull::new(loaded.as_ptr()) else {
            return Ok(loaded);
        };
        // Announce-then-validate (Michael's protocol): the protection is published, then
        // the link is re-read; if it still holds the exact word we followed (tag
        // included), the record cannot have been retired before the announcement became
        // visible.  Epoch-based schemes compile all of this down to `true`.
        let valid = handle.protect(slot, record, || {
            link.load_word(std::sync::atomic::Ordering::SeqCst) == word && extra()
        });
        if valid {
            Ok(loaded)
        } else {
            Err(Restart)
        }
    }

    /// The anchored variant of the protect hot path: announces `record` and validates by
    /// re-reading `anchor` — a *different* link than the one `record` was loaded from —
    /// against `expected`.  See [`Shield::protect_anchored`] for the protocol and its
    /// soundness contract.
    #[inline(always)]
    pub(crate) fn protect_anchored_in_slot(
        &self,
        slot: usize,
        record_word: usize,
        anchor: &Atomic<T>,
        expected_word: usize,
    ) -> Result<Shared<'_, T>, Restart> {
        // SAFETY: as in `protect_in_slot` — thread-local handle, no `&mut` outstanding,
        // and the validate closure only loads an `Atomic` of the data structure.
        let handle = unsafe { &mut *self.handle.as_ptr() };
        handle.check()?;
        let loaded = Shared::<T>::from_word(record_word);
        let Some(record) = NonNull::new(loaded.as_ptr()) else {
            return Ok(loaded);
        };
        let valid = handle.protect(slot, record, || {
            anchor.load_word(std::sync::atomic::Ordering::SeqCst) == expected_word
        });
        if valid {
            Ok(loaded)
        } else {
            Err(Restart)
        }
    }

    #[inline]
    fn release_slot(&self, slot: usize) {
        self.lease().with_handle(|h| h.unprotect(slot));
        let slots = self.lease().shield_slots.get();
        self.lease().shield_slots.set(slots & !(1 << slot));
    }
}

impl<T, R, P, A> Sealed for Guard<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
}

impl<T, R, P, A> Pinned for Guard<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
}

impl<T, R, P, A> Drop for Guard<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    #[inline]
    fn drop(&mut self) {
        let l = self.lease.lease();
        let depth = l.pin_depth.get();
        l.pin_depth.set(depth - 1);
        if depth == 1 {
            l.with_handle(|h| h.enter_qstate());
        }
    }
}

impl<T, R, P, A> fmt::Debug for Guard<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Guard").field("depth", &self.lease.lease().pin_depth.get()).finish()
    }
}

/// A leased protection slot: the typed rendition of one hazard pointer / reference slot.
///
/// Create one per pointer the traversal must keep protected (two suffice for the
/// Harris–Michael protocol: predecessor and current).  [`Shield::protect`] performs the
/// validated announcement; advancing a traversal is `std::mem::swap` of two shields
/// (which moves the *roles* without touching the announcements).  The slot is released
/// when the shield drops.
#[must_use = "a Shield protects records only while it is alive"]
pub struct Shield<'g, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    guard: &'g Guard<T, R, P, A>,
    slot: usize,
}

impl<'g, T, R, P, A> Shield<'g, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    /// Reads `link` and protects the record it points to, validating that `link` still
    /// holds the same word afterwards (the announce-then-revalidate protocol required by
    /// HP / ThreadScan / IBR; compiled to a plain load under epoch schemes).
    ///
    /// Returns the protected pointer on success (null passes through unprotected — there
    /// is nothing to protect).  The returned [`Shared`] is dereferenceable for as long as
    /// the guard lives and this shield keeps protecting it.
    ///
    /// # Errors
    ///
    /// [`Restart`] when the thread was neutralized (DEBRA+), when the link changed under
    /// us, or when the link word carries a non-zero tag — in the Harris/Michael
    /// discipline a tagged link means the *source* node is logically deleted, so its
    /// successor may already be retired.  In every case the record may no longer be safe
    /// and the traversal must restart from a root.
    #[inline]
    #[must_use = "an unchecked protect result may hand out an unprotected pointer"]
    pub fn protect(&mut self, link: &Atomic<T>) -> Result<Shared<'g, T>, Restart> {
        self.guard
            .protect_in_slot(self.slot, link, None, false, || true)
            .map(|s| Shared::from_word(s.word()))
    }

    /// Like [`protect`](Self::protect), but for a link whose current word the traversal
    /// has already read (`loaded`, typically the previous node's `next` load): skips the
    /// initial re-read — keeping the hot path at the raw protocol's exact load count —
    /// while still performing the validating re-read of `link` after the announcement.
    ///
    /// # Errors
    ///
    /// As for [`protect`](Self::protect); additionally restarts when `loaded` is tagged.
    #[inline]
    #[must_use = "an unchecked protect result may hand out an unprotected pointer"]
    pub fn protect_loaded(
        &mut self,
        link: &Atomic<T>,
        loaded: Shared<'_, T>,
    ) -> Result<Shared<'g, T>, Restart> {
        self.guard
            .protect_in_slot(self.slot, link, Some(loaded.word()), false, || true)
            .map(|s| Shared::from_word(s.word()))
    }

    /// Protects `record` — already loaded by the caller — validating that the *anchor*
    /// link still holds exactly `expected` after the announcement, where `anchor` is a
    /// **different** link than the one `record` was read from.
    ///
    /// This is the protection shape of Michael–Scott-style queues, which
    /// [`protect`](Self::protect)/[`protect_loaded`](Self::protect_loaded) cannot
    /// express: the dequeuer reads `next = head.next`, but validating `head.next` would
    /// be worthless — `next` links are written once at link-in and never change, so the
    /// re-read still matches long after the successor has been dequeued and retired.
    /// The sound validation (Michael's 2004 hazard-pointer queue protocol) is that the
    /// **head link itself** has not moved: as long as `head` still points at the node we
    /// protect with the other shield, its successor cannot yet have been retired
    /// (retirement of the successor requires the head to first advance onto it).
    ///
    /// # Contract (not checked by the type system)
    ///
    /// The caller must guarantee two algorithmic invariants, on pain of a
    /// use-after-free: (a) `anchor == expected` must imply that `record` has not been
    /// retired (for the queue: the head must advance past a node before that node's
    /// successor can be retired), and (b) the record `expected` points to must itself be
    /// continuously protected by another shield of this guard for the whole call — that
    /// is what rules out an ABA re-installation of the same `expected` word while we
    /// announce (the anchored node cannot be freed and recycled while protected).
    ///
    /// # Errors
    ///
    /// [`Restart`] when the thread was neutralized (DEBRA+) or `anchor` no longer holds
    /// `expected` — the record may already be retired and the operation must restart.
    #[inline]
    #[must_use = "an unchecked protect result may hand out an unprotected pointer"]
    pub fn protect_anchored(
        &mut self,
        record: Shared<'_, T>,
        anchor: &Atomic<T>,
        expected: Shared<'_, T>,
    ) -> Result<Shared<'g, T>, Restart> {
        self.guard
            .protect_anchored_in_slot(self.slot, record.word(), anchor, expected.word())
            .map(|s| Shared::from_word(s.word()))
    }

    /// Swaps the protection *roles* of two shields (e.g. "predecessor" and "current"
    /// while advancing a traversal) without touching the announcements: the record each
    /// slot protects stays protected, no stores are issued.
    ///
    /// Panics if the shields belong to different guards — swapping slot indices across
    /// guards would corrupt both sides' slot bookkeeping (two shields of one guard could
    /// end up sharing a slot, silently dropping a protection).
    #[inline]
    pub fn swap_roles(&mut self, other: &mut Shield<'g, T, R, P, A>) {
        assert!(
            std::ptr::eq(self.guard, other.guard),
            "swap_roles requires shields of the same guard"
        );
        std::mem::swap(&mut self.slot, &mut other.slot);
    }

    /// Releases the protection announcement (keeping the slot leased for reuse).
    pub fn release(&mut self) {
        self.guard.lease().with_handle(|h| h.unprotect(self.slot));
    }
}

impl<'g, T, R, P, A> Drop for Shield<'g, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn drop(&mut self) {
        self.guard.release_slot(self.slot);
    }
}

impl<'g, T, R, P, A> fmt::Debug for Shield<'g, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shield").field("slot", &self.slot).finish()
    }
}

/// A set of `N` leased protection slots addressed by *role* index, with store-free role
/// rotation — the generalization of two [`Shield`]s and their
/// [`swap_roles`](Shield::swap_roles) to traversals whose protection window spans more
/// records.
///
/// The motivating windows (see the structures in `lockfree-ds`):
///
/// * the external BST descends with a grandparent → parent → leaf window plus three
///   descriptor roles; shifting the window down one level is `rotate([GP, P, L])` — no
///   announcement is re-issued for records that stay protected, so the hazard-pointer
///   hot path keeps the raw protocol's exact load/store count;
/// * the skip list traverses each level with a predecessor/current pair;
///   `rotate([PRED, CURR])` is exactly the two-shield role swap.
///
/// Roles are plain `usize` indices `< N`, so structures can name them with `const`s.
/// All slots are released when the set drops.  Like [`Shared`], a `ShieldSet` cannot
/// outlive the guard it was leased from:
///
/// ```compile_fail
/// use debra::{Debra, Domain};
/// use smr_alloc::{SystemAllocator, ThreadPool};
///
/// type D = Domain<u64, Debra<u64>, ThreadPool<u64>, SystemAllocator<u64>>;
/// let domain: D = Domain::new(1);
/// let guard = domain.pin();
/// let set = guard.shield_set::<3>();
/// drop(guard); // ERROR: `guard` is still borrowed by `set`
/// let _ = &set;
/// ```
#[must_use = "a ShieldSet protects records only while it is alive"]
pub struct ShieldSet<'g, const N: usize, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    guard: &'g Guard<T, R, P, A>,
    /// Role index -> leased slot index.  Rotation permutes this mapping; the slots (and
    /// the announcements they hold) never move.
    slots: [usize; N],
}

impl<'g, const N: usize, T, R, P, A> ShieldSet<'g, N, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    /// Reads `link` and protects the record it points to in `role`, validating that
    /// `link` still holds the same word afterwards; see [`Shield::protect`].
    ///
    /// # Errors
    ///
    /// As for [`Shield::protect`] (neutralized, link changed, or tagged link word).
    #[inline]
    #[must_use = "an unchecked protect result may hand out an unprotected pointer"]
    pub fn protect(&mut self, role: usize, link: &Atomic<T>) -> Result<Shared<'g, T>, Restart> {
        self.guard
            .protect_in_slot(self.slots[role], link, None, false, || true)
            .map(|s| Shared::from_word(s.word()))
    }

    /// Like [`protect`](Self::protect) for a link word the traversal has already read;
    /// see [`Shield::protect_loaded`].
    ///
    /// # Errors
    ///
    /// As for [`Shield::protect_loaded`].
    #[inline]
    #[must_use = "an unchecked protect result may hand out an unprotected pointer"]
    pub fn protect_loaded(
        &mut self,
        role: usize,
        link: &Atomic<T>,
        loaded: Shared<'_, T>,
    ) -> Result<Shared<'g, T>, Restart> {
        self.guard
            .protect_in_slot(self.slots[role], link, Some(loaded.word()), false, || true)
            .map(|s| Shared::from_word(s.word()))
    }

    /// Like [`protect_loaded`](Self::protect_loaded), with one extra validation
    /// conjoined to the link re-read: `watch`'s tag must not equal `banned_tag` — for
    /// protection invariants the link equality alone cannot express (the BST re-checks
    /// that the parent it descends from is not marked, since a removed parent keeps its
    /// frozen child links).  The extra condition is expressed as data rather than a
    /// caller closure on purpose: the validation runs while the guard layer holds
    /// exclusive access to the per-thread handle, where re-entering the guard API from
    /// a closure would alias it.
    ///
    /// # Errors
    ///
    /// As for [`protect_loaded`](Self::protect_loaded); additionally restarts when
    /// `watch` carries `banned_tag`.
    #[inline]
    #[must_use = "an unchecked protect result may hand out an unprotected pointer"]
    pub fn protect_loaded_unless(
        &mut self,
        role: usize,
        link: &Atomic<T>,
        loaded: Shared<'_, T>,
        watch: &Atomic<T>,
        banned_tag: usize,
    ) -> Result<Shared<'g, T>, Restart> {
        self.guard
            .protect_in_slot(self.slots[role], link, Some(loaded.word()), false, || {
                Shared::<T>::from_word(watch.load_word(std::sync::atomic::Ordering::SeqCst)).tag()
                    != banned_tag
            })
            .map(|s| Shared::from_word(s.word()))
    }

    /// Protects the record referenced by a *packed, possibly tagged* word in `role`:
    /// announces the word's pointer part and validates that `link` still holds exactly
    /// `expected` (tag included).
    ///
    /// This is the descriptor discipline of flag-word structures (the EFRB BST's
    /// `update` word packs `descriptor pointer | state`): a flagged word is a *valid*
    /// state there — unlike the Harris/Michael link discipline, where
    /// [`protect`](Self::protect) refuses tagged words — and "the word is still
    /// installed" proves the descriptor has not yet been handed off for retirement.
    ///
    /// # Errors
    ///
    /// [`Restart`] when the thread was neutralized or `link` no longer holds `expected`.
    #[inline]
    #[must_use = "an unchecked protect result may hand out an unprotected pointer"]
    pub fn protect_word(
        &mut self,
        role: usize,
        link: &Atomic<T>,
        expected: Shared<'_, T>,
    ) -> Result<Shared<'g, T>, Restart> {
        self.guard
            .protect_in_slot(self.slots[role], link, Some(expected.word()), true, || true)
            .map(|s| Shared::from_word(s.word()))
    }

    /// Rotates the protection roles: `roles[i]` takes over the slot (and therefore the
    /// live announcement) of `roles[i + 1]`, and the last role receives the first role's
    /// old slot, whose stale announcement is overwritten by that role's next protect.
    ///
    /// No stores are issued and no pointer is re-announced — every record that stays in
    /// the window stays continuously protected, which is both the safety argument (no
    /// moment of unprotection during a window shift, the property the raw BST maintained
    /// by carefully ordered re-announcements) and the performance one (the HP hot path
    /// keeps the raw protocol's exact load count).  `rotate([A, B])` on a two-role set
    /// is exactly [`Shield::swap_roles`].
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `roles` contains duplicates; out-of-range roles panic
    /// via the slot indexing.
    #[inline]
    pub fn rotate<const K: usize>(&mut self, roles: [usize; K]) {
        debug_assert!(
            (0..K).all(|i| (i + 1..K).all(|j| roles[i] != roles[j])),
            "rotate roles must be distinct"
        );
        if K == 0 {
            return;
        }
        let first = self.slots[roles[0]];
        for i in 0..K - 1 {
            self.slots[roles[i]] = self.slots[roles[i + 1]];
        }
        self.slots[roles[K - 1]] = first;
    }

    /// Announces protection of a *private* (not yet published) record in `role`, with no
    /// validation.
    ///
    /// Unconditionally sound: an `Owned` record cannot be retired before it is published
    /// (publication is what transfers it to the structure), and the announcement becomes
    /// visible before any publication CAS the caller performs afterwards — so no
    /// reclamation scan can miss it once retirement becomes possible.  This is how an
    /// insert keeps its new record dereferenceable under per-access schemes through a
    /// completion phase that runs *after* the publication point (the skip list's
    /// upper-level linking), where a concurrent remove may already retire the record.
    pub fn protect_private(&mut self, role: usize, record: &Owned<T>) {
        let slot = self.slots[role];
        let ptr = NonNull::new(record.shared().as_ptr()).expect("Owned records are non-null");
        self.guard.lease().with_handle(|h| {
            let _ = h.protect(slot, ptr, || true);
        });
    }

    /// Copies the announcement of `record` — which must currently be protected by
    /// `from`'s slot — into `to`'s slot.
    ///
    /// Sound without re-validation: an announcement duplicated while the original still
    /// stands cannot be missed by a concurrent reclamation scan (the record was
    /// continuously protected throughout).  This is how a traversal pins a record
    /// *beyond* the rotating window — e.g. the skip list keeps the target level's
    /// predecessor protected for the caller while the descent reuses the window roles
    /// on the levels below.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `record` is not currently protected by this thread.
    pub fn duplicate(&mut self, from: usize, to: usize, record: Shared<'_, T>) {
        debug_assert_ne!(from, to, "duplicate requires two distinct roles");
        let Some(ptr) = NonNull::new(record.as_ptr()) else { return };
        let slot = self.slots[to];
        self.guard.lease().with_handle(|h| {
            debug_assert!(
                h.protection_slots() == 0 || h.is_protected(ptr),
                "duplicate requires the record to be protected by the source role"
            );
            let _ = h.protect(slot, ptr, || true);
        });
    }

    /// Releases `role`'s protection announcement (keeping the slot leased for reuse).
    pub fn release(&mut self, role: usize) {
        let slot = self.slots[role];
        self.guard.lease().with_handle(|h| h.unprotect(slot));
    }
}

impl<'g, const N: usize, T, R, P, A> Drop for ShieldSet<'g, N, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn drop(&mut self) {
        for &slot in &self.slots {
            self.guard.release_slot(slot);
        }
    }
}

impl<'g, const N: usize, T, R, P, A> fmt::Debug for ShieldSet<'g, N, T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShieldSet").field("slots", &&self.slots[..]).finish()
    }
}

/// The RAII bracket of DEBRA+'s restricted hazard pointers (the paper's
/// `RProtect`/`RUnprotectAll`): records announced with [`protect`](Recovery::protect)
/// stay protected — visible to every other thread's reclamation scan — until the scope
/// is dropped, which releases them all.
///
/// This replaces the manually paired `r_protect` … `r_unprotect_all` calls of the raw
/// protocol.  Two opening points, chosen by how long the protections must live:
///
/// * [`Guard::recovery`] — a per-attempt scope: the protections announced before an
///   update's decision CAS are released when the attempt returns *or unwinds with
///   [`Restart`]* (the BST's insert/delete attempts);
/// * [`DomainHandle::recovery`] — a scope that outlives individual guards, for
///   completion phases that must survive neutralization-induced restarts of the
///   operation body (the skip list insert keeps its freshly published node protected
///   across the recovery gap until the completion phase finishes).
///
/// Everything is a no-op under schemes without crash recovery and compiles out.
///
/// # Panics
///
/// Opening a second scope while one is alive on the same thread panics:
/// `RUnprotectAll` is all-or-nothing, so a dropped inner scope would silently release an
/// outer scope's protections.
#[must_use = "restricted hazard pointers live exactly as long as the Recovery scope"]
pub struct Recovery<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    lease: LeaseRef<T, R, P, A>,
}

impl<T, R, P, A> Recovery<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn open(lease: LeaseRef<T, R, P, A>) -> Self {
        assert!(
            !lease.lease().recovery_active.replace(true),
            "Recovery scopes must not nest (RUnprotectAll is all-or-nothing)"
        );
        Recovery { lease }
    }

    /// Announces a restricted hazard pointer for `record` (the paper's `RProtect`) and
    /// returns a [`Protected`] token that can re-derive a usable pointer in a later
    /// guard.  Idempotent per record; a no-op (token included) outside DEBRA+.
    ///
    /// # Panics
    ///
    /// Panics when `record` is null.
    pub fn protect<'r>(&'r self, record: Shared<'_, T>) -> Protected<'r, T> {
        let ptr = NonNull::new(record.as_ptr()).expect("cannot RProtect a null pointer");
        self.lease.lease().with_handle(|h| h.r_protect(ptr));
        Protected { ptr, _scope: std::marker::PhantomData }
    }

    /// Releases every restricted protection announced in this scope (the paper's
    /// `RUnprotectAll`), keeping the scope open.
    ///
    /// For attempt-failure paths of operations whose scope spans retries: when a
    /// decision CAS fails (or a pre-decision checkpoint restarts the attempt), nothing
    /// the scope announced is needed anymore, and clearing keeps the bounded `RProtect`
    /// array from accumulating one stale entry per retried attempt.  Tokens handed out
    /// by [`protect`](Self::protect) before the clear no longer carry protection and
    /// must be discarded with the failed attempt.
    pub fn clear(&self) {
        self.lease.lease().with_handle(|h| h.r_unprotect_all());
    }

    /// `true` if this thread currently holds a restricted hazard pointer to `record`
    /// (the paper's `isRProtected`; always `false` outside DEBRA+).  Diagnostics.
    pub fn is_protected(&self, record: Shared<'_, T>) -> bool {
        match NonNull::new(record.as_ptr()) {
            Some(ptr) => self.lease.lease().with_handle(|h| h.is_r_protected(ptr)),
            None => false,
        }
    }
}

impl<T, R, P, A> Drop for Recovery<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn drop(&mut self) {
        let lease = self.lease.lease();
        lease.recovery_active.set(false);
        lease.with_handle(|h| h.r_unprotect_all());
    }
}

impl<T, R, P, A> fmt::Debug for Recovery<T, R, P, A>
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recovery").finish()
    }
}

/// A token for a record announced in a [`Recovery`] scope: re-derives a [`Shared`] for
/// the record inside a later guard with [`get`](Protected::get), which is how a
/// completion phase resumed after a neutralization regains its published record.
///
/// The token borrows the scope, so it cannot outlive the restricted protection that
/// keeps the record's memory valid across the recovery gap.  Under schemes without
/// crash recovery the protection is a no-op — and also never needed, because without
/// neutralization an operation body never restarts past its decision point, so a token
/// is only ever `get` within the attempt that created it.
///
/// # Contract (not checked by the type system)
///
/// That usage pattern is a *documented contract*, like [`Guard::retire`]'s: nothing
/// stops safe code under a no-op scheme from stashing a token, dropping its guard, and
/// `get`ting the record after another thread has freed it.  Call `get` only from the
/// operation that created the token, or from its crash-recovery resumption — the two
/// places where the record is provably covered (own protection, or the restricted
/// hazard pointer).
pub struct Protected<'r, T> {
    ptr: NonNull<T>,
    _scope: std::marker::PhantomData<&'r ()>,
}

impl<'r, T> Clone for Protected<'r, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'r, T> Copy for Protected<'r, T> {}

impl<'r, T: Send + 'static> Protected<'r, T> {
    /// The protected record as a [`Shared`] valid under `guard`.
    #[inline]
    pub fn get<'g, G: Pinned>(&self, _guard: &'g G) -> Shared<'g, T> {
        Shared::from_word(self.ptr.as_ptr() as usize)
    }
}

impl<'r, T> fmt::Debug for Protected<'r, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Protected").field("ptr", &self.ptr).finish()
    }
}

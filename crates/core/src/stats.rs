//! Per-thread and aggregated reclamation statistics.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// Cache-padded per-thread statistic counters, owned by the reclaimer's global state and
/// written (with relaxed ordering) only by the owning thread.
#[derive(Debug, Default)]
pub struct ThreadStatsSlot {
    /// Records handed to [`retire`](crate::ReclaimerThread::retire).
    pub retired: AtomicU64,
    /// Records handed to the reclaim sink (safe to reuse or free).
    pub reclaimed: AtomicU64,
    /// Records currently sitting in this thread's limbo bags.
    pub pending: AtomicU64,
    /// Number of successful epoch advances performed by this thread.
    pub epochs_advanced: AtomicU64,
    /// Number of neutralization signals this thread has sent to others (DEBRA+ only).
    pub signals_sent: AtomicU64,
    /// Number of data structure operations started (calls to `leave_qstate`).
    pub operations: AtomicU64,
    /// Number of times this thread observed that it had been neutralized.
    pub neutralized: AtomicU64,
}

/// Aggregated statistics across all threads of a reclaimer instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReclaimerStats {
    /// Total records retired.
    pub retired: u64,
    /// Total records reclaimed (handed to the pool / allocator).
    pub reclaimed: u64,
    /// Records currently waiting in limbo bags (retired but not reclaimed).
    pub pending: u64,
    /// Total epoch advances.
    pub epochs_advanced: u64,
    /// Total neutralization signals sent.
    pub signals_sent: u64,
    /// Total data structure operations started.
    pub operations: u64,
    /// Total times a thread observed it had been neutralized.
    pub neutralized: u64,
}

impl ThreadStatsSlot {
    /// Adds this thread's counters into an aggregate snapshot (used by reclaimer
    /// implementations, including those in other crates, to build [`ReclaimerStats`]).
    pub fn snapshot_into(&self, agg: &mut ReclaimerStats) {
        agg.retired += self.retired.load(Ordering::Relaxed);
        agg.reclaimed += self.reclaimed.load(Ordering::Relaxed);
        agg.pending += self.pending.load(Ordering::Relaxed);
        agg.epochs_advanced += self.epochs_advanced.load(Ordering::Relaxed);
        agg.signals_sent += self.signals_sent.load(Ordering::Relaxed);
        agg.operations += self.operations.load(Ordering::Relaxed);
        agg.neutralized += self.neutralized.load(Ordering::Relaxed);
    }
}

/// Aggregates the per-thread slots of a reclaimer into a [`ReclaimerStats`] snapshot.
pub(crate) fn aggregate(slots: &[CachePadded<ThreadStatsSlot>]) -> ReclaimerStats {
    let mut agg = ReclaimerStats::default();
    for s in slots {
        s.snapshot_into(&mut agg);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_sums_all_threads() {
        let slots: Vec<CachePadded<ThreadStatsSlot>> = (0..4)
            .map(|i| {
                let s = ThreadStatsSlot::default();
                s.retired.store(i + 1, Ordering::Relaxed);
                s.reclaimed.store(i, Ordering::Relaxed);
                s.operations.store(10 * (i + 1), Ordering::Relaxed);
                CachePadded::new(s)
            })
            .collect();
        let agg = aggregate(&slots);
        assert_eq!(agg.retired, 1 + 2 + 3 + 4);
        assert_eq!(agg.reclaimed, 1 + 2 + 3);
        assert_eq!(agg.operations, 10 + 20 + 30 + 40);
        assert_eq!(agg.pending, 0);
    }
}

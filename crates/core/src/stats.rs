//! Per-thread and aggregated reclamation statistics.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// Cache-padded per-thread statistic counters, owned by the reclaimer's global state and
/// written (with relaxed ordering) only by the owning thread.
#[derive(Debug, Default)]
pub struct ThreadStatsSlot {
    /// Records handed to [`retire`](crate::ReclaimerThread::retire).
    pub retired: AtomicU64,
    /// Records handed to the reclaim sink (safe to reuse or free).
    pub reclaimed: AtomicU64,
    /// Records currently sitting in this thread's limbo bags.
    pub pending: AtomicU64,
    /// Number of successful epoch advances performed by this thread.
    pub epochs_advanced: AtomicU64,
    /// Number of neutralization signals this thread has sent to others (DEBRA+ only).
    pub signals_sent: AtomicU64,
    /// Number of data structure operations started (calls to `leave_qstate`).
    pub operations: AtomicU64,
    /// Number of times this thread observed that it had been neutralized.
    pub neutralized: AtomicU64,
    /// Bytes of record memory currently sitting in this thread's limbo bags
    /// (`pending × size_of::<T>()`; see [`publish_limbo`](Self::publish_limbo)).
    pub limbo_bytes: AtomicU64,
    /// High watermark of [`limbo_bytes`](Self::limbo_bytes) over the thread's lifetime —
    /// the assertable bounded-garbage metric.
    pub limbo_bytes_hwm: AtomicU64,
    /// Times this thread observed another thread blocking epoch/era progress (an
    /// announcement scan that could not advance past a laggard).  Always 0 for schemes
    /// without a global epoch (HP, ThreadScan, None).
    pub epoch_stalls: AtomicU64,
}

/// Aggregated statistics across all threads of a reclaimer instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReclaimerStats {
    /// Total records retired.
    pub retired: u64,
    /// Total records reclaimed (handed to the pool / allocator).
    pub reclaimed: u64,
    /// Records currently waiting in limbo bags (retired but not reclaimed).
    pub pending: u64,
    /// Total epoch advances.
    pub epochs_advanced: u64,
    /// Total neutralization signals sent.
    pub signals_sent: u64,
    /// Total data structure operations started.
    pub operations: u64,
    /// Total times a thread observed it had been neutralized.
    pub neutralized: u64,
    /// Current bytes of record memory in limbo, summed over threads.
    pub limbo_bytes: u64,
    /// Sum of the per-thread limbo-bytes high watermarks.  Per-thread watermarks need
    /// not be simultaneous, so this is an *upper bound* on the true process-wide peak —
    /// the safe direction for asserting bounded-garbage claims (`hwm < B` implies the
    /// real peak was below `B` too).
    pub limbo_bytes_hwm: u64,
    /// Total epoch-stall observations (see [`ThreadStatsSlot::epoch_stalls`]).
    pub epoch_stalls: u64,
}

impl ThreadStatsSlot {
    /// Adds this thread's counters into an aggregate snapshot (used by reclaimer
    /// implementations, including those in other crates, to build [`ReclaimerStats`]).
    pub fn snapshot_into(&self, agg: &mut ReclaimerStats) {
        agg.retired += self.retired.load(Ordering::Relaxed);
        agg.reclaimed += self.reclaimed.load(Ordering::Relaxed);
        agg.pending += self.pending.load(Ordering::Relaxed);
        agg.epochs_advanced += self.epochs_advanced.load(Ordering::Relaxed);
        agg.signals_sent += self.signals_sent.load(Ordering::Relaxed);
        agg.operations += self.operations.load(Ordering::Relaxed);
        agg.neutralized += self.neutralized.load(Ordering::Relaxed);
        agg.limbo_bytes += self.limbo_bytes.load(Ordering::Relaxed);
        agg.limbo_bytes_hwm += self.limbo_bytes_hwm.load(Ordering::Relaxed);
        agg.epoch_stalls += self.epoch_stalls.load(Ordering::Relaxed);
    }

    /// Publishes this thread's limbo backlog: `pending_records` records of
    /// `bytes_per_record` each.  Reclaimers call this wherever the limbo population
    /// changes (retire, reclaim, orphaning), passing the *recomputed* population — so
    /// retire adds the record footprint and every reclaim subtracts it, without the
    /// slot needing read-modify-write pairs that could drift.
    ///
    /// The watermark update is a plain load/store: the slot is written only by its
    /// owning thread (the contract stated on [`ThreadStatsSlot`]).
    pub fn publish_limbo(&self, pending_records: u64, bytes_per_record: u64) {
        self.pending.store(pending_records, Ordering::Relaxed);
        let bytes = pending_records.saturating_mul(bytes_per_record);
        self.limbo_bytes.store(bytes, Ordering::Relaxed);
        if bytes > self.limbo_bytes_hwm.load(Ordering::Relaxed) {
            self.limbo_bytes_hwm.store(bytes, Ordering::Relaxed);
        }
    }
}

/// Aggregated allocation-pipeline statistics of a [`Pool`](crate::Pool) instance.
///
/// The counters describe the retire→free pipeline below the reclaimer: how often an
/// allocation was served from the per-thread magazine versus falling through to the
/// allocator, and — for page-backed pools ([`smr-pagepool`]) — how much page memory the
/// backing store has mapped.  Pools without counters report the all-zero default.
///
/// The gauges (`pages_mapped`, `slots_live`, `slots_free`) are *approximate*: free-slot
/// accounting happens at block granularity (the hot paths must not touch shared
/// counters), so slots cached in per-thread magazines and allocator-local blocks count
/// as live.
///
/// [`smr-pagepool`]: https://docs.rs/smr-pagepool
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Allocations served by a per-thread magazine (or a refill from the shared
    /// overflow pool) without touching the allocator.
    pub magazine_hits: u64,
    /// Allocations that fell through to the allocator because no recycled record was
    /// available.
    pub magazine_misses: u64,
    /// Pages the backing page store has mapped so far (never unmapped; 0 for pools
    /// without a page store).
    pub pages_mapped: u64,
    /// Carved slots currently in circulation: handed out, cached in a magazine, or
    /// parked in an allocator thread's local block.
    pub slots_live: u64,
    /// Carved slots sitting in the page store's global free list.
    pub slots_free: u64,
}

impl PoolStats {
    /// Magazine hit rate in percent (`NaN`-free: returns 0 when nothing was allocated).
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.magazine_hits + self.magazine_misses;
        if total == 0 {
            0.0
        } else {
            self.magazine_hits as f64 * 100.0 / total as f64
        }
    }

    /// Adds another snapshot's counters into this one, where both snapshots describe
    /// pools of the **same process** (used when summarizing an in-process sweep's rows).
    pub fn merge(&mut self, other: &PoolStats) {
        self.magazine_hits += other.magazine_hits;
        self.magazine_misses += other.magazine_misses;
        // The gauges describe one shared page store; keep the maximum rather than
        // summing the same store's figure once per row.
        self.pages_mapped = self.pages_mapped.max(other.pages_mapped);
        self.slots_live = self.slots_live.max(other.slots_live);
        self.slots_free = self.slots_free.max(other.slots_free);
    }

    /// Adds a snapshot from a **different process** (a child-process bench cell).
    /// Distinct processes have distinct page stores, so the gauges are independent
    /// footprints and must be *summed* — max-merging them as if they were one store
    /// would understate the fleet-wide footprint.  Within one process, use
    /// [`merge`](Self::merge).
    pub fn merge_across_processes(&mut self, other: &PoolStats) {
        self.magazine_hits += other.magazine_hits;
        self.magazine_misses += other.magazine_misses;
        self.pages_mapped += other.pages_mapped;
        self.slots_live += other.slots_live;
        self.slots_free += other.slots_free;
    }
}

/// Aggregates the per-thread slots of a reclaimer into a [`ReclaimerStats`] snapshot.
pub(crate) fn aggregate(slots: &[CachePadded<ThreadStatsSlot>]) -> ReclaimerStats {
    let mut agg = ReclaimerStats::default();
    for s in slots {
        s.snapshot_into(&mut agg);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_sums_all_threads() {
        let slots: Vec<CachePadded<ThreadStatsSlot>> = (0..4)
            .map(|i| {
                let s = ThreadStatsSlot::default();
                s.retired.store(i + 1, Ordering::Relaxed);
                s.reclaimed.store(i, Ordering::Relaxed);
                s.operations.store(10 * (i + 1), Ordering::Relaxed);
                CachePadded::new(s)
            })
            .collect();
        let agg = aggregate(&slots);
        assert_eq!(agg.retired, 1 + 2 + 3 + 4);
        assert_eq!(agg.reclaimed, 1 + 2 + 3);
        assert_eq!(agg.operations, 10 + 20 + 30 + 40);
        assert_eq!(agg.pending, 0);
    }

    #[test]
    fn publish_limbo_tracks_bytes_and_watermark() {
        let s = ThreadStatsSlot::default();
        s.publish_limbo(10, 64);
        assert_eq!(s.pending.load(Ordering::Relaxed), 10);
        assert_eq!(s.limbo_bytes.load(Ordering::Relaxed), 640);
        assert_eq!(s.limbo_bytes_hwm.load(Ordering::Relaxed), 640);
        // Reclaiming shrinks the gauge but the watermark stays.
        s.publish_limbo(2, 64);
        assert_eq!(s.limbo_bytes.load(Ordering::Relaxed), 128);
        assert_eq!(s.limbo_bytes_hwm.load(Ordering::Relaxed), 640);
        // A new peak raises it.
        s.publish_limbo(100, 64);
        assert_eq!(s.limbo_bytes_hwm.load(Ordering::Relaxed), 6400);

        let mut agg = ReclaimerStats::default();
        s.snapshot_into(&mut agg);
        assert_eq!(agg.limbo_bytes, 6400);
        assert_eq!(agg.limbo_bytes_hwm, 6400);
    }

    #[test]
    fn pool_merge_same_process_maxes_gauges_but_cross_process_sums_them() {
        let a = PoolStats {
            magazine_hits: 10,
            magazine_misses: 2,
            pages_mapped: 5,
            slots_live: 100,
            slots_free: 20,
        };
        let b = PoolStats {
            magazine_hits: 1,
            magazine_misses: 1,
            pages_mapped: 3,
            slots_live: 200,
            slots_free: 10,
        };
        let mut same = a;
        same.merge(&b);
        assert_eq!(same.magazine_hits, 11);
        assert_eq!(same.pages_mapped, 5, "one store: snapshots overlap, keep the max");
        assert_eq!(same.slots_live, 200);

        let mut cross = a;
        cross.merge_across_processes(&b);
        assert_eq!(cross.magazine_hits, 11);
        assert_eq!(cross.pages_mapped, 8, "two stores: footprints add");
        assert_eq!(cross.slots_live, 300);
        assert_eq!(cross.slots_free, 30);
    }
}

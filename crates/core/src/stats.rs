//! Per-thread and aggregated reclamation statistics.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// Cache-padded per-thread statistic counters, owned by the reclaimer's global state and
/// written (with relaxed ordering) only by the owning thread.
#[derive(Debug, Default)]
pub struct ThreadStatsSlot {
    /// Records handed to [`retire`](crate::ReclaimerThread::retire).
    pub retired: AtomicU64,
    /// Records handed to the reclaim sink (safe to reuse or free).
    pub reclaimed: AtomicU64,
    /// Records currently sitting in this thread's limbo bags.
    pub pending: AtomicU64,
    /// Number of successful epoch advances performed by this thread.
    pub epochs_advanced: AtomicU64,
    /// Number of neutralization signals this thread has sent to others (DEBRA+ only).
    pub signals_sent: AtomicU64,
    /// Number of data structure operations started (calls to `leave_qstate`).
    pub operations: AtomicU64,
    /// Number of times this thread observed that it had been neutralized.
    pub neutralized: AtomicU64,
}

/// Aggregated statistics across all threads of a reclaimer instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReclaimerStats {
    /// Total records retired.
    pub retired: u64,
    /// Total records reclaimed (handed to the pool / allocator).
    pub reclaimed: u64,
    /// Records currently waiting in limbo bags (retired but not reclaimed).
    pub pending: u64,
    /// Total epoch advances.
    pub epochs_advanced: u64,
    /// Total neutralization signals sent.
    pub signals_sent: u64,
    /// Total data structure operations started.
    pub operations: u64,
    /// Total times a thread observed it had been neutralized.
    pub neutralized: u64,
}

impl ThreadStatsSlot {
    /// Adds this thread's counters into an aggregate snapshot (used by reclaimer
    /// implementations, including those in other crates, to build [`ReclaimerStats`]).
    pub fn snapshot_into(&self, agg: &mut ReclaimerStats) {
        agg.retired += self.retired.load(Ordering::Relaxed);
        agg.reclaimed += self.reclaimed.load(Ordering::Relaxed);
        agg.pending += self.pending.load(Ordering::Relaxed);
        agg.epochs_advanced += self.epochs_advanced.load(Ordering::Relaxed);
        agg.signals_sent += self.signals_sent.load(Ordering::Relaxed);
        agg.operations += self.operations.load(Ordering::Relaxed);
        agg.neutralized += self.neutralized.load(Ordering::Relaxed);
    }
}

/// Aggregated allocation-pipeline statistics of a [`Pool`](crate::Pool) instance.
///
/// The counters describe the retire→free pipeline below the reclaimer: how often an
/// allocation was served from the per-thread magazine versus falling through to the
/// allocator, and — for page-backed pools ([`smr-pagepool`]) — how much page memory the
/// backing store has mapped.  Pools without counters report the all-zero default.
///
/// The gauges (`pages_mapped`, `slots_live`, `slots_free`) are *approximate*: free-slot
/// accounting happens at block granularity (the hot paths must not touch shared
/// counters), so slots cached in per-thread magazines and allocator-local blocks count
/// as live.
///
/// [`smr-pagepool`]: https://docs.rs/smr-pagepool
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Allocations served by a per-thread magazine (or a refill from the shared
    /// overflow pool) without touching the allocator.
    pub magazine_hits: u64,
    /// Allocations that fell through to the allocator because no recycled record was
    /// available.
    pub magazine_misses: u64,
    /// Pages the backing page store has mapped so far (never unmapped; 0 for pools
    /// without a page store).
    pub pages_mapped: u64,
    /// Carved slots currently in circulation: handed out, cached in a magazine, or
    /// parked in an allocator thread's local block.
    pub slots_live: u64,
    /// Carved slots sitting in the page store's global free list.
    pub slots_free: u64,
}

impl PoolStats {
    /// Magazine hit rate in percent (`NaN`-free: returns 0 when nothing was allocated).
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.magazine_hits + self.magazine_misses;
        if total == 0 {
            0.0
        } else {
            self.magazine_hits as f64 * 100.0 / total as f64
        }
    }

    /// Adds another snapshot's counters into this one (used when summarizing rows).
    pub fn merge(&mut self, other: &PoolStats) {
        self.magazine_hits += other.magazine_hits;
        self.magazine_misses += other.magazine_misses;
        // The gauges describe one shared page store; keep the maximum rather than
        // summing the same store's figure once per row.
        self.pages_mapped = self.pages_mapped.max(other.pages_mapped);
        self.slots_live = self.slots_live.max(other.slots_live);
        self.slots_free = self.slots_free.max(other.slots_free);
    }
}

/// Aggregates the per-thread slots of a reclaimer into a [`ReclaimerStats`] snapshot.
pub(crate) fn aggregate(slots: &[CachePadded<ThreadStatsSlot>]) -> ReclaimerStats {
    let mut agg = ReclaimerStats::default();
    for s in slots {
        s.snapshot_into(&mut agg);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_sums_all_threads() {
        let slots: Vec<CachePadded<ThreadStatsSlot>> = (0..4)
            .map(|i| {
                let s = ThreadStatsSlot::default();
                s.retired.store(i + 1, Ordering::Relaxed);
                s.reclaimed.store(i, Ordering::Relaxed);
                s.operations.store(10 * (i + 1), Ordering::Relaxed);
                CachePadded::new(s)
            })
            .collect();
        let agg = aggregate(&slots);
        assert_eq!(agg.retired, 1 + 2 + 3 + 4);
        assert_eq!(agg.reclaimed, 1 + 2 + 3);
        assert_eq!(agg.operations, 10 + 20 + 30 + 40);
        assert_eq!(agg.pending, 0);
    }
}

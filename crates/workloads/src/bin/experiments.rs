//! Command-line driver that regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p smr-workloads --bin experiments -- <subcommand>
//!
//! Subcommands:
//!   figure2      qualitative scheme comparison (paper Figure 2)
//!   e1           Experiment 1: overhead of reclamation (Figure 8 left)
//!   e2           Experiment 2: with reuse through the pool (Figure 8 right)
//!   e2-oversub   Experiment 2 with oversubscription (Figure 9 left)
//!   memory       memory allocated for records + neutralizations (Figure 9 right)
//!   e3           Experiment 3: malloc allocator (Figure 10)
//!   zipf         uniform vs. Zipfian keys on the hash map and BST (not in the paper)
//!   pc           producer/consumer: queue + stack, symmetric and bursty scenarios
//!   oversub      latency + bounded-memory family: recording-overhead twins, 4x-cores
//!                oversubscription with a pinned laggard, writes BENCH_latency.json
//!   sanitize     every scheme + structure under the smr-check pointer-race sanitizer;
//!                prints the violation report and fails on any report (needs
//!                `--features smr_sanitize`)
//!   summary      headline ratios from the abstract (DEBRA vs None vs HP)
//!   all          everything above
//!
//! Environment variables:
//!   DURATION_MS   per-trial duration (default 300)
//!   THREADS       comma-separated thread counts (default "1,2,4,8")
//!   FULL_KEYRANGE set to 1 to use the paper's key ranges (10^4 / 10^6 / 2*10^5);
//!                 the default uses smaller ranges so a full sweep finishes quickly
//!   ALLOCATOR     override each experiment's memory configuration: bump-no-pool,
//!                 bump, system (malloc), or pagepool (the type-stable page allocator)
//! ```

use smr_workloads::experiments::{
    self, experiment1, experiment2, experiment2_oversubscribed, experiment3,
    experiment_distribution, experiment_producer_consumer, memory_footprint, print_pc_rows,
    print_rows, summarize, ReclaimerKind, StructureKind,
};
use smr_workloads::figure2;
use smr_workloads::workload::{KeyDistribution, OperationMix, WorkloadConfig};
use smr_workloads::AllocatorKind;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_threads() -> Vec<usize> {
    std::env::var("THREADS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let duration = env_u64("DURATION_MS", 300);
    let threads = env_threads();
    let small = env_u64("FULL_KEYRANGE", 0) == 0;

    match cmd {
        "figure2" => {
            println!("\n### Figure 2 — properties of the implemented reclamation schemes\n");
            println!("{}", figure2::render_markdown());
        }
        "e1" => print_rows(
            "Experiment 1 (Figure 8 left): overhead of reclamation — bump allocator, no pool",
            &experiment1(&threads, duration, small),
        ),
        "e2" => print_rows(
            "Experiment 2 (Figure 8 right): bump allocator + pool",
            &experiment2(&threads, duration, small),
        ),
        "e2-oversub" => print_rows(
            "Experiment 2, oversubscribed (Figure 9 left)",
            &experiment2_oversubscribed(duration, small),
        ),
        "memory" => {
            let rows = memory_footprint(duration, small);
            print_rows("Memory footprint (Figure 9 right)", &rows);
            println!("\nbytes allocated for records (lower is better):");
            for r in &rows {
                println!(
                    "  {:7} threads={:3}: {:>12} bytes, {:>6} neutralizations",
                    r.reclaimer.name(),
                    r.threads,
                    r.result.allocated_bytes,
                    r.result.reclaimer.neutralized
                );
            }
        }
        "e3" => print_rows(
            "Experiment 3 (Figure 10): system allocator + pool",
            &experiment3(&threads, duration, small),
        ),
        "zipf" => print_rows(
            "Key-distribution experiment: uniform vs. Zipfian (hash map + BST)",
            &experiment_distribution(&threads, duration, small),
        ),
        "pc" => print_pc_rows(
            "Producer/consumer experiment: queue + stack, every scheme (not in the paper)",
            &experiment_producer_consumer(&threads, duration),
        ),
        "oversub" => smr_workloads::oversub::run_oversub(duration),
        "sanitize" => {
            // Every scheme and structure under the smr-check pointer-race sanitizer;
            // non-zero violation counts fail the run (used by the nightly CI job).
            #[cfg(feature = "smr_sanitize")]
            {
                let violations =
                    smr_workloads::sanitize::run_sanitized_sweep(duration, threads[0].max(2));
                if violations > 0 {
                    std::process::exit(1);
                }
            }
            #[cfg(not(feature = "smr_sanitize"))]
            {
                eprintln!(
                    "the sanitize family needs the sanitizer compiled in; rerun with \
                     `--features smr_sanitize`"
                );
                std::process::exit(2);
            }
        }
        "summary" => {
            let rows = experiment2(&threads, duration, small);
            print_rows("Experiment 2 rows used for the summary", &rows);
            println!("\n### Headline comparison (paper abstract)\n");
            for line in summarize(&rows) {
                println!("  {line}");
            }
        }
        "quick" => {
            // A single quick configuration, useful for sanity checks.
            let cfg = WorkloadConfig {
                threads: threads[0],
                key_range: 1024,
                mix: OperationMix::UPDATE_HEAVY,
                distribution: KeyDistribution::Uniform,
                duration_ms: duration,
                prefill: true,
                allocator: experiments::allocator_from_env(AllocatorKind::BumpWithPool),
                latency: false,
                laggard_stall_ms: 0,
            };
            let row = experiments::run_config(StructureKind::Bst, ReclaimerKind::Debra, &cfg, 1);
            print_rows("Quick check", &[row]);
        }
        "all" => {
            println!("\n### Figure 2 — properties of the implemented reclamation schemes\n");
            println!("{}", figure2::render_markdown());
            print_rows("Experiment 1 (Figure 8 left)", &experiment1(&threads, duration, small));
            let e2 = experiment2(&threads, duration, small);
            print_rows("Experiment 2 (Figure 8 right)", &e2);
            print_rows(
                "Experiment 2, oversubscribed (Figure 9 left)",
                &experiment2_oversubscribed(duration, small),
            );
            let mem = memory_footprint(duration, small);
            print_rows("Memory footprint (Figure 9 right)", &mem);
            print_rows("Experiment 3 (Figure 10)", &experiment3(&threads, duration, small));
            print_rows(
                "Key-distribution experiment: uniform vs. Zipfian (hash map + BST)",
                &experiment_distribution(&threads, duration, small),
            );
            print_pc_rows(
                "Producer/consumer experiment: queue + stack, every scheme (not in the paper)",
                &experiment_producer_consumer(&threads, duration),
            );
            smr_workloads::oversub::run_oversub(duration);
            println!("\n### Headline comparison (paper abstract)\n");
            for line in summarize(&e2) {
                println!("  {line}");
            }
        }
        other => {
            eprintln!("unknown subcommand `{other}`; see the module docs for usage");
            std::process::exit(2);
        }
    }
}

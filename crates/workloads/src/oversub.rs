//! The oversubscribed latency / bounded-memory trial family (`experiments -- oversub`).
//!
//! Throughput is the paper's headline metric, but the *production* case for DEBRA+ is an
//! SLO argument: when threads outnumber cores and a reader gets preempted mid-operation,
//! what happens to tail latency and to the garbage in limbo?  This family answers that
//! with one table across all seven schemes and three modes per structure:
//!
//! * **off** — recording disabled, at the base thread count.  The throughput baseline.
//! * **on** — identical configuration with the sample rings enabled.  The `off`/`on`
//!   twin rows quantify the recording overhead (the harness's discipline targets ≤5%).
//! * **oversub** — recording on, `max(4 × cores, 8)` threads, plus a pinned *laggard*
//!   (an extra registered thread that holds operations open for 5 ms windows,
//!   responding to neutralization).  The paper's Figure 9 regime, forced
//!   deterministically.
//!
//! Every cell runs in its **own child process** (`OVERSUB_CELL=structure:scheme:mode`,
//! spawned automatically by the parent run, following the microbench's isolation
//! pattern): a fresh heap, empty page stores and zeroed registries per cell, so no
//! row's latency distribution or limbo watermark depends on which rows ran before it.
//! The parent folds each child's allocation-pipeline gauges with
//! [`PoolStats::merge_across_processes`] — distinct page stores sum, they do not max.
//!
//! Besides the table, the run writes `BENCH_latency.json` (override with
//! `BENCH_LATENCY_JSON`), validated in CI by `bench_schema_check`.

use std::io::Write as _;

use debra::PoolStats;
use smr_obs::LatencySummary;

use crate::experiments::{
    allocator_from_env, run_config, AllocatorKind, ReclaimerKind, StructureKind,
};
use crate::workload::{KeyDistribution, OperationMix, WorkloadConfig};

/// Environment variable naming the single cell a child process runs
/// (`structure:scheme:mode`, e.g. `HashMap:DEBRA+:oversub`).
pub const CELL_ENV: &str = "OVERSUB_CELL";
/// Environment variable with the path a child writes its one-row JSON to.
const OUT_ENV: &str = "OVERSUB_OUT";
/// Stall-window length of the pinned laggard in `oversub` mode.
const LAGGARD_STALL_MS: u64 = 5;
/// Key range / prefill budget shared by every cell (small enough that chains are
/// contended, large enough that the structures see real traversals).
const KEY_RANGE: u64 = 4_096;

/// The structures this family sweeps: one map (every operation traverses shared chains)
/// and one bag (every successful dequeue retires — the worst-case garbage regime).
pub const STRUCTURES: [StructureKind; 2] = [StructureKind::HashMap, StructureKind::Queue];

/// Recording / scheduling mode of one row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Recording disabled, base thread count (the overhead twin's baseline).
    Off,
    /// Recording enabled, base thread count.
    On,
    /// Recording enabled, `max(4 × cores, 8)` threads plus the pinned laggard.
    Oversub,
}

impl Mode {
    /// All three modes, in row order.
    pub const ALL: [Mode; 3] = [Mode::Off, Mode::On, Mode::Oversub];

    /// The mode's name as it appears in the table and the JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::On => "on",
            Mode::Oversub => "oversub",
        }
    }

    fn parse(s: &str) -> Option<Mode> {
        Mode::ALL.into_iter().find(|m| m.name() == s)
    }
}

fn structure_parse(s: &str) -> Option<StructureKind> {
    [
        StructureKind::Bst,
        StructureKind::SkipList,
        StructureKind::HashMap,
        StructureKind::Queue,
        StructureKind::Stack,
    ]
    .into_iter()
    .find(|k| k.name() == s)
}

fn reclaimer_parse(s: &str) -> Option<ReclaimerKind> {
    ReclaimerKind::ALL.into_iter().find(|k| k.name() == s)
}

/// Base (non-oversubscribed) worker count: the machine's cores, clamped to `2..=4` so
/// the `off`/`on` twins measure the same contention level across CI boxes.
pub fn base_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).clamp(2, 4)
}

/// Oversubscribed worker count: at least four workers per core (and never fewer than 8),
/// so the OS must multiplex and operations routinely lose their core mid-flight.
pub fn oversub_threads() -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    (cores * 4).max(8)
}

/// One row of the latency/limbo table and of `BENCH_latency.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyRow {
    /// Data structure.
    pub structure: StructureKind,
    /// Reclamation scheme.
    pub reclaimer: ReclaimerKind,
    /// Recording / scheduling mode.
    pub mode: Mode,
    /// Worker thread count (excluding the laggard).
    pub threads: usize,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Latency summary over *all* operation kinds (empty when `mode` is `off`).
    pub latency: LatencySummary,
    /// High watermark of bytes in limbo (sum of per-thread watermarks — an upper bound
    /// on the true process peak; see `ReclaimerStats::limbo_bytes_hwm`).
    pub limbo_bytes_hwm: u64,
    /// Epoch-stall observations (scheme-specific; structurally 0 for HP/ThreadScan/None).
    pub epoch_stalls: u64,
    /// Neutralization signals observed (DEBRA+ only).
    pub neutralized: u64,
    /// The cell's allocation-pipeline gauges, kept whole so the parent can fold them
    /// with [`PoolStats::merge_across_processes`].
    pub pool: PoolStats,
}

/// Runs one cell of the family in-process and returns its row.
pub fn run_cell(
    structure: StructureKind,
    reclaimer: ReclaimerKind,
    mode: Mode,
    duration_ms: u64,
) -> LatencyRow {
    let (threads, latency, laggard_stall_ms) = match mode {
        Mode::Off => (base_threads(), false, 0),
        Mode::On => (base_threads(), true, 0),
        Mode::Oversub => (oversub_threads(), true, LAGGARD_STALL_MS),
    };
    // Page pool by default: it is the memory configuration whose gauges
    // (pages_mapped / slots_live) make the cross-process fold meaningful.
    let cfg = WorkloadConfig {
        threads,
        key_range: KEY_RANGE,
        mix: OperationMix::UPDATE_HEAVY,
        distribution: KeyDistribution::Uniform,
        duration_ms,
        prefill: true,
        allocator: allocator_from_env(AllocatorKind::PagePool),
        latency,
        laggard_stall_ms,
    };
    let row = run_config(structure, reclaimer, &cfg, 0x0B5E);
    LatencyRow {
        structure,
        reclaimer,
        mode,
        threads,
        mops: row.result.throughput_mops,
        latency: row.result.latency.all,
        limbo_bytes_hwm: row.result.reclaimer.limbo_bytes_hwm,
        epoch_stalls: row.result.reclaimer.epoch_stalls,
        neutralized: row.result.reclaimer.neutralized,
        pool: row.result.pool,
    }
}

/// Serializes rows as `BENCH_latency.json` (one row object per line; hand-rolled on
/// purpose — the workspace takes no JSON dependency).
pub fn write_json(rows: &[LatencyRow], path: &str) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"latency\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"structure\": \"{}\", \"scheme\": \"{}\", \"mode\": \"{}\", \
             \"threads\": {}, \"mops\": {:.4}, \"samples\": {}, \"mean_ns\": {}, \
             \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
             \"max_ns\": {}, \"limbo_bytes_hwm\": {}, \"epoch_stalls\": {}, \
             \"neutralized\": {}, \"magazine_hits\": {}, \"magazine_misses\": {}, \
             \"pages_mapped\": {}, \"slots_live\": {}, \"slots_free\": {}}}{}\n",
            r.structure.name(),
            r.reclaimer.name(),
            r.mode.name(),
            r.threads,
            r.mops,
            r.latency.count,
            r.latency.mean_ns,
            r.latency.p50_ns,
            r.latency.p90_ns,
            r.latency.p99_ns,
            r.latency.p999_ns,
            r.latency.max_ns,
            r.limbo_bytes_hwm,
            r.epoch_stalls,
            r.neutralized,
            r.pool.magazine_hits,
            r.pool.magazine_misses,
            r.pool.pages_mapped,
            r.pool.slots_live,
            r.pool.slots_free,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

/// Parses the one-row-per-line JSON [`write_json`] produces (the parent reads each
/// child's output with this; same minimal field scan as `bench_schema_check`).
pub fn parse_json(text: &str) -> Vec<LatencyRow> {
    fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
        let tag = format!("\"{name}\": ");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        if let Some(stripped) = rest.strip_prefix('"') {
            Some(&stripped[..stripped.find('"')?])
        } else {
            let end = rest
                .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == 'e'))
                .unwrap_or(rest.len());
            Some(&rest[..end])
        }
    }
    fn num(line: &str, name: &str) -> Option<u64> {
        field(line, name)?.parse().ok()
    }
    text.lines()
        .filter(|l| l.contains("\"structure\""))
        .filter_map(|line| {
            Some(LatencyRow {
                structure: structure_parse(field(line, "structure")?)?,
                reclaimer: reclaimer_parse(field(line, "scheme")?)?,
                mode: Mode::parse(field(line, "mode")?)?,
                threads: num(line, "threads")? as usize,
                mops: field(line, "mops")?.parse().ok()?,
                latency: LatencySummary {
                    count: num(line, "samples")?,
                    mean_ns: num(line, "mean_ns")?,
                    p50_ns: num(line, "p50_ns")?,
                    p90_ns: num(line, "p90_ns")?,
                    p99_ns: num(line, "p99_ns")?,
                    p999_ns: num(line, "p999_ns")?,
                    max_ns: num(line, "max_ns")?,
                },
                limbo_bytes_hwm: num(line, "limbo_bytes_hwm")?,
                epoch_stalls: num(line, "epoch_stalls")?,
                neutralized: num(line, "neutralized")?,
                pool: PoolStats {
                    magazine_hits: num(line, "magazine_hits")?,
                    magazine_misses: num(line, "magazine_misses")?,
                    pages_mapped: num(line, "pages_mapped")?,
                    slots_live: num(line, "slots_live")?,
                    slots_free: num(line, "slots_free")?,
                },
            })
        })
        .collect()
}

/// Human-readable duration: raw ns below 1 µs, else µs / ms with a decimal.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else {
        format!("{:.2}ms", ns as f64 / 1.0e6)
    }
}

/// Prints the latency/limbo table.
pub fn print_latency_rows(title: &str, rows: &[LatencyRow]) {
    println!("\n### {title}\n");
    println!(
        "| structure | scheme     | mode    | thr | Mops/s   | samples | p50      | p90      | p99      | p999     | max      | limbo-hwm | stalls   | neutral |"
    );
    println!(
        "|-----------|------------|---------|-----|----------|---------|----------|----------|----------|----------|----------|-----------|----------|---------|"
    );
    for r in rows {
        let (p50, p90, p99, p999, max) = if r.latency.count == 0 {
            ("-".into(), "-".into(), "-".into(), "-".into(), "-".into())
        } else {
            (
                fmt_ns(r.latency.p50_ns),
                fmt_ns(r.latency.p90_ns),
                fmt_ns(r.latency.p99_ns),
                fmt_ns(r.latency.p999_ns),
                fmt_ns(r.latency.max_ns),
            )
        };
        println!(
            "| {:9} | {:10} | {:7} | {:3} | {:8.3} | {:7} | {:8} | {:8} | {:8} | {:8} | {:8} | {:8}K | {:8} | {:7} |",
            r.structure.name(),
            r.reclaimer.name(),
            r.mode.name(),
            r.threads,
            r.mops,
            r.latency.count,
            p50,
            p90,
            p99,
            p999,
            max,
            r.limbo_bytes_hwm / 1024,
            r.epoch_stalls,
            r.neutralized,
        );
    }
}

/// Prints the `off`→`on` recording-overhead twins: per (structure, scheme), the
/// throughput ratio with recording on versus off.  The harness's discipline
/// (pre-allocated rings, raw TSC reads, post-trial conversion) targets ≤5% overhead;
/// the twin rows in the JSON are the demonstration.
pub fn print_overhead_twins(rows: &[LatencyRow]) {
    println!("\nrecording overhead (throughput with recording on, relative to off):");
    let mut ratios = Vec::new();
    for r_on in rows.iter().filter(|r| r.mode == Mode::On) {
        if let Some(r_off) = rows.iter().find(|r| {
            r.mode == Mode::Off && r.structure == r_on.structure && r.reclaimer == r_on.reclaimer
        }) {
            if r_off.mops > 0.0 {
                let ratio = r_on.mops / r_off.mops;
                ratios.push(ratio);
                println!(
                    "  {:9} x {:10}: {:.3}x ({:+.1}%)",
                    r_on.structure.name(),
                    r_on.reclaimer.name(),
                    ratio,
                    (ratio - 1.0) * 100.0,
                );
            }
        }
    }
    if !ratios.is_empty() {
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
        let median = ratios[ratios.len() / 2];
        println!("  median: {:.3}x ({:+.1}%)", median, (median - 1.0) * 100.0);
    }
}

/// The default output path (workspace root), overridable with `BENCH_LATENCY_JSON`.
pub fn json_path() -> String {
    std::env::var("BENCH_LATENCY_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_latency.json").into())
}

/// The full cell grid, in row order.
fn cells() -> Vec<(StructureKind, ReclaimerKind, Mode)> {
    let mut v = Vec::new();
    for structure in STRUCTURES {
        for reclaimer in ReclaimerKind::ALL {
            for mode in Mode::ALL {
                v.push((structure, reclaimer, mode));
            }
        }
    }
    v
}

/// Child mode: runs the one cell named by [`CELL_ENV`] and writes its row to the file
/// named by `OVERSUB_OUT`.
fn run_child(cell: &str, duration_ms: u64) {
    let mut parts = cell.splitn(3, ':');
    let (s, r, m) = (
        parts.next().and_then(structure_parse),
        parts.next().and_then(reclaimer_parse),
        parts.next().and_then(Mode::parse),
    );
    let (Some(structure), Some(reclaimer), Some(mode)) = (s, r, m) else {
        eprintln!("bad {CELL_ENV}={cell:?} (expected structure:scheme:mode)");
        std::process::exit(2);
    };
    let row = run_cell(structure, reclaimer, mode, duration_ms);
    let out = std::env::var(OUT_ENV).expect("child needs OVERSUB_OUT");
    if let Err(e) = write_json(&[row], &out) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
}

/// Parent mode: spawn one child per cell and collect their rows; `Err` only when
/// children cannot be spawned at all (the caller then falls back in-process).
fn run_isolated(duration_ms: u64) -> std::io::Result<Vec<LatencyRow>> {
    let exe = std::env::current_exe()?;
    let mut rows = Vec::new();
    let grid = cells();
    for (i, (structure, reclaimer, mode)) in grid.iter().enumerate() {
        let cell = format!("{}:{}:{}", structure.name(), reclaimer.name(), mode.name());
        let tmp =
            std::env::temp_dir().join(format!("oversub_cell_{}_{}.json", std::process::id(), i));
        eprintln!("--- oversub cell {}/{}: {cell} (fresh process) ---", i + 1, grid.len());
        let status = std::process::Command::new(&exe)
            .arg("oversub")
            .env(CELL_ENV, &cell)
            .env(OUT_ENV, &tmp)
            .env("DURATION_MS", duration_ms.to_string())
            .status()?;
        if !status.success() {
            eprintln!("oversub cell {cell} failed ({status}); aborting");
            let _ = std::fs::remove_file(&tmp);
            std::process::exit(1);
        }
        let text = std::fs::read_to_string(&tmp)?;
        let _ = std::fs::remove_file(&tmp);
        rows.extend(parse_json(&text));
    }
    Ok(rows)
}

/// Entry point for `experiments -- oversub`: dispatches child cells, runs the family,
/// prints the table + overhead twins + cross-process pool fold, writes the JSON.
pub fn run_oversub(duration_ms: u64) {
    if let Ok(cell) = std::env::var(CELL_ENV) {
        run_child(&cell, duration_ms);
        return;
    }
    let rows = run_isolated(duration_ms).unwrap_or_else(|e| {
        eprintln!("child-process isolation unavailable ({e}); running in-process");
        cells().into_iter().map(|(s, r, m)| run_cell(s, r, m, duration_ms)).collect()
    });
    print_latency_rows(
        &format!(
            "Oversubscribed latency + bounded-memory family ({} base / {} oversub threads + laggard)",
            base_threads(),
            oversub_threads()
        ),
        &rows,
    );
    print_overhead_twins(&rows);
    // Each cell ran in its own process with its own page store, so the gauges sum.
    let mut pool = PoolStats::default();
    for r in &rows {
        pool.merge_across_processes(&r.pool);
    }
    println!(
        "\nallocation pipeline across all {} cells (summed across processes): \
         {} pages mapped, {} slots live, {} slots free, {:.1}% magazine hit rate",
        rows.len(),
        pool.pages_mapped,
        pool.slots_live,
        pool.slots_free,
        pool.hit_rate_pct(),
    );
    let path = json_path();
    match write_json(&rows, &path) {
        Ok(()) => println!("\nwrote {path} ({} rows)", rows.len()),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_through_the_parser() {
        let rows = vec![
            LatencyRow {
                structure: StructureKind::HashMap,
                reclaimer: ReclaimerKind::DebraPlus,
                mode: Mode::Oversub,
                threads: 16,
                mops: 1.5,
                latency: LatencySummary {
                    count: 4096,
                    mean_ns: 812,
                    p50_ns: 400,
                    p90_ns: 900,
                    p99_ns: 12_000,
                    p999_ns: 5_000_000,
                    max_ns: 9_000_000,
                },
                limbo_bytes_hwm: 123_456,
                epoch_stalls: 7,
                neutralized: 3,
                pool: PoolStats {
                    magazine_hits: 10,
                    magazine_misses: 2,
                    pages_mapped: 4,
                    slots_live: 100,
                    slots_free: 28,
                },
            },
            LatencyRow {
                structure: StructureKind::Queue,
                reclaimer: ReclaimerKind::None,
                mode: Mode::Off,
                threads: 2,
                mops: 9.25,
                latency: LatencySummary::default(),
                limbo_bytes_hwm: 0,
                epoch_stalls: 0,
                neutralized: 0,
                pool: PoolStats::default(),
            },
        ];
        let tmp =
            std::env::temp_dir().join(format!("oversub_roundtrip_{}.json", std::process::id()));
        write_json(&rows, tmp.to_str().expect("utf-8 temp path")).expect("write");
        let text = std::fs::read_to_string(&tmp).expect("read");
        let _ = std::fs::remove_file(&tmp);
        let parsed = parse_json(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].reclaimer, ReclaimerKind::DebraPlus);
        assert_eq!(parsed[0].latency.p999_ns, 5_000_000);
        assert_eq!(parsed[0].pool.slots_free, 28);
        assert_eq!(parsed[1].mode, Mode::Off);
        assert!((parsed[1].mops - 9.25).abs() < 1e-9);
    }

    #[test]
    fn cell_grid_covers_every_structure_scheme_mode() {
        let grid = cells();
        assert_eq!(grid.len(), 2 * 8 * 3);
        // Every scheme name parses back (including the `+` in DEBRA+).
        for (s, r, m) in &grid {
            let spec = format!("{}:{}:{}", s.name(), r.name(), m.name());
            let mut parts = spec.splitn(3, ':');
            assert_eq!(parts.next().and_then(structure_parse), Some(*s));
            assert_eq!(parts.next().and_then(reclaimer_parse), Some(*r));
            assert_eq!(parts.next().and_then(Mode::parse), Some(*m));
        }
    }

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(812), "812ns");
        assert_eq!(fmt_ns(45_300), "45.3us");
        assert_eq!(fmt_ns(9_000_000), "9.00ms");
    }

    #[test]
    fn thread_counts_satisfy_the_oversubscription_contract() {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
        assert!(oversub_threads() >= cores * 4, "oversub must be >= 4x cores");
        assert!(oversub_threads() >= 8);
        assert!((2..=4).contains(&base_threads()));
    }
}

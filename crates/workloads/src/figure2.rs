//! Regenerates the qualitative scheme-comparison table (the paper's Figure 2) from the
//! `SchemeProperties` metadata reported by every implemented reclaimer.

use debra::{Debra, DebraPlus, Reclaimer, SchemeProperties};
use smr_baselines::{ClassicEbr, HazardPointers, NoReclaim, ThreadScanLite};
use smr_ibr::Ibr;
use smr_vbr::Vbr;

/// Collects the properties of every reclamation scheme implemented in this repository.
pub fn implemented_schemes() -> Vec<SchemeProperties> {
    // A throwaway record type: the properties do not depend on `T`.
    type T = u64;
    vec![
        <NoReclaim<T> as Reclaimer<T>>::properties(),
        <ClassicEbr<T> as Reclaimer<T>>::properties(),
        <HazardPointers<T> as Reclaimer<T>>::properties(),
        <ThreadScanLite<T> as Reclaimer<T>>::properties(),
        <Ibr<T> as Reclaimer<T>>::properties(),
        <Vbr<T> as Reclaimer<T>>::properties(),
        <Debra<T> as Reclaimer<T>>::properties(),
        <DebraPlus<T> as Reclaimer<T>>::properties(),
    ]
}

fn tick(b: bool) -> &'static str {
    if b {
        "x"
    } else {
        ""
    }
}

/// Renders the Figure 2 table as markdown.
pub fn render_markdown() -> String {
    let schemes = implemented_schemes();
    let mut out = String::new();
    out.push_str("| Scheme | per accessed record | per operation | per retired record | other modifications | timing assumptions | fault tolerant | reclamation termination | retired→retired traversal |\n");
    out.push_str("|--------|---------------------|---------------|--------------------|---------------------|--------------------|----------------|-------------------------|---------------------------|\n");
    for s in schemes {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            s.name,
            tick(s.code_modifications.per_accessed_record),
            tick(s.code_modifications.per_operation),
            tick(s.code_modifications.per_retired_record),
            s.code_modifications.other,
            s.timing_assumptions,
            tick(s.fault_tolerant),
            s.termination,
            tick(s.can_traverse_retired_to_retired),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_every_scheme_and_matches_figure2_highlights() {
        let md = render_markdown();
        for name in ["None", "EBR", "HP", "ThreadScan", "IBR", "VBR", "DEBRA", "DEBRA+"] {
            assert!(md.contains(name), "missing scheme {name}");
        }
        let schemes = implemented_schemes();
        let debra_plus = schemes.iter().find(|s| s.name == "DEBRA+").unwrap();
        assert!(debra_plus.fault_tolerant);
        assert!(debra_plus.can_traverse_retired_to_retired);
        let hp = schemes.iter().find(|s| s.name == "HP").unwrap();
        assert!(hp.code_modifications.per_accessed_record);
        assert!(!hp.can_traverse_retired_to_retired);
        let ebr = schemes.iter().find(|s| s.name == "EBR").unwrap();
        assert!(!ebr.fault_tolerant);
        let ibr = schemes.iter().find(|s| s.name == "IBR").unwrap();
        assert!(ibr.fault_tolerant, "bounded garbage under stalls is IBR's whole point");
        assert!(ibr.can_traverse_retired_to_retired);
        let vbr = schemes.iter().find(|s| s.name == "VBR").unwrap();
        assert!(
            !vbr.code_modifications.per_accessed_record,
            "announcement-free reads are VBR's whole point"
        );
        assert!(vbr.fault_tolerant);
    }
}

//! Operation mixes and key generation.

use rand::distributions::{Distribution, Zipf};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::experiments::AllocatorKind;

/// An operation mix, written the way the paper writes it: `xi-yd` means x% inserts,
/// y% deletes and the remainder searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperationMix {
    /// Percentage of insert operations (0–100).
    pub insert_pct: u8,
    /// Percentage of delete operations (0–100).
    pub delete_pct: u8,
}

impl OperationMix {
    /// The paper's update-heavy mix: 50% inserts, 50% deletes.
    pub const UPDATE_HEAVY: OperationMix = OperationMix { insert_pct: 50, delete_pct: 50 };
    /// The paper's mixed workload: 25% inserts, 25% deletes, 50% searches.
    pub const MIXED: OperationMix = OperationMix { insert_pct: 25, delete_pct: 25 };
    /// A read-dominated mix (not in the paper's figures, used by extra ablations).
    pub const READ_MOSTLY: OperationMix = OperationMix { insert_pct: 5, delete_pct: 5 };

    /// Percentage of search operations.
    pub fn search_pct(&self) -> u8 {
        100 - self.insert_pct - self.delete_pct
    }

    /// The paper's label for this mix, e.g. `"50i-50d"`.
    pub fn label(&self) -> String {
        format!("{}i-{}d", self.insert_pct, self.delete_pct)
    }
}

/// How keys are drawn from `0..key_range`.
///
/// The paper's figures use uniform keys throughout; the Zipfian option adds the hot-key
/// contention regime (a few keys receive most operations) under which retired-but-
/// unreclaimable garbage piles up on the contended chains — the workload shape that
/// separates reclamation schemes in the hash-table literature.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum KeyDistribution {
    /// Every key equally likely (the paper's setting).
    #[default]
    Uniform,
    /// Zipfian: key popularity follows rank^(-theta).  Hot ranks are scrambled across the
    /// key space (as in YCSB's scrambled-Zipfian generator) so that hot keys do not
    /// cluster in adjacent buckets or tree paths.
    Zipf {
        /// The skew exponent; YCSB's default is 0.99 (≈ hottest key takes ~10% of ops at
        /// `key_range` = 1000).
        theta: f64,
    },
}

impl KeyDistribution {
    /// The YCSB-default Zipfian skew.
    pub const ZIPF_DEFAULT: KeyDistribution = KeyDistribution::Zipf { theta: 0.99 };

    /// Short label used in experiment tables (e.g. `"uniform"`, `"zipf0.99"`).
    pub fn label(&self) -> String {
        match self {
            KeyDistribution::Uniform => "uniform".to_string(),
            KeyDistribution::Zipf { theta } => format!("zipf{theta}"),
        }
    }
}

/// One benchmark configuration (the knobs the paper sweeps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Keys are drawn from `0..key_range` according to `distribution`.
    pub key_range: u64,
    /// Operation mix.
    pub mix: OperationMix,
    /// Key popularity distribution.
    pub distribution: KeyDistribution,
    /// Trial duration in milliseconds.
    pub duration_ms: u64,
    /// Whether to prefill the structure to half the key range before timing.
    pub prefill: bool,
    /// Memory configuration (allocator + pool) the Record Manager is composed with.
    pub allocator: AllocatorKind,
    /// Whether workers record per-operation latency (sample rings draining into the
    /// trial's [`smr_obs::LatencyReport`]).  Off by default: throughput rows stay
    /// comparable with earlier sweeps, and the on/off twin rows in `BENCH_latency.json`
    /// quantify the recording overhead.
    pub latency: bool,
    /// When nonzero, the experiment drivers pin a *laggard* next to the workers: an
    /// extra registered thread that holds operations open for windows of this many
    /// milliseconds (responding to neutralization, like the DEBRA+ fault-tolerance
    /// tests).  This forces the preempted-reader regime of the paper's Figure 9 without
    /// depending on the OS scheduler to preempt at the right moment.
    pub laggard_stall_ms: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            threads: 4,
            key_range: 10_000,
            mix: OperationMix::UPDATE_HEAVY,
            distribution: KeyDistribution::Uniform,
            duration_ms: 200,
            prefill: true,
            allocator: AllocatorKind::BumpWithPool,
            latency: false,
            laggard_stall_ms: 0,
        }
    }
}

/// A single operation chosen by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Insert `key`.
    Insert(u64),
    /// Delete `key`.
    Delete(u64),
    /// Search for `key`.
    Search(u64),
}

/// The concrete key sampler backing a [`KeyDistribution`].
#[derive(Debug)]
enum KeySampler {
    Uniform,
    Zipf(Zipf),
}

/// The splitmix64 finalizer: a fixed bijection on `u64` used to scramble Zipf ranks
/// across the key space (YCSB's "scrambled Zipfian").
#[inline]
fn scramble(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-thread deterministic operation generator (seeded per thread id so trials are
/// reproducible).
#[derive(Debug)]
pub struct OperationGenerator {
    rng: SmallRng,
    key_range: u64,
    mix: OperationMix,
    sampler: KeySampler,
}

impl OperationGenerator {
    /// Creates a generator for worker `tid` under `cfg`.
    pub fn new(cfg: &WorkloadConfig, tid: usize, seed: u64) -> Self {
        let sampler = match cfg.distribution {
            KeyDistribution::Uniform => KeySampler::Uniform,
            KeyDistribution::Zipf { theta } => KeySampler::Zipf(Zipf::new(cfg.key_range, theta)),
        };
        OperationGenerator {
            rng: SmallRng::seed_from_u64(seed ^ (tid as u64).wrapping_mul(0x9E3779B97F4A7C15)),
            key_range: cfg.key_range,
            mix: cfg.mix,
            sampler,
        }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Operation {
        let key = self.next_key();
        let p: u8 = self.rng.gen_range(0..100);
        if p < self.mix.insert_pct {
            Operation::Insert(key)
        } else if p < self.mix.insert_pct + self.mix.delete_pct {
            Operation::Delete(key)
        } else {
            Operation::Search(key)
        }
    }

    /// Draws a random key following the configured distribution.
    pub fn next_key(&mut self) -> u64 {
        match &self.sampler {
            KeySampler::Uniform => self.rng.gen_range(0..self.key_range),
            // Rank 1 is the hottest; scramble spreads the hot ranks over the key space so
            // they do not land in adjacent buckets / tree paths.
            KeySampler::Zipf(zipf) => scramble(zipf.sample(&mut self.rng) - 1) % self.key_range,
        }
    }

    /// Draws a uniformly random key regardless of the configured distribution (used for
    /// prefilling, which targets a structure *size*, not a popularity profile).
    pub fn next_uniform_key(&mut self) -> u64 {
        self.rng.gen_range(0..self.key_range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_labels_match_the_paper() {
        assert_eq!(OperationMix::UPDATE_HEAVY.label(), "50i-50d");
        assert_eq!(OperationMix::MIXED.label(), "25i-25d");
        assert_eq!(OperationMix::MIXED.search_pct(), 50);
        assert_eq!(OperationMix::UPDATE_HEAVY.search_pct(), 0);
    }

    #[test]
    fn generator_respects_mix_proportions() {
        let cfg =
            WorkloadConfig { mix: OperationMix::MIXED, key_range: 1000, ..Default::default() };
        let mut g = OperationGenerator::new(&cfg, 0, 42);
        let mut counts = [0u32; 3];
        for _ in 0..100_000 {
            match g.next_op() {
                Operation::Insert(k) => {
                    assert!(k < 1000);
                    counts[0] += 1;
                }
                Operation::Delete(_) => counts[1] += 1,
                Operation::Search(_) => counts[2] += 1,
            }
        }
        // 25/25/50 within a small tolerance.
        assert!((23_000..27_000).contains(&counts[0]), "{counts:?}");
        assert!((23_000..27_000).contains(&counts[1]), "{counts:?}");
        assert!((48_000..52_000).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn generator_zipf_concentrates_mass_on_few_keys() {
        let uniform_cfg = WorkloadConfig {
            key_range: 10_000,
            distribution: KeyDistribution::Uniform,
            ..Default::default()
        };
        let zipf_cfg = WorkloadConfig {
            key_range: 10_000,
            distribution: KeyDistribution::ZIPF_DEFAULT,
            ..Default::default()
        };
        let top_share = |cfg: &WorkloadConfig| {
            let mut g = OperationGenerator::new(cfg, 0, 99);
            let mut counts = std::collections::HashMap::new();
            for _ in 0..50_000u32 {
                *counts.entry(g.next_key()).or_insert(0u32) += 1;
            }
            let mut freqs: Vec<u32> = counts.values().copied().collect();
            freqs.sort_unstable_by(|a, b| b.cmp(a));
            freqs.iter().take(10).sum::<u32>() as f64 / 50_000.0
        };
        let uniform_top = top_share(&uniform_cfg);
        let zipf_top = top_share(&zipf_cfg);
        assert!(uniform_top < 0.02, "uniform top-10 share was {uniform_top}");
        assert!(zipf_top > 0.20, "zipf top-10 share was {zipf_top}");
        // Prefill keys stay uniform even under a Zipfian operation distribution.
        let mut g = OperationGenerator::new(&zipf_cfg, 0, 99);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000u32 {
            seen.insert(g.next_uniform_key());
        }
        assert!(seen.len() > 3_000, "uniform prefill keys should rarely repeat");
    }

    #[test]
    fn generator_is_deterministic_per_seed_and_tid() {
        let cfg = WorkloadConfig::default();
        let a: Vec<_> = {
            let mut g = OperationGenerator::new(&cfg, 3, 7);
            (0..100).map(|_| g.next_op()).collect()
        };
        let b: Vec<_> = {
            let mut g = OperationGenerator::new(&cfg, 3, 7);
            (0..100).map(|_| g.next_op()).collect()
        };
        let c: Vec<_> = {
            let mut g = OperationGenerator::new(&cfg, 4, 7);
            (0..100).map(|_| g.next_op()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

//! Operation mixes and key generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An operation mix, written the way the paper writes it: `xi-yd` means x% inserts,
/// y% deletes and the remainder searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperationMix {
    /// Percentage of insert operations (0–100).
    pub insert_pct: u8,
    /// Percentage of delete operations (0–100).
    pub delete_pct: u8,
}

impl OperationMix {
    /// The paper's update-heavy mix: 50% inserts, 50% deletes.
    pub const UPDATE_HEAVY: OperationMix = OperationMix { insert_pct: 50, delete_pct: 50 };
    /// The paper's mixed workload: 25% inserts, 25% deletes, 50% searches.
    pub const MIXED: OperationMix = OperationMix { insert_pct: 25, delete_pct: 25 };
    /// A read-dominated mix (not in the paper's figures, used by extra ablations).
    pub const READ_MOSTLY: OperationMix = OperationMix { insert_pct: 5, delete_pct: 5 };

    /// Percentage of search operations.
    pub fn search_pct(&self) -> u8 {
        100 - self.insert_pct - self.delete_pct
    }

    /// The paper's label for this mix, e.g. `"50i-50d"`.
    pub fn label(&self) -> String {
        format!("{}i-{}d", self.insert_pct, self.delete_pct)
    }
}

/// One benchmark configuration (the knobs the paper sweeps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: u64,
    /// Operation mix.
    pub mix: OperationMix,
    /// Trial duration in milliseconds.
    pub duration_ms: u64,
    /// Whether to prefill the structure to half the key range before timing.
    pub prefill: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            threads: 4,
            key_range: 10_000,
            mix: OperationMix::UPDATE_HEAVY,
            duration_ms: 200,
            prefill: true,
        }
    }
}

/// A single operation chosen by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Insert `key`.
    Insert(u64),
    /// Delete `key`.
    Delete(u64),
    /// Search for `key`.
    Search(u64),
}

/// Per-thread deterministic operation generator (seeded per thread id so trials are
/// reproducible).
#[derive(Debug)]
pub struct OperationGenerator {
    rng: SmallRng,
    key_range: u64,
    mix: OperationMix,
}

impl OperationGenerator {
    /// Creates a generator for worker `tid` under `cfg`.
    pub fn new(cfg: &WorkloadConfig, tid: usize, seed: u64) -> Self {
        OperationGenerator {
            rng: SmallRng::seed_from_u64(seed ^ (tid as u64).wrapping_mul(0x9E3779B97F4A7C15)),
            key_range: cfg.key_range,
            mix: cfg.mix,
        }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Operation {
        let key = self.rng.gen_range(0..self.key_range);
        let p: u8 = self.rng.gen_range(0..100);
        if p < self.mix.insert_pct {
            Operation::Insert(key)
        } else if p < self.mix.insert_pct + self.mix.delete_pct {
            Operation::Delete(key)
        } else {
            Operation::Search(key)
        }
    }

    /// Draws a uniformly random key (used for prefilling).
    pub fn next_key(&mut self) -> u64 {
        self.rng.gen_range(0..self.key_range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_labels_match_the_paper() {
        assert_eq!(OperationMix::UPDATE_HEAVY.label(), "50i-50d");
        assert_eq!(OperationMix::MIXED.label(), "25i-25d");
        assert_eq!(OperationMix::MIXED.search_pct(), 50);
        assert_eq!(OperationMix::UPDATE_HEAVY.search_pct(), 0);
    }

    #[test]
    fn generator_respects_mix_proportions() {
        let cfg =
            WorkloadConfig { mix: OperationMix::MIXED, key_range: 1000, ..Default::default() };
        let mut g = OperationGenerator::new(&cfg, 0, 42);
        let mut counts = [0u32; 3];
        for _ in 0..100_000 {
            match g.next_op() {
                Operation::Insert(k) => {
                    assert!(k < 1000);
                    counts[0] += 1;
                }
                Operation::Delete(_) => counts[1] += 1,
                Operation::Search(_) => counts[2] += 1,
            }
        }
        // 25/25/50 within a small tolerance.
        assert!((23_000..27_000).contains(&counts[0]), "{counts:?}");
        assert!((23_000..27_000).contains(&counts[1]), "{counts:?}");
        assert!((48_000..52_000).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn generator_is_deterministic_per_seed_and_tid() {
        let cfg = WorkloadConfig::default();
        let a: Vec<_> = {
            let mut g = OperationGenerator::new(&cfg, 3, 7);
            (0..100).map(|_| g.next_op()).collect()
        };
        let b: Vec<_> = {
            let mut g = OperationGenerator::new(&cfg, 3, 7);
            (0..100).map(|_| g.next_op()).collect()
        };
        let c: Vec<_> = {
            let mut g = OperationGenerator::new(&cfg, 4, 7);
            (0..100).map(|_| g.next_op()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

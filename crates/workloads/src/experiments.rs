//! Drivers for every experiment in the paper's evaluation section.
//!
//! Each experiment is a sweep over (data structure, reclaimer, thread count, operation mix,
//! key range) for a fixed memory configuration (allocator + pool), mirroring Section 7:
//!
//! | Experiment | Paper figure | Memory configuration |
//! |------------|--------------|----------------------|
//! | [`experiment1`] | Figure 8 (left) | bump allocator, **no pool** (reclaimers do their work but records are never reused) |
//! | [`experiment2`] | Figure 8 (right) | bump allocator + pool (records are recycled) |
//! | [`experiment2_oversubscribed`] | Figure 9 (left) | as Experiment 2, with more threads than cores |
//! | [`memory_footprint`] | Figure 9 (right) | as Experiment 2, reporting bytes allocated for records and neutralization counts |
//! | [`experiment3`] | Figure 10 | system allocator (`malloc`) + pool |
//! | [`experiment_distribution`] | (not in the paper) | as Experiment 2, uniform vs. Zipfian keys on the hash map and BST |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use debra::{Allocator, Debra, DebraPlus, Pool, PoolStats, Reclaimer, RecordManager};
use lockfree_ds::{BstNode, ExternalBst, SkipList, SkipNode};
use smr_alloc::{BumpAllocator, NoPool, SystemAllocator, ThreadPool};
use smr_baselines::{ClassicEbr, HazardPointers, NoReclaim, ThreadScanLite};
use smr_hashmap::{HashMapNode, LockFreeHashMap};
use smr_ibr::Ibr;
use smr_pagepool::{PageAllocator, PagePool};
use smr_queue::{MsQueue, QueueNode, StackNode, TreiberStack};
use smr_vbr::Vbr;

use crate::harness::{run_trial, TrialResult};
use crate::pc::{run_pc_trial, PcConfig, PcScenario, PcTrialResult};
use crate::workload::{KeyDistribution, OperationMix, WorkloadConfig};

/// Trials narrated so far (the `i` of `trial i/N`), process-wide.
static TRIAL_SEQ: AtomicU64 = AtomicU64::new(0);
/// Trials the sweep drivers have announced (the `N`); 0 means "unknown" (a bare
/// `run_config` call outside any sweep).
static TRIAL_TOTAL: AtomicU64 = AtomicU64::new(0);
/// Wall-clock anchor for the `+elapsed` column, set when the first trial starts.
static NARRATION_START: OnceLock<Instant> = OnceLock::new();

/// Registers `n` upcoming trials with the stderr progress narrator, so multi-minute
/// sweeps print `trial i/N` instead of a bare counter.  Sweep drivers call this with
/// their row count before their first trial; `N` accumulates across drivers so `all`
/// shows one coherent denominator.
pub fn announce_trials(n: u64) {
    TRIAL_TOTAL.fetch_add(n, Ordering::Relaxed);
}

/// One line of per-trial stderr narration: `[trial i/N +elapsed] <config>`.
fn narrate_trial(desc: std::fmt::Arguments<'_>) {
    let i = TRIAL_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    let total = TRIAL_TOTAL.load(Ordering::Relaxed);
    let elapsed = NARRATION_START.get_or_init(Instant::now).elapsed().as_secs_f64();
    if total >= i {
        eprintln!("[trial {i}/{total} +{elapsed:.1}s] {desc}");
    } else {
        eprintln!("[trial {i} +{elapsed:.1}s] {desc}");
    }
}

/// Which reclamation scheme a configuration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReclaimerKind {
    /// No reclamation at all (the paper's "None").
    None,
    /// DEBRA (this paper).
    Debra,
    /// DEBRA+ (this paper, fault tolerant).
    DebraPlus,
    /// Hazard pointers.
    HazardPointers,
    /// Classical epoch based reclamation.
    Ebr,
    /// ThreadScan-lite (fence-free announcements, signal-driven collective scans).
    ThreadScan,
    /// Interval-based reclamation (2GEIBR-style birth/retire-era tagging).
    Ibr,
    /// Version-based reclamation (announcement-free optimistic reads; requires the
    /// type-stable page pool).
    Vbr,
}

impl ReclaimerKind {
    /// All eight implemented schemes: the five compared in the paper's figures plus the
    /// three modern points of comparison this reproduction adds (ThreadScan, IBR, VBR).
    pub const ALL: [ReclaimerKind; 8] = [
        ReclaimerKind::None,
        ReclaimerKind::Debra,
        ReclaimerKind::DebraPlus,
        ReclaimerKind::HazardPointers,
        ReclaimerKind::Ebr,
        ReclaimerKind::ThreadScan,
        ReclaimerKind::Ibr,
        ReclaimerKind::Vbr,
    ];

    /// The scheme's display name (matches the paper's legend).
    pub fn name(&self) -> &'static str {
        match self {
            ReclaimerKind::None => "None",
            ReclaimerKind::Debra => "DEBRA",
            ReclaimerKind::DebraPlus => "DEBRA+",
            ReclaimerKind::HazardPointers => "HP",
            ReclaimerKind::Ebr => "EBR",
            ReclaimerKind::ThreadScan => "ThreadScan",
            ReclaimerKind::Ibr => "IBR",
            ReclaimerKind::Vbr => "VBR",
        }
    }

    /// `true` for schemes whose optimistic reads are machine-safe only over a
    /// type-stable allocator (`debra::AllocatorRequirement::TypeStable`);
    /// registration panics otherwise.
    pub fn requires_type_stable_allocator(&self) -> bool {
        matches!(self, ReclaimerKind::Vbr)
    }

    /// The memory configuration a trial of this scheme actually runs with: the
    /// requested one, except that type-stability-requiring schemes are coerced to
    /// [`AllocatorKind::PagePool`] (with a stderr note) so sweeps over
    /// `ReclaimerKind::ALL` don't abort on the one scheme the requested allocator
    /// cannot host.
    pub fn effective_allocator(&self, requested: AllocatorKind) -> AllocatorKind {
        if self.requires_type_stable_allocator() && requested != AllocatorKind::PagePool {
            eprintln!(
                "note: {} requires ALLOCATOR=pagepool; running it on pagepool instead of {}",
                self.name(),
                requested.name()
            );
            return AllocatorKind::PagePool;
        }
        requested
    }
}

/// Which data structure a configuration exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureKind {
    /// The external BST (stand-in for the paper's balanced BST).
    Bst,
    /// The lock-free skip list.
    SkipList,
    /// The lock-free hash map (fixed bucket array of Harris–Michael lists).
    HashMap,
    /// The Michael–Scott MPMC queue (a [`lockfree_ds::ConcurrentBag`], driven by the
    /// producer/consumer harness instead of the keyed-map harness).
    Queue,
    /// The Treiber stack (also bag-shaped; producer/consumer harness).
    Stack,
}

impl StructureKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            StructureKind::Bst => "BST",
            StructureKind::SkipList => "SkipList",
            StructureKind::HashMap => "HashMap",
            StructureKind::Queue => "Queue",
            StructureKind::Stack => "Stack",
        }
    }

    /// `true` for the bag-shaped structures (queue, stack), whose trials run through the
    /// producer/consumer harness ([`crate::pc`]) rather than the keyed-map harness.
    pub fn is_bag(&self) -> bool {
        matches!(self, StructureKind::Queue | StructureKind::Stack)
    }
}

/// Which memory configuration (allocator + pool) a configuration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocatorKind {
    /// Bump allocator, no pool — Experiment 1.
    BumpNoPool,
    /// Bump allocator + per-thread pool — Experiment 2 / Figure 9.
    BumpWithPool,
    /// System allocator (`malloc`) + per-thread pool — Experiment 3.
    SystemWithPool,
    /// Type-stable page allocator + magazine pool (`smr-pagepool`): the retire→free hot
    /// path never touches the system allocator, and freed records return to their pages.
    PagePool,
}

impl AllocatorKind {
    /// Every memory configuration, in the order the experiments sweep them.
    pub const ALL: [AllocatorKind; 4] = [
        AllocatorKind::BumpNoPool,
        AllocatorKind::BumpWithPool,
        AllocatorKind::SystemWithPool,
        AllocatorKind::PagePool,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AllocatorKind::BumpNoPool => "bump/no-pool",
            AllocatorKind::BumpWithPool => "bump/pool",
            AllocatorKind::SystemWithPool => "malloc/pool",
            AllocatorKind::PagePool => "pagepool",
        }
    }
}

/// Resolves the memory configuration for an experiment driver: the `ALLOCATOR`
/// environment variable when set (`bump-no-pool`, `bump`, `system`/`malloc`,
/// `pagepool`), otherwise `default` (each experiment's paper configuration).
///
/// # Panics
///
/// Panics on an unrecognized `ALLOCATOR` value — a misconfigured sweep should fail
/// loudly, not silently measure the wrong memory configuration.
pub fn allocator_from_env(default: AllocatorKind) -> AllocatorKind {
    match std::env::var("ALLOCATOR").ok().as_deref() {
        None | Some("") => default,
        Some("bump-no-pool" | "no-pool") => AllocatorKind::BumpNoPool,
        Some("bump" | "bump-pool") => AllocatorKind::BumpWithPool,
        Some("system" | "malloc") => AllocatorKind::SystemWithPool,
        Some("pagepool" | "page-pool") => AllocatorKind::PagePool,
        Some(other) => panic!(
            "unrecognized ALLOCATOR={other:?} (expected bump-no-pool, bump, system, or pagepool)"
        ),
    }
}

/// One row of an experiment's output table.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRow {
    /// Data structure.
    pub structure: StructureKind,
    /// Reclamation scheme.
    pub reclaimer: ReclaimerKind,
    /// Memory configuration.
    pub allocator: AllocatorKind,
    /// Thread count.
    pub threads: usize,
    /// Key range.
    pub key_range: u64,
    /// Operation mix label (e.g. `"50i-50d"`).
    pub mix: String,
    /// Key popularity distribution.
    pub distribution: KeyDistribution,
    /// Trial measurements.
    pub result: TrialResult,
}

impl ExperimentRow {
    /// Formats the row the way the experiment tables in `EXPERIMENTS.md` are written.
    pub fn to_table_line(&self) -> String {
        format!(
            "| {:9} | {:10} | {:12} | {:3} | {:8} | {:8} | {:8} | {:8.3} | {:10} | {:10} | {:6} | {:7.1} | {:5} |",
            self.structure.name(),
            self.reclaimer.name(),
            self.allocator.name(),
            self.threads,
            self.key_range,
            self.mix,
            self.distribution.label(),
            self.result.throughput_mops,
            self.result.reclaimer.retired,
            self.result.reclaimer.reclaimed,
            self.result.reclaimer.neutralized,
            self.result.pool.hit_rate_pct(),
            self.result.pool.pages_mapped,
        )
    }

    /// The table header matching [`Self::to_table_line`].
    pub fn table_header() -> String {
        let mut s = String::new();
        s.push_str("| structure | scheme     | memory       | thr | keyrange | mix      | dist     | Mops/s   | retired    | reclaimed  | neutr. | mag-hit | pages |\n");
        s.push_str("|-----------|------------|--------------|-----|----------|----------|----------|----------|------------|------------|--------|---------|-------|");
        s
    }
}

/// Runs `body` with a *laggard* thread registered next to it: an extra reclaimer
/// participant that holds operations open for `stall_ms`-long windows separated by
/// ~1ms quiescent gaps, responding to neutralization exactly like the DEBRA+
/// fault-tolerance tests' staller.  This is the forced-preemption knob of the
/// oversubscribed trial family — it reproduces the paper's Figure 9 regime (a
/// preempted reader stalls epoch advancement and limbo balloons) deterministically,
/// instead of hoping the OS scheduler preempts a worker mid-operation.
///
/// Under epoch schemes without neutralization (DEBRA, EBR, IBR) each stall window
/// blocks reclamation outright; DEBRA+ neutralizes the laggard and keeps reclaiming —
/// the differentiation the latency+limbo table exists to show.
fn with_laggard<T, R, P, A, O>(
    manager: &Arc<RecordManager<T, R, P, A>>,
    tid: usize,
    stall_ms: u64,
    body: impl FnOnce() -> O,
) -> O
where
    T: Send + 'static,
    R: Reclaimer<T>,
    P: Pool<T>,
    A: Allocator<T>,
{
    use std::sync::atomic::AtomicBool;
    let stop = AtomicBool::new(false);
    let ready = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // Register on the laggard thread itself (DEBRA+ binds its signal target to
            // the registering thread).  The slot `tid` is reserved for the laggard by
            // the dispatch macros; Domain auto-leasing skips already-registered slots.
            let mut laggard = manager.register(tid).expect("laggard thread slot");
            ready.store(true, Ordering::SeqCst);
            let stall = std::time::Duration::from_millis(stall_ms);
            while !stop.load(Ordering::Relaxed) {
                let _ = laggard.leave_qstate();
                let window = Instant::now();
                while window.elapsed() < stall && !stop.load(Ordering::Relaxed) {
                    if laggard.check().is_err() {
                        laggard.begin_recovery();
                        let _ = laggard.leave_qstate();
                    }
                    std::thread::yield_now();
                }
                laggard.enter_qstate();
                // A short quiescent gap between stall windows: a preempted reader does
                // eventually get scheduled, and the gap is what lets non-neutralizing
                // schemes reclaim *something* (so their rows show pressure, not OOM).
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        while !ready.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let out = body();
        stop.store(true, Ordering::SeqCst);
        out
        // scope joins the laggard here
    })
}

/// Runs one fully specified configuration and returns its row.  The memory configuration
/// (allocator + pool) comes from [`WorkloadConfig::allocator`].
///
/// Bag-shaped structures (queue, stack) are routed through the producer/consumer harness
/// with a symmetric scenario whose enqueue share is the mix's insert percentage
/// (normalized against the delete share; searches have no bag analogue) — so the map
/// sweeps' `(structure, mix)` vocabulary extends to bags without a second entry point.
pub fn run_config(
    structure: StructureKind,
    reclaimer: ReclaimerKind,
    cfg: &WorkloadConfig,
    seed: u64,
) -> ExperimentRow {
    let allocator = reclaimer.effective_allocator(cfg.allocator);
    if structure.is_bag() {
        let updates = (cfg.mix.insert_pct as u64 + cfg.mix.delete_pct as u64).max(1);
        let pc_cfg = PcConfig {
            threads: cfg.threads,
            scenario: PcScenario::Symmetric,
            enqueue_pct: (cfg.mix.insert_pct as u64 * 100 / updates) as u8,
            prefill: if cfg.prefill { cfg.key_range / 2 } else { 0 },
            duration_ms: cfg.duration_ms,
            allocator,
            latency: cfg.latency,
            laggard_stall_ms: cfg.laggard_stall_ms,
        };
        let row = run_pc_config(structure, reclaimer, &pc_cfg, seed);
        return ExperimentRow {
            structure,
            reclaimer,
            allocator,
            threads: cfg.threads,
            key_range: cfg.key_range,
            mix: row.mix,
            distribution: cfg.distribution,
            result: row.result.trial,
        };
    }
    // Sweeps print their tables only when complete; on a single-core box a full sweep
    // takes minutes, so narrate per-trial progress (with `i/N` and elapsed wall-clock)
    // to stderr (tables go to stdout).
    narrate_trial(format_args!(
        "{structure:?} x {reclaimer:?} x {allocator:?} (threads={}, keys={}, {}ms)",
        cfg.threads, cfg.key_range, cfg.duration_ms
    ));
    // The combinatorial instantiation of (structure × reclaimer × memory configuration) is
    // expanded by this macro: each arm builds the Record Manager with the right type
    // parameters (a one-line choice, which is the whole point of the abstraction) and runs
    // the shared harness.
    macro_rules! run {
        ($ds:ident, $node:ty, $recl:ty, $pool:ty, $alloc:ty) => {{
            // +1 slot for the prefill handle, +1 more for the laggard when pinned.
            let laggard = cfg.laggard_stall_ms > 0;
            let threads = cfg.threads + 1 + laggard as usize;
            let manager: Arc<RecordManager<$node, $recl, $pool, $alloc>> =
                Arc::new(RecordManager::new(threads));
            let map = $ds::new(Arc::clone(&manager));
            let trial = || {
                run_trial(
                    &map,
                    cfg,
                    seed,
                    || manager.reclaimer().stats(),
                    || {
                        (
                            manager.allocator().allocated_bytes(),
                            manager.allocator().allocated_records(),
                        )
                    },
                    || manager.pool().stats(),
                )
            };
            if laggard {
                with_laggard(&manager, threads - 1, cfg.laggard_stall_ms, trial)
            } else {
                trial()
            }
        }};
    }

    macro_rules! dispatch_structure {
        ($recl:ident, $pool:ident, $alloc:ident) => {
            match structure {
                StructureKind::Bst => run!(
                    ExternalBst,
                    BstNode<u64, u64>,
                    $recl<BstNode<u64, u64>>,
                    $pool<BstNode<u64, u64>>,
                    $alloc<BstNode<u64, u64>>
                ),
                StructureKind::SkipList => run!(
                    SkipList,
                    SkipNode<u64, u64>,
                    $recl<SkipNode<u64, u64>>,
                    $pool<SkipNode<u64, u64>>,
                    $alloc<SkipNode<u64, u64>>
                ),
                StructureKind::HashMap => run!(
                    LockFreeHashMap,
                    HashMapNode<u64, u64>,
                    $recl<HashMapNode<u64, u64>>,
                    $pool<HashMapNode<u64, u64>>,
                    $alloc<HashMapNode<u64, u64>>
                ),
                // Bags were routed to the producer/consumer harness above.
                StructureKind::Queue | StructureKind::Stack => unreachable!(
                    "bag structures run through run_pc_config (see the is_bag() branch)"
                ),
            }
        };
    }

    macro_rules! dispatch_memory {
        ($recl:ident) => {
            match allocator {
                AllocatorKind::BumpNoPool => dispatch_structure!($recl, NoPool, BumpAllocator),
                AllocatorKind::BumpWithPool => {
                    dispatch_structure!($recl, ThreadPool, BumpAllocator)
                }
                AllocatorKind::SystemWithPool => {
                    dispatch_structure!($recl, ThreadPool, SystemAllocator)
                }
                AllocatorKind::PagePool => dispatch_structure!($recl, PagePool, PageAllocator),
            }
        };
    }

    let result = match reclaimer {
        ReclaimerKind::None => dispatch_memory!(NoReclaim),
        ReclaimerKind::Debra => dispatch_memory!(Debra),
        ReclaimerKind::DebraPlus => dispatch_memory!(DebraPlus),
        ReclaimerKind::HazardPointers => dispatch_memory!(HazardPointers),
        ReclaimerKind::Ebr => dispatch_memory!(ClassicEbr),
        ReclaimerKind::ThreadScan => dispatch_memory!(ThreadScanLite),
        ReclaimerKind::Ibr => dispatch_memory!(Ibr),
        ReclaimerKind::Vbr => dispatch_memory!(Vbr),
    };

    ExperimentRow {
        structure,
        reclaimer,
        allocator,
        threads: cfg.threads,
        key_range: cfg.key_range,
        mix: cfg.mix.label(),
        distribution: cfg.distribution,
        result,
    }
}

/// One row of a producer/consumer experiment's output table: like [`ExperimentRow`] but
/// keeping the full [`PcTrialResult`] (pair rate, enqueue/dequeue/empty counts).
#[derive(Debug, Clone, PartialEq)]
pub struct PcRow {
    /// Data structure ([`StructureKind::Queue`] or [`StructureKind::Stack`]).
    pub structure: StructureKind,
    /// Reclamation scheme.
    pub reclaimer: ReclaimerKind,
    /// Memory configuration.
    pub allocator: AllocatorKind,
    /// Thread count.
    pub threads: usize,
    /// Scenario/mix label (e.g. `"50e-50d/sym"`, `"burst128"`).
    pub mix: String,
    /// Trial measurements.
    pub result: PcTrialResult,
}

impl PcRow {
    /// Formats the row for the producer/consumer tables.
    pub fn to_table_line(&self) -> String {
        format!(
            "| {:9} | {:10} | {:12} | {:3} | {:12} | {:8.3} | {:8.3} | {:10} | {:10} | {:10} | {:10} |",
            self.structure.name(),
            self.reclaimer.name(),
            self.allocator.name(),
            self.threads,
            self.mix,
            self.result.pair_rate_mpairs,
            self.result.trial.throughput_mops,
            self.result.enqueues,
            self.result.dequeues,
            self.result.empty_dequeues,
            self.result.trial.reclaimer.reclaimed,
        )
    }

    /// The table header matching [`Self::to_table_line`].
    pub fn table_header() -> String {
        let mut s = String::new();
        s.push_str("| structure | scheme     | memory       | thr | scenario     | Mpairs/s | Mops/s   | enqueues   | dequeues   | empty      | reclaimed  |\n");
        s.push_str("|-----------|------------|--------------|-----|--------------|----------|----------|------------|------------|------------|------------|");
        s
    }
}

/// Runs one fully specified producer/consumer configuration (queue or stack) and returns
/// its row.  This is the bag-shaped sibling of [`run_config`], with scenario control the
/// map-shaped entry point cannot express.  The memory configuration comes from
/// [`PcConfig::allocator`].
///
/// # Panics
///
/// Panics when `structure` is not a bag (use [`run_config`] for maps).
pub fn run_pc_config(
    structure: StructureKind,
    reclaimer: ReclaimerKind,
    cfg: &PcConfig,
    seed: u64,
) -> PcRow {
    let allocator = reclaimer.effective_allocator(cfg.allocator);
    assert!(structure.is_bag(), "run_pc_config drives bag structures (Queue, Stack)");
    narrate_trial(format_args!(
        "{structure:?} x {reclaimer:?} x {allocator:?} (threads={}, {}, {}ms)",
        cfg.threads,
        cfg.label(),
        cfg.duration_ms
    ));
    macro_rules! run_bag {
        ($ds:ident, $node:ty, $recl:ty, $pool:ty, $alloc:ty) => {{
            // +1 slot for the prefill handle, +1 more for the laggard when pinned.
            let laggard = cfg.laggard_stall_ms > 0;
            let threads = cfg.threads + 1 + laggard as usize;
            let manager: Arc<RecordManager<$node, $recl, $pool, $alloc>> =
                Arc::new(RecordManager::new(threads));
            let bag = $ds::new(Arc::clone(&manager));
            let trial = || {
                run_pc_trial(
                    &bag,
                    cfg,
                    seed,
                    || manager.reclaimer().stats(),
                    || {
                        (
                            manager.allocator().allocated_bytes(),
                            manager.allocator().allocated_records(),
                        )
                    },
                    || manager.pool().stats(),
                )
            };
            if laggard {
                with_laggard(&manager, threads - 1, cfg.laggard_stall_ms, trial)
            } else {
                trial()
            }
        }};
    }

    macro_rules! dispatch_bag_structure {
        ($recl:ident, $pool:ident, $alloc:ident) => {
            match structure {
                StructureKind::Queue => run_bag!(
                    MsQueue,
                    QueueNode<u64>,
                    $recl<QueueNode<u64>>,
                    $pool<QueueNode<u64>>,
                    $alloc<QueueNode<u64>>
                ),
                StructureKind::Stack => run_bag!(
                    TreiberStack,
                    StackNode<u64>,
                    $recl<StackNode<u64>>,
                    $pool<StackNode<u64>>,
                    $alloc<StackNode<u64>>
                ),
                _ => unreachable!("asserted bag-shaped above"),
            }
        };
    }

    macro_rules! dispatch_bag_memory {
        ($recl:ident) => {
            match allocator {
                AllocatorKind::BumpNoPool => dispatch_bag_structure!($recl, NoPool, BumpAllocator),
                AllocatorKind::BumpWithPool => {
                    dispatch_bag_structure!($recl, ThreadPool, BumpAllocator)
                }
                AllocatorKind::SystemWithPool => {
                    dispatch_bag_structure!($recl, ThreadPool, SystemAllocator)
                }
                AllocatorKind::PagePool => {
                    dispatch_bag_structure!($recl, PagePool, PageAllocator)
                }
            }
        };
    }

    let result = match reclaimer {
        ReclaimerKind::None => dispatch_bag_memory!(NoReclaim),
        ReclaimerKind::Debra => dispatch_bag_memory!(Debra),
        ReclaimerKind::DebraPlus => dispatch_bag_memory!(DebraPlus),
        ReclaimerKind::HazardPointers => dispatch_bag_memory!(HazardPointers),
        ReclaimerKind::Ebr => dispatch_bag_memory!(ClassicEbr),
        ReclaimerKind::ThreadScan => dispatch_bag_memory!(ThreadScanLite),
        ReclaimerKind::Ibr => dispatch_bag_memory!(Ibr),
        ReclaimerKind::Vbr => dispatch_bag_memory!(Vbr),
    };

    PcRow { structure, reclaimer, allocator, threads: cfg.threads, mix: cfg.label(), result }
}

/// The producer/consumer experiment (not in the paper — the paper's evaluation is
/// entirely map-shaped): queue and stack under every scheme, symmetric (pairwise
/// 50e-50d) and bursty-producer scenarios, bump allocator + pool.  Every successful
/// dequeue retires a record, so limbo pressure here is proportional to raw throughput —
/// the worst-case garbage regime, which no operation mix on a map reaches.
pub fn experiment_producer_consumer(thread_counts: &[usize], duration_ms: u64) -> Vec<PcRow> {
    let allocator = allocator_from_env(AllocatorKind::BumpWithPool);
    announce_trials(2 * 2 * thread_counts.len() as u64 * ReclaimerKind::ALL.len() as u64);
    let mut rows = Vec::new();
    for structure in [StructureKind::Queue, StructureKind::Stack] {
        for scenario in [PcScenario::Symmetric, PcScenario::BurstyProducer { burst: 128 }] {
            for &threads in thread_counts {
                for reclaimer in ReclaimerKind::ALL {
                    let cfg = PcConfig {
                        threads,
                        scenario,
                        enqueue_pct: 50,
                        prefill: 256,
                        duration_ms,
                        allocator,
                        latency: false,
                        laggard_stall_ms: 0,
                    };
                    rows.push(run_pc_config(structure, reclaimer, &cfg, 0xBA6));
                }
            }
        }
    }
    rows
}

/// Prints a set of producer/consumer rows as a markdown table.
pub fn print_pc_rows(title: &str, rows: &[PcRow]) {
    println!("\n### {title}\n");
    println!("{}", PcRow::table_header());
    for row in rows {
        println!("{}", row.to_table_line());
    }
}

/// The grid of workload shapes used by the paper's figures (two operation mixes × the
/// per-structure key ranges).
pub fn paper_workloads(
    structure: StructureKind,
    small_keyranges: bool,
) -> Vec<(u64, OperationMix)> {
    let ranges: Vec<u64> = match (structure, small_keyranges) {
        (StructureKind::Bst, false) => vec![10_000, 1_000_000],
        (StructureKind::Bst, true) => vec![1_024, 16_384],
        (StructureKind::SkipList, false) => vec![200_000],
        (StructureKind::SkipList, true) => vec![4_096],
        // Not in the paper; sized so the fixed 256-bucket table sees real chains.
        (StructureKind::HashMap, false) => vec![100_000],
        (StructureKind::HashMap, true) => vec![4_096],
        // Bags have no key range; the value doubles as the prefill budget (half of it
        // is pushed before timing, mirroring the map harness's half-range prefill).
        (StructureKind::Queue | StructureKind::Stack, false) => vec![4_096],
        (StructureKind::Queue | StructureKind::Stack, true) => vec![512],
    };
    let mut out = Vec::new();
    for r in ranges {
        out.push((r, OperationMix::UPDATE_HEAVY));
        out.push((r, OperationMix::MIXED));
    }
    out
}

fn sweep(
    structures: &[StructureKind],
    reclaimers: &[ReclaimerKind],
    allocator: AllocatorKind,
    thread_counts: &[usize],
    duration_ms: u64,
    small_keyranges: bool,
) -> Vec<ExperimentRow> {
    let workloads: u64 =
        structures.iter().map(|&s| paper_workloads(s, small_keyranges).len() as u64).sum();
    announce_trials(workloads * thread_counts.len() as u64 * reclaimers.len() as u64);
    let mut rows = Vec::new();
    for &structure in structures {
        for (key_range, mix) in paper_workloads(structure, small_keyranges) {
            for &threads in thread_counts {
                for &reclaimer in reclaimers {
                    let cfg = WorkloadConfig {
                        threads,
                        key_range,
                        mix,
                        distribution: KeyDistribution::Uniform,
                        duration_ms,
                        prefill: true,
                        allocator,
                        latency: false,
                        laggard_stall_ms: 0,
                    };
                    rows.push(run_config(structure, reclaimer, &cfg, 0xDEB2A));
                }
            }
        }
    }
    rows
}

/// Experiment 1 (Figure 8, left): overhead of reclamation — bump allocator, no pool.
pub fn experiment1(thread_counts: &[usize], duration_ms: u64, small: bool) -> Vec<ExperimentRow> {
    sweep(
        &[StructureKind::Bst, StructureKind::SkipList, StructureKind::HashMap],
        &ReclaimerKind::ALL,
        allocator_from_env(AllocatorKind::BumpNoPool),
        thread_counts,
        duration_ms,
        small,
    )
}

/// Experiment 2 (Figure 8, right): records are actually recycled — bump allocator + pool.
pub fn experiment2(thread_counts: &[usize], duration_ms: u64, small: bool) -> Vec<ExperimentRow> {
    sweep(
        &[StructureKind::Bst, StructureKind::SkipList, StructureKind::HashMap],
        &ReclaimerKind::ALL,
        allocator_from_env(AllocatorKind::BumpWithPool),
        thread_counts,
        duration_ms,
        small,
    )
}

/// Experiment 2 with more threads than cores (Figure 9, left — the paper's 64-thread
/// Oracle T4-1 run): exposes the oversubscription cliff that DEBRA+ fixes.
pub fn experiment2_oversubscribed(duration_ms: u64, small: bool) -> Vec<ExperimentRow> {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let counts = [cores, cores * 2, cores * 4];
    sweep(
        &[StructureKind::Bst],
        &ReclaimerKind::ALL,
        allocator_from_env(AllocatorKind::BumpWithPool),
        &counts,
        duration_ms,
        small,
    )
}

/// Experiment 3 (Figure 10): the system allocator replaces the bump allocator.
pub fn experiment3(thread_counts: &[usize], duration_ms: u64, small: bool) -> Vec<ExperimentRow> {
    sweep(
        &[StructureKind::Bst, StructureKind::SkipList, StructureKind::HashMap],
        &ReclaimerKind::ALL,
        allocator_from_env(AllocatorKind::SystemWithPool),
        thread_counts,
        duration_ms,
        small,
    )
}

/// The key-distribution experiment (not in the paper): hash map and BST, every scheme,
/// uniform vs. Zipfian keys.  Under the hot-key regime most operations funnel into a few
/// bucket chains / tree paths, so retired-but-unreclaimable records concentrate exactly
/// where every thread is traversing — the scenario where reclamation schemes separate.
pub fn experiment_distribution(
    thread_counts: &[usize],
    duration_ms: u64,
    small: bool,
) -> Vec<ExperimentRow> {
    let allocator = allocator_from_env(AllocatorKind::BumpWithPool);
    announce_trials(2 * 2 * thread_counts.len() as u64 * ReclaimerKind::ALL.len() as u64);
    let mut rows = Vec::new();
    for structure in [StructureKind::HashMap, StructureKind::Bst] {
        let key_range = match (structure, small) {
            (StructureKind::HashMap, true) => 4_096,
            (StructureKind::HashMap, false) => 100_000,
            (_, true) => 1_024,
            (_, false) => 10_000,
        };
        for distribution in [KeyDistribution::Uniform, KeyDistribution::ZIPF_DEFAULT] {
            for &threads in thread_counts {
                for reclaimer in ReclaimerKind::ALL {
                    let cfg = WorkloadConfig {
                        threads,
                        key_range,
                        mix: OperationMix::UPDATE_HEAVY,
                        distribution,
                        duration_ms,
                        prefill: true,
                        allocator,
                        latency: false,
                        laggard_stall_ms: 0,
                    };
                    rows.push(run_config(structure, reclaimer, &cfg, 0x21BF));
                }
            }
        }
    }
    rows
}

/// The memory-footprint experiment (Figure 9, right): BST, key range 10⁴ (paper value) or
/// smaller, 50i-50d, bump allocator + pool; the metric is total bytes allocated for
/// records, swept over thread counts including oversubscription.
pub fn memory_footprint(duration_ms: u64, small: bool) -> Vec<ExperimentRow> {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let counts = [1, cores.max(2), cores * 2, cores * 4];
    let key_range = if small { 1_024 } else { 10_000 };
    let allocator = allocator_from_env(AllocatorKind::BumpWithPool);
    announce_trials(counts.len() as u64 * 4);
    let mut rows = Vec::new();
    for &threads in &counts {
        for reclaimer in [
            ReclaimerKind::None,
            ReclaimerKind::Debra,
            ReclaimerKind::DebraPlus,
            ReclaimerKind::HazardPointers,
        ] {
            let cfg = WorkloadConfig {
                threads,
                key_range,
                mix: OperationMix::UPDATE_HEAVY,
                distribution: KeyDistribution::Uniform,
                duration_ms,
                prefill: true,
                allocator,
                latency: false,
                laggard_stall_ms: 0,
            };
            rows.push(run_config(StructureKind::Bst, reclaimer, &cfg, 7));
        }
    }
    rows
}

/// Prints a set of rows as a markdown table (the format used in `EXPERIMENTS.md`).
pub fn print_rows(title: &str, rows: &[ExperimentRow]) {
    println!("\n### {title}\n");
    println!("{}", ExperimentRow::table_header());
    for row in rows {
        println!("{}", row.to_table_line());
    }
}

/// Computes the headline comparison of the paper's abstract: DEBRA / DEBRA+ overhead
/// relative to no reclamation, and speedup over hazard pointers, averaged over a set of
/// rows that differ only in the reclaimer.
pub fn summarize(rows: &[ExperimentRow]) -> Vec<String> {
    use std::collections::HashMap;
    /// Everything that identifies a configuration except the reclaimer.
    type ConfigKey = (StructureKind, AllocatorKind, usize, u64, String, String);
    // Group by everything except the reclaimer.
    let mut groups: HashMap<ConfigKey, HashMap<ReclaimerKind, f64>> = HashMap::new();
    for r in rows {
        groups
            .entry((
                r.structure,
                r.allocator,
                r.threads,
                r.key_range,
                r.mix.clone(),
                r.distribution.label(),
            ))
            .or_default()
            .insert(r.reclaimer, r.result.throughput_mops);
    }
    let mut debra_vs_none = Vec::new();
    let mut debra_plus_vs_none = Vec::new();
    let mut debra_vs_hp = Vec::new();
    let mut debra_plus_vs_hp = Vec::new();
    let mut ibr_vs_none = Vec::new();
    let mut ibr_vs_hp = Vec::new();
    for (_, by_scheme) in groups {
        if let (Some(&none), Some(&debra)) =
            (by_scheme.get(&ReclaimerKind::None), by_scheme.get(&ReclaimerKind::Debra))
        {
            debra_vs_none.push(debra / none);
        }
        if let (Some(&none), Some(&dp)) =
            (by_scheme.get(&ReclaimerKind::None), by_scheme.get(&ReclaimerKind::DebraPlus))
        {
            debra_plus_vs_none.push(dp / none);
        }
        if let (Some(&hp), Some(&debra)) =
            (by_scheme.get(&ReclaimerKind::HazardPointers), by_scheme.get(&ReclaimerKind::Debra))
        {
            debra_vs_hp.push(debra / hp);
        }
        if let (Some(&hp), Some(&dp)) = (
            by_scheme.get(&ReclaimerKind::HazardPointers),
            by_scheme.get(&ReclaimerKind::DebraPlus),
        ) {
            debra_plus_vs_hp.push(dp / hp);
        }
        if let (Some(&none), Some(&ibr)) =
            (by_scheme.get(&ReclaimerKind::None), by_scheme.get(&ReclaimerKind::Ibr))
        {
            ibr_vs_none.push(ibr / none);
        }
        if let (Some(&hp), Some(&ibr)) =
            (by_scheme.get(&ReclaimerKind::HazardPointers), by_scheme.get(&ReclaimerKind::Ibr))
        {
            ibr_vs_hp.push(ibr / hp);
        }
    }
    // VBR runs only on the page pool (other allocators are coerced at dispatch), so its
    // rows sit in different allocator groups than the scheme it is measured against;
    // compare it across a second grouping that ignores the memory configuration.
    type MixKey = (StructureKind, usize, u64, String, String);
    let mut mix_groups: HashMap<MixKey, HashMap<ReclaimerKind, f64>> = HashMap::new();
    for r in rows {
        mix_groups
            .entry((r.structure, r.threads, r.key_range, r.mix.clone(), r.distribution.label()))
            .or_default()
            .insert(r.reclaimer, r.result.throughput_mops);
    }
    let mut vbr_vs_none = Vec::new();
    let mut vbr_vs_ebr = Vec::new();
    for (_, by_scheme) in mix_groups {
        if let (Some(&none), Some(&vbr)) =
            (by_scheme.get(&ReclaimerKind::None), by_scheme.get(&ReclaimerKind::Vbr))
        {
            vbr_vs_none.push(vbr / none);
        }
        if let (Some(&ebr), Some(&vbr)) =
            (by_scheme.get(&ReclaimerKind::Ebr), by_scheme.get(&ReclaimerKind::Vbr))
        {
            vbr_vs_ebr.push(vbr / ebr);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut pool = PoolStats::default();
    for r in rows {
        pool.merge(&r.result.pool);
    }
    vec![
        format!(
            "DEBRA throughput relative to None (paper: ~0.88–0.96x): {:.2}x",
            avg(&debra_vs_none)
        ),
        format!(
            "DEBRA+ throughput relative to None (paper: ~0.83–0.90x): {:.2}x",
            avg(&debra_plus_vs_none)
        ),
        format!("DEBRA speedup over HP (paper: ~1.75–1.94x): {:.2}x", avg(&debra_vs_hp)),
        format!("DEBRA+ speedup over HP (paper: ~1.70–1.83x): {:.2}x", avg(&debra_plus_vs_hp)),
        format!("IBR throughput relative to None (not in the paper): {:.2}x", avg(&ibr_vs_none)),
        format!("IBR relative to HP (not in the paper): {:.2}x", avg(&ibr_vs_hp)),
        format!("VBR throughput relative to None (not in the paper): {:.2}x", avg(&vbr_vs_none)),
        format!("VBR relative to EBR (not in the paper): {:.2}x", avg(&vbr_vs_ebr)),
        format!(
            "Allocation pipeline: {:.1}% magazine hit rate ({} hits / {} misses), {} pages mapped, {} slots live, {} slots free",
            pool.hit_rate_pct(),
            pool.magazine_hits,
            pool.magazine_misses,
            pool.pages_mapped,
            pool.slots_live,
            pool.slots_free,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_config_smoke_every_reclaimer_on_bst() {
        for reclaimer in ReclaimerKind::ALL {
            let cfg = WorkloadConfig {
                threads: 2,
                key_range: 128,
                mix: OperationMix::UPDATE_HEAVY,
                distribution: KeyDistribution::Uniform,
                duration_ms: 20,
                prefill: true,
                allocator: AllocatorKind::BumpWithPool,
                latency: false,
                laggard_stall_ms: 0,
            };
            let row = run_config(StructureKind::Bst, reclaimer, &cfg, 1);
            assert!(row.result.operations > 0, "{reclaimer:?} produced no operations");
            if reclaimer != ReclaimerKind::None {
                assert!(row.result.reclaimer.retired > 0);
            }
        }
    }

    #[test]
    fn run_config_smoke_every_reclaimer_on_hashmap_both_distributions() {
        for distribution in [KeyDistribution::Uniform, KeyDistribution::ZIPF_DEFAULT] {
            for reclaimer in ReclaimerKind::ALL {
                let cfg = WorkloadConfig {
                    threads: 2,
                    key_range: 128,
                    mix: OperationMix::UPDATE_HEAVY,
                    distribution,
                    duration_ms: 20,
                    prefill: true,
                    allocator: AllocatorKind::BumpWithPool,
                    latency: false,
                    laggard_stall_ms: 0,
                };
                let row = run_config(StructureKind::HashMap, reclaimer, &cfg, 1);
                assert!(
                    row.result.operations > 0,
                    "{reclaimer:?}/{distribution:?} produced no operations"
                );
                if reclaimer != ReclaimerKind::None {
                    assert!(row.result.reclaimer.retired > 0, "{reclaimer:?}/{distribution:?}");
                }
            }
        }
    }

    #[test]
    fn run_config_smoke_skiplist_and_memory_configs() {
        for allocator in
            [AllocatorKind::BumpNoPool, AllocatorKind::SystemWithPool, AllocatorKind::PagePool]
        {
            let cfg = WorkloadConfig {
                threads: 2,
                key_range: 128,
                mix: OperationMix::MIXED,
                distribution: KeyDistribution::Uniform,
                duration_ms: 20,
                prefill: true,
                allocator,
                latency: false,
                laggard_stall_ms: 0,
            };
            let row = run_config(StructureKind::SkipList, ReclaimerKind::Debra, &cfg, 3);
            assert!(row.result.operations > 0);
            assert!(row.result.allocated_records > 0);
            if allocator == AllocatorKind::PagePool {
                assert!(row.result.pool.pages_mapped > 0, "pagepool rows must map pages");
            }
        }
    }

    #[test]
    fn run_pc_config_smoke_queue_and_stack() {
        for structure in [StructureKind::Queue, StructureKind::Stack] {
            for scenario in [PcScenario::Symmetric, PcScenario::BurstyProducer { burst: 32 }] {
                let cfg = PcConfig {
                    threads: 2,
                    scenario,
                    enqueue_pct: 50,
                    prefill: 64,
                    duration_ms: 20,
                    allocator: AllocatorKind::BumpWithPool,
                    latency: false,
                    laggard_stall_ms: 0,
                };
                let row = run_pc_config(structure, ReclaimerKind::Debra, &cfg, 9);
                assert!(row.result.enqueues > 0, "{structure:?}/{scenario:?} enqueued nothing");
                assert!(row.result.dequeues > 0, "{structure:?}/{scenario:?} dequeued nothing");
                assert!(
                    row.result.trial.reclaimer.retired > 0,
                    "every successful dequeue must retire"
                );
            }
        }
    }

    #[test]
    fn run_config_routes_bags_through_the_pc_harness() {
        let cfg = WorkloadConfig {
            threads: 2,
            key_range: 128,
            mix: OperationMix::UPDATE_HEAVY,
            distribution: KeyDistribution::Uniform,
            duration_ms: 20,
            prefill: true,
            allocator: AllocatorKind::BumpWithPool,
            latency: false,
            laggard_stall_ms: 0,
        };
        let row = run_config(StructureKind::Queue, ReclaimerKind::Ebr, &cfg, 4);
        assert!(row.result.operations > 0);
        assert_eq!(row.mix, "50e-50d/sym", "the map mix maps onto the symmetric scenario");
        assert!(row.result.reclaimer.retired > 0);
    }

    #[test]
    fn summary_produces_four_lines() {
        let mut rows = Vec::new();
        for reclaimer in ReclaimerKind::ALL {
            let cfg = WorkloadConfig {
                threads: 2,
                key_range: 64,
                mix: OperationMix::UPDATE_HEAVY,
                distribution: KeyDistribution::Uniform,
                duration_ms: 15,
                prefill: true,
                allocator: AllocatorKind::BumpWithPool,
                latency: false,
                laggard_stall_ms: 0,
            };
            rows.push(run_config(StructureKind::Bst, reclaimer, &cfg, 5));
        }
        let summary = summarize(&rows);
        assert_eq!(summary.len(), 9);
        assert!(summary[0].contains("DEBRA"));
        assert!(summary.iter().any(|l| l.contains("IBR")));
        assert!(summary.iter().any(|l| l.contains("VBR relative to EBR")));
        assert!(summary[8].contains("Allocation pipeline"));
    }
}

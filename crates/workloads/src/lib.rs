//! Workload generation, throughput harness and experiment drivers reproducing the paper's
//! evaluation (Section 7).
//!
//! The harness mirrors the paper's methodology: a data structure is prefilled to half its
//! key range, then `n` threads perform random operations drawn from an operation mix
//! (e.g. 50% insert / 50% delete, or 25/25/50 with searches) on uniformly random keys for a
//! fixed duration; the metric is throughput in million operations per second, plus the
//! total memory allocated for records (the paper's Figure 9 right) and the reclaimer
//! statistics (records retired / reclaimed / pending, epoch advances, neutralizations).
//!
//! * [`workload`] — operation mixes, key ranges and the per-thread operation generator.
//! * [`harness`] — the generic timed-trial driver over any [`lockfree_ds::ConcurrentMap`].
//! * [`pc`] — the producer/consumer trial family over any [`lockfree_ds::ConcurrentBag`]
//!   (queue, stack): symmetric and bursty-producer scenarios, pair-rate metric.
//! * [`experiments`] — one driver per paper experiment (Experiment 1, 2, 2-oversubscribed,
//!   3, the memory-footprint figure and the headline summary), each parameterized over
//!   data structure × reclaimer × pool × allocator.
//! * [`figure2`] — regenerates the qualitative scheme-comparison table (paper, Figure 2)
//!   from the `SchemeProperties` reported by every implemented reclaimer.
//! * [`oversub`] — the oversubscribed latency / bounded-memory family (`-- oversub`):
//!   recording-overhead twins, 4×-cores thread counts with a pinned laggard, per-scheme
//!   tail latency + limbo watermarks, `BENCH_latency.json`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod figure2;
pub mod harness;
pub mod oversub;
pub mod pc;
#[cfg(feature = "smr_sanitize")]
pub mod sanitize;
pub mod workload;

pub use experiments::{
    allocator_from_env, AllocatorKind, ExperimentRow, ReclaimerKind, StructureKind,
};
pub use harness::{run_trial, BenchHandle, TrialResult};
pub use pc::{run_pc_trial, BagBenchHandle, PcConfig, PcScenario, PcTrialResult};
pub use workload::{KeyDistribution, OperationMix, WorkloadConfig};

//! `experiments -- sanitize`: the paper's workloads run under the `smr-check`
//! pointer-race sanitizer (the dynamic half of the correctness tooling; the static half
//! is `tools/smr-lint`).
//!
//! This is not a performance family — the shadow table serializes every lifecycle event
//! behind a global lock — so it runs a *short* sweep: every reclamation scheme over the
//! keyed structures plus the queue/stack pair, then prints the sanitizer's report
//! (per-kind violation counts and the teardown leak gauge).  CI's nightly deep-stress
//! job tees this output into an artifact; any non-zero count is a protocol violation
//! that the regular (unsanitized) stress runs could only surface as a crash or silent
//! corruption.
//!
//! Only compiled with `--features smr_sanitize`; the subcommand reports its absence
//! otherwise.

use smr_check::{count, leaked_records, total_violations, ViolationKind};

use crate::experiments::{allocator_from_env, run_config, ReclaimerKind, StructureKind};
use crate::workload::{KeyDistribution, OperationMix, WorkloadConfig};
use crate::AllocatorKind;

/// Violation kinds enumerated for the report, in severity order.
const KINDS: [ViolationKind; 13] = [
    ViolationKind::UseAfterFree,
    ViolationKind::DerefRetiredUnprotected,
    ViolationKind::DerefRetiredStale,
    ViolationKind::DerefOutsideOperation,
    ViolationKind::DoubleRetire,
    ViolationKind::RetireUnpublished,
    ViolationKind::RetireAfterFree,
    ViolationKind::FreeUnretired,
    ViolationKind::DoubleFree,
    ViolationKind::FreeWhileProtected,
    ViolationKind::AllocOverLive,
    ViolationKind::PublishAfterRetire,
    ViolationKind::TypeMismatch,
];

/// Runs the sanitized sweep and prints the violation report.  Returns the total number
/// of violations observed (the binary turns a non-zero total into a failing exit code).
pub fn run_sanitized_sweep(duration_ms: u64, threads: usize) -> u64 {
    let before = total_violations();
    let structures = [
        StructureKind::Bst,
        StructureKind::SkipList,
        StructureKind::HashMap,
        StructureKind::Queue,
        StructureKind::Stack,
    ];
    let trials = structures.len() * ReclaimerKind::ALL.len();
    println!(
        "\n### Sanitized sweep — {trials} trials ({} structures x {} schemes, \
         {threads} threads, {duration_ms} ms each)\n",
        structures.len(),
        ReclaimerKind::ALL.len(),
    );
    let cfg = WorkloadConfig {
        threads,
        key_range: 256,
        mix: OperationMix::UPDATE_HEAVY,
        distribution: KeyDistribution::Uniform,
        duration_ms,
        prefill: true,
        allocator: allocator_from_env(AllocatorKind::BumpWithPool),
        latency: false,
        laggard_stall_ms: 0,
    };
    let mut seed = 1;
    for structure in structures {
        for reclaimer in ReclaimerKind::ALL {
            let trial_before = total_violations();
            let row = run_config(structure, reclaimer, &cfg, seed);
            seed += 1;
            let trial_delta = total_violations() - trial_before;
            println!(
                "  {:<9} {:<14} {:>12} ops, {}",
                format!("{:?}", row.structure),
                format!("{:?}", row.reclaimer),
                row.result.operations,
                if trial_delta == 0 {
                    "clean".to_string()
                } else {
                    format!("{trial_delta} violation(s)")
                }
            );
        }
    }
    let delta = total_violations() - before;
    println!("\n### Sanitizer report\n");
    for kind in KINDS {
        let n = count(kind);
        if n > 0 {
            println!("  {:<26} {n}", kind.name());
        }
    }
    println!("  {:<26} {delta}", "violations (this sweep)");
    println!("  {:<26} {}", "leaked records (teardown)", leaked_records());
    println!("  (the None scheme never frees retired records, so its trials fill the leak gauge by design)");
    if delta == 0 {
        println!("\n  clean: no protocol violations under any scheme");
    }
    delta
}

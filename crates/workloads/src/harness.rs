//! The generic timed-trial driver.
//!
//! The driver is split in two layers on purpose:
//!
//! * [`run_trial`] — the public, generic entry point, parameterized by the concrete map
//!   type.  It is a thin adapter: a handful of `#[inline]` wrapper calls per combination.
//! * `run_trial_erased` — the actual trial body (prefill, thread spawning, timing,
//!   operation loop), which works through the object-safe [`BenchHandle`] and therefore
//!   **compiles exactly once** instead of once per (structure × reclaimer × pool ×
//!   allocator) combination.  With 3 structures × 7 schemes × 3 memory configurations the
//!   experiment dispatch macro expands to 63 combinations; duplicating the trial body into
//!   each of them was pure compile-time waste (measured: ~14% of the crate's rebuild).
//!
//! The per-operation virtual call this introduces is one predictable indirect branch per
//! map operation (each of which is itself tens to hundreds of instructions plus cache
//! misses); the map operations themselves stay fully monomorphized.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use debra::{PoolStats, ReclaimerStats};
use lockfree_ds::ConcurrentMap;
use smr_obs::{Clock, LatencyHistogram, LatencyReport, SampleRing, MAX_OP_KINDS};

use crate::workload::{Operation, OperationGenerator, WorkloadConfig};

/// Per-(thread × operation kind) reservoir capacity.  4096 × 8 bytes × 3 kinds = 96KB
/// per worker, allocated before the start gate; the timed loop never allocates.
pub(crate) const RING_CAPACITY: usize = 4096;

/// Operation-sampling stride (power of two): each worker times one in every
/// `SAMPLE_STRIDE` operations.  Timing *every* operation costs two `RDTSC` reads plus a
/// ring write per op — on 100ns operations that alone is 20–40% overhead, which would
/// make the recorded distribution a measurement of the measurement.  A fixed stride
/// amortizes the cost ~64× (the on/off twin rows in `BENCH_latency.json` verify the
/// residual) while still collecting thousands of samples per trial; the choice of which
/// operation to time is independent of the operation itself, so the sampled
/// distribution is unbiased.
pub(crate) const SAMPLE_STRIDE: u64 = 64;

/// A worker's recording state: one pre-allocated reservoir per operation kind, filled
/// with raw clock ticks during the timed loop and drained into nanosecond histograms
/// after the stop flag.  See the `smr-obs` crate docs for the recording discipline.
pub(crate) struct ThreadRecorder {
    clock: Clock,
    rings: [SampleRing; MAX_OP_KINDS],
}

impl ThreadRecorder {
    pub(crate) fn new(clock: Clock, seed: u64, tid: usize) -> Self {
        let mk = |kind: u64| {
            SampleRing::new(
                RING_CAPACITY,
                seed ^ (tid as u64).wrapping_mul(0xA24B_AED4_963E_E407) ^ kind,
            )
        };
        ThreadRecorder { clock, rings: [mk(1), mk(2), mk(3)] }
    }

    /// Reads the raw clock (timed loop; no allocation/locks).
    #[inline(always)]
    pub(crate) fn now(&self) -> u64 {
        self.clock.raw()
    }

    /// Records one operation of `kind` that started at raw timestamp `t0`.
    #[inline(always)]
    pub(crate) fn record(&self, kind: usize, t0: u64) {
        self.rings[kind].record(self.now().wrapping_sub(t0));
    }

    /// Drains the reservoirs into the shared per-kind histograms (after the stop flag;
    /// the one lock in the pipeline, taken once per worker per trial).
    pub(crate) fn drain_into(&self, merged: &Mutex<[LatencyHistogram; MAX_OP_KINDS]>) {
        let mut hists = merged.lock().expect("latency histograms poisoned");
        for (kind, ring) in self.rings.iter().enumerate() {
            for raw in ring.samples() {
                hists[kind].record(self.clock.delta_to_ns(raw));
            }
        }
    }
}

/// Builds the trial-level [`LatencyReport`] from the merged per-kind histograms.
pub(crate) fn report_from(merged: Mutex<[LatencyHistogram; MAX_OP_KINDS]>) -> LatencyReport {
    let hists = merged.into_inner().expect("latency histograms poisoned");
    let mut all = LatencyHistogram::new();
    let mut per_kind = [smr_obs::LatencySummary::default(); MAX_OP_KINDS];
    for (kind, h) in hists.iter().enumerate() {
        per_kind[kind] = h.summary();
        all.merge(h);
    }
    LatencyReport { enabled: true, per_kind, all: all.summary() }
}

/// The outcome of one timed trial, in the units the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrialResult {
    /// Total completed operations.
    pub operations: u64,
    /// Throughput in million operations per second (the y-axis of Figures 8–10).
    pub throughput_mops: f64,
    /// Wall-clock duration of the timed phase.
    pub duration_secs: f64,
    /// Reclaimer statistics at the end of the trial.
    pub reclaimer: ReclaimerStats,
    /// Total bytes of record memory requested from the allocator (bump-pointer distance;
    /// the metric of Figure 9 right).
    pub allocated_bytes: u64,
    /// Total records requested from the allocator.
    pub allocated_records: u64,
    /// Allocation-pipeline statistics (magazine hits/misses, page store gauges) at the
    /// end of the trial; all-zero for pools that keep no counters.
    pub pool: PoolStats,
    /// Sampled per-operation latency quantiles (all-zero with `enabled == false` when
    /// the trial ran with [`WorkloadConfig::latency`] off).  Map kinds: 0 = insert,
    /// 1 = delete, 2 = search.  Bag kinds: 0 = enqueue, 1 = dequeue, 2 = empty dequeue.
    pub latency: LatencyReport,
}

/// Object-safe per-thread view of a map under test: one registered worker handle bound to
/// its map.  This is what lets the trial body be compiled once for every combination of
/// the dispatch macro (see the module docs).
pub trait BenchHandle {
    /// Inserts `key -> value`; returns `true` if the key was not present.
    fn insert(&mut self, key: u64, value: u64) -> bool;
    /// Removes `key`; returns `true` if it was present.
    fn remove(&mut self, key: u64) -> bool;
    /// Returns `true` if `key` is present.
    fn contains(&mut self, key: u64) -> bool;
}

/// The blanket [`BenchHandle`] adapter: a map reference plus its registered handle.
struct MapHandle<'m, M: ConcurrentMap<u64, u64>> {
    map: &'m M,
    handle: M::Handle,
}

impl<'m, M: ConcurrentMap<u64, u64>> BenchHandle for MapHandle<'m, M> {
    #[inline]
    fn insert(&mut self, key: u64, value: u64) -> bool {
        self.map.insert(&mut self.handle, key, value)
    }

    #[inline]
    fn remove(&mut self, key: u64) -> bool {
        self.map.remove(&mut self.handle, &key)
    }

    #[inline]
    fn contains(&mut self, key: u64) -> bool {
        self.map.contains(&mut self.handle, &key)
    }
}

/// Runs one timed trial of `cfg` against `map`, following the paper's methodology
/// (optional prefill to half the key range, then timed random operations on every thread).
///
/// `reclaimer_stats` and `allocator_stats` are read at the end of the trial; they are
/// closures so the harness stays independent of the concrete Record Manager composition.
pub fn run_trial<'m, M>(
    map: &'m M,
    cfg: &WorkloadConfig,
    seed: u64,
    reclaimer_stats: impl Fn() -> ReclaimerStats,
    allocator_stats: impl Fn() -> (u64, u64),
    pool_stats: impl Fn() -> PoolStats,
) -> TrialResult
where
    M: ConcurrentMap<u64, u64>,
    M::Handle: 'm,
{
    // Everything below this adapter is monomorphization-free (see the module docs).
    // The `tid` parameter only seeds each worker's operation generator; thread slots are
    // leased automatically through each structure's `Domain`.
    let factory = |_tid: usize| -> Box<dyn BenchHandle + 'm> {
        Box::new(MapHandle { map, handle: map.register().expect("register worker thread") })
    };
    run_trial_erased(&factory, cfg, seed, &reclaimer_stats, &allocator_stats, &pool_stats)
}

/// The type-erased trial body; compiled once (see the module docs for why).
fn run_trial_erased<'m>(
    factory: &(dyn Fn(usize) -> Box<dyn BenchHandle + 'm> + Sync),
    cfg: &WorkloadConfig,
    seed: u64,
    reclaimer_stats: &dyn Fn() -> ReclaimerStats,
    allocator_stats: &dyn Fn() -> (u64, u64),
    pool_stats: &dyn Fn() -> PoolStats,
) -> TrialResult {
    assert!(cfg.threads >= 1, "at least one worker thread is required");

    // Prefill to half of the key range (performed on the calling thread, like the paper).
    // Prefill keys are always drawn uniformly — the prefill targets a structure *size*;
    // only the timed phase follows `cfg.distribution`.  Dropping the handle afterwards
    // matters: safe-layer structures lease thread slots through their `Domain`, and the
    // drop releases the calling thread's lease so the worker threads can use all
    // `cfg.threads` slots (raw-handle structures deregister their `tid` the same way).
    if cfg.prefill {
        let mut handle = factory(0);
        let mut gen = OperationGenerator::new(cfg, 0, seed ^ 0xBEEF);
        let target = (cfg.key_range / 2) as usize;
        let mut inserted = 0usize;
        let mut attempts = 0u64;
        while inserted < target && attempts < cfg.key_range * 8 {
            if handle.insert(gen.next_uniform_key(), attempts) {
                inserted += 1;
            }
            attempts += 1;
        }
        drop(handle);
    }

    let stop = AtomicBool::new(false);
    let started = AtomicU64::new(0);
    let total_ops = AtomicU64::new(0);
    let start_gate = AtomicBool::new(false);
    // One clock calibration per trial, shared by every worker's recorder; the merge
    // target is locked only after the stop flag (drain time), never in the timed loop.
    let clock = cfg.latency.then(Clock::new);
    let merged: Mutex<[LatencyHistogram; MAX_OP_KINDS]> = Mutex::new(Default::default());

    let timed = std::thread::scope(|scope| {
        for tid in 0..cfg.threads {
            let stop = &stop;
            let started = &started;
            let total_ops = &total_ops;
            let start_gate = &start_gate;
            let merged = &merged;
            let cfg = *cfg;
            scope.spawn(move || {
                let mut handle = factory(tid);
                let mut gen = OperationGenerator::new(&cfg, tid, seed);
                // Rings are pre-allocated here, before the start gate.
                let recorder = clock.map(|c| ThreadRecorder::new(c, seed, tid));
                started.fetch_add(1, Ordering::SeqCst);
                while !start_gate.load(Ordering::Acquire) {
                    // Yield, don't just spin: with more workers than cores (always, on the
                    // single-core CI container) a bare spin burns whole scheduling quanta
                    // while the main thread is waiting to flip the gate.
                    std::thread::yield_now();
                }
                let mut ops = 0u64;
                // Two loop bodies so the recording-off path carries literally zero
                // recording code (the on/off twin rows in BENCH_latency.json measure
                // the difference).
                if let Some(rec) = &recorder {
                    // Stagger the stride phase across workers so they do not all read
                    // the TSC on the same beat.
                    let mut tick = tid as u64;
                    while !stop.load(Ordering::Relaxed) {
                        let op = gen.next_op();
                        let timed = tick & (SAMPLE_STRIDE - 1) == 0;
                        tick = tick.wrapping_add(1);
                        let t0 = if timed { rec.now() } else { 0 };
                        let kind = match op {
                            Operation::Insert(k) => {
                                handle.insert(k, k);
                                0
                            }
                            Operation::Delete(k) => {
                                handle.remove(k);
                                1
                            }
                            Operation::Search(k) => {
                                handle.contains(k);
                                2
                            }
                        };
                        if timed {
                            rec.record(kind, t0);
                        }
                        ops += 1;
                    }
                    rec.drain_into(merged);
                } else {
                    while !stop.load(Ordering::Relaxed) {
                        match gen.next_op() {
                            Operation::Insert(k) => {
                                handle.insert(k, k);
                            }
                            Operation::Delete(k) => {
                                handle.remove(k);
                            }
                            Operation::Search(k) => {
                                handle.contains(k);
                            }
                        }
                        ops += 1;
                    }
                }
                total_ops.fetch_add(ops, Ordering::SeqCst);
            });
        }

        // Wait for all workers to have registered, then time the run.
        while started.load(Ordering::SeqCst) < cfg.threads as u64 {
            std::thread::yield_now();
        }
        let begin = Instant::now();
        start_gate.store(true, Ordering::Release);
        std::thread::sleep(Duration::from_millis(cfg.duration_ms));
        stop.store(true, Ordering::SeqCst);
        begin.elapsed()
        // scope joins all workers here
    });

    let operations = total_ops.load(Ordering::SeqCst);
    let duration_secs = timed.as_secs_f64();
    let (allocated_bytes, allocated_records) = allocator_stats();
    TrialResult {
        operations,
        throughput_mops: operations as f64 / duration_secs / 1.0e6,
        duration_secs,
        reclaimer: reclaimer_stats(),
        allocated_bytes,
        allocated_records,
        pool: pool_stats(),
        latency: if cfg.latency { report_from(merged) } else { LatencyReport::default() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{KeyDistribution, OperationMix};
    use debra::{Debra, Reclaimer, RecordManager};
    use lockfree_ds::{HarrisMichaelList, ListNode};
    use smr_alloc::{SystemAllocator, ThreadPool};
    use std::sync::Arc;

    type Node = ListNode<u64, u64>;
    type List = HarrisMichaelList<u64, u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;

    #[test]
    fn trial_produces_sensible_numbers() {
        let manager = Arc::new(RecordManager::new(3));
        let list: List = HarrisMichaelList::new(Arc::clone(&manager));
        let cfg = WorkloadConfig {
            threads: 2,
            key_range: 256,
            mix: OperationMix::UPDATE_HEAVY,
            distribution: KeyDistribution::Uniform,
            duration_ms: 50,
            prefill: true,
            allocator: crate::experiments::AllocatorKind::SystemWithPool,
            latency: true,
            laggard_stall_ms: 0,
        };
        // Worker threads use tids 0..threads; prefill reuses tid 0 before workers start.
        let result = run_trial(
            &list,
            &cfg,
            1,
            || manager.reclaimer().stats(),
            || {
                use debra::Allocator;
                (manager.allocator().allocated_bytes(), manager.allocator().allocated_records())
            },
            || {
                use debra::Pool;
                manager.pool().stats()
            },
        );
        assert!(result.operations > 0);
        assert!(result.throughput_mops > 0.0);
        assert!(result.duration_secs > 0.04);
        assert!(result.allocated_records > 0);
        assert!(result.reclaimer.operations > 0);
        // Latency recording was on: the report must carry ordered, populated quantiles.
        assert!(result.latency.enabled);
        let all = result.latency.all;
        assert!(all.count > 0, "recording produced no samples");
        assert!(all.p50_ns <= all.p99_ns && all.p99_ns <= all.p999_ns);
        assert!(all.p999_ns <= all.max_ns);
        let sampled: u64 = result.latency.per_kind.iter().map(|s| s.count).sum();
        assert_eq!(sampled, all.count, "per-kind summaries must partition the samples");
        // 50i-50d: inserts and deletes must both have been sampled.
        assert!(result.latency.per_kind[0].count > 0);
        assert!(result.latency.per_kind[1].count > 0);
    }

    #[test]
    fn trial_runs_under_a_zipfian_distribution() {
        let manager = Arc::new(RecordManager::new(3));
        let list: List = HarrisMichaelList::new(Arc::clone(&manager));
        let cfg = WorkloadConfig {
            threads: 2,
            key_range: 128,
            mix: OperationMix::UPDATE_HEAVY,
            distribution: KeyDistribution::ZIPF_DEFAULT,
            duration_ms: 40,
            prefill: true,
            allocator: crate::experiments::AllocatorKind::SystemWithPool,
            latency: false,
            laggard_stall_ms: 0,
        };
        let result = run_trial(
            &list,
            &cfg,
            2,
            || manager.reclaimer().stats(),
            || {
                use debra::Allocator;
                (manager.allocator().allocated_bytes(), manager.allocator().allocated_records())
            },
            || {
                use debra::Pool;
                manager.pool().stats()
            },
        );
        assert!(result.operations > 0);
        assert!(result.reclaimer.retired > 0, "hot-key churn must retire records");
    }
}

//! The producer/consumer workload family: timed trials over [`ConcurrentBag`]
//! structures (queue, stack).
//!
//! Map trials ([`crate::harness`]) draw keyed operations from a mix; bag trials have no
//! keys — the knobs are the **role split** and the **rhythm**:
//!
//! * [`PcScenario::Symmetric`] — every worker draws enqueue-vs-dequeue from the
//!   configured percentage (the `xe-yd` mix).  At 50e-50d this is the classic pairwise
//!   benchmark; skewing it toward enqueues grows the structure during the trial, toward
//!   dequeues drains it.
//! * [`PcScenario::BurstyProducer`] — dedicated roles: half the workers are producers
//!   that enqueue in bursts (a burst of `burst` pushes, then a yield — the arrival
//!   pattern of a batching upstream), the other half are consumers that dequeue
//!   continuously and yield on empty.  This is the shape that piles garbage onto the
//!   reclaimer: consumers retire one record per successful pop at the full drain rate.
//!
//! The headline metric is the **pair rate**: `min(enqueues, successful dequeues)` per
//! second — a value must go in *and* come out to count, so neither a producer-storm nor
//! a spin of empty pops can inflate it.  Raw operation throughput, the empty-pop count
//! and the reclaimer statistics are reported alongside, in a [`TrialResult`] so the
//! experiment tables can treat map and bag rows uniformly.
//!
//! Like the map harness, the trial body is **type-erased** ([`BagBenchHandle`]) and
//! compiles once; only the thin per-structure adapters monomorphize.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use debra::{PoolStats, ReclaimerStats};
use lockfree_ds::ConcurrentBag;
use smr_obs::{Clock, LatencyHistogram, LatencyReport, MAX_OP_KINDS};

use crate::experiments::AllocatorKind;
use crate::harness::{report_from, ThreadRecorder, TrialResult, SAMPLE_STRIDE};

/// How worker threads split into producer/consumer roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcScenario {
    /// Every worker draws enqueue-vs-dequeue per operation from
    /// [`PcConfig::enqueue_pct`].
    Symmetric,
    /// Dedicated roles: `threads / 2` (rounded up) producers enqueue in bursts of
    /// `burst`, yielding between bursts; the remaining workers consume continuously,
    /// yielding on empty pops.  A single worker alternates burst-and-drain itself.
    BurstyProducer {
        /// Number of enqueues per burst.
        burst: u32,
    },
}

impl PcScenario {
    /// Short label used in experiment tables (e.g. `"sym"`, `"burst128"`).
    pub fn label(&self) -> String {
        match self {
            PcScenario::Symmetric => "sym".to_string(),
            PcScenario::BurstyProducer { burst } => format!("burst{burst}"),
        }
    }
}

/// One producer/consumer trial configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcConfig {
    /// Total number of worker threads.
    pub threads: usize,
    /// Role split / rhythm.
    pub scenario: PcScenario,
    /// Percentage of enqueues under [`PcScenario::Symmetric`] (0–100; ignored by
    /// dedicated-role scenarios).
    pub enqueue_pct: u8,
    /// Number of values pushed before timing starts (a warm structure, like the map
    /// harness's prefill).
    pub prefill: u64,
    /// Trial duration in milliseconds.
    pub duration_ms: u64,
    /// Memory configuration (allocator + pool) the Record Manager is composed with.
    pub allocator: AllocatorKind,
    /// Whether workers record per-operation latency (kinds: 0 = enqueue, 1 = dequeue,
    /// 2 = empty dequeue); see [`crate::workload::WorkloadConfig::latency`].
    pub latency: bool,
    /// Laggard stall window in milliseconds (0 = no laggard); see
    /// [`crate::workload::WorkloadConfig::laggard_stall_ms`].
    pub laggard_stall_ms: u64,
}

impl Default for PcConfig {
    fn default() -> Self {
        PcConfig {
            threads: 4,
            scenario: PcScenario::Symmetric,
            enqueue_pct: 50,
            prefill: 256,
            duration_ms: 200,
            allocator: AllocatorKind::BumpWithPool,
            latency: false,
            laggard_stall_ms: 0,
        }
    }
}

impl PcConfig {
    /// The mix label in the map tables' style, e.g. `"50e-50d/sym"`.
    pub fn label(&self) -> String {
        match self.scenario {
            PcScenario::Symmetric => format!(
                "{}e-{}d/{}",
                self.enqueue_pct,
                100 - self.enqueue_pct,
                self.scenario.label()
            ),
            PcScenario::BurstyProducer { .. } => self.scenario.label(),
        }
    }
}

/// The outcome of one producer/consumer trial.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PcTrialResult {
    /// Total completed enqueues.
    pub enqueues: u64,
    /// Total successful dequeues (each one retired a record).
    pub dequeues: u64,
    /// Dequeues that found the bag empty.
    pub empty_dequeues: u64,
    /// The pair rate in million transferred values per second:
    /// `min(enqueues, dequeues) / duration / 1e6`.
    pub pair_rate_mpairs: f64,
    /// The trial in the map tables' units (`operations` counts enqueues + successful
    /// dequeues; empty pops are excluded — they do no transfer work).
    pub trial: TrialResult,
}

/// Object-safe per-thread view of a bag under test (the type-erasure seam; see
/// [`crate::harness::BenchHandle`] for why the trial body compiles once).
pub trait BagBenchHandle {
    /// Pushes `value`.
    fn push(&mut self, value: u64);
    /// Pops a value, `None` when the bag appeared empty.
    fn pop(&mut self) -> Option<u64>;
}

/// The blanket [`BagBenchHandle`] adapter: a bag reference plus its registered handle.
struct BagHandle<'b, B: ConcurrentBag<u64>> {
    bag: &'b B,
    handle: B::Handle,
}

impl<'b, B: ConcurrentBag<u64>> BagBenchHandle for BagHandle<'b, B> {
    #[inline]
    fn push(&mut self, value: u64) {
        self.bag.push(&mut self.handle, value)
    }

    #[inline]
    fn pop(&mut self) -> Option<u64> {
        self.bag.pop(&mut self.handle)
    }
}

/// Runs one timed producer/consumer trial of `cfg` against `bag`.
///
/// `reclaimer_stats` and `allocator_stats` are read at the end of the trial, as in
/// [`crate::harness::run_trial`].
pub fn run_pc_trial<'b, B>(
    bag: &'b B,
    cfg: &PcConfig,
    seed: u64,
    reclaimer_stats: impl Fn() -> ReclaimerStats,
    allocator_stats: impl Fn() -> (u64, u64),
    pool_stats: impl Fn() -> PoolStats,
) -> PcTrialResult
where
    B: ConcurrentBag<u64>,
    B::Handle: 'b,
{
    let factory = |_tid: usize| -> Box<dyn BagBenchHandle + 'b> {
        Box::new(BagHandle { bag, handle: bag.register().expect("register worker thread") })
    };
    run_pc_trial_erased(&factory, cfg, seed, &reclaimer_stats, &allocator_stats, &pool_stats)
}

/// A splitmix64 step: the per-worker operation-choice stream (no keys are needed, so the
/// full [`crate::workload::OperationGenerator`] machinery would be overkill here).
#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The type-erased trial body; compiled once.
fn run_pc_trial_erased<'b>(
    factory: &(dyn Fn(usize) -> Box<dyn BagBenchHandle + 'b> + Sync),
    cfg: &PcConfig,
    seed: u64,
    reclaimer_stats: &dyn Fn() -> ReclaimerStats,
    allocator_stats: &dyn Fn() -> (u64, u64),
    pool_stats: &dyn Fn() -> PoolStats,
) -> PcTrialResult {
    assert!(cfg.threads >= 1, "at least one worker thread is required");

    // Prefill on the calling thread; the handle is dropped afterwards so its domain
    // lease frees the slot for the workers (see the map harness for why this matters).
    {
        let mut handle = factory(0);
        for i in 0..cfg.prefill {
            handle.push(u64::MAX - i);
        }
        drop(handle);
    }

    let stop = AtomicBool::new(false);
    let started = AtomicU64::new(0);
    let start_gate = AtomicBool::new(false);
    let total_enq = AtomicU64::new(0);
    let total_deq = AtomicU64::new(0);
    let total_empty = AtomicU64::new(0);
    // Latency pipeline, as in the map harness: calibrate once, pre-allocate rings per
    // worker, merge under a lock only after the stop flag.
    let clock = cfg.latency.then(Clock::new);
    let merged: Mutex<[LatencyHistogram; MAX_OP_KINDS]> = Mutex::new(Default::default());

    // Under BurstyProducer the first ceil(threads/2) workers produce, the rest consume;
    // a single worker alternates burst-and-drain itself (there is no one else on either
    // side — the `solo` branch below).
    let producers = match cfg.scenario {
        PcScenario::Symmetric => 0,
        PcScenario::BurstyProducer { .. } => cfg.threads.div_ceil(2),
    };

    let timed = std::thread::scope(|scope| {
        for tid in 0..cfg.threads {
            let stop = &stop;
            let started = &started;
            let start_gate = &start_gate;
            let total_enq = &total_enq;
            let total_deq = &total_deq;
            let total_empty = &total_empty;
            let merged = &merged;
            let cfg = *cfg;
            scope.spawn(move || {
                let mut handle = factory(tid);
                let mut rng = seed ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let recorder = clock.map(|c| ThreadRecorder::new(c, seed, tid));
                started.fetch_add(1, Ordering::SeqCst);
                while !start_gate.load(Ordering::Acquire) {
                    // Yield, don't spin: on the single-core CI container a bare spin
                    // burns the quantum the main thread needs to flip the gate.
                    std::thread::yield_now();
                }
                let (mut enq, mut deq, mut empty) = (0u64, 0u64, 0u64);
                match cfg.scenario {
                    // The symmetric loop exists twice so the recording-off path carries
                    // zero recording code (see the map harness for the twin-row
                    // rationale).  Kinds: 0 = enqueue, 1 = dequeue, 2 = empty dequeue.
                    // One in `SAMPLE_STRIDE` operations is timed (see the map harness
                    // for why timing every operation would swamp 100ns bag ops).
                    PcScenario::Symmetric if recorder.is_some() => {
                        let rec = recorder.as_ref().unwrap();
                        let mut tick = tid as u64;
                        while !stop.load(Ordering::Relaxed) {
                            let timed = tick & (SAMPLE_STRIDE - 1) == 0;
                            tick = tick.wrapping_add(1);
                            if (splitmix(&mut rng) % 100) < cfg.enqueue_pct as u64 {
                                let t0 = if timed { rec.now() } else { 0 };
                                handle.push(((tid as u64) << 48) | enq);
                                if timed {
                                    rec.record(0, t0);
                                }
                                enq += 1;
                            } else {
                                let t0 = if timed { rec.now() } else { 0 };
                                let popped = handle.pop().is_some();
                                if timed {
                                    rec.record(if popped { 1 } else { 2 }, t0);
                                }
                                if popped {
                                    deq += 1;
                                } else {
                                    empty += 1;
                                }
                            }
                        }
                    }
                    PcScenario::Symmetric => {
                        while !stop.load(Ordering::Relaxed) {
                            if (splitmix(&mut rng) % 100) < cfg.enqueue_pct as u64 {
                                handle.push(((tid as u64) << 48) | enq);
                                enq += 1;
                            } else if handle.pop().is_some() {
                                deq += 1;
                            } else {
                                empty += 1;
                            }
                        }
                    }
                    PcScenario::BurstyProducer { burst } => {
                        let is_producer = tid < producers;
                        let solo = cfg.threads == 1;
                        // Bursty rows record through a per-op branch on the recorder
                        // option instead of a duplicated loop: the inter-burst yields
                        // dominate this scenario's cost, and the on/off overhead twins
                        // are measured on the symmetric loop above.  The same
                        // one-in-`SAMPLE_STRIDE` sampling applies.
                        let mut tick = tid as u64;
                        while !stop.load(Ordering::Relaxed) {
                            if solo {
                                // Both halves of the pipeline on one thread: push a
                                // burst, then drain it.
                                for _ in 0..burst {
                                    let timed = tick & (SAMPLE_STRIDE - 1) == 0;
                                    tick = tick.wrapping_add(1);
                                    let t0 = if timed {
                                        recorder.as_ref().map(|r| r.now())
                                    } else {
                                        None
                                    };
                                    handle.push(((tid as u64) << 48) | enq);
                                    if let (Some(rec), Some(t0)) = (&recorder, t0) {
                                        rec.record(0, t0);
                                    }
                                    enq += 1;
                                }
                                while let Some(_v) = handle.pop() {
                                    deq += 1;
                                }
                                empty += 1; // the drain's terminating empty pop
                            } else if is_producer {
                                for _ in 0..burst {
                                    let timed = tick & (SAMPLE_STRIDE - 1) == 0;
                                    tick = tick.wrapping_add(1);
                                    let t0 = if timed {
                                        recorder.as_ref().map(|r| r.now())
                                    } else {
                                        None
                                    };
                                    handle.push(((tid as u64) << 48) | enq);
                                    if let (Some(rec), Some(t0)) = (&recorder, t0) {
                                        rec.record(0, t0);
                                    }
                                    enq += 1;
                                }
                                // The inter-burst pause: hand the core to the consumers
                                // (a sleep would oversleep whole quanta on 1 core).
                                std::thread::yield_now();
                            } else {
                                let timed = tick & (SAMPLE_STRIDE - 1) == 0;
                                tick = tick.wrapping_add(1);
                                let t0 =
                                    if timed { recorder.as_ref().map(|r| r.now()) } else { None };
                                if handle.pop().is_some() {
                                    if let (Some(rec), Some(t0)) = (&recorder, t0) {
                                        rec.record(1, t0);
                                    }
                                    deq += 1;
                                } else {
                                    if let (Some(rec), Some(t0)) = (&recorder, t0) {
                                        rec.record(2, t0);
                                    }
                                    empty += 1;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                }
                if let Some(rec) = &recorder {
                    rec.drain_into(merged);
                }
                total_enq.fetch_add(enq, Ordering::SeqCst);
                total_deq.fetch_add(deq, Ordering::SeqCst);
                total_empty.fetch_add(empty, Ordering::SeqCst);
            });
        }

        while started.load(Ordering::SeqCst) < cfg.threads as u64 {
            std::thread::yield_now();
        }
        let begin = Instant::now();
        start_gate.store(true, Ordering::Release);
        std::thread::sleep(Duration::from_millis(cfg.duration_ms));
        stop.store(true, Ordering::SeqCst);
        begin.elapsed()
        // scope joins all workers here
    });

    let enqueues = total_enq.load(Ordering::SeqCst);
    let dequeues = total_deq.load(Ordering::SeqCst);
    let empty_dequeues = total_empty.load(Ordering::SeqCst);
    let duration_secs = timed.as_secs_f64();
    let operations = enqueues + dequeues;
    let (allocated_bytes, allocated_records) = allocator_stats();
    PcTrialResult {
        enqueues,
        dequeues,
        empty_dequeues,
        pair_rate_mpairs: enqueues.min(dequeues) as f64 / duration_secs / 1.0e6,
        trial: TrialResult {
            operations,
            throughput_mops: operations as f64 / duration_secs / 1.0e6,
            duration_secs,
            reclaimer: reclaimer_stats(),
            allocated_bytes,
            allocated_records,
            pool: pool_stats(),
            latency: if cfg.latency { report_from(merged) } else { LatencyReport::default() },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::{Debra, Reclaimer, RecordManager};
    use smr_alloc::{SystemAllocator, ThreadPool};
    use smr_queue::{MsQueue, QueueNode, StackNode, TreiberStack};
    use std::sync::Arc;

    type QNode = QueueNode<u64>;
    type Queue = MsQueue<u64, Debra<QNode>, ThreadPool<QNode>, SystemAllocator<QNode>>;
    type SNode = StackNode<u64>;
    type Stack = TreiberStack<u64, Debra<SNode>, ThreadPool<SNode>, SystemAllocator<SNode>>;

    #[test]
    fn symmetric_trial_produces_sensible_numbers() {
        let manager = Arc::new(RecordManager::new(3));
        let queue: Queue = MsQueue::new(Arc::clone(&manager));
        let cfg = PcConfig { threads: 2, duration_ms: 50, latency: true, ..PcConfig::default() };
        let r = run_pc_trial(
            &queue,
            &cfg,
            1,
            || manager.reclaimer().stats(),
            || {
                use debra::Allocator;
                (manager.allocator().allocated_bytes(), manager.allocator().allocated_records())
            },
            || {
                use debra::Pool;
                manager.pool().stats()
            },
        );
        assert!(r.enqueues > 0, "workers must enqueue");
        assert!(r.dequeues > 0, "workers must dequeue");
        assert!(r.pair_rate_mpairs > 0.0);
        assert!(r.trial.operations == r.enqueues + r.dequeues);
        assert!(r.trial.reclaimer.retired > 0, "every successful dequeue retires");
        // Latency recording was on: enqueue and dequeue kinds must both be sampled.
        assert!(r.trial.latency.enabled);
        assert!(r.trial.latency.per_kind[0].count > 0, "no enqueue samples");
        assert!(r.trial.latency.per_kind[1].count > 0, "no dequeue samples");
        assert!(r.trial.latency.all.p50_ns <= r.trial.latency.all.max_ns);
    }

    #[test]
    fn bursty_trial_splits_roles() {
        let manager = Arc::new(RecordManager::new(3));
        let stack: Stack = TreiberStack::new(Arc::clone(&manager));
        let cfg = PcConfig {
            threads: 2,
            scenario: PcScenario::BurstyProducer { burst: 64 },
            duration_ms: 50,
            ..PcConfig::default()
        };
        let r = run_pc_trial(
            &stack,
            &cfg,
            2,
            || manager.reclaimer().stats(),
            || {
                use debra::Allocator;
                (manager.allocator().allocated_bytes(), manager.allocator().allocated_records())
            },
            || {
                use debra::Pool;
                manager.pool().stats()
            },
        );
        assert!(r.enqueues > 0 && r.dequeues > 0);
        // With a dedicated producer bursting, enqueues should not trail dequeues by
        // much; the pair rate is bounded by the slower side.
        assert!(r.pair_rate_mpairs <= r.trial.throughput_mops);
    }

    #[test]
    fn solo_bursty_worker_produces_and_consumes() {
        let manager = Arc::new(RecordManager::new(2));
        let queue: Queue = MsQueue::new(Arc::clone(&manager));
        let cfg = PcConfig {
            threads: 1,
            scenario: PcScenario::BurstyProducer { burst: 32 },
            duration_ms: 40,
            ..PcConfig::default()
        };
        let r = run_pc_trial(
            &queue,
            &cfg,
            3,
            || manager.reclaimer().stats(),
            || {
                use debra::Allocator;
                (manager.allocator().allocated_bytes(), manager.allocator().allocated_records())
            },
            || {
                use debra::Pool;
                manager.pool().stats()
            },
        );
        assert!(r.enqueues > 0, "a solo bursty worker must still enqueue");
        assert!(r.dequeues > 0, "a solo bursty worker must drain its own bursts");
        assert!(r.pair_rate_mpairs > 0.0, "solo bursty rows must not be degenerate");
    }

    #[test]
    fn scenario_labels_are_stable() {
        assert_eq!(PcScenario::Symmetric.label(), "sym");
        assert_eq!(PcScenario::BurstyProducer { burst: 128 }.label(), "burst128");
        let cfg = PcConfig { enqueue_pct: 70, ..PcConfig::default() };
        assert_eq!(cfg.label(), "70e-30d/sym");
    }
}

//! Integration tests for the observability layer (ISSUE 7): histogram-vs-oracle
//! properties, sample-ring concurrency contracts, harness latency plumbing, and the
//! bounded-limbo stress that pins a laggard under a neutralizing epoch scheme.
//!
//! The unit tests inside `smr-obs` cover each primitive in isolation; this suite checks
//! the contracts the *harness* relies on — quantile error bounds against an exact
//! sorted-sample oracle over arbitrary inputs, merge laws over arbitrary partitions
//! (per-thread histograms must combine into the same trial summary in any order), rings
//! that stay within capacity under genuinely concurrent writers, and a full trial whose
//! `LatencyReport` and limbo watermark behave as documented.

use proptest::prelude::*;
use smr_obs::{LatencyHistogram, SampleRing};
use smr_workloads::experiments::{run_config, ReclaimerKind, StructureKind};
use smr_workloads::{AllocatorKind, KeyDistribution, OperationMix, WorkloadConfig};
use std::sync::Arc;

/// Exact quantile of a sorted sample using the same "ceil rank" convention the
/// histogram documents: the smallest value with at least `ceil(q * n)` values ≤ it.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

fn build(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// For arbitrary inputs spanning the linear region and many octaves, every reported
    /// quantile is ≥ the exact sample quantile (the approximation never hides a tail)
    /// and within the documented `2^(1-LINEAR_BITS)` ≈ 1/64 relative bucket width.
    #[test]
    fn histogram_quantiles_match_sorted_oracle(
        mut values in proptest::collection::vec(0u64..50_000_000_000, 1..400),
        q_mil in 1u64..1000,
    ) {
        let h = build(&values);
        values.sort_unstable();
        let q = q_mil as f64 / 1000.0;
        let exact = exact_quantile(&values, q);
        let approx = h.quantile(q);
        prop_assert!(approx >= exact, "q={q}: approx {approx} < exact {exact}");
        // Bucket upper bound: at most one sub-bucket (1/64 relative) above, and never
        // above the observed maximum.
        let bound = (exact + exact / 32 + 1).min(*values.last().unwrap());
        prop_assert!(approx <= bound, "q={q}: approx {approx} > bound {bound}");
    }

    /// Merging per-thread histograms in any order and grouping is equivalent to having
    /// recorded every sample into one histogram (the property the drain path relies on).
    #[test]
    fn histogram_merge_equals_single_recording(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let whole: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let reference = build(&whole);

        // (a ⊕ b) ⊕ c
        let mut left = build(&a);
        left.merge(&build(&b));
        left.merge(&build(&c));
        // a ⊕ (c ⊕ b) — different order and grouping.
        let mut inner = build(&c);
        inner.merge(&build(&b));
        let mut right = build(&a);
        right.merge(&inner);

        prop_assert_eq!(&left, &reference);
        prop_assert_eq!(&right, &reference);
        prop_assert_eq!(left.summary(), reference.summary());
    }

    /// The empty histogram is the merge identity.
    #[test]
    fn histogram_merge_identity(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let reference = build(&a);
        let mut merged = build(&a);
        merged.merge(&LatencyHistogram::new());
        prop_assert_eq!(&merged, &reference);
        let mut from_empty = LatencyHistogram::new();
        from_empty.merge(&reference);
        prop_assert_eq!(&from_empty, &reference);
    }
}

#[test]
fn ring_concurrent_writers_stay_within_capacity() {
    // The rings are single-writer in the harness, but the type promises memory safety
    // and a capacity bound even when shared; hammer one from several threads.
    let ring = Arc::new(SampleRing::new(256, 0xC0FFEE));
    let writers = 8;
    let per_writer = 50_000u64;
    std::thread::scope(|s| {
        for t in 0..writers {
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                for i in 0..per_writer {
                    // Distinct value space per writer so retained samples are traceable.
                    ring.record(((t as u64) << 32) | i);
                }
            });
        }
    });
    assert_eq!(ring.seen(), writers as u64 * per_writer);
    assert_eq!(ring.capacity(), 256);
    assert_eq!(ring.len(), 256, "reservoir must stay full, never overflow");
    let samples = ring.samples();
    assert_eq!(samples.len(), 256);
    for &s in &samples {
        let writer = s >> 32;
        let seq = s & 0xFFFF_FFFF;
        assert!(
            writer < writers as u64 && seq < per_writer,
            "retained sample {s:#x} was never offered"
        );
    }
}

#[test]
fn ring_single_writer_stream_is_deterministic() {
    let run = |seed: u64| {
        let ring = SampleRing::new(128, seed);
        for v in 0..20_000u64 {
            ring.record(v);
        }
        ring.samples()
    };
    assert_eq!(run(11), run(11), "same seed must retain the same sample");
    assert_ne!(run(11), run(12), "different seeds should diverge");
}

#[test]
fn ring_capacity_is_never_exceeded_at_any_point() {
    let ring = SampleRing::new(16, 7);
    for v in 0..10_000u64 {
        ring.record(v);
        assert!(ring.len() <= ring.capacity());
        assert_eq!(ring.seen(), v + 1);
    }
}

fn quick_cfg(threads: usize, latency: bool, laggard_stall_ms: u64) -> WorkloadConfig {
    WorkloadConfig {
        threads,
        key_range: 512,
        mix: OperationMix::UPDATE_HEAVY,
        distribution: KeyDistribution::Uniform,
        duration_ms: 120,
        prefill: true,
        allocator: AllocatorKind::PagePool,
        latency,
        laggard_stall_ms,
    }
}

#[test]
fn harness_trial_carries_an_ordered_latency_report() {
    let row =
        run_config(StructureKind::HashMap, ReclaimerKind::Debra, &quick_cfg(2, true, 0), 0x0B5);
    let rep = row.result.latency;
    assert!(rep.enabled);
    assert!(rep.all.count > 0, "a 120ms trial must retain samples");
    assert!(rep.all.p50_ns <= rep.all.p90_ns);
    assert!(rep.all.p90_ns <= rep.all.p99_ns);
    assert!(rep.all.p99_ns <= rep.all.p999_ns);
    assert!(rep.all.p999_ns <= rep.all.max_ns);
    // The per-kind counts partition the combined count.
    let per_kind: u64 = rep.per_kind.iter().map(|s| s.count).sum();
    assert_eq!(per_kind, rep.all.count);
}

#[test]
fn latency_off_reports_disabled_and_all_zero() {
    let row =
        run_config(StructureKind::HashMap, ReclaimerKind::Debra, &quick_cfg(2, false, 0), 0x0B5);
    let rep = row.result.latency;
    assert!(!rep.enabled);
    assert_eq!(rep.all.count, 0);
    assert_eq!(rep.all.max_ns, 0);
}

#[test]
fn bag_trial_carries_a_latency_report_too() {
    let row = run_config(StructureKind::Queue, ReclaimerKind::Ebr, &quick_cfg(2, true, 0), 0x0B5);
    assert!(row.result.latency.enabled);
    assert!(row.result.latency.all.count > 0);
    assert!(row.result.latency.all.p50_ns <= row.result.latency.all.max_ns);
}

/// The bounded-garbage stress of the acceptance criteria: a neutralizing epoch scheme
/// (DEBRA+) with a pinned laggard holding 5ms windows open must keep the limbo-bytes
/// high watermark bounded — the laggard is exactly the adversary that makes plain
/// epoch schemes (DEBRA, EBR) balloon into the multi-megabyte range, and DEBRA+'s
/// neutralization is the mechanism that caps it.
///
/// The bound is empirical but wide: under this configuration DEBRA+ peaks well under
/// 512 KiB on this harness (observed ≤ ~176 KiB across the oversubscribed family),
/// while the non-neutralizing epoch schemes exceed 1 MiB within 60 ms.  4 MiB gives
/// ~20× headroom over observed DEBRA+ peaks while still sitting below what an
/// unbounded scheme accumulates in a fraction of the trial.
#[test]
fn limbo_bytes_stay_bounded_under_pinned_laggard_with_neutralization() {
    const LIMBO_BOUND_BYTES: u64 = 4 << 20;
    let cfg = quick_cfg(4, true, 5);
    let row = run_config(StructureKind::HashMap, ReclaimerKind::DebraPlus, &cfg, 0x0B5E);
    let stats = &row.result.reclaimer;
    assert!(stats.retired > 0, "update-heavy trial must retire records");
    assert!(
        stats.limbo_bytes_hwm < LIMBO_BOUND_BYTES,
        "DEBRA+ limbo hwm {} exceeded the {} byte bound despite neutralization",
        stats.limbo_bytes_hwm,
        LIMBO_BOUND_BYTES
    );
    // The watermark is a high watermark: it can never sit below the final gauge.
    assert!(stats.limbo_bytes_hwm >= stats.limbo_bytes);
}

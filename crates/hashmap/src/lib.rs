//! A lock-free hash map written against the Record Manager abstraction.
//!
//! The map is a **fixed-size bucket array of Harris–Michael lists**: each bucket holds the
//! head word of a sorted lock-free linked list (mark bit in the least significant bit of
//! every `next` word), and a key is routed to its bucket by hashing.  This is the classic
//! lock-free hash table of Michael ("High Performance Dynamic Lock-Free Hash Tables and
//! List-Based Sets", SPAA 2002), restricted to a fixed bucket count — no resizing — which
//! keeps every operation strictly per-bucket.
//!
//! Like the structures in `lockfree-ds`, the map is written **once** against
//! [`RecordManagerThread`] and is parameterized by the reclamation scheme, the pool and the
//! allocator; swapping any of them is a one-line change of type parameters.  The map runs
//! under every scheme in this repository (None, EBR, HP, ThreadScan, IBR, DEBRA, DEBRA+).
//!
//! # Protection discipline (HP / ThreadScan / IBR)
//!
//! A bucket traversal holds at most **two** protected records at a time, exactly like the
//! stand-alone Harris–Michael list:
//!
//! * slot [`slots::CURR`] — the node about to be inspected.  It is announced *before* the
//!   node's fields are read and then validated by re-reading the link that led to it (the
//!   bucket head or the predecessor's `next` word).  If the link changed, the traversal
//!   restarts from the bucket head: the node may already have been retired, so its fields
//!   must not be touched.
//! * slot [`slots::PREV`] — the predecessor, re-announced each time the traversal advances
//!   so the `prev.next` word stays safe to CAS on.
//!
//! Epoch-based schemes compile both announcements down to nothing; IBR extends the
//! thread's reservation interval inside `protect`/`check` checkpoints, so the same two
//! calls double as its per-access era bookkeeping.
//!
//! > Note: the bucket-chain protocol below is deliberately the same algorithm as
//! > [`lockfree_ds::list`]'s stand-alone list (per the crate's charter of implementing the
//! > structure directly against the Record Manager traits).  The two are audit twins: a
//! > correctness fix in either search/validate/unlink path almost certainly applies to
//! > the other.
//!
//! # Neutralization (DEBRA+)
//!
//! Every operation body is a sequence of checkpoints (`handle.check()` before each
//! dereference and each CAS).  When a checkpoint reports [`Neutralized`], the operation
//! unwinds to [`LockFreeHashMap::run_op`], which releases restricted hazard pointers,
//! acknowledges the signal and **restarts the whole bucket operation** from the bucket
//! head.  Nothing an interrupted operation published needs helping: an insert whose CAS
//! has not yet succeeded recycles its private node, and one whose CAS succeeded runs no
//! further checkpoints before returning.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use debra::{
    Allocator, Neutralized, Pool, Reclaimer, RecordManager, RecordManagerThread, RegistrationError,
};
use lockfree_ds::ConcurrentMap;

/// Mark bit stored in the least significant bit of a node's `next` word.
const MARK: usize = 1;

/// Default number of buckets used by [`LockFreeHashMap::new`].
pub const DEFAULT_BUCKETS: usize = 256;

#[inline]
fn ptr_of(word: usize) -> *mut u8 {
    (word & !MARK) as *mut u8
}

#[inline]
fn is_marked(word: usize) -> bool {
    word & MARK != 0
}

/// A node of [`LockFreeHashMap`]: one key/value pair in one bucket's list.
///
/// `next` packs the successor pointer and the *mark* bit: a marked node has been logically
/// deleted and will be retired by whichever thread physically unlinks it.
pub struct HashMapNode<K, V> {
    key: K,
    value: V,
    next: AtomicUsize,
}

impl<K, V> HashMapNode<K, V> {
    /// The node's key.
    pub fn key(&self) -> &K {
        &self.key
    }

    /// The node's value.
    pub fn value(&self) -> &V {
        &self.value
    }
}

impl<K: fmt::Debug, V> fmt::Debug for HashMapNode<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HashMapNode")
            .field("key", &self.key)
            .field("marked", &is_marked(self.next.load(Ordering::Relaxed)))
            .finish()
    }
}

/// Protection slot assignment used by bucket traversals (two slots suffice, as in
/// Michael's list algorithm).
pub mod slots {
    /// The traversal's predecessor node.
    pub const PREV: usize = 0;
    /// The node currently being inspected.
    pub const CURR: usize = 1;
}

/// A lock-free hash map (fixed bucket array of Harris–Michael lists), parameterized by the
/// Record Manager (reclaimer `R`, pool `P`, allocator `A`).
///
/// See the crate docs for the algorithm and the per-scheme protection discipline.
pub struct LockFreeHashMap<K, V, R, P, A>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<HashMapNode<K, V>>,
    P: Pool<HashMapNode<K, V>>,
    A: Allocator<HashMapNode<K, V>>,
{
    /// Head word per bucket (0 = empty bucket).  The bucket count is a power of two so
    /// routing is a mask.
    buckets: Box<[AtomicUsize]>,
    mask: usize,
    manager: Arc<RecordManager<HashMapNode<K, V>, R, P, A>>,
}

/// Shorthand for the per-thread handle type used by [`LockFreeHashMap`].
pub type HashMapHandle<K, V, R, P, A> = RecordManagerThread<HashMapNode<K, V>, R, P, A>;

impl<K, V, R, P, A> LockFreeHashMap<K, V, R, P, A>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<HashMapNode<K, V>>,
    P: Pool<HashMapNode<K, V>>,
    A: Allocator<HashMapNode<K, V>>,
{
    /// Creates an empty map with [`DEFAULT_BUCKETS`] buckets backed by `manager`.
    pub fn new(manager: Arc<RecordManager<HashMapNode<K, V>, R, P, A>>) -> Self {
        Self::with_buckets(manager, DEFAULT_BUCKETS)
    }

    /// Creates an empty map with at least `buckets` buckets (rounded up to a power of two).
    pub fn with_buckets(
        manager: Arc<RecordManager<HashMapNode<K, V>, R, P, A>>,
        buckets: usize,
    ) -> Self {
        let n = buckets.max(1).next_power_of_two();
        LockFreeHashMap {
            buckets: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            mask: n - 1,
            manager,
        }
    }

    /// The Record Manager backing this map.
    pub fn manager(&self) -> &Arc<RecordManager<HashMapNode<K, V>, R, P, A>> {
        &self.manager
    }

    /// The number of buckets (a power of two, fixed at construction).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Registers worker thread `tid`; see [`RecordManager::register`].
    pub fn register(&self, tid: usize) -> Result<HashMapHandle<K, V, R, P, A>, RegistrationError> {
        self.manager.register(tid)
    }

    /// Routes `key` to its bucket index.
    #[inline]
    fn bucket_of(&self, key: &K) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) & self.mask
    }

    /// The link word holding the pointer to the traversal's current node: the predecessor's
    /// `next` word, or the bucket head when there is no predecessor.
    fn link_of(&self, bucket: usize, prev: Option<NonNull<HashMapNode<K, V>>>) -> &AtomicUsize {
        match prev {
            // SAFETY: `prev` is protected by the calling operation (epoch or HP slot PREV).
            Some(p) => unsafe { &(*p.as_ptr()).next },
            None => &self.buckets[bucket],
        }
    }

    /// Finds the first node in `key`'s bucket with key >= `key`.  Returns `(prev, curr_word)`
    /// where `prev` is `None` when `curr` hangs off the bucket head.  Physically unlinks
    /// marked nodes encountered on the way (retiring them).
    ///
    /// Returns `Err(Neutralized)` if this thread was neutralized mid-traversal.
    #[allow(clippy::type_complexity)]
    fn search(
        &self,
        handle: &mut HashMapHandle<K, V, R, P, A>,
        bucket: usize,
        key: &K,
    ) -> Result<(Option<NonNull<HashMapNode<K, V>>>, usize), Neutralized> {
        'retry: loop {
            handle.check()?;
            let mut prev: Option<NonNull<HashMapNode<K, V>>> = None;
            let mut curr_word = self.buckets[bucket].load(Ordering::Acquire);
            loop {
                handle.check()?;
                let curr_ptr = ptr_of(curr_word) as *mut HashMapNode<K, V>;
                let Some(curr) = NonNull::new(curr_ptr) else {
                    return Ok((prev, curr_word));
                };

                // Hazard-pointer style protection: announce, then validate that the link we
                // followed still leads here (no-op and always true for epoch schemes).
                // The comparison is on the FULL word, mark bit included: `expected` is
                // always unmarked, so a predecessor that has since been marked (it is being
                // deleted, and `curr` may already be unlinked from the live chain and
                // retired) fails validation and forces a restart — Michael's algorithm
                // requires exactly this; stripping the mark here would let a stale marked
                // link validate a freed node.
                let prev_link = self.link_of(bucket, prev);
                let expected = curr_word;
                let valid = handle
                    .protect(slots::CURR, curr, || prev_link.load(Ordering::SeqCst) == expected);
                if !valid {
                    continue 'retry;
                }

                // SAFETY: `curr` was reachable when protected; under epoch schemes the
                // operation's non-quiescent announcement keeps it from being reclaimed, and
                // under HP/ThreadScan/IBR the announcement + validation above does.
                let curr_ref = unsafe { curr.as_ref() };
                let next_word = curr_ref.next.load(Ordering::Acquire);

                if is_marked(next_word) {
                    // Logically deleted: try to unlink it.  Whoever wins the CAS owns the
                    // retirement of `curr`.
                    let unlink_to = next_word & !MARK;
                    match self.link_of(bucket, prev).compare_exchange(
                        curr_word,
                        unlink_to,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            // SAFETY: `curr` was just unlinked by this thread (unique CAS
                            // winner) and is no longer reachable from the bucket head.
                            unsafe { handle.retire(curr) };
                            curr_word = unlink_to;
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }

                if curr_ref.key >= *key {
                    return Ok((prev, curr_word));
                }
                // Advance: curr becomes prev.
                handle.protect(slots::PREV, curr, || true);
                prev = Some(curr);
                curr_word = next_word;
            }
        }
    }

    fn insert_body(
        &self,
        handle: &mut HashMapHandle<K, V, R, P, A>,
        bucket: usize,
        key: &K,
        value: &V,
    ) -> Result<bool, Neutralized> {
        loop {
            let (prev, curr_word) = self.search(handle, bucket, key)?;
            let curr_ptr = ptr_of(curr_word) as *mut HashMapNode<K, V>;
            if let Some(curr) = NonNull::new(curr_ptr) {
                // SAFETY: protected by the search above.
                if unsafe { &curr.as_ref().key } == key {
                    return Ok(false);
                }
            }
            let node = handle.allocate(HashMapNode {
                key: key.clone(),
                value: value.clone(),
                next: AtomicUsize::new(curr_word),
            });
            if let Err(e) = handle.check() {
                // Not yet published: recycle immediately, then unwind to recovery.
                // SAFETY: the node was never made reachable.
                unsafe { handle.deallocate(node) };
                return Err(e);
            }
            match self.link_of(bucket, prev).compare_exchange(
                curr_word,
                node.as_ptr() as usize,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(true),
                Err(_) => {
                    // SAFETY: the node was never made reachable.
                    unsafe { handle.deallocate(node) };
                    continue;
                }
            }
        }
    }

    fn remove_body(
        &self,
        handle: &mut HashMapHandle<K, V, R, P, A>,
        bucket: usize,
        key: &K,
    ) -> Result<bool, Neutralized> {
        loop {
            let (prev, curr_word) = self.search(handle, bucket, key)?;
            let Some(curr) = NonNull::new(ptr_of(curr_word) as *mut HashMapNode<K, V>) else {
                return Ok(false);
            };
            // SAFETY: protected by the search above.
            let curr_ref = unsafe { curr.as_ref() };
            if &curr_ref.key != key {
                return Ok(false);
            }
            let next_word = curr_ref.next.load(Ordering::Acquire);
            if is_marked(next_word) {
                // Someone else is already deleting it; help by restarting (the next search
                // unlinks it).
                continue;
            }
            handle.check()?;
            // Logical deletion: set the mark bit.
            if curr_ref
                .next
                .compare_exchange(next_word, next_word | MARK, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // Physical deletion: best effort; if it fails a later traversal will do it (and
            // that traversal's winner retires the node).
            if self
                .link_of(bucket, prev)
                .compare_exchange(curr_word, next_word & !MARK, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: unlinked by this thread; unique owner of the retirement.
                unsafe { handle.retire(curr) };
            }
            return Ok(true);
        }
    }

    fn get_body(
        &self,
        handle: &mut HashMapHandle<K, V, R, P, A>,
        bucket: usize,
        key: &K,
    ) -> Result<Option<V>, Neutralized> {
        let (_prev, curr_word) = self.search(handle, bucket, key)?;
        if let Some(curr) = NonNull::new(ptr_of(curr_word) as *mut HashMapNode<K, V>) {
            // SAFETY: protected by the search above.
            let curr_ref = unsafe { curr.as_ref() };
            if &curr_ref.key == key && !is_marked(curr_ref.next.load(Ordering::Acquire)) {
                return Ok(Some(curr_ref.value.clone()));
            }
        }
        Ok(None)
    }

    /// Runs an operation body with the standard leave/enter-quiescent-state wrapper and the
    /// DEBRA+ recovery protocol (restart the bucket operation after neutralization).
    fn run_op<Out>(
        &self,
        handle: &mut HashMapHandle<K, V, R, P, A>,
        mut body: impl FnMut(&Self, &mut HashMapHandle<K, V, R, P, A>) -> Result<Out, Neutralized>,
    ) -> Out {
        loop {
            handle.leave_qstate();
            match body(self, handle) {
                Ok(out) => {
                    handle.enter_qstate();
                    return out;
                }
                Err(Neutralized) => {
                    // Recovery (paper, Section 5): nothing this operation published needs
                    // helping — updates that passed their decision CAS run to completion
                    // without checkpoints — so recovery is simply: release restricted
                    // hazard pointers, acknowledge, retry from the bucket head.
                    handle.r_unprotect_all();
                    handle.begin_recovery();
                }
            }
        }
    }

    /// Counts the elements by a full traversal of every bucket; test/diagnostic helper.
    ///
    /// Like its twin `HarrisMichaelList::len`, the traversal relies on the operation's
    /// non-quiescent announcement and announces no per-node protection, which only
    /// epoch-style schemes honor.  Under protection-based schemes (HP, ThreadScan, IBR)
    /// it must not race with concurrent removals — call it only when no other thread is
    /// updating the map (e.g. after workers have joined, as the test suites do).
    pub fn len(&self, handle: &mut HashMapHandle<K, V, R, P, A>) -> usize {
        handle.leave_qstate();
        let mut n = 0;
        for bucket in self.buckets.iter() {
            let mut word = bucket.load(Ordering::Acquire);
            while let Some(node) = NonNull::new(ptr_of(word) as *mut HashMapNode<K, V>) {
                // SAFETY: under epoch schemes the non-quiescent announcement keeps every
                // node alive; under protection-based schemes the documented precondition
                // (no concurrent updates) does.
                let r = unsafe { node.as_ref() };
                let next = r.next.load(Ordering::Acquire);
                if !is_marked(next) {
                    n += 1;
                }
                word = next;
            }
        }
        handle.enter_qstate();
        n
    }

    /// Returns `true` if the map is empty (diagnostic helper).
    pub fn is_empty(&self, handle: &mut HashMapHandle<K, V, R, P, A>) -> bool {
        self.len(handle) == 0
    }

    /// Per-bucket chain lengths (unmarked nodes only); diagnostic helper for load-factor
    /// and skew inspection.  Same concurrency precondition as [`Self::len`].
    pub fn bucket_histogram(&self, handle: &mut HashMapHandle<K, V, R, P, A>) -> Vec<usize> {
        handle.leave_qstate();
        let mut out = Vec::with_capacity(self.buckets.len());
        for bucket in self.buckets.iter() {
            let mut n = 0;
            let mut word = bucket.load(Ordering::Acquire);
            while let Some(node) = NonNull::new(ptr_of(word) as *mut HashMapNode<K, V>) {
                // SAFETY: as in `len`.
                let r = unsafe { node.as_ref() };
                let next = r.next.load(Ordering::Acquire);
                if !is_marked(next) {
                    n += 1;
                }
                word = next;
            }
            out.push(n);
        }
        handle.enter_qstate();
        out
    }
}

impl<K, V, R, P, A> ConcurrentMap<K, V> for LockFreeHashMap<K, V, R, P, A>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<HashMapNode<K, V>>,
    P: Pool<HashMapNode<K, V>>,
    A: Allocator<HashMapNode<K, V>>,
{
    type Handle = HashMapHandle<K, V, R, P, A>;

    fn register(&self, tid: usize) -> Result<Self::Handle, RegistrationError> {
        self.manager.register(tid)
    }

    fn insert(&self, handle: &mut Self::Handle, key: K, value: V) -> bool {
        let bucket = self.bucket_of(&key);
        self.run_op(handle, |this, h| this.insert_body(h, bucket, &key, &value))
    }

    fn remove(&self, handle: &mut Self::Handle, key: &K) -> bool {
        let bucket = self.bucket_of(key);
        self.run_op(handle, |this, h| this.remove_body(h, bucket, key))
    }

    fn contains(&self, handle: &mut Self::Handle, key: &K) -> bool {
        let bucket = self.bucket_of(key);
        self.run_op(handle, |this, h| this.get_body(h, bucket, key)).is_some()
    }

    fn get(&self, handle: &mut Self::Handle, key: &K) -> Option<V> {
        let bucket = self.bucket_of(key);
        self.run_op(handle, |this, h| this.get_body(h, bucket, key))
    }
}

impl<K, V, R, P, A> Drop for LockFreeHashMap<K, V, R, P, A>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<HashMapNode<K, V>>,
    P: Pool<HashMapNode<K, V>>,
    A: Allocator<HashMapNode<K, V>>,
{
    fn drop(&mut self) {
        // Free every node still reachable from any bucket head.  At this point the caller
        // guarantees exclusive access (we have `&mut self`).
        let mut alloc = self.manager.teardown_allocator();
        for bucket in self.buckets.iter_mut() {
            let mut word = *bucket.get_mut();
            while let Some(node) = NonNull::new(ptr_of(word) as *mut HashMapNode<K, V>) {
                // SAFETY: exclusive access during drop; each reachable node freed once.
                unsafe {
                    word = node.as_ref().next.load(Ordering::Relaxed);
                    debra::AllocatorThread::deallocate(&mut alloc, node);
                }
            }
        }
    }
}

impl<K, V, R, P, A> fmt::Debug for LockFreeHashMap<K, V, R, P, A>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<HashMapNode<K, V>>,
    P: Pool<HashMapNode<K, V>>,
    A: Allocator<HashMapNode<K, V>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockFreeHashMap")
            .field("buckets", &self.buckets.len())
            .field("reclaimer", &R::name())
            .finish()
    }
}

// SAFETY: the map is a shared concurrent structure; all shared mutable state is accessed
// through atomics, and nodes are `Send` because K and V are.
unsafe impl<K, V, R, P, A> Send for LockFreeHashMap<K, V, R, P, A>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<HashMapNode<K, V>>,
    P: Pool<HashMapNode<K, V>>,
    A: Allocator<HashMapNode<K, V>>,
{
}
unsafe impl<K, V, R, P, A> Sync for LockFreeHashMap<K, V, R, P, A>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<HashMapNode<K, V>>,
    P: Pool<HashMapNode<K, V>>,
    A: Allocator<HashMapNode<K, V>>,
{
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::{Debra, DebraPlus};
    use smr_alloc::{BumpAllocator, SystemAllocator, ThreadPool};
    use smr_baselines::HazardPointers;
    use smr_ibr::Ibr;

    type Node = HashMapNode<u64, u64>;
    type DebraMap = LockFreeHashMap<u64, u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;

    fn new_map(threads: usize, buckets: usize) -> DebraMap {
        let manager = Arc::new(RecordManager::new(threads));
        LockFreeHashMap::with_buckets(manager, buckets)
    }

    #[test]
    fn sequential_map_semantics() {
        let map = new_map(1, 16);
        let mut h = map.register(0).unwrap();
        assert!(!map.contains(&mut h, &5));
        assert!(map.insert(&mut h, 5, 50));
        assert!(!map.insert(&mut h, 5, 51), "duplicate insert must fail");
        assert!(map.contains(&mut h, &5));
        assert_eq!(map.get(&mut h, &5), Some(50));
        assert!(map.remove(&mut h, &5));
        assert!(!map.remove(&mut h, &5));
        assert!(!map.contains(&mut h, &5));
        assert_eq!(map.len(&mut h), 0);
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        let map = new_map(1, 100);
        assert_eq!(map.bucket_count(), 128);
        let map = new_map(1, 1);
        assert_eq!(map.bucket_count(), 1);
    }

    #[test]
    fn single_bucket_degrades_to_a_sorted_list() {
        // Every key collides: the map must still be a correct set.
        let map = new_map(1, 1);
        let mut h = map.register(0).unwrap();
        let keys = [9u64, 1, 7, 3, 5, 2, 8, 0, 6, 4];
        for &k in &keys {
            assert!(map.insert(&mut h, k, k * 10));
        }
        assert_eq!(map.len(&mut h), keys.len());
        for &k in &keys {
            assert_eq!(map.get(&mut h, &k), Some(k * 10));
        }
        let histogram = map.bucket_histogram(&mut h);
        assert_eq!(histogram, vec![keys.len()]);
        for &k in &keys {
            assert!(map.remove(&mut h, &k));
        }
        assert!(map.is_empty(&mut h));
    }

    #[test]
    fn matches_a_sequential_model() {
        use std::collections::HashMap;
        let map = new_map(1, 8); // few buckets => long chains, real collisions
        let mut h = map.register(0).unwrap();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut x: u64 = 0x243F6A8885A308D3;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 64;
            match (x >> 60) % 3 {
                0 => assert_eq!(map.insert(&mut h, key, key), model.insert(key, key).is_none()),
                1 => assert_eq!(map.remove(&mut h, &key), model.remove(&key).is_some()),
                _ => assert_eq!(map.contains(&mut h, &key), model.contains_key(&key)),
            }
        }
        assert_eq!(map.len(&mut h), model.len());
        for (k, v) in model {
            assert_eq!(map.get(&mut h, &k), Some(v));
        }
    }

    #[test]
    fn concurrent_disjoint_inserts_and_removes() {
        let threads = 4;
        let per_thread = 2_000u64;
        let map = Arc::new(new_map(threads, 64));
        let mut joins = Vec::new();
        for t in 0..threads as u64 {
            let map = Arc::clone(&map);
            joins.push(std::thread::spawn(move || {
                let mut h = map.register(t as usize).unwrap();
                for i in 0..per_thread {
                    let k = t * per_thread + i;
                    assert!(map.insert(&mut h, k, k));
                }
                for i in 0..per_thread {
                    let k = t * per_thread + i;
                    assert!(map.contains(&mut h, &k));
                }
                for i in (0..per_thread).step_by(2) {
                    let k = t * per_thread + i;
                    assert!(map.remove(&mut h, &k));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut h = map.register(0).unwrap();
        assert_eq!(map.len(&mut h), (threads as u64 * per_thread / 2) as usize);
    }

    /// The contended test, repeated for the schemes with non-trivial per-access protocols:
    /// hazard pointers (validated announcements), DEBRA+ (neutralization restarts) and IBR
    /// (birth/retire era tags).  Few buckets, so threads genuinely collide per chain.
    macro_rules! contended_under {
        ($name:ident, $recl:ty, $alloc:ident) => {
            #[test]
            fn $name() {
                type Map = LockFreeHashMap<u64, u64, $recl, ThreadPool<Node>, $alloc<Node>>;
                let threads = 4;
                let manager = Arc::new(RecordManager::new(threads + 1));
                let map: Arc<Map> = Arc::new(LockFreeHashMap::with_buckets(manager, 4));
                let mut joins = Vec::new();
                for t in 0..threads {
                    let map = Arc::clone(&map);
                    joins.push(std::thread::spawn(move || {
                        let mut h = map.register(t).unwrap();
                        let mut net: i64 = 0;
                        for i in 0..5_000u64 {
                            let k = i % 16;
                            if (i + t as u64).is_multiple_of(2) {
                                if map.insert(&mut h, k, k) {
                                    net += 1;
                                }
                            } else if map.remove(&mut h, &k) {
                                net -= 1;
                            }
                        }
                        net
                    }));
                }
                let net_total: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
                let mut h = map.register(threads).unwrap();
                assert_eq!(
                    map.len(&mut h) as i64,
                    net_total,
                    "net successful inserts must equal final size"
                );
                let stats = map.manager().reclaimer().stats();
                assert!(stats.retired > 0, "contended removes must retire nodes");
                assert!(stats.reclaimed <= stats.retired);
            }
        };
    }

    contended_under!(contended_under_debra, Debra<Node>, SystemAllocator);
    contended_under!(contended_under_debra_plus, DebraPlus<Node>, SystemAllocator);
    contended_under!(contended_under_hazard_pointers, HazardPointers<Node>, SystemAllocator);
    contended_under!(contended_under_ibr, Ibr<Node>, BumpAllocator);
}

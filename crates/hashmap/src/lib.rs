//! A lock-free hash map written against the **safe guard layer** of the Record Manager
//! abstraction.
//!
//! The map is a **fixed-size bucket array of Harris–Michael lists**: each bucket holds the
//! head link of a sorted lock-free linked list (mark tag in the low bit of every `next`
//! link), and a key is routed to its bucket by hashing.  This is the classic lock-free
//! hash table of Michael ("High Performance Dynamic Lock-Free Hash Tables and List-Based
//! Sets", SPAA 2002), restricted to a fixed bucket count — no resizing — which keeps every
//! operation strictly per-bucket.
//!
//! Like the structures in `lockfree-ds`, the map is written **once** and is parameterized
//! by the reclamation scheme, the pool and the allocator through a
//! [`Domain`]; swapping any of them is a one-line change of type parameters.  The map runs
//! under every scheme in this repository (None, EBR, HP, ThreadScan, IBR, DEBRA, DEBRA+).
//!
//! # Protection discipline (HP / ThreadScan / IBR)
//!
//! A bucket traversal holds at most **two** protected records at a time — the node being
//! inspected and its predecessor — exactly like the stand-alone Harris–Michael list, but
//! the protocol now lives entirely inside the guard layer:
//!
//! * [`Shield::protect`](debra::Shield::protect) announces the node *before* its fields
//!   are read and validates by re-reading the link that led to it (bucket head or the
//!   predecessor's `next` link, full word, mark tag included).  If the link changed, the
//!   traversal restarts from the bucket head: the node may already have been retired, so
//!   its fields must not be touched.
//! * Advancing the traversal is a `std::mem::swap` of the two shields, which moves the
//!   protection *roles* without touching the announcements.
//!
//! Epoch-based schemes compile both announcements down to nothing; IBR extends the
//! thread's reservation interval inside the same protect/check checkpoints.
//!
//! > Note: the bucket-chain protocol below is deliberately the same algorithm as
//! > [`lockfree_ds::list`]'s stand-alone list.  The two are audit twins: a correctness
//! > fix in either search/validate/unlink path almost certainly applies to the other.
//!
//! # Neutralization (DEBRA+)
//!
//! Every operation body is a sequence of checkpoints ([`Guard::check`](debra::Guard::check)
//! before each dereference and each CAS, folded into `protect`).  When a checkpoint
//! reports a [`Restart`], the operation unwinds to
//! [`DomainHandle::run`](debra::DomainHandle::run), which releases restricted hazard
//! pointers, acknowledges the signal and **restarts the whole bucket operation** from the
//! bucket head.  Nothing an interrupted operation published needs helping: an insert whose
//! CAS has not yet succeeded recycles its private node through
//! [`Guard::discard`](debra::Guard::discard), and one whose CAS succeeded runs no further
//! checkpoints before returning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use debra::{
    Allocator, Atomic, Domain, DomainHandle, Guard, Pool, Reclaimer, RecordManager,
    RegistrationError, Restart, Shared, Shield,
};
use lockfree_ds::ConcurrentMap;

/// Mark (logical deletion) tag stored in the low bit of a node's `next` link.
const MARK: usize = 1;

/// Default number of buckets used by [`LockFreeHashMap::new`].
pub const DEFAULT_BUCKETS: usize = 256;

/// A node of [`LockFreeHashMap`]: one key/value pair in one bucket's list.
///
/// `next` packs the successor pointer and the *mark* tag: a marked node has been logically
/// deleted and will be retired by whichever thread physically unlinks it.
pub struct HashMapNode<K, V> {
    key: K,
    value: V,
    next: Atomic<HashMapNode<K, V>>,
}

impl<K, V> HashMapNode<K, V> {
    /// The node's key.
    pub fn key(&self) -> &K {
        &self.key
    }

    /// The node's value.
    pub fn value(&self) -> &V {
        &self.value
    }
}

impl<K: fmt::Debug, V> fmt::Debug for HashMapNode<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HashMapNode").field("key", &self.key).field("next", &self.next).finish()
    }
}

/// A lock-free hash map (fixed bucket array of Harris–Michael lists), parameterized by the
/// Record Manager (reclaimer `R`, pool `P`, allocator `A`) through a [`Domain`].
///
/// See the crate docs for the algorithm and the per-scheme protection discipline.
pub struct LockFreeHashMap<K, V, R, P, A>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<HashMapNode<K, V>>,
    P: Pool<HashMapNode<K, V>>,
    A: Allocator<HashMapNode<K, V>>,
{
    /// Head link per bucket.  The bucket count is a power of two so routing is a mask.
    buckets: Box<[Atomic<HashMapNode<K, V>>]>,
    mask: usize,
    domain: Domain<HashMapNode<K, V>, R, P, A>,
}

/// Shorthand for the per-thread handle type used by [`LockFreeHashMap`]: a domain lease
/// that pins guards without per-operation registry lookups.  Obtained with
/// [`ConcurrentMap::register`] (slots are leased automatically) and usable only on the
/// thread that created it.
pub type HashMapHandle<K, V, R, P, A> = DomainHandle<HashMapNode<K, V>, R, P, A>;

/// Shorthand for the guard type of [`LockFreeHashMap`] operations.
pub type HashMapGuard<K, V, R, P, A> = Guard<HashMapNode<K, V>, R, P, A>;

impl<K, V, R, P, A> LockFreeHashMap<K, V, R, P, A>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<HashMapNode<K, V>>,
    P: Pool<HashMapNode<K, V>>,
    A: Allocator<HashMapNode<K, V>>,
{
    /// Creates an empty map with [`DEFAULT_BUCKETS`] buckets backed by `manager`.
    pub fn new(manager: Arc<RecordManager<HashMapNode<K, V>, R, P, A>>) -> Self {
        Self::with_buckets(manager, DEFAULT_BUCKETS)
    }

    /// Creates an empty map with at least `buckets` buckets (rounded up to a power of two).
    pub fn with_buckets(
        manager: Arc<RecordManager<HashMapNode<K, V>, R, P, A>>,
        buckets: usize,
    ) -> Self {
        Self::in_domain(Domain::with_manager(manager), buckets)
    }

    /// Creates an empty map backed by an existing [`Domain`] (sharing its thread leases).
    pub fn in_domain(domain: Domain<HashMapNode<K, V>, R, P, A>, buckets: usize) -> Self {
        let n = buckets.max(1).next_power_of_two();
        LockFreeHashMap { buckets: (0..n).map(|_| Atomic::null()).collect(), mask: n - 1, domain }
    }

    /// The Record Manager backing this map.
    pub fn manager(&self) -> &Arc<RecordManager<HashMapNode<K, V>, R, P, A>> {
        self.domain.manager()
    }

    /// The reclamation domain backing this map.
    pub fn domain(&self) -> &Domain<HashMapNode<K, V>, R, P, A> {
        &self.domain
    }

    /// The number of buckets (a power of two, fixed at construction).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Leases a per-thread handle; see [`ConcurrentMap::register`] (the domain leases
    /// slots automatically — no manual `tid` bookkeeping).
    pub fn register(&self) -> Result<HashMapHandle<K, V, R, P, A>, RegistrationError> {
        self.domain.try_handle()
    }

    /// Routes `key` to its bucket index.
    #[inline]
    fn bucket_of(&self, key: &K) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) & self.mask
    }

    /// The link holding the pointer to the traversal's current node: the predecessor's
    /// `next` link, or the bucket head when there is no predecessor.
    #[inline]
    fn link_of<'g>(
        &'g self,
        bucket: usize,
        prev: Shared<'g, HashMapNode<K, V>>,
    ) -> &'g Atomic<HashMapNode<K, V>> {
        match prev.as_ref() {
            Some(p) => &p.next,
            None => &self.buckets[bucket],
        }
    }

    /// Finds the first node in `key`'s bucket with key >= `key` (`curr`, null if none)
    /// and its predecessor (`prev`, null when `curr` hangs off the bucket head),
    /// physically unlinking (and retiring) marked nodes encountered on the way.  On
    /// return both nodes are still protected by the caller-supplied shields, so the
    /// caller may dereference them and CAS on the predecessor's link.
    ///
    /// Returns [`Restart`] only for DEBRA+ neutralization; protection-validation
    /// failures (HP / ThreadScan / IBR) restart the traversal internally.
    #[allow(clippy::type_complexity)]
    fn search<'g>(
        &self,
        guard: &'g HashMapGuard<K, V, R, P, A>,
        bucket: usize,
        key: &K,
        prev_shield: &mut Shield<'g, HashMapNode<K, V>, R, P, A>,
        curr_shield: &mut Shield<'g, HashMapNode<K, V>, R, P, A>,
    ) -> Result<(Shared<'g, HashMapNode<K, V>>, Shared<'g, HashMapNode<K, V>>), Restart> {
        'retry: loop {
            guard.check()?;
            let mut prev: Shared<'g, HashMapNode<K, V>> = Shared::null();
            let mut curr_word = self.buckets[bucket].load(Ordering::Acquire, guard);
            loop {
                // Protect-and-validate the node `curr_word` points to (`protect_loaded`
                // folds in the per-node neutralization checkpoint).  A failure means the
                // link changed under us or is now marked — the node may already be
                // retired: restart from the bucket head.  The validating comparison is on
                // the full link word, mark tag included, exactly as Michael's algorithm
                // requires.
                let link = self.link_of(bucket, prev);
                let Ok(curr) = curr_shield.protect_loaded(link, curr_word) else {
                    continue 'retry;
                };
                let Some(curr_ref) = curr.as_ref() else {
                    return Ok((prev, curr));
                };
                let next = curr_ref.next.load(Ordering::Acquire, guard);

                if next.tag() == MARK {
                    // Logically deleted: try to unlink it.  Whoever wins the CAS owns the
                    // retirement of `curr`.
                    let unlink_to = next.with_tag(0);
                    match link.compare_exchange(
                        curr,
                        unlink_to,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    ) {
                        Ok(()) => {
                            // `curr` was just unlinked by this thread (unique CAS winner)
                            // and is no longer reachable from the bucket head; it is
                            // retired exactly once, here (the guard's documented
                            // contract).
                            guard.retire(curr);
                            curr_word = unlink_to;
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }

                if curr_ref.key >= *key {
                    return Ok((prev, curr));
                }
                // Advance: `curr` becomes the predecessor (shield roles swap, no stores).
                prev_shield.swap_roles(curr_shield);
                prev = curr;
                curr_word = next;
            }
        }
    }

    fn insert_body(
        &self,
        guard: &HashMapGuard<K, V, R, P, A>,
        bucket: usize,
        key: &K,
        value: &V,
    ) -> Result<bool, Restart> {
        let mut prev_shield = guard.shield();
        let mut curr_shield = guard.shield();
        loop {
            let (prev, curr) =
                self.search(guard, bucket, key, &mut prev_shield, &mut curr_shield)?;
            if let Some(curr_ref) = curr.as_ref() {
                if &curr_ref.key == key {
                    return Ok(false);
                }
            }
            let node = guard.alloc(HashMapNode {
                key: key.clone(),
                value: value.clone(),
                next: Atomic::from_shared(curr),
            });
            if let Err(restart) = guard.check() {
                // Not yet published: recycle immediately, then unwind to recovery.
                guard.discard(node);
                return Err(restart);
            }
            match self.link_of(bucket, prev).compare_exchange_owned(
                curr,
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(_) => return Ok(true),
                Err(node) => {
                    // The node was never made reachable; recycle it and retry.
                    guard.discard(node);
                    continue;
                }
            }
        }
    }

    fn remove_body(
        &self,
        guard: &HashMapGuard<K, V, R, P, A>,
        bucket: usize,
        key: &K,
    ) -> Result<bool, Restart> {
        let mut prev_shield = guard.shield();
        let mut curr_shield = guard.shield();
        loop {
            let (prev, curr) =
                self.search(guard, bucket, key, &mut prev_shield, &mut curr_shield)?;
            let Some(curr_ref) = curr.as_ref() else {
                return Ok(false);
            };
            if &curr_ref.key != key {
                return Ok(false);
            }
            let next = curr_ref.next.load(Ordering::Acquire, guard);
            if next.tag() == MARK {
                // Someone else is already deleting it; help by restarting (the next
                // search unlinks it).
                continue;
            }
            guard.check()?;
            // Logical deletion: set the mark tag.
            if curr_ref
                .next
                .compare_exchange(
                    next,
                    next.with_tag(MARK),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                )
                .is_err()
            {
                continue;
            }
            // Physical deletion: best effort; if it fails a later traversal will do it
            // (and that traversal's winner retires the node).
            if self
                .link_of(bucket, prev)
                .compare_exchange(
                    curr,
                    next.with_tag(0),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                )
                .is_ok()
            {
                // Unlinked by this thread: unique owner of the retirement.
                guard.retire(curr);
            }
            return Ok(true);
        }
    }

    fn get_body(
        &self,
        guard: &HashMapGuard<K, V, R, P, A>,
        bucket: usize,
        key: &K,
    ) -> Result<Option<V>, Restart> {
        let mut prev_shield = guard.shield();
        let mut curr_shield = guard.shield();
        let (_prev, curr) = self.search(guard, bucket, key, &mut prev_shield, &mut curr_shield)?;
        if let Some(curr_ref) = curr.as_ref() {
            if &curr_ref.key == key && curr_ref.next.load(Ordering::Acquire, guard).tag() == 0 {
                return Ok(Some(curr_ref.value.clone()));
            }
        }
        Ok(None)
    }

    /// Counts the elements by a full traversal of every bucket; test/diagnostic helper.
    ///
    /// Like its twin `HarrisMichaelList::len`, the traversal relies on the operation's
    /// guard and announces no per-node protection, which only epoch-style schemes honor.
    /// Under protection-based schemes (HP, ThreadScan, IBR) it must not race with
    /// concurrent removals — call it only when no other thread is updating the map
    /// (e.g. after workers have joined, as the test suites do).
    pub fn len(&self, handle: &mut HashMapHandle<K, V, R, P, A>) -> usize {
        handle.run(|guard| {
            let mut n = 0;
            for bucket in self.buckets.iter() {
                let mut curr = bucket.load(Ordering::Acquire, guard);
                while let Some(node) = curr.as_ref() {
                    let next = node.next.load(Ordering::Acquire, guard);
                    if next.tag() == 0 {
                        n += 1;
                    }
                    curr = next;
                }
            }
            Ok(n)
        })
    }

    /// Returns `true` if the map is empty (diagnostic helper).
    pub fn is_empty(&self, handle: &mut HashMapHandle<K, V, R, P, A>) -> bool {
        self.len(handle) == 0
    }

    /// Per-bucket chain lengths (unmarked nodes only); diagnostic helper for load-factor
    /// and skew inspection.  Same concurrency precondition as [`Self::len`].
    pub fn bucket_histogram(&self, handle: &mut HashMapHandle<K, V, R, P, A>) -> Vec<usize> {
        handle.run(|guard| {
            let mut out = Vec::with_capacity(self.buckets.len());
            for bucket in self.buckets.iter() {
                let mut n = 0;
                let mut curr = bucket.load(Ordering::Acquire, guard);
                while let Some(node) = curr.as_ref() {
                    let next = node.next.load(Ordering::Acquire, guard);
                    if next.tag() == 0 {
                        n += 1;
                    }
                    curr = next;
                }
                out.push(n);
            }
            Ok(out)
        })
    }
}

impl<K, V, R, P, A> ConcurrentMap<K, V> for LockFreeHashMap<K, V, R, P, A>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<HashMapNode<K, V>>,
    P: Pool<HashMapNode<K, V>>,
    A: Allocator<HashMapNode<K, V>>,
{
    type Handle = HashMapHandle<K, V, R, P, A>;

    fn register(&self) -> Result<Self::Handle, RegistrationError> {
        self.domain.try_handle()
    }

    fn insert(&self, handle: &mut Self::Handle, key: K, value: V) -> bool {
        let bucket = self.bucket_of(&key);
        handle.run(|guard| self.insert_body(guard, bucket, &key, &value))
    }

    fn remove(&self, handle: &mut Self::Handle, key: &K) -> bool {
        let bucket = self.bucket_of(key);
        handle.run(|guard| self.remove_body(guard, bucket, key))
    }

    fn contains(&self, handle: &mut Self::Handle, key: &K) -> bool {
        let bucket = self.bucket_of(key);
        handle.run(|guard| self.get_body(guard, bucket, key)).is_some()
    }

    fn get(&self, handle: &mut Self::Handle, key: &K) -> Option<V> {
        let bucket = self.bucket_of(key);
        handle.run(|guard| self.get_body(guard, bucket, key))
    }
}

impl<K, V, R, P, A> Drop for LockFreeHashMap<K, V, R, P, A>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<HashMapNode<K, V>>,
    P: Pool<HashMapNode<K, V>>,
    A: Allocator<HashMapNode<K, V>>,
{
    fn drop(&mut self) {
        for bucket in self.buckets.iter() {
            // Exclusive access during drop (`&mut self`); every node still reachable
            // from a bucket head is freed exactly once (chains are disjoint).
            self.domain.free_reachable(bucket.load_ptr(Ordering::Relaxed), |node| {
                node.next.load_ptr(Ordering::Relaxed)
            });
        }
    }
}

impl<K, V, R, P, A> fmt::Debug for LockFreeHashMap<K, V, R, P, A>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<HashMapNode<K, V>>,
    P: Pool<HashMapNode<K, V>>,
    A: Allocator<HashMapNode<K, V>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockFreeHashMap")
            .field("buckets", &self.buckets.len())
            .field("reclaimer", &R::name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::{Debra, DebraPlus};
    use smr_alloc::{BumpAllocator, SystemAllocator, ThreadPool};
    use smr_baselines::HazardPointers;
    use smr_ibr::Ibr;

    type Node = HashMapNode<u64, u64>;
    type DebraMap = LockFreeHashMap<u64, u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;

    fn new_map(threads: usize, buckets: usize) -> DebraMap {
        let manager = Arc::new(RecordManager::new(threads));
        LockFreeHashMap::with_buckets(manager, buckets)
    }

    #[test]
    fn sequential_map_semantics() {
        let map = new_map(1, 16);
        let mut h = map.register().unwrap();
        assert!(!map.contains(&mut h, &5));
        assert!(map.insert(&mut h, 5, 50));
        assert!(!map.insert(&mut h, 5, 51), "duplicate insert must fail");
        assert!(map.contains(&mut h, &5));
        assert_eq!(map.get(&mut h, &5), Some(50));
        assert!(map.remove(&mut h, &5));
        assert!(!map.remove(&mut h, &5));
        assert!(!map.contains(&mut h, &5));
        assert_eq!(map.len(&mut h), 0);
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        let map = new_map(1, 100);
        assert_eq!(map.bucket_count(), 128);
        let map = new_map(1, 1);
        assert_eq!(map.bucket_count(), 1);
    }

    #[test]
    fn single_bucket_degrades_to_a_sorted_list() {
        // Every key collides: the map must still be a correct set.
        let map = new_map(1, 1);
        let mut h = map.register().unwrap();
        let keys = [9u64, 1, 7, 3, 5, 2, 8, 0, 6, 4];
        for &k in &keys {
            assert!(map.insert(&mut h, k, k * 10));
        }
        assert_eq!(map.len(&mut h), keys.len());
        for &k in &keys {
            assert_eq!(map.get(&mut h, &k), Some(k * 10));
        }
        let histogram = map.bucket_histogram(&mut h);
        assert_eq!(histogram, vec![keys.len()]);
        for &k in &keys {
            assert!(map.remove(&mut h, &k));
        }
        assert!(map.is_empty(&mut h));
    }

    #[test]
    fn matches_a_sequential_model() {
        use std::collections::HashMap;
        let map = new_map(1, 8); // few buckets => long chains, real collisions
        let mut h = map.register().unwrap();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut x: u64 = 0x243F6A8885A308D3;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 64;
            match (x >> 60) % 3 {
                0 => assert_eq!(map.insert(&mut h, key, key), model.insert(key, key).is_none()),
                1 => assert_eq!(map.remove(&mut h, &key), model.remove(&key).is_some()),
                _ => assert_eq!(map.contains(&mut h, &key), model.contains_key(&key)),
            }
        }
        assert_eq!(map.len(&mut h), model.len());
        for (k, v) in model {
            assert_eq!(map.get(&mut h, &k), Some(v));
        }
    }

    #[test]
    fn concurrent_disjoint_inserts_and_removes() {
        let threads = 4;
        let per_thread = 2_000u64;
        let map = Arc::new(new_map(threads, 64));
        let mut joins = Vec::new();
        for t in 0..threads as u64 {
            let map = Arc::clone(&map);
            joins.push(std::thread::spawn(move || {
                let mut h = map.register().unwrap();
                for i in 0..per_thread {
                    let k = t * per_thread + i;
                    assert!(map.insert(&mut h, k, k));
                }
                for i in 0..per_thread {
                    let k = t * per_thread + i;
                    assert!(map.contains(&mut h, &k));
                }
                for i in (0..per_thread).step_by(2) {
                    let k = t * per_thread + i;
                    assert!(map.remove(&mut h, &k));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut h = map.register().unwrap();
        assert_eq!(map.len(&mut h), (threads as u64 * per_thread / 2) as usize);
    }

    /// The contended test, repeated for the schemes with non-trivial per-access protocols:
    /// hazard pointers (validated announcements), DEBRA+ (neutralization restarts) and IBR
    /// (birth/retire era tags).  Few buckets, so threads genuinely collide per chain.
    macro_rules! contended_under {
        ($name:ident, $recl:ty, $alloc:ident) => {
            #[test]
            fn $name() {
                type Map = LockFreeHashMap<u64, u64, $recl, ThreadPool<Node>, $alloc<Node>>;
                let threads = 4;
                let manager = Arc::new(RecordManager::new(threads + 1));
                let map: Arc<Map> = Arc::new(LockFreeHashMap::with_buckets(manager, 4));
                let mut joins = Vec::new();
                for t in 0..threads {
                    let map = Arc::clone(&map);
                    joins.push(std::thread::spawn(move || {
                        let mut h = map.register().unwrap();
                        let mut net: i64 = 0;
                        for i in 0..5_000u64 {
                            let k = i % 16;
                            if (i + t as u64).is_multiple_of(2) {
                                if map.insert(&mut h, k, k) {
                                    net += 1;
                                }
                            } else if map.remove(&mut h, &k) {
                                net -= 1;
                            }
                        }
                        net
                    }));
                }
                let net_total: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
                let mut h = map.register().unwrap();
                assert_eq!(
                    map.len(&mut h) as i64,
                    net_total,
                    "net successful inserts must equal final size"
                );
                let stats = map.manager().reclaimer().stats();
                assert!(stats.retired > 0, "contended removes must retire nodes");
                assert!(stats.reclaimed <= stats.retired);
            }
        };
    }

    contended_under!(contended_under_debra, Debra<Node>, SystemAllocator);
    contended_under!(contended_under_debra_plus, DebraPlus<Node>, SystemAllocator);
    contended_under!(contended_under_hazard_pointers, HazardPointers<Node>, SystemAllocator);
    contended_under!(contended_under_ibr, Ibr<Node>, BumpAllocator);
}

//! The process-global, per-type page store: mapped pages carved into typed slots.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use std::mem::{size_of, MaybeUninit};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use blockbag::{Block, SharedBlockBag, DEFAULT_BLOCK_CAPACITY};

/// Bytes per mapped page (the carving granularity; a multiple of common OS page sizes
/// so a page's slots share a small set of TLB entries).
pub const PAGE_BYTES: usize = 64 * 1024;

/// Number of `T`-slots carved out of one page (at least one, so oversized records
/// degenerate to one-slot pages instead of failing).
fn slots_per_page<T>() -> usize {
    (PAGE_BYTES / size_of::<T>().max(1)).max(1)
}

/// Bookkeeping for one mapped page (the slab itself is leaked; see [`PageStore`]).
struct PageMeta {
    base: usize,
    bytes: usize,
}

/// The global list of mapped pages for one record type, plus the shared free list of
/// carved slots.
///
/// One store exists per type per process (interned by [`store_for`]); it is never
/// dropped and its pages are never unmapped, which is what makes every slot address
/// **type-stable**: an address carved for `T` refers to `T`-shaped memory forever.
///
/// Slots move in and out of the store in whole [`Block`]s so the shared structures are
/// off the allocation hot path: per-thread caches ([`PageAllocatorThread`],
/// [`PagePoolThread`]) absorb the per-record traffic.
///
/// [`PageAllocatorThread`]: crate::PageAllocatorThread
/// [`PagePoolThread`]: crate::PagePoolThread
pub struct PageStore<T> {
    /// Mapped pages (base address + extent); the backing slabs are intentionally leaked.
    pages: Mutex<Vec<PageMeta>>,
    /// Carved slots not currently held by any thread-local cache.
    free: SharedBlockBag<T>,
    pages_mapped: AtomicU64,
    slots_total: AtomicU64,
    /// Free-slot gauge, maintained at block granularity by [`take_block`] /
    /// [`return_block`] (thread-locally cached slots count as live).
    ///
    /// [`take_block`]: PageStore::take_block
    /// [`return_block`]: PageStore::return_block
    slots_free: AtomicU64,
}

impl<T> PageStore<T> {
    fn new() -> Self {
        PageStore {
            pages: Mutex::new(Vec::new()),
            free: SharedBlockBag::new(),
            pages_mapped: AtomicU64::new(0),
            slots_total: AtomicU64::new(0),
            slots_free: AtomicU64::new(0),
        }
    }

    /// Takes a non-empty block of free slots, mapping a fresh page if the free list is
    /// exhausted.
    pub fn take_block(&self) -> Box<Block<T>> {
        if let Some(block) = self.free.pop_block() {
            self.slots_free.fetch_sub(block.len() as u64, Ordering::Relaxed);
            return block;
        }
        self.map_page()
    }

    /// Returns a block of free slots to the store.  Every slot must have been carved
    /// from this store and hold no live value.
    pub fn return_block(&self, block: Box<Block<T>>) {
        if block.is_empty() {
            return;
        }
        self.slots_free.fetch_add(block.len() as u64, Ordering::Relaxed);
        self.free.push_block(block);
    }

    /// Maps one page, records it in the page list, carves it into slots, parks all but
    /// the returned (non-empty) block on the free list.
    fn map_page(&self) -> Box<Block<T>> {
        let slots = slots_per_page::<T>();
        let mut slab: Vec<MaybeUninit<T>> = Vec::with_capacity(slots);
        // SAFETY: `MaybeUninit` contents require no initialization.
        unsafe { slab.set_len(slots) };
        // Leak the slab: the store owns the page for the process lifetime (type
        // stability forbids ever returning it to the system allocator), so there is no
        // owner to keep — only the bookkeeping entry below.
        let base: *mut MaybeUninit<T> = Box::into_raw(slab.into_boxed_slice()).cast();
        self.pages
            .lock()
            .expect("page list poisoned")
            .push(PageMeta { base: base as usize, bytes: slots * size_of::<T>() });
        // Tell the sanitizer's shadow table which type this page is bound to, so record
        // allocation can enforce the type-stability contract mechanically.
        #[cfg(feature = "smr_sanitize")]
        smr_check::shadow::note_typed_page(
            std::any::type_name::<T>(),
            base as usize,
            slots * size_of::<T>(),
        );
        self.pages_mapped.fetch_add(1, Ordering::Relaxed);
        self.slots_total.fetch_add(slots as u64, Ordering::Relaxed);

        let block_cap = DEFAULT_BLOCK_CAPACITY.min(slots);
        let mut keep: Box<Block<T>> = Block::with_capacity(block_cap);
        let mut i = 0usize;
        while i < slots && !keep.is_full() {
            // SAFETY: `base + i` is in bounds of the just-mapped slab and never null.
            keep.push(unsafe { NonNull::new_unchecked(base.add(i).cast::<T>()) });
            i += 1;
        }
        while i < slots {
            let mut b: Box<Block<T>> = Block::with_capacity(block_cap.min(slots - i));
            while i < slots && !b.is_full() {
                // SAFETY: as above.
                b.push(unsafe { NonNull::new_unchecked(base.add(i).cast::<T>()) });
                i += 1;
            }
            self.return_block(b);
        }
        keep
    }

    /// `true` if `ptr` lies inside one of this store's mapped pages (test/debug helper;
    /// takes the page-list lock).
    pub fn owns(&self, ptr: NonNull<T>) -> bool {
        let addr = ptr.as_ptr() as usize;
        self.pages
            .lock()
            .expect("page list poisoned")
            .iter()
            .any(|p| addr >= p.base && addr < p.base + p.bytes)
    }

    /// Number of pages mapped so far (never decreases).
    pub fn pages_mapped(&self) -> u64 {
        self.pages_mapped.load(Ordering::Relaxed)
    }

    /// Total slots carved so far (never decreases).
    pub fn slots_total(&self) -> u64 {
        self.slots_total.load(Ordering::Relaxed)
    }

    /// Slots currently on the store's shared free list (block-granularity gauge;
    /// thread-locally cached slots count as live).
    pub fn slots_free(&self) -> u64 {
        self.slots_free.load(Ordering::Relaxed)
    }
}

impl<T> fmt::Debug for PageStore<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageStore")
            .field("pages_mapped", &self.pages_mapped.load(Ordering::Relaxed))
            .field("slots_total", &self.slots_total.load(Ordering::Relaxed))
            .field("slots_free", &self.slots_free.load(Ordering::Relaxed))
            .finish()
    }
}

/// The process-global registry interning one [`PageStore`] per record type.
///
/// Entries are never removed — that, together with the store never unmapping pages, is
/// the whole type-stability argument: the store (and so every page) for a type lives as
/// long as the process once the first allocation happens.
type Registry = Mutex<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>;

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// Returns the process-wide page store for `T`, creating it on first use.
///
/// Every [`PageAllocator<T>`](crate::PageAllocator) and
/// [`PagePool<T>`](crate::PagePool) instance shares the store returned here, so slots
/// recycle across Record Manager instances and repeated trials reuse pages instead of
/// mapping new ones.
pub fn store_for<T: Send + 'static>() -> Arc<PageStore<T>> {
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = registry.lock().expect("page-store registry poisoned");
    let entry = map
        .entry(TypeId::of::<T>())
        .or_insert_with(|| Arc::new(PageStore::<T>::new()) as Arc<dyn Any + Send + Sync>);
    Arc::clone(entry).downcast::<PageStore<T>>().expect("registry entry matches its TypeId key")
}

#[cfg(test)]
mod tests {
    use super::*;

    // Private test types so concurrently running tests elsewhere in the workspace
    // cannot share (and thereby perturb) these stores.
    struct StoreProbeA(#[allow(dead_code)] u64);
    struct StoreProbeB(#[allow(dead_code)] u64);

    #[test]
    fn store_is_interned_per_type() {
        let a1 = store_for::<StoreProbeA>();
        let a2 = store_for::<StoreProbeA>();
        let b = store_for::<StoreProbeB>();
        assert!(Arc::ptr_eq(&a1, &a2), "same type must intern to the same store");
        assert_ne!(
            Arc::as_ptr(&a1) as usize,
            Arc::as_ptr(&b) as usize,
            "distinct types must get distinct stores"
        );
    }

    #[test]
    fn take_block_carves_pages_and_accounting_balances() {
        let store = store_for::<StoreProbeA>();
        let before_pages = store.pages_mapped();
        let block = store.take_block();
        assert!(!block.is_empty());
        assert!(store.pages_mapped() >= before_pages);
        for slot in block.iter() {
            assert!(store.owns(slot), "carved slots lie inside a mapped page");
        }
        let len = block.len() as u64;
        let free_before = store.slots_free();
        store.return_block(block);
        assert_eq!(store.slots_free(), free_before + len);
        // Taking again prefers the free list over mapping a new page.
        let pages = store.pages_mapped();
        let again = store.take_block();
        assert_eq!(store.pages_mapped(), pages, "free list must be preferred");
        store.return_block(again);
    }

    #[test]
    fn oversized_records_get_at_least_one_slot_per_page() {
        struct Huge(#[allow(dead_code)] [u8; 2 * PAGE_BYTES]);
        let store = store_for::<Huge>();
        let block = store.take_block();
        assert!(!block.is_empty());
        store.return_block(block);
    }
}

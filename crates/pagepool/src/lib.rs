//! Type-stable page-backed allocation for the Record Manager: the FreeAccess-style
//! allocation pipeline (Cohen, *"Every Data Structure Deserves Lock-Free Memory
//! Reclamation"*, OOPSLA 2018) as a drop-in [`Allocator`](debra::Allocator) /
//! [`Pool`](debra::Pool) pair.
//!
//! The subsystem has three layers:
//!
//! * **Page store** ([`PageStore`], one per record type per process) — a global list of
//!   mapped pages carved into fixed-size typed slots, plus a lock-free shared free list
//!   of carved slots.  Pages are **never unmapped**.
//! * **Page allocator** ([`PageAllocator`]) — the [`Allocator`](debra::Allocator) face
//!   of the store: a
//!   thread takes whole blocks of free slots from the store, serves allocations from a
//!   small local block cache, and returns freed slots block-at-a-time.
//! * **Magazine pool** ([`PagePool`]) — the [`Pool`](debra::Pool) face: every thread
//!   holds two
//!   bounded magazines of *recycled records* (records the reclaimer has proven
//!   unreachable, values still in place); overflow drains to a lock-free global pool so
//!   a thread that retires more than it allocates cannot hoard memory.
//!
//! Composed as `RecordManager<T, R, PagePool<T>, PageAllocator<T>>`, the retire→free
//! hot path touches no system allocator call: reclaimed records recycle thread-locally
//! through the magazines, magazine overflow flows through the shared pool, and even
//! records freed at teardown return to their page's free list instead of `free(3)`.
//!
//! # The type-stability contract
//!
//! **A slot address handed out for a type `T` is only ever reused for `T`, for the
//! lifetime of the process.**
//!
//! This holds structurally: the page store for `T` is a process-global keyed by
//! [`TypeId`](core::any::TypeId) (see [`store_for`]), every slot is carved from a page
//! owned by that store,
//! pages are never unmapped, and freed slots return to the same store they were carved
//! from.  Distinct `PageAllocator<T>` / `PagePool<T>` instances (across Record
//! Managers, `Domain`s, trials and tests) share one store per type, so recycling works
//! process-wide and repeated trials reuse pages instead of growing the heap.
//!
//! The contract is what optimistic-access schemes build on: VBR (version-based
//! reclamation) reads possibly-freed memory and validates afterwards, which is only
//! sound if the address still holds a record of the expected type and layout; automatic
//! reclamation similarly requires that a stale pointer dereference lands on typed
//! memory.  `DESIGN.md` §7 documents the design; `tests/pagepool.rs` property-tests the
//! contract.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc;
mod pool;
mod store;

pub use crate::alloc::{PageAllocator, PageAllocatorThread};
pub use crate::pool::{PagePool, PagePoolThread};
pub use crate::store::{store_for, PageStore, PAGE_BYTES};

//! The [`Allocator`] face of the page store.

use std::fmt;
use std::mem::size_of;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use blockbag::{Block, BlockBag, DEFAULT_BLOCK_CAPACITY};
use crossbeam_utils::CachePadded;
use debra::{Allocator, AllocatorThread};

use crate::store::{store_for, PageStore};

/// Blocks of free slots a thread parks locally before returning whole blocks to the
/// store.  Two blocks give alternating allocate/deallocate runs hysteresis: a thread
/// oscillating around a block boundary does not ping-pong blocks through the shared
/// free list.
const LOCAL_FREE_MAX_BLOCKS: usize = 2;

#[derive(Debug, Default)]
struct Counters {
    bytes: AtomicU64,
    records: AtomicU64,
}

/// A never-unmapping, type-stable page allocator (the [`Allocator`] face of the
/// process-global [`PageStore`] for `T`).
///
/// * [`allocate`](AllocatorThread::allocate) pops a slot from a thread-local block of
///   free slots, refilling block-at-a-time from the store (which carves a fresh page
///   only when its free list is empty).
/// * [`deallocate`](AllocatorThread::deallocate) drops the record's value and pushes
///   the slot back onto the local block; surplus blocks return to the store, so slots
///   freed at teardown (e.g. `Domain::free_reachable`) go back to their pages instead
///   of to `free(3)`.
///
/// The `allocated_bytes`/`allocated_records` counters report total demand reaching the
/// allocator (like the other allocators in `smr-alloc`): every `allocate` call counts,
/// whether it was served from a cached slot or a fresh page.
pub struct PageAllocator<T> {
    store: Arc<PageStore<T>>,
    counters: Box<[CachePadded<Counters>]>,
}

impl<T: Send + 'static> Allocator<T> for PageAllocator<T> {
    type Thread = PageAllocatorThread<T>;

    // The page store never unmaps a page and never re-types one (the interned
    // per-type store plus the `note_typed_page` contract, property-tested in
    // `tests/pagepool.rs`) — the capability version-based reclamation gates on.
    const TYPE_STABLE: bool = true;

    fn new(max_threads: usize) -> Self {
        PageAllocator {
            store: store_for::<T>(),
            counters: (0..max_threads.max(1))
                .map(|_| CachePadded::new(Counters::default()))
                .collect(),
        }
    }

    fn register(this: &Arc<Self>, tid: usize) -> Self::Thread {
        PageAllocatorThread {
            global: Arc::clone(this),
            tid,
            free: BlockBag::with_block_capacity(DEFAULT_BLOCK_CAPACITY),
        }
    }

    fn name() -> &'static str {
        "pagepool"
    }

    fn allocated_bytes(&self) -> u64 {
        self.counters.iter().map(|c| c.bytes.load(Ordering::Relaxed)).sum()
    }

    fn allocated_records(&self) -> u64 {
        self.counters.iter().map(|c| c.records.load(Ordering::Relaxed)).sum()
    }
}

impl<T: Send + 'static> PageAllocator<T> {
    /// The process-global page store backing this allocator.
    pub fn store(&self) -> &Arc<PageStore<T>> {
        &self.store
    }

    fn counter(&self, tid: usize) -> &Counters {
        // Clamp like `SystemAllocator`: teardown handles may register past max_threads.
        &self.counters[tid.min(self.counters.len() - 1)]
    }
}

impl<T> fmt::Debug for PageAllocator<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageAllocator").field("threads", &self.counters.len()).finish()
    }
}

/// Per-thread handle of [`PageAllocator`].
pub struct PageAllocatorThread<T> {
    global: Arc<PageAllocator<T>>,
    tid: usize,
    /// Local cache of free slots (no live values), at most [`LOCAL_FREE_MAX_BLOCKS`]
    /// blocks before surplus full blocks return to the store.
    free: BlockBag<T>,
}

impl<T: Send + 'static> AllocatorThread<T> for PageAllocatorThread<T> {
    fn allocate(&mut self, value: T) -> NonNull<T> {
        let c = self.global.counter(self.tid);
        c.records.fetch_add(1, Ordering::Relaxed);
        c.bytes.fetch_add(size_of::<T>() as u64, Ordering::Relaxed);
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.free.push_block(self.global.store.take_block());
                self.free.pop().expect("blocks from the store are never empty")
            }
        };
        // SAFETY: a free slot holds no live value (its previous value, if any, was
        // dropped in `deallocate`), so a plain write — not a drop-then-write — is
        // correct; the slot is exclusively ours until handed out.
        unsafe { std::ptr::write(slot.as_ptr(), value) };
        slot
    }

    unsafe fn deallocate(&mut self, record: NonNull<T>) {
        // SAFETY: the caller guarantees exclusive access and that the record came from
        // this allocator family, so it holds a live value exactly once droppable here.
        unsafe { std::ptr::drop_in_place(record.as_ptr()) };
        self.free.push(record);
        if self.free.size_in_blocks() > LOCAL_FREE_MAX_BLOCKS {
            for block in self.free.take_full_blocks() {
                self.global.store.return_block(block);
            }
        }
    }
}

impl<T> Drop for PageAllocatorThread<T> {
    fn drop(&mut self) {
        // Return every locally parked slot so short-lived handles (teardown handles
        // register, free, and drop) never strand slots.
        for block in self.free.take_full_blocks() {
            self.global.store.return_block(block);
        }
        if !self.free.is_empty() {
            let mut block = Block::with_capacity(self.free.len().max(1));
            while let Some(slot) = self.free.pop() {
                let pushed = block.push(slot);
                debug_assert!(pushed);
            }
            self.global.store.return_block(block);
        }
    }
}

impl<T> fmt::Debug for PageAllocatorThread<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageAllocatorThread")
            .field("tid", &self.tid)
            .field("cached_slots", &self.free.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    struct Dropper(#[allow(dead_code)] u64);
    impl Drop for Dropper {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn allocate_writes_value_and_deallocate_drops_it_once() {
        let alloc: Arc<PageAllocator<Dropper>> = Arc::new(PageAllocator::new(1));
        let mut t = PageAllocator::register(&alloc, 0);
        let before = DROPS.load(Ordering::SeqCst);
        let r = t.allocate(Dropper(7));
        assert_eq!(unsafe { r.as_ref() }.0, 7);
        assert_eq!(alloc.allocated_records(), 1);
        assert_eq!(alloc.allocated_bytes(), size_of::<Dropper>() as u64);
        unsafe { t.deallocate(r) };
        assert_eq!(DROPS.load(Ordering::SeqCst), before + 1, "exactly one drop");
    }

    #[test]
    fn freed_slot_is_recycled_lifo_for_the_same_type() {
        struct RecycleProbe(#[allow(dead_code)] u64);
        let alloc: Arc<PageAllocator<RecycleProbe>> = Arc::new(PageAllocator::new(1));
        let mut t = PageAllocator::register(&alloc, 0);
        let a = t.allocate(RecycleProbe(1));
        unsafe { t.deallocate(a) };
        let b = t.allocate(RecycleProbe(2));
        assert_eq!(a, b, "the just-freed slot is reused first");
        assert!(alloc.store().owns(b));
        unsafe { t.deallocate(b) };
    }

    #[test]
    fn dropped_handle_returns_slots_to_the_store() {
        struct HandleProbe(#[allow(dead_code)] u64);
        let alloc: Arc<PageAllocator<HandleProbe>> = Arc::new(PageAllocator::new(1));
        let store = Arc::clone(alloc.store());
        let mut t = PageAllocator::register(&alloc, 0);
        let records: Vec<_> = (0..10).map(|i| t.allocate(HandleProbe(i))).collect();
        for r in records {
            unsafe { t.deallocate(r) };
        }
        let free_before = store.slots_free();
        drop(t);
        assert!(store.slots_free() > free_before, "local slots flushed on drop");
    }
}

//! The [`Pool`] face: per-thread magazines of recycled records with a lock-free global
//! overflow pool.

use std::fmt;
use std::mem;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use blockbag::{Block, SharedBlockBag, DEFAULT_BLOCK_CAPACITY};
use crossbeam_utils::CachePadded;
use debra::{AllocatorThread, Pool, PoolStats, PoolThread, ReclaimSink};

use crate::store::{store_for, PageStore};

#[derive(Debug, Default)]
struct MagazineCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A bounded two-magazine record pool (Bonwick's magazine design) over the type-stable
/// page store.
///
/// Each thread holds at most two magazines ([`DEFAULT_BLOCK_CAPACITY`] records each) of
/// *recycled records* — records a reclaimer has proven unreachable, values still in
/// place.  Allocation pops the primary magazine; reclamation pushes it.  When both
/// magazines fill, the older one moves to the lock-free global overflow pool in one O(1)
/// block operation, so a thread that retires more than it allocates (a consumer in a
/// producer/consumer workload) cannot hoard records: the surplus flows to the threads
/// that allocate.
///
/// The pool only ever *caches* records; it neither allocates nor frees pages itself.
/// Records that fall through (magazines and overflow empty) are allocated fresh by the
/// configured [`Allocator`](debra::Allocator) — compose with
/// [`PageAllocator`](crate::PageAllocator) to keep that path off malloc too.
pub struct PagePool<T> {
    /// Full magazines spilled by threads whose local bound was hit.
    overflow: SharedBlockBag<T>,
    counters: Box<[CachePadded<MagazineCounters>]>,
    /// Kept so [`Pool::stats`] can report page/slot gauges alongside magazine counters.
    store: Arc<PageStore<T>>,
}

impl<T: Send + 'static> Pool<T> for PagePool<T> {
    type Thread = PagePoolThread<T>;

    fn new(max_threads: usize) -> Self {
        PagePool {
            overflow: SharedBlockBag::new(),
            counters: (0..max_threads.max(1))
                .map(|_| CachePadded::new(MagazineCounters::default()))
                .collect(),
            store: store_for::<T>(),
        }
    }

    fn register(this: &Arc<Self>, tid: usize) -> Self::Thread {
        PagePoolThread {
            global: Arc::clone(this),
            tid,
            primary: Block::with_capacity(DEFAULT_BLOCK_CAPACITY),
            previous: None,
            spare: None,
            hits: 0,
            misses: 0,
        }
    }

    fn name() -> &'static str {
        "page-magazine"
    }

    fn drain_shared(&self) -> Vec<NonNull<T>> {
        let mut out = Vec::new();
        for mut block in self.overflow.pop_all() {
            while let Some(record) = block.pop() {
                out.push(record);
            }
        }
        out
    }

    fn stats(&self) -> PoolStats {
        let mut stats = PoolStats::default();
        for c in self.counters.iter() {
            stats.magazine_hits += c.hits.load(Ordering::Relaxed);
            stats.magazine_misses += c.misses.load(Ordering::Relaxed);
        }
        stats.pages_mapped = self.store.pages_mapped();
        stats.slots_free = self.store.slots_free();
        stats.slots_live = self.store.slots_total().saturating_sub(stats.slots_free);
        stats
    }
}

impl<T> PagePool<T> {
    fn counter(&self, tid: usize) -> &MagazineCounters {
        &self.counters[tid.min(self.counters.len() - 1)]
    }
}

impl<T> fmt::Debug for PagePool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagePool").field("threads", &self.counters.len()).finish()
    }
}

/// Per-thread handle of [`PagePool`]: two bounded magazines plus an empty spare.
pub struct PagePoolThread<T> {
    global: Arc<PagePool<T>>,
    tid: usize,
    /// The magazine served by `try_take`/`accept` (hot path: single `Vec` push/pop).
    primary: Box<Block<T>>,
    /// The other magazine; full (rotated out by `accept`) or a refill in waiting.
    previous: Option<Box<Block<T>>>,
    /// An empty magazine kept to avoid re-allocating magazine storage on rotation.
    spare: Option<Box<Block<T>>>,
    /// Local counters published to the shared slots only on cold paths, keeping the hot
    /// path free of atomics.
    hits: u64,
    misses: u64,
}

impl<T: Send + 'static> PagePoolThread<T> {
    fn take_spare(&mut self) -> Box<Block<T>> {
        self.spare.take().unwrap_or_else(|| Block::with_capacity(DEFAULT_BLOCK_CAPACITY))
    }

    fn stash_spare(&mut self, block: Box<Block<T>>) {
        debug_assert!(block.is_empty());
        if self.spare.is_none() {
            self.spare = Some(block);
        }
    }

    fn publish_stats(&mut self) {
        if self.hits == 0 && self.misses == 0 {
            return;
        }
        let c = self.global.counter(self.tid);
        c.hits.fetch_add(self.hits, Ordering::Relaxed);
        c.misses.fetch_add(self.misses, Ordering::Relaxed);
        self.hits = 0;
        self.misses = 0;
    }

    fn flush_magazines(&mut self) {
        if let Some(prev) = self.previous.take() {
            if prev.is_empty() {
                self.stash_spare(prev);
            } else {
                self.global.overflow.push_block(prev);
            }
        }
        if !self.primary.is_empty() {
            let fresh = self.take_spare();
            let full = mem::replace(&mut self.primary, fresh);
            self.global.overflow.push_block(full);
        }
        self.publish_stats();
    }
}

impl<T: Send + 'static> PoolThread<T> for PagePoolThread<T> {
    fn try_take(&mut self) -> Option<NonNull<T>> {
        if let Some(record) = self.primary.pop() {
            self.hits += 1;
            return Some(record);
        }
        // Primary is empty: rotate `previous` in if it has records.
        if let Some(prev) = self.previous.take() {
            if !prev.is_empty() {
                let empty = mem::replace(&mut self.primary, prev);
                self.stash_spare(empty);
                self.hits += 1;
                return self.primary.pop();
            }
            self.stash_spare(prev);
        }
        // Both magazines empty: refill from the global overflow pool (records another
        // thread spilled), one whole magazine at a time.
        if let Some(block) = self.global.overflow.pop_block() {
            let empty = mem::replace(&mut self.primary, block);
            self.stash_spare(empty);
            self.hits += 1;
            self.publish_stats();
            return self.primary.pop();
        }
        self.misses += 1;
        None
    }

    unsafe fn deallocate<A: AllocatorThread<T>>(&mut self, record: NonNull<T>, _alloc: &mut A) {
        // Recycle instead of freeing: the record keeps its (stale) value and waits in a
        // magazine for the next allocation, which overwrites it in place.
        self.accept(record);
    }

    fn cached(&self) -> usize {
        self.primary.len() + self.previous.as_ref().map_or(0, |b| b.len())
    }

    fn flush_to_shared(&mut self) {
        self.flush_magazines();
    }
}

impl<T: Send + 'static> ReclaimSink<T> for PagePoolThread<T> {
    fn accept(&mut self, record: NonNull<T>) {
        if self.primary.push(record) {
            return;
        }
        // Primary full: rotate it out.  If `previous` is already full too, spill the
        // older magazine to the global overflow pool — this is the bound that stops a
        // retire-heavy thread from hoarding records.
        let fresh = self.take_spare();
        let full = mem::replace(&mut self.primary, fresh);
        if let Some(older) = self.previous.replace(full) {
            self.global.overflow.push_block(older);
            self.publish_stats();
        }
        let pushed = self.primary.push(record);
        debug_assert!(pushed, "fresh magazine must accept a record");
    }

    fn accept_block(&mut self, mut block: Box<Block<T>>) {
        if block.is_empty() {
            self.stash_spare(block);
            return;
        }
        if block.is_full() && self.previous.is_none() {
            self.previous = Some(block);
            return;
        }
        if block.is_full() {
            self.global.overflow.push_block(block);
            self.publish_stats();
            return;
        }
        while let Some(record) = block.pop() {
            self.accept(record);
        }
        self.stash_spare(block);
    }
}

impl<T> Drop for PagePoolThread<T> {
    fn drop(&mut self) {
        // Trait bounds aren't available in Drop, so inline the flush: cached records go
        // to the global overflow pool (not back to pages — they still hold live values,
        // which `drain_shared`-driven teardown will drop via the allocator).
        if let Some(prev) = self.previous.take() {
            if !prev.is_empty() {
                self.global.overflow.push_block(prev);
            }
        }
        if !self.primary.is_empty() {
            let fresh = Block::with_capacity(1);
            let full = mem::replace(&mut self.primary, fresh);
            self.global.overflow.push_block(full);
        }
        if self.hits != 0 || self.misses != 0 {
            let c = self.global.counter(self.tid);
            c.hits.fetch_add(self.hits, Ordering::Relaxed);
            c.misses.fetch_add(self.misses, Ordering::Relaxed);
        }
    }
}

impl<T> fmt::Debug for PagePoolThread<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagePoolThread")
            .field("tid", &self.tid)
            .field("primary", &self.primary.len())
            .field("previous", &self.previous.as_ref().map(|b| b.len()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct PoolProbe(#[allow(dead_code)] u64);

    fn fake(v: usize) -> NonNull<PoolProbe> {
        // Aligned, never dereferenced: these tests exercise pointer plumbing only.
        NonNull::new((v * mem::align_of::<PoolProbe>().max(8)) as *mut PoolProbe).unwrap()
    }

    #[test]
    fn take_returns_most_recently_accepted() {
        let pool: Arc<PagePool<PoolProbe>> = Arc::new(PagePool::new(1));
        let mut t = PagePool::register(&pool, 0);
        assert_eq!(t.try_take(), None);
        t.accept(fake(1));
        t.accept(fake(2));
        assert_eq!(t.cached(), 2);
        assert_eq!(t.try_take(), Some(fake(2)));
        assert_eq!(t.try_take(), Some(fake(1)));
        assert_eq!(t.try_take(), None);
    }

    #[test]
    fn overflow_past_two_magazines_reaches_the_global_pool() {
        let pool: Arc<PagePool<PoolProbe>> = Arc::new(PagePool::new(2));
        let mut t = PagePool::register(&pool, 0);
        // Fill both magazines and one record more: the oldest magazine spills.
        for i in 1..=(2 * DEFAULT_BLOCK_CAPACITY + 1) {
            t.accept(fake(i));
        }
        assert_eq!(t.cached(), DEFAULT_BLOCK_CAPACITY + 1, "local cache stays bounded");
        // Another thread handle refills from the spilled magazine.
        let mut other = PagePool::register(&pool, 1);
        assert!(other.try_take().is_some(), "spilled records flow cross-thread");
        let stats = pool.stats();
        assert!(stats.magazine_hits >= 1);
    }

    #[test]
    fn drain_shared_empties_the_overflow_pool() {
        let pool: Arc<PagePool<PoolProbe>> = Arc::new(PagePool::new(1));
        let mut t = PagePool::register(&pool, 0);
        for i in 1..=(2 * DEFAULT_BLOCK_CAPACITY + 1) {
            t.accept(fake(i));
        }
        let drained = pool.drain_shared();
        assert_eq!(drained.len(), DEFAULT_BLOCK_CAPACITY);
        assert!(pool.drain_shared().is_empty());
    }

    #[test]
    fn flush_to_shared_moves_cached_records_to_overflow() {
        let pool: Arc<PagePool<PoolProbe>> = Arc::new(PagePool::new(1));
        let mut t = PagePool::register(&pool, 0);
        for i in 1..=5 {
            t.accept(fake(i));
        }
        t.flush_to_shared();
        assert_eq!(t.cached(), 0);
        assert_eq!(pool.drain_shared().len(), 5);
    }

    #[test]
    fn dropped_handle_flushes_to_overflow_and_stats() {
        let pool: Arc<PagePool<PoolProbe>> = Arc::new(PagePool::new(1));
        let mut t = PagePool::register(&pool, 0);
        t.accept(fake(1));
        let _ = t.try_take();
        t.accept(fake(2));
        drop(t);
        assert_eq!(pool.drain_shared().len(), 1);
        assert_eq!(pool.stats().magazine_hits, 1);
    }
}

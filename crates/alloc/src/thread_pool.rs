//! Per-thread pool bags backed by a shared overflow bag (the paper's object pool).

use std::fmt;
use std::ptr::NonNull;
use std::sync::Arc;

use blockbag::{Block, BlockBag, SharedBlockBag, DEFAULT_BLOCK_CAPACITY};
use debra::{AllocatorThread, Pool, PoolThread, ReclaimSink};

/// Maximum number of blocks a thread keeps in its private pool bag before spilling full
/// blocks to the shared bag.
const LOCAL_POOL_MAX_BLOCKS: usize = 32;

/// The object pool described in the paper (Section 4, "Object pool"): one private *pool
/// bag* per thread plus one *shared bag*.
///
/// * Records reclaimed by the reclaimer are pushed into the thread's pool bag (whole blocks
///   are moved in O(1)).
/// * When allocating, a thread first tries its pool bag, then takes a whole block from the
///   shared bag, and only then asks the allocator for fresh memory.
/// * When the private pool bag grows too large, full blocks are moved to the shared bag, so
///   memory freed by one thread can be reused by another (important for asymmetric
///   workloads).
///
/// Records cached in the pool still contain the value they held when they were retired;
/// [`PoolThread::allocate`] drops that value and writes the new one in place.
pub struct ThreadPool<T> {
    shared: SharedBlockBag<T>,
    block_capacity: usize,
}

impl<T: Send + 'static> Pool<T> for ThreadPool<T> {
    type Thread = ThreadPoolThread<T>;

    fn new(_max_threads: usize) -> Self {
        ThreadPool { shared: SharedBlockBag::new(), block_capacity: DEFAULT_BLOCK_CAPACITY }
    }

    fn register(this: &Arc<Self>, tid: usize) -> Self::Thread {
        ThreadPoolThread {
            global: Arc::clone(this),
            tid,
            bag: BlockBag::with_block_capacity(this.block_capacity),
        }
    }

    fn name() -> &'static str {
        "thread-pool"
    }

    fn drain_shared(&self) -> Vec<NonNull<T>> {
        let mut out = Vec::new();
        for mut block in self.shared.pop_all() {
            out.extend(block.drain());
        }
        out
    }
}

impl<T> ThreadPool<T> {
    /// Approximate number of blocks currently available in the shared bag.
    pub fn shared_blocks(&self) -> usize {
        self.shared.approx_len()
    }
}

impl<T> fmt::Debug for ThreadPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("shared_blocks", &self.shared.approx_len())
            .field("block_capacity", &self.block_capacity)
            .finish()
    }
}

/// Per-thread handle of [`ThreadPool`].
pub struct ThreadPoolThread<T> {
    global: Arc<ThreadPool<T>>,
    tid: usize,
    bag: BlockBag<T>,
}

impl<T> ThreadPoolThread<T> {
    fn spill_if_large(&mut self) {
        if self.bag.size_in_blocks() > LOCAL_POOL_MAX_BLOCKS {
            for block in self.bag.take_full_blocks() {
                self.global.shared.push_block(block);
            }
        }
    }
}

impl<T: Send + 'static> ReclaimSink<T> for ThreadPoolThread<T> {
    fn accept(&mut self, record: NonNull<T>) {
        self.bag.push(record);
        self.spill_if_large();
    }

    fn accept_block(&mut self, block: Box<Block<T>>) {
        self.bag.push_block(block);
        self.spill_if_large();
    }
}

impl<T: Send + 'static> PoolThread<T> for ThreadPoolThread<T> {
    fn try_take(&mut self) -> Option<NonNull<T>> {
        if let Some(r) = self.bag.pop() {
            return Some(r);
        }
        // Local bag empty: try to grab a whole block from the shared bag.
        if let Some(block) = self.global.shared.pop_block() {
            self.bag.push_block(block);
            return self.bag.pop();
        }
        None
    }

    unsafe fn deallocate<A: AllocatorThread<T>>(&mut self, record: NonNull<T>, _alloc: &mut A) {
        // Recycle rather than free: the pool's whole purpose is reuse.
        self.accept(record);
    }

    fn cached(&self) -> usize {
        self.bag.len()
    }

    fn flush_to_shared(&mut self) {
        // Move everything (including the partial head block) to the shared bag so records
        // survive the thread and can be reused or freed at teardown.
        for block in self.bag.take_full_blocks() {
            self.global.shared.push_block(block);
        }
        if !self.bag.is_empty() {
            let mut block = Block::with_capacity(self.bag.len().max(1));
            while let Some(r) = self.bag.pop() {
                let pushed = block.push(r);
                debug_assert!(pushed);
            }
            self.global.shared.push_block(block);
        }
    }
}

impl<T> Drop for ThreadPoolThread<T> {
    fn drop(&mut self) {
        // `RecordManagerThread::drop` normally calls `flush_to_shared`, but flush here too
        // so a bare pool handle never strands records.
        if !self.bag.is_empty() {
            let records: Vec<NonNull<T>> = self.bag.drain().collect();
            let mut block = Block::with_capacity(records.len().max(1));
            for r in records {
                let pushed = block.push(r);
                debug_assert!(pushed);
            }
            self.global.shared.push_block(block);
        }
    }
}

impl<T> fmt::Debug for ThreadPoolThread<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPoolThread")
            .field("tid", &self.tid)
            .field("cached", &self.bag.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemAllocator;
    use debra::Allocator;

    fn ptr(v: usize) -> NonNull<u64> {
        NonNull::new((v * 8 + 8) as *mut u64).unwrap()
    }

    #[test]
    fn recycles_accepted_records() {
        let pool: Arc<ThreadPool<u64>> = Arc::new(<ThreadPool<u64> as Pool<u64>>::new(1));
        let mut t = ThreadPool::register(&pool, 0);
        ReclaimSink::accept(&mut t, ptr(1));
        ReclaimSink::accept(&mut t, ptr(2));
        assert_eq!(t.cached(), 2);
        let a = t.try_take().unwrap();
        let b = t.try_take().unwrap();
        assert!(t.try_take().is_none());
        assert_ne!(a, b);
    }

    #[test]
    fn records_flow_between_threads_through_shared_bag() {
        let pool: Arc<ThreadPool<u64>> = Arc::new(<ThreadPool<u64> as Pool<u64>>::new(2));
        let mut producer = ThreadPool::register(&pool, 0);
        let mut consumer = ThreadPool::register(&pool, 1);

        // Producer accepts a full block's worth of records, then flushes.
        for i in 0..100 {
            ReclaimSink::accept(&mut producer, ptr(i));
        }
        producer.flush_to_shared();
        assert_eq!(producer.cached(), 0);

        // Consumer, whose local bag is empty, can now take them.
        let mut got = 0;
        while consumer.try_take().is_some() {
            got += 1;
        }
        assert_eq!(got, 100);
    }

    #[test]
    fn allocate_prefers_recycled_records() {
        let pool: Arc<ThreadPool<u64>> = Arc::new(<ThreadPool<u64> as Pool<u64>>::new(1));
        let alloc: Arc<SystemAllocator<u64>> = Arc::new(SystemAllocator::new(1));
        let mut pt = ThreadPool::register(&pool, 0);
        let mut at = SystemAllocator::register(&alloc, 0);

        // First allocation must come from the allocator.
        let a = PoolThread::allocate(&mut pt, 1u64, &mut at);
        assert_eq!(alloc.allocated_records(), 1);

        // Recycle it, then allocate again: no new allocator traffic.
        unsafe { pt.deallocate(a, &mut at) };
        let b = PoolThread::allocate(&mut pt, 2u64, &mut at);
        assert_eq!(alloc.allocated_records(), 1, "second allocation must be recycled");
        assert_eq!(a, b, "the same record is reused");
        assert_eq!(unsafe { *b.as_ref() }, 2);

        unsafe { at.deallocate(b) };
    }

    #[test]
    fn drain_shared_returns_everything() {
        let pool: Arc<ThreadPool<u64>> = Arc::new(<ThreadPool<u64> as Pool<u64>>::new(1));
        let mut t = ThreadPool::register(&pool, 0);
        for i in 0..50 {
            ReclaimSink::accept(&mut t, ptr(i));
        }
        drop(t); // Drop flushes the local bag into the shared bag.
        let drained = pool.drain_shared();
        assert_eq!(drained.len(), 50);
    }

    #[test]
    fn spills_to_shared_bag_when_local_bag_is_large() {
        let pool: Arc<ThreadPool<u64>> = Arc::new(<ThreadPool<u64> as Pool<u64>>::new(1));
        let mut t = ThreadPool::register(&pool, 0);
        // Push far more than LOCAL_POOL_MAX_BLOCKS blocks' worth of records.
        let total = DEFAULT_BLOCK_CAPACITY * (LOCAL_POOL_MAX_BLOCKS + 8);
        for i in 0..total {
            ReclaimSink::accept(&mut t, ptr(i));
        }
        assert!(pool.shared_blocks() > 0, "overflow must reach the shared bag");
        assert!(t.cached() < total);
    }
}

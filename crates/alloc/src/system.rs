//! The system ("malloc") allocator.

use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use debra::{Allocator, AllocatorThread};

/// An [`Allocator`] that obtains every record with an individual heap allocation
/// (`Box::new`) and frees it with an individual deallocation — the configuration of the
/// paper's Experiment 3, where the cost of `malloc` dominates and compresses the relative
/// differences between reclamation schemes.
pub struct SystemAllocator<T> {
    per_thread: Box<[CachePadded<Counters>]>,
    _marker: std::marker::PhantomData<fn(T)>,
}

#[derive(Debug, Default)]
struct Counters {
    bytes: AtomicU64,
    records: AtomicU64,
}

impl<T> SystemAllocator<T> {
    fn counters(&self, tid: usize) -> &Counters {
        &self.per_thread[tid.min(self.per_thread.len() - 1)]
    }
}

impl<T: Send + 'static> Allocator<T> for SystemAllocator<T> {
    type Thread = SystemAllocatorThread<T>;

    fn new(max_threads: usize) -> Self {
        assert!(max_threads > 0);
        SystemAllocator {
            per_thread: (0..max_threads).map(|_| CachePadded::new(Counters::default())).collect(),
            _marker: std::marker::PhantomData,
        }
    }

    fn register(this: &Arc<Self>, tid: usize) -> Self::Thread {
        SystemAllocatorThread { global: Arc::clone(this), tid }
    }

    fn name() -> &'static str {
        "system"
    }

    fn allocated_bytes(&self) -> u64 {
        self.per_thread.iter().map(|c| c.bytes.load(Ordering::Relaxed)).sum()
    }

    fn allocated_records(&self) -> u64 {
        self.per_thread.iter().map(|c| c.records.load(Ordering::Relaxed)).sum()
    }
}

impl<T> fmt::Debug for SystemAllocator<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemAllocator").field("threads", &self.per_thread.len()).finish()
    }
}

/// Per-thread handle of [`SystemAllocator`].
pub struct SystemAllocatorThread<T> {
    global: Arc<SystemAllocator<T>>,
    tid: usize,
}

impl<T: Send + 'static> AllocatorThread<T> for SystemAllocatorThread<T> {
    fn allocate(&mut self, value: T) -> NonNull<T> {
        let counters = self.global.counters(self.tid);
        counters.bytes.fetch_add(std::mem::size_of::<T>() as u64, Ordering::Relaxed);
        counters.records.fetch_add(1, Ordering::Relaxed);
        NonNull::from(Box::leak(Box::new(value)))
    }

    unsafe fn deallocate(&mut self, record: NonNull<T>) {
        // SAFETY: per the trait contract the record was allocated by `allocate` above
        // (a leaked box), is exclusively owned, and is not used again.
        drop(unsafe { Box::from_raw(record.as_ptr()) });
    }
}

impl<T> fmt::Debug for SystemAllocatorThread<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemAllocatorThread").field("tid", &self.tid).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_deallocate_roundtrip_and_accounting() {
        let global: Arc<SystemAllocator<String>> = Arc::new(SystemAllocator::new(2));
        let mut t0 = SystemAllocator::register(&global, 0);
        let mut t1 = SystemAllocator::register(&global, 1);

        let a = t0.allocate("hello".to_string());
        let b = t1.allocate("world".to_string());
        assert_eq!(unsafe { a.as_ref() }, "hello");
        assert_eq!(unsafe { b.as_ref() }, "world");
        assert_eq!(global.allocated_records(), 2);
        assert_eq!(global.allocated_bytes(), 2 * std::mem::size_of::<String>() as u64);

        unsafe {
            t0.deallocate(a);
            t1.deallocate(b);
        }
        // Deallocation does not reduce the "allocated" metric: it measures total demand,
        // like the paper's bump pointer distance.
        assert_eq!(global.allocated_records(), 2);
    }

    #[test]
    fn out_of_range_tid_is_clamped() {
        let global: Arc<SystemAllocator<u64>> = Arc::new(SystemAllocator::new(1));
        let mut t = SystemAllocator::register(&global, 99);
        let r = t.allocate(7);
        unsafe { t.deallocate(r) };
        assert_eq!(global.allocated_records(), 1);
    }
}

//! A per-thread bump ("arena") allocator.

use std::fmt;
use std::mem::MaybeUninit;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam_utils::CachePadded;
use debra::{Allocator, AllocatorThread};

/// Approximate number of bytes per arena chunk.
const CHUNK_BYTES: usize = 1 << 20; // 1 MiB

/// One contiguous slab of uninitialized records.
struct Chunk<T> {
    storage: Box<[MaybeUninit<T>]>,
    used: usize,
}

impl<T> Chunk<T> {
    fn new(records: usize) -> Self {
        let mut v = Vec::with_capacity(records);
        // SAFETY: MaybeUninit<T> does not require initialization; set_len within capacity.
        unsafe { v.set_len(records) };
        Chunk { storage: v.into_boxed_slice(), used: 0 }
    }

    fn is_full(&self) -> bool {
        self.used == self.storage.len()
    }

    fn bump(&mut self, value: T) -> Option<NonNull<T>> {
        if self.is_full() {
            return None;
        }
        let slot = &mut self.storage[self.used];
        self.used += 1;
        slot.write(value);
        // SAFETY: the slot was just initialized and lives as long as the chunk.
        Some(unsafe { NonNull::new_unchecked(slot.as_mut_ptr()) })
    }
}

/// An [`Allocator`] in which each thread requests large regions of memory and then carves
/// records out of them in sequence (the paper's "Bump Allocator", used in Experiments 1
/// and 2).
///
/// * Allocation is a pointer bump — no lock, no `malloc` on the hot path.
/// * [`deallocate`](AllocatorThread::deallocate) drops the record's value but does **not**
///   return its memory (a bump allocator cannot free individual records).  Memory is
///   reclaimed wholesale when the `BumpAllocator` itself is dropped.  This is exactly how
///   the paper uses it: either records are never reused (Experiment 1) or they are recycled
///   through the Pool (Experiment 2) — and the total distance the bump pointers moved is
///   the "memory allocated for records" metric of Figure 9 (right).
/// * Arena chunks filled by a thread are handed to the shared state when the thread's
///   handle is dropped, so record memory remains valid until the `BumpAllocator` global is
///   dropped (which must happen only after no record can be referenced anymore — the
///   `RecordManager` guarantees this ordering).
pub struct BumpAllocator<T> {
    per_thread: Box<[CachePadded<Counters>]>,
    /// Chunks retired by exited thread handles; kept alive until the global is dropped.
    parked_chunks: Mutex<Vec<Chunk<T>>>,
    records_per_chunk: usize,
}

#[derive(Debug, Default)]
struct Counters {
    bytes: AtomicU64,
    records: AtomicU64,
}

impl<T> BumpAllocator<T> {
    fn counters(&self, tid: usize) -> &Counters {
        &self.per_thread[tid.min(self.per_thread.len() - 1)]
    }
}

impl<T: Send + 'static> Allocator<T> for BumpAllocator<T> {
    type Thread = BumpAllocatorThread<T>;

    fn new(max_threads: usize) -> Self {
        assert!(max_threads > 0);
        let record_size = std::mem::size_of::<T>().max(1);
        BumpAllocator {
            per_thread: (0..max_threads).map(|_| CachePadded::new(Counters::default())).collect(),
            parked_chunks: Mutex::new(Vec::new()),
            records_per_chunk: (CHUNK_BYTES / record_size).max(1),
        }
    }

    fn register(this: &Arc<Self>, tid: usize) -> Self::Thread {
        BumpAllocatorThread { global: Arc::clone(this), tid, chunks: Vec::new() }
    }

    fn name() -> &'static str {
        "bump"
    }

    fn allocated_bytes(&self) -> u64 {
        self.per_thread.iter().map(|c| c.bytes.load(Ordering::Relaxed)).sum()
    }

    fn allocated_records(&self) -> u64 {
        self.per_thread.iter().map(|c| c.records.load(Ordering::Relaxed)).sum()
    }
}

impl<T> fmt::Debug for BumpAllocator<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BumpAllocator")
            .field("threads", &self.per_thread.len())
            .field("records_per_chunk", &self.records_per_chunk)
            .finish()
    }
}

// SAFETY: the parked chunks are only accessed under the mutex, and `T: Send`.
unsafe impl<T: Send> Send for BumpAllocator<T> {}
unsafe impl<T: Send> Sync for BumpAllocator<T> {}

/// Per-thread handle of [`BumpAllocator`]: owns the arena chunks it is currently filling.
pub struct BumpAllocatorThread<T> {
    global: Arc<BumpAllocator<T>>,
    tid: usize,
    chunks: Vec<Chunk<T>>,
}

impl<T: Send + 'static> AllocatorThread<T> for BumpAllocatorThread<T> {
    fn allocate(&mut self, value: T) -> NonNull<T> {
        let counters = self.global.counters(self.tid);
        counters.bytes.fetch_add(std::mem::size_of::<T>() as u64, Ordering::Relaxed);
        counters.records.fetch_add(1, Ordering::Relaxed);

        if self.chunks.last().is_none_or(Chunk::is_full) {
            self.grow();
        }
        let chunk = self.chunks.last_mut().expect("a non-full chunk exists after grow");
        chunk.bump(value).expect("fresh chunk has capacity")
    }

    unsafe fn deallocate(&mut self, record: NonNull<T>) {
        // A bump allocator cannot return individual records to the operating system; drop
        // the value (so owned resources are released) and leave the memory to the arena.
        // SAFETY: exclusive access per the trait contract; memory stays valid (arena-owned).
        unsafe { std::ptr::drop_in_place(record.as_ptr()) };
    }
}

impl<T: Send + 'static> BumpAllocatorThread<T> {
    #[cold]
    fn grow(&mut self) {
        self.chunks.push(Chunk::new(self.global.records_per_chunk));
    }

    /// Number of chunks this thread has filled or is filling.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

impl<T> Drop for BumpAllocatorThread<T> {
    fn drop(&mut self) {
        // Records carved from these chunks may still be referenced (in the data structure,
        // in limbo bags, in pools), so the memory must stay alive: park the chunks in the
        // global allocator, which frees them when it is dropped.
        let mut parked = self.global.parked_chunks.lock().expect("parked chunks poisoned");
        parked.append(&mut self.chunks);
    }
}

impl<T> fmt::Debug for BumpAllocatorThread<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BumpAllocatorThread")
            .field("tid", &self.tid)
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocations_are_distinct_and_valid() {
        let global: Arc<BumpAllocator<u64>> = Arc::new(BumpAllocator::new(1));
        let mut t = BumpAllocator::register(&global, 0);
        let ptrs: Vec<NonNull<u64>> = (0..10_000u64).map(|i| t.allocate(i)).collect();
        for (i, p) in ptrs.iter().enumerate() {
            assert_eq!(unsafe { *p.as_ref() }, i as u64);
        }
        let unique: std::collections::HashSet<_> =
            ptrs.iter().map(|p| p.as_ptr() as usize).collect();
        assert_eq!(unique.len(), ptrs.len());
        assert_eq!(global.allocated_records(), 10_000);
        assert_eq!(global.allocated_bytes(), 10_000 * 8);
    }

    #[test]
    fn memory_outlives_thread_handle() {
        let global: Arc<BumpAllocator<u64>> = Arc::new(BumpAllocator::new(1));
        let p = {
            let mut t = BumpAllocator::register(&global, 0);
            t.allocate(42)
        };
        // The thread handle is gone but its chunks were parked in the global allocator, so
        // the record is still readable.
        assert_eq!(unsafe { *p.as_ref() }, 42);
    }

    #[test]
    fn deallocate_drops_the_value() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }

        let global: Arc<BumpAllocator<Probe>> = Arc::new(BumpAllocator::new(1));
        let mut t = BumpAllocator::register(&global, 0);
        let p = t.allocate(Probe);
        assert_eq!(DROPS.load(Ordering::Relaxed), 0);
        unsafe { t.deallocate(p) };
        assert_eq!(DROPS.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn multiple_chunks_are_created_for_large_demand() {
        let global: Arc<BumpAllocator<[u8; 4096]>> = Arc::new(BumpAllocator::new(1));
        let mut t = BumpAllocator::register(&global, 0);
        for _ in 0..600 {
            let _ = t.allocate([0u8; 4096]);
        }
        assert!(t.chunk_count() >= 2, "600 * 4 KiB must span multiple 1 MiB chunks");
    }
}

//! The "no pool" pool: records are never recycled.

use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use debra::{AllocatorThread, Pool, PoolThread, ReclaimSink};

/// A [`Pool`] that never recycles records.
///
/// This reproduces the setup of the paper's **Experiment 1**: every reclaimer performs all
/// the work needed to determine that records are safe to reuse, but the records are not
/// actually reused (so the data structure pays the overhead of reclamation without enjoying
/// its cache-locality benefits).  Records accepted from the reclaimer are counted and then
/// abandoned in place; their memory is released when the backing
/// [`BumpAllocator`](crate::BumpAllocator) arena is dropped.
///
/// `NoPool` is intended to be combined with the bump allocator exactly as in the paper; if
/// it is combined with the [`SystemAllocator`](crate::SystemAllocator) the abandoned
/// records are never freed until process exit.
pub struct NoPool<T> {
    reclaimed: AtomicU64,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Send + 'static> Pool<T> for NoPool<T> {
    type Thread = NoPoolThread<T>;

    fn new(_max_threads: usize) -> Self {
        NoPool { reclaimed: AtomicU64::new(0), _marker: std::marker::PhantomData }
    }

    fn register(this: &Arc<Self>, tid: usize) -> Self::Thread {
        NoPoolThread { global: Arc::clone(this), tid }
    }

    fn name() -> &'static str {
        "none"
    }

    fn drain_shared(&self) -> Vec<NonNull<T>> {
        Vec::new()
    }
}

impl<T> NoPool<T> {
    /// Number of records the reclaimers have declared safe (and this pool has abandoned).
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(Ordering::Relaxed)
    }
}

impl<T> fmt::Debug for NoPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NoPool").field("reclaimed", &self.reclaimed()).finish()
    }
}

/// Per-thread handle of [`NoPool`].
pub struct NoPoolThread<T> {
    global: Arc<NoPool<T>>,
    tid: usize,
}

impl<T: Send + 'static> ReclaimSink<T> for NoPoolThread<T> {
    fn accept(&mut self, _record: NonNull<T>) {
        self.global.reclaimed.fetch_add(1, Ordering::Relaxed);
    }

    fn accept_block(&mut self, block: Box<blockbag::Block<T>>) {
        self.global.reclaimed.fetch_add(block.len() as u64, Ordering::Relaxed);
    }
}

impl<T: Send + 'static> PoolThread<T> for NoPoolThread<T> {
    fn try_take(&mut self) -> Option<NonNull<T>> {
        None
    }

    unsafe fn deallocate<A: AllocatorThread<T>>(&mut self, record: NonNull<T>, alloc: &mut A) {
        // No pooling: go straight to the allocator.
        // SAFETY: forwarded contract.
        unsafe { alloc.deallocate(record) };
    }

    fn cached(&self) -> usize {
        0
    }

    fn flush_to_shared(&mut self) {}
}

impl<T> fmt::Debug for NoPoolThread<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NoPoolThread").field("tid", &self.tid).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemAllocator;
    use debra::Allocator;

    #[test]
    fn never_recycles_and_counts_reclaimed() {
        let pool: Arc<NoPool<u64>> = Arc::new(<NoPool<u64> as Pool<u64>>::new(2));
        let mut t = NoPool::register(&pool, 0);
        assert!(t.try_take().is_none());
        ReclaimSink::accept(&mut t, NonNull::<u64>::dangling());
        assert_eq!(pool.reclaimed(), 1);
        assert!(t.try_take().is_none(), "NoPool must not hand records back");
        assert_eq!(t.cached(), 0);
    }

    #[test]
    fn deallocate_forwards_to_allocator() {
        let pool: Arc<NoPool<u64>> = Arc::new(<NoPool<u64> as Pool<u64>>::new(1));
        let alloc: Arc<SystemAllocator<u64>> = Arc::new(SystemAllocator::new(1));
        let mut pt = NoPool::register(&pool, 0);
        let mut at = SystemAllocator::register(&alloc, 0);
        let r = at.allocate(5);
        unsafe { pt.deallocate(r, &mut at) };
        assert_eq!(alloc.allocated_records(), 1);
    }
}

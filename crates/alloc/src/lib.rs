//! Allocators and object pools for the Record Manager.
//!
//! The paper's Record Manager (Section 6) separates three concerns: the **Reclaimer**
//! decides *when* a retired record is safe to hand back, the **Pool** decides whether a
//! safe record is cached for reuse or released, and the **Allocator** actually obtains and
//! releases memory.  This crate provides the Pool and Allocator implementations used in the
//! paper's experiments:
//!
//! | Component | Paper usage | Type |
//! |-----------|-------------|------|
//! | Bump allocator | Experiments 1 and 2: each thread carves records out of a preallocated region; the distance the bump pointers moved gives the *memory allocated for records* metric of Figure 9 (right) | [`BumpAllocator`] |
//! | malloc/free | Experiment 3 | [`SystemAllocator`] |
//! | no pool | Experiment 1 (reclaimers do all their work but records are not actually reused) | [`NoPool`] |
//! | per-thread pool bags + shared bag | Experiments 2 and 3 (records are recycled) | [`ThreadPool`] |
//!
//! All four types implement the corresponding traits from the `debra` crate and can be
//! freely combined with any reclaimer.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bump;
mod no_pool;
mod system;
mod thread_pool;

pub use bump::{BumpAllocator, BumpAllocatorThread};
pub use no_pool::{NoPool, NoPoolThread};
pub use system::{SystemAllocator, SystemAllocatorThread};
pub use thread_pool::{ThreadPool, ThreadPoolThread};

//! A lock-free sorted linked list (Harris marking + Michael physical removal), written
//! against the Record Manager abstraction.

use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use debra::{
    Allocator, Neutralized, Pool, Reclaimer, RecordManager, RecordManagerThread, RegistrationError,
};

use crate::ConcurrentMap;

/// Mark bit stored in the least significant bit of a node's `next` word.
const MARK: usize = 1;

#[inline]
fn ptr_of(word: usize) -> *mut u8 {
    (word & !MARK) as *mut u8
}

#[inline]
fn is_marked(word: usize) -> bool {
    word & MARK != 0
}

/// A node of [`HarrisMichaelList`].
///
/// `next` packs the successor pointer and the *mark* bit: a marked node has been logically
/// deleted and will be retired by whichever thread physically unlinks it.
pub struct ListNode<K, V> {
    key: K,
    value: V,
    next: AtomicUsize,
}

impl<K, V> ListNode<K, V> {
    /// The node's key.
    pub fn key(&self) -> &K {
        &self.key
    }

    /// The node's value.
    pub fn value(&self) -> &V {
        &self.value
    }
}

impl<K: fmt::Debug, V> fmt::Debug for ListNode<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ListNode")
            .field("key", &self.key)
            .field("marked", &is_marked(self.next.load(Ordering::Relaxed)))
            .finish()
    }
}

/// Hazard pointer slot assignment used by list operations (3 slots suffice, as in
/// Michael's original algorithm).
mod slots {
    pub const PREV: usize = 0;
    pub const CURR: usize = 1;
}

/// A lock-free sorted linked list implementing a set/map, parameterized by the Record
/// Manager (reclaimer `R`, pool `P`, allocator `A`).
///
/// The algorithm is the classic Harris / Michael list: deletion first *marks* the victim's
/// `next` pointer (logical deletion), then any traversal that encounters a marked node
/// attempts to physically unlink it; the thread whose unlink CAS succeeds retires the node
/// through the Record Manager.  Searches may traverse marked — and, under epoch-based
/// reclamation, already retired — nodes, which is precisely the access pattern discussed in
/// Section 3 of the paper.
pub struct HarrisMichaelList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<ListNode<K, V>>,
    P: Pool<ListNode<K, V>>,
    A: Allocator<ListNode<K, V>>,
{
    head: AtomicUsize,
    manager: Arc<RecordManager<ListNode<K, V>, R, P, A>>,
}

/// Shorthand for the per-thread handle type used by [`HarrisMichaelList`].
pub type ListHandle<K, V, R, P, A> = RecordManagerThread<ListNode<K, V>, R, P, A>;

impl<K, V, R, P, A> HarrisMichaelList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<ListNode<K, V>>,
    P: Pool<ListNode<K, V>>,
    A: Allocator<ListNode<K, V>>,
{
    /// Creates an empty list backed by `manager`.
    pub fn new(manager: Arc<RecordManager<ListNode<K, V>, R, P, A>>) -> Self {
        HarrisMichaelList { head: AtomicUsize::new(0), manager }
    }

    /// The Record Manager backing this list.
    pub fn manager(&self) -> &Arc<RecordManager<ListNode<K, V>, R, P, A>> {
        &self.manager
    }

    /// Registers worker thread `tid`; see [`RecordManager::register`].
    pub fn register(&self, tid: usize) -> Result<ListHandle<K, V, R, P, A>, RegistrationError> {
        self.manager.register(tid)
    }

    /// Finds the first node with key >= `key`.  Returns `(prev_word_addr, prev_word, curr_word)`
    /// conceptually; concretely `(prev, curr)` where `prev` is `None` for the head pointer.
    /// Physically unlinks marked nodes encountered on the way (retiring them).
    ///
    /// Returns `Err(Neutralized)` if this thread was neutralized mid-traversal.
    #[allow(clippy::type_complexity)]
    fn search(
        &self,
        handle: &mut ListHandle<K, V, R, P, A>,
        key: &K,
    ) -> Result<(Option<NonNull<ListNode<K, V>>>, usize), Neutralized> {
        'retry: loop {
            handle.check()?;
            let mut prev: Option<NonNull<ListNode<K, V>>> = None;
            let mut curr_word = self.head.load(Ordering::Acquire);
            loop {
                handle.check()?;
                let curr_ptr = ptr_of(curr_word) as *mut ListNode<K, V>;
                let Some(curr) = NonNull::new(curr_ptr) else {
                    return Ok((prev, curr_word));
                };

                // Hazard-pointer style protection: announce, then validate that the link we
                // followed still leads here (no-op and always true for epoch schemes).
                // The comparison is on the FULL word, mark bit included: `expected` is
                // always unmarked, so a predecessor that has since been marked (it is being
                // deleted, and `curr` may already be unlinked from the live chain and
                // retired) fails validation and forces a restart — Michael's algorithm
                // requires exactly this; stripping the mark here would let a stale marked
                // link validate a freed node.
                let prev_link = self.link_of(prev);
                let expected = curr_word;
                let valid = handle
                    .protect(slots::CURR, curr, || prev_link.load(Ordering::SeqCst) == expected);
                if !valid {
                    continue 'retry;
                }

                // SAFETY: `curr` was reachable when protected; under epoch schemes the
                // operation's non-quiescent announcement keeps it from being reclaimed, and
                // under HP the announcement + validation above does.
                let curr_ref = unsafe { curr.as_ref() };
                let next_word = curr_ref.next.load(Ordering::Acquire);

                if is_marked(next_word) {
                    // Logically deleted: try to unlink it.  Whoever wins the CAS owns the
                    // retirement of `curr`.
                    let unlink_to = next_word & !MARK;
                    match self.link_of(prev).compare_exchange(
                        curr_word,
                        unlink_to,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            // SAFETY: `curr` was just unlinked by this thread (unique CAS
                            // winner) and is no longer reachable from the head.
                            unsafe { handle.retire(curr) };
                            curr_word = unlink_to;
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }

                if curr_ref.key >= *key {
                    return Ok((prev, curr_word));
                }
                // Advance: curr becomes prev.
                handle.protect(slots::PREV, curr, || true);
                prev = Some(curr);
                curr_word = next_word;
            }
        }
    }

    fn link_of(&self, prev: Option<NonNull<ListNode<K, V>>>) -> &AtomicUsize {
        match prev {
            // SAFETY: `prev` is protected by the calling operation (epoch or HP).
            Some(p) => unsafe { &p.as_ref().next },
            None => &self.head,
        }
    }

    fn insert_body(
        &self,
        handle: &mut ListHandle<K, V, R, P, A>,
        key: &K,
        value: &V,
    ) -> Result<bool, Neutralized> {
        loop {
            let (prev, curr_word) = self.search(handle, key)?;
            let curr_ptr = ptr_of(curr_word) as *mut ListNode<K, V>;
            if let Some(curr) = NonNull::new(curr_ptr) {
                // SAFETY: protected by the search above.
                if unsafe { &curr.as_ref().key } == key {
                    return Ok(false);
                }
            }
            let node = handle.allocate(ListNode {
                key: key.clone(),
                value: value.clone(),
                next: AtomicUsize::new(curr_word),
            });
            if let Err(e) = handle.check() {
                // Not yet published: recycle immediately, then unwind to recovery.
                // SAFETY: the node was never made reachable.
                unsafe { handle.deallocate(node) };
                return Err(e);
            }
            match self.link_of(prev).compare_exchange(
                curr_word,
                node.as_ptr() as usize,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(true),
                Err(_) => {
                    // SAFETY: the node was never made reachable.
                    unsafe { handle.deallocate(node) };
                    continue;
                }
            }
        }
    }

    fn remove_body(
        &self,
        handle: &mut ListHandle<K, V, R, P, A>,
        key: &K,
    ) -> Result<bool, Neutralized> {
        loop {
            let (prev, curr_word) = self.search(handle, key)?;
            let Some(curr) = NonNull::new(ptr_of(curr_word) as *mut ListNode<K, V>) else {
                return Ok(false);
            };
            // SAFETY: protected by the search above.
            let curr_ref = unsafe { curr.as_ref() };
            if &curr_ref.key != key {
                return Ok(false);
            }
            let next_word = curr_ref.next.load(Ordering::Acquire);
            if is_marked(next_word) {
                // Someone else is already deleting it; help by restarting (the next search
                // unlinks it).
                continue;
            }
            handle.check()?;
            // Logical deletion: set the mark bit.
            if curr_ref
                .next
                .compare_exchange(next_word, next_word | MARK, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // Physical deletion: best effort; if it fails a later traversal will do it (and
            // that traversal's winner retires the node).
            if self
                .link_of(prev)
                .compare_exchange(curr_word, next_word & !MARK, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: unlinked by this thread; unique owner of the retirement.
                unsafe { handle.retire(curr) };
            }
            return Ok(true);
        }
    }

    fn get_body(
        &self,
        handle: &mut ListHandle<K, V, R, P, A>,
        key: &K,
    ) -> Result<Option<V>, Neutralized> {
        let (_prev, curr_word) = self.search(handle, key)?;
        if let Some(curr) = NonNull::new(ptr_of(curr_word) as *mut ListNode<K, V>) {
            // SAFETY: protected by the search above.
            let curr_ref = unsafe { curr.as_ref() };
            if &curr_ref.key == key && !is_marked(curr_ref.next.load(Ordering::Acquire)) {
                return Ok(Some(curr_ref.value.clone()));
            }
        }
        Ok(None)
    }

    /// Runs an operation body with the standard leave/enter-quiescent-state wrapper and the
    /// DEBRA+ recovery protocol (restart after neutralization).
    fn run_op<Out>(
        &self,
        handle: &mut ListHandle<K, V, R, P, A>,
        mut body: impl FnMut(&Self, &mut ListHandle<K, V, R, P, A>) -> Result<Out, Neutralized>,
    ) -> Out {
        loop {
            handle.leave_qstate();
            match body(self, handle) {
                Ok(out) => {
                    handle.enter_qstate();
                    return out;
                }
                Err(Neutralized) => {
                    // Recovery (paper, Section 5): nothing this operation published needs
                    // helping — updates that passed their decision CAS run to completion
                    // without checkpoints — so recovery is simply: release restricted
                    // hazard pointers, acknowledge, retry.
                    handle.r_unprotect_all();
                    handle.begin_recovery();
                }
            }
        }
    }

    /// Counts the elements by a full (single-threaded) traversal; test/diagnostic helper.
    ///
    /// The traversal announces no per-node protection, which only epoch-style schemes
    /// honor; under protection-based schemes (HP, ThreadScan, IBR) it must not race with
    /// concurrent removals — call it only when no other thread is updating the list.
    pub fn len(&self, handle: &mut ListHandle<K, V, R, P, A>) -> usize {
        handle.leave_qstate();
        let mut n = 0;
        let mut word = self.head.load(Ordering::Acquire);
        while let Some(node) = NonNull::new(ptr_of(word) as *mut ListNode<K, V>) {
            // SAFETY: under epoch schemes the non-quiescent announcement keeps every node
            // alive; under protection-based schemes the documented precondition (no
            // concurrent updates) does.
            let r = unsafe { node.as_ref() };
            let next = r.next.load(Ordering::Acquire);
            if !is_marked(next) {
                n += 1;
            }
            word = next;
        }
        handle.enter_qstate();
        n
    }

    /// Returns `true` if the list is empty (diagnostic helper).
    pub fn is_empty(&self, handle: &mut ListHandle<K, V, R, P, A>) -> bool {
        self.len(handle) == 0
    }
}

impl<K, V, R, P, A> ConcurrentMap<K, V> for HarrisMichaelList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<ListNode<K, V>>,
    P: Pool<ListNode<K, V>>,
    A: Allocator<ListNode<K, V>>,
{
    type Handle = ListHandle<K, V, R, P, A>;

    fn register(&self, tid: usize) -> Result<Self::Handle, RegistrationError> {
        self.manager.register(tid)
    }

    fn insert(&self, handle: &mut Self::Handle, key: K, value: V) -> bool {
        self.run_op(handle, |this, h| this.insert_body(h, &key, &value))
    }

    fn remove(&self, handle: &mut Self::Handle, key: &K) -> bool {
        self.run_op(handle, |this, h| this.remove_body(h, key))
    }

    fn contains(&self, handle: &mut Self::Handle, key: &K) -> bool {
        self.run_op(handle, |this, h| this.get_body(h, key)).is_some()
    }

    fn get(&self, handle: &mut Self::Handle, key: &K) -> Option<V> {
        self.run_op(handle, |this, h| this.get_body(h, key))
    }
}

impl<K, V, R, P, A> Drop for HarrisMichaelList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<ListNode<K, V>>,
    P: Pool<ListNode<K, V>>,
    A: Allocator<ListNode<K, V>>,
{
    fn drop(&mut self) {
        // Free every node still reachable from the head.  At this point the caller
        // guarantees exclusive access (we have `&mut self`).
        let mut alloc = self.manager.teardown_allocator();
        let mut word = *self.head.get_mut();
        while let Some(node) = NonNull::new(ptr_of(word) as *mut ListNode<K, V>) {
            // SAFETY: exclusive access during drop; each reachable node freed exactly once.
            unsafe {
                word = node.as_ref().next.load(Ordering::Relaxed);
                debra::AllocatorThread::deallocate(&mut alloc, node);
            }
        }
    }
}

impl<K, V, R, P, A> fmt::Debug for HarrisMichaelList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<ListNode<K, V>>,
    P: Pool<ListNode<K, V>>,
    A: Allocator<ListNode<K, V>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HarrisMichaelList").field("reclaimer", &R::name()).finish()
    }
}

// SAFETY: the list is a shared concurrent structure; all shared mutable state is accessed
// through atomics, and nodes are `Send` because K and V are.
unsafe impl<K, V, R, P, A> Send for HarrisMichaelList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<ListNode<K, V>>,
    P: Pool<ListNode<K, V>>,
    A: Allocator<ListNode<K, V>>,
{
}
unsafe impl<K, V, R, P, A> Sync for HarrisMichaelList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<ListNode<K, V>>,
    P: Pool<ListNode<K, V>>,
    A: Allocator<ListNode<K, V>>,
{
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::Debra;
    use smr_alloc::{SystemAllocator, ThreadPool};

    type TestList = HarrisMichaelList<
        u64,
        u64,
        Debra<ListNode<u64, u64>>,
        ThreadPool<ListNode<u64, u64>>,
        SystemAllocator<ListNode<u64, u64>>,
    >;

    fn new_list(threads: usize) -> TestList {
        let manager = Arc::new(RecordManager::new(threads));
        HarrisMichaelList::new(manager)
    }

    #[test]
    fn sequential_set_semantics() {
        let list = new_list(1);
        let mut h = list.register(0).unwrap();
        assert!(!list.contains(&mut h, &5));
        assert!(list.insert(&mut h, 5, 50));
        assert!(!list.insert(&mut h, 5, 51), "duplicate insert must fail");
        assert!(list.contains(&mut h, &5));
        assert_eq!(list.get(&mut h, &5), Some(50));
        assert!(list.remove(&mut h, &5));
        assert!(!list.remove(&mut h, &5));
        assert!(!list.contains(&mut h, &5));
        assert_eq!(list.len(&mut h), 0);
    }

    #[test]
    fn keeps_sorted_order_and_all_elements() {
        let list = new_list(1);
        let mut h = list.register(0).unwrap();
        let keys = [9u64, 1, 7, 3, 5, 2, 8, 0, 6, 4];
        for &k in &keys {
            assert!(list.insert(&mut h, k, k * 10));
        }
        assert_eq!(list.len(&mut h), keys.len());
        for &k in &keys {
            assert_eq!(list.get(&mut h, &k), Some(k * 10));
        }
        for &k in &keys {
            assert!(list.remove(&mut h, &k));
        }
        assert!(list.is_empty(&mut h));
    }

    #[test]
    fn matches_a_sequential_model() {
        use std::collections::BTreeMap;
        let list = new_list(1);
        let mut h = list.register(0).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        // Deterministic pseudo-random operation sequence.
        let mut x: u64 = 0x243F6A8885A308D3;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 64;
            match (x >> 60) % 3 {
                0 => assert_eq!(list.insert(&mut h, key, key), model.insert(key, key).is_none()),
                1 => assert_eq!(list.remove(&mut h, &key), model.remove(&key).is_some()),
                _ => assert_eq!(list.contains(&mut h, &key), model.contains_key(&key)),
            }
        }
        assert_eq!(list.len(&mut h), model.len());
    }

    #[test]
    fn concurrent_disjoint_inserts_and_removes() {
        let threads = 4;
        let per_thread = 2_000u64;
        let list = Arc::new(new_list(threads));
        let mut joins = Vec::new();
        for t in 0..threads as u64 {
            let list = Arc::clone(&list);
            joins.push(std::thread::spawn(move || {
                let mut h = list.register(t as usize).unwrap();
                for i in 0..per_thread {
                    let k = t * per_thread + i;
                    assert!(list.insert(&mut h, k, k));
                }
                for i in 0..per_thread {
                    let k = t * per_thread + i;
                    assert!(list.contains(&mut h, &k));
                }
                for i in (0..per_thread).step_by(2) {
                    let k = t * per_thread + i;
                    assert!(list.remove(&mut h, &k));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut h = list.register(0).unwrap();
        assert_eq!(list.len(&mut h), (threads as u64 * per_thread / 2) as usize);
        drop(h);
    }

    #[test]
    fn concurrent_contended_single_key() {
        // All threads fight over the same small key range; counts must stay consistent.
        let threads = 4;
        let list = Arc::new(new_list(threads));
        let mut joins = Vec::new();
        for t in 0..threads {
            let list = Arc::clone(&list);
            joins.push(std::thread::spawn(move || {
                let mut h = list.register(t).unwrap();
                let mut net: i64 = 0;
                for i in 0..5_000u64 {
                    let k = i % 8;
                    if (i + t as u64).is_multiple_of(2) {
                        if list.insert(&mut h, k, k) {
                            net += 1;
                        }
                    } else if list.remove(&mut h, &k) {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net_total: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        let mut h = list.register(0).unwrap();
        assert_eq!(
            list.len(&mut h) as i64,
            net_total,
            "net successful inserts must equal final size"
        );
    }
}

//! A lock-free sorted linked list (Harris marking + Michael physical removal), written
//! against the **safe guard layer** of the Record Manager abstraction.
//!
//! This module contains no hand-rolled protection code (and, like the whole crate, no
//! `unsafe` at all): every pointer the traversal dereferences is obtained through
//! [`debra::Shield::protect`] (the validated announce-then-revalidate protocol, a no-op
//! under epoch schemes) or a guard-scoped [`Atomic::load`], every operation body runs
//! under [`DomainHandle::run`], which performs the DEBRA+ recovery protocol on
//! [`Restart`], and the removed record is handed to the safe [`Guard::retire`] at the
//! unique unlink point (retire-once-after-unlink is the guard layer's documented
//! contract — see its docs).

use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use debra::{
    Allocator, Atomic, Domain, DomainHandle, Guard, Pool, Reclaimer, RecordManager,
    RegistrationError, Restart, Shared, Shield,
};

use crate::ConcurrentMap;

/// Mark (logical deletion) tag stored in the low bit of a node's `next` link.
const MARK: usize = 1;

/// A node of [`HarrisMichaelList`].
///
/// `next` packs the successor pointer and the *mark* tag: a marked node has been logically
/// deleted and will be retired by whichever thread physically unlinks it.
pub struct ListNode<K, V> {
    key: K,
    value: V,
    next: Atomic<ListNode<K, V>>,
}

impl<K, V> ListNode<K, V> {
    /// The node's key.
    pub fn key(&self) -> &K {
        &self.key
    }

    /// The node's value.
    pub fn value(&self) -> &V {
        &self.value
    }
}

impl<K: fmt::Debug, V> fmt::Debug for ListNode<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ListNode").field("key", &self.key).field("next", &self.next).finish()
    }
}

/// A lock-free sorted linked list implementing a set/map, parameterized by the Record
/// Manager (reclaimer `R`, pool `P`, allocator `A`) through a [`Domain`].
///
/// The algorithm is the classic Harris / Michael list: deletion first *marks* the victim's
/// `next` pointer (logical deletion), then any traversal that encounters a marked node
/// attempts to physically unlink it; the thread whose unlink CAS succeeds retires the node
/// through the guard.  Searches may traverse marked — and, under epoch-based reclamation,
/// already retired — nodes, which is precisely the access pattern discussed in Section 3
/// of the paper.
pub struct HarrisMichaelList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<ListNode<K, V>>,
    P: Pool<ListNode<K, V>>,
    A: Allocator<ListNode<K, V>>,
{
    head: Atomic<ListNode<K, V>>,
    domain: Domain<ListNode<K, V>, R, P, A>,
}

/// Shorthand for the per-thread handle type used by [`HarrisMichaelList`]: a domain lease
/// that pins guards without per-operation registry lookups.  Obtained with
/// [`ConcurrentMap::register`] (slots are leased automatically) and usable only on the
/// thread that created it.
pub type ListHandle<K, V, R, P, A> = DomainHandle<ListNode<K, V>, R, P, A>;

/// Shorthand for the guard type of [`HarrisMichaelList`] operations.
pub type ListGuard<K, V, R, P, A> = Guard<ListNode<K, V>, R, P, A>;

impl<K, V, R, P, A> HarrisMichaelList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<ListNode<K, V>>,
    P: Pool<ListNode<K, V>>,
    A: Allocator<ListNode<K, V>>,
{
    /// Creates an empty list backed by `manager`.
    pub fn new(manager: Arc<RecordManager<ListNode<K, V>, R, P, A>>) -> Self {
        Self::in_domain(Domain::with_manager(manager))
    }

    /// Creates an empty list backed by an existing [`Domain`] (sharing its thread leases).
    pub fn in_domain(domain: Domain<ListNode<K, V>, R, P, A>) -> Self {
        HarrisMichaelList { head: Atomic::null(), domain }
    }

    /// The Record Manager backing this list.
    pub fn manager(&self) -> &Arc<RecordManager<ListNode<K, V>, R, P, A>> {
        self.domain.manager()
    }

    /// The reclamation domain backing this list.
    pub fn domain(&self) -> &Domain<ListNode<K, V>, R, P, A> {
        &self.domain
    }

    /// Leases a per-thread handle; see [`ConcurrentMap::register`] (the domain leases
    /// slots automatically — no manual `tid` bookkeeping).
    pub fn register(&self) -> Result<ListHandle<K, V, R, P, A>, RegistrationError> {
        self.domain.try_handle()
    }

    /// The link word holding the pointer to the traversal's current node: the
    /// predecessor's `next` link, or the head when there is no predecessor.
    #[inline]
    fn link_of<'g>(&'g self, prev: Shared<'g, ListNode<K, V>>) -> &'g Atomic<ListNode<K, V>> {
        match prev.as_ref() {
            Some(p) => &p.next,
            None => &self.head,
        }
    }

    /// Finds the first node with key >= `key` (`curr`, null if none) and its
    /// predecessor (`prev`, null when `curr` hangs off the head), physically unlinking
    /// (and retiring) marked nodes encountered on the way.  On return both nodes are
    /// still protected by the caller-supplied shields, so the caller may dereference
    /// them and CAS on the predecessor's link.
    ///
    /// Returns [`Restart`] only for DEBRA+ neutralization; protection-validation
    /// failures (HP / ThreadScan / IBR) restart the traversal internally.
    #[allow(clippy::type_complexity)]
    fn search<'g>(
        &self,
        guard: &'g ListGuard<K, V, R, P, A>,
        key: &K,
        prev_shield: &mut Shield<'g, ListNode<K, V>, R, P, A>,
        curr_shield: &mut Shield<'g, ListNode<K, V>, R, P, A>,
    ) -> Result<(Shared<'g, ListNode<K, V>>, Shared<'g, ListNode<K, V>>), Restart> {
        'retry: loop {
            guard.check()?;
            let mut prev: Shared<'g, ListNode<K, V>> = Shared::null();
            let mut curr_word = self.head.load(Ordering::Acquire, guard);
            loop {
                // Protect-and-validate the node `curr_word` points to (`protect_loaded`
                // folds in the per-node neutralization checkpoint).  A failure means the
                // link changed under us or is now marked — the node may already be
                // retired: restart from the head.  The validating comparison is on the
                // full link word, mark tag included, exactly as Michael's algorithm
                // requires.
                let link = self.link_of(prev);
                let Ok(curr) = curr_shield.protect_loaded(link, curr_word) else {
                    continue 'retry;
                };
                let Some(curr_ref) = curr.as_ref() else {
                    return Ok((prev, curr));
                };
                let next = curr_ref.next.load(Ordering::Acquire, guard);

                if next.tag() == MARK {
                    // Logically deleted: try to unlink it.  Whoever wins the CAS owns the
                    // retirement of `curr`.
                    let unlink_to = next.with_tag(0);
                    match link.compare_exchange(
                        curr,
                        unlink_to,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    ) {
                        Ok(()) => {
                            // `curr` was just unlinked by this thread (unique CAS winner)
                            // and is no longer reachable from the head; it is retired
                            // exactly once, here (the guard's documented contract).
                            guard.retire(curr);
                            curr_word = unlink_to;
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }

                if curr_ref.key >= *key {
                    return Ok((prev, curr));
                }
                // Advance: `curr` becomes the predecessor.  Swapping the shield roles
                // moves the protections without touching the announcements, so the old
                // current-node announcement now guards the predecessor.
                prev_shield.swap_roles(curr_shield);
                prev = curr;
                curr_word = next;
            }
        }
    }

    fn insert_body(
        &self,
        guard: &ListGuard<K, V, R, P, A>,
        key: &K,
        value: &V,
    ) -> Result<bool, Restart> {
        let mut prev_shield = guard.shield();
        let mut curr_shield = guard.shield();
        loop {
            let (prev, curr) = self.search(guard, key, &mut prev_shield, &mut curr_shield)?;
            if let Some(curr_ref) = curr.as_ref() {
                if &curr_ref.key == key {
                    return Ok(false);
                }
            }
            let node = guard.alloc(ListNode {
                key: key.clone(),
                value: value.clone(),
                next: Atomic::from_shared(curr),
            });
            if let Err(restart) = guard.check() {
                // Not yet published: recycle immediately, then unwind to recovery.
                guard.discard(node);
                return Err(restart);
            }
            match self.link_of(prev).compare_exchange_owned(
                curr,
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(_) => return Ok(true),
                Err(node) => {
                    // The node was never made reachable; recycle it and retry.
                    guard.discard(node);
                    continue;
                }
            }
        }
    }

    fn remove_body(&self, guard: &ListGuard<K, V, R, P, A>, key: &K) -> Result<bool, Restart> {
        let mut prev_shield = guard.shield();
        let mut curr_shield = guard.shield();
        loop {
            let (prev, curr) = self.search(guard, key, &mut prev_shield, &mut curr_shield)?;
            let Some(curr_ref) = curr.as_ref() else {
                return Ok(false);
            };
            if &curr_ref.key != key {
                return Ok(false);
            }
            let next = curr_ref.next.load(Ordering::Acquire, guard);
            if next.tag() == MARK {
                // Someone else is already deleting it; help by restarting (the next
                // search unlinks it).
                continue;
            }
            guard.check()?;
            // Logical deletion: set the mark tag.
            if curr_ref
                .next
                .compare_exchange(
                    next,
                    next.with_tag(MARK),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                )
                .is_err()
            {
                continue;
            }
            // Physical deletion: best effort; if it fails a later traversal will do it
            // (and that traversal's winner retires the node).
            if self
                .link_of(prev)
                .compare_exchange(
                    curr,
                    next.with_tag(0),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                )
                .is_ok()
            {
                // Unlinked by this thread: unique owner of the retirement.
                guard.retire(curr);
            }
            return Ok(true);
        }
    }

    fn get_body(&self, guard: &ListGuard<K, V, R, P, A>, key: &K) -> Result<Option<V>, Restart> {
        let mut prev_shield = guard.shield();
        let mut curr_shield = guard.shield();
        let (_prev, curr) = self.search(guard, key, &mut prev_shield, &mut curr_shield)?;
        if let Some(curr_ref) = curr.as_ref() {
            if &curr_ref.key == key && curr_ref.next.load(Ordering::Acquire, guard).tag() == 0 {
                return Ok(Some(curr_ref.value.clone()));
            }
        }
        Ok(None)
    }

    /// Counts the elements by a full traversal; test/diagnostic helper.
    ///
    /// The traversal announces no per-node protection, which only epoch-style schemes
    /// honor; under protection-based schemes (HP, ThreadScan, IBR) it must not race with
    /// concurrent removals — call it only when no other thread is updating the list.
    pub fn len(&self, handle: &mut ListHandle<K, V, R, P, A>) -> usize {
        handle.run(|guard| {
            let mut n = 0;
            let mut curr = self.head.load(Ordering::Acquire, guard);
            while let Some(node) = curr.as_ref() {
                let next = node.next.load(Ordering::Acquire, guard);
                if next.tag() == 0 {
                    n += 1;
                }
                curr = next;
            }
            Ok(n)
        })
    }

    /// Returns `true` if the list is empty (diagnostic helper).
    pub fn is_empty(&self, handle: &mut ListHandle<K, V, R, P, A>) -> bool {
        self.len(handle) == 0
    }
}

impl<K, V, R, P, A> ConcurrentMap<K, V> for HarrisMichaelList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<ListNode<K, V>>,
    P: Pool<ListNode<K, V>>,
    A: Allocator<ListNode<K, V>>,
{
    type Handle = ListHandle<K, V, R, P, A>;

    fn register(&self) -> Result<Self::Handle, RegistrationError> {
        self.domain.try_handle()
    }

    fn insert(&self, handle: &mut Self::Handle, key: K, value: V) -> bool {
        handle.run(|guard| self.insert_body(guard, &key, &value))
    }

    fn remove(&self, handle: &mut Self::Handle, key: &K) -> bool {
        handle.run(|guard| self.remove_body(guard, key))
    }

    fn contains(&self, handle: &mut Self::Handle, key: &K) -> bool {
        handle.run(|guard| self.get_body(guard, key)).is_some()
    }

    fn get(&self, handle: &mut Self::Handle, key: &K) -> Option<V> {
        handle.run(|guard| self.get_body(guard, key))
    }
}

impl<K, V, R, P, A> Drop for HarrisMichaelList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<ListNode<K, V>>,
    P: Pool<ListNode<K, V>>,
    A: Allocator<ListNode<K, V>>,
{
    fn drop(&mut self) {
        // Exclusive access during drop (`&mut self`); every node still reachable from
        // the head is freed exactly once.
        self.domain.free_reachable(self.head.load_ptr(Ordering::Relaxed), |node| {
            node.next.load_ptr(Ordering::Relaxed)
        });
    }
}

impl<K, V, R, P, A> fmt::Debug for HarrisMichaelList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<ListNode<K, V>>,
    P: Pool<ListNode<K, V>>,
    A: Allocator<ListNode<K, V>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HarrisMichaelList").field("reclaimer", &R::name()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::Debra;
    use smr_alloc::{SystemAllocator, ThreadPool};

    type TestList = HarrisMichaelList<
        u64,
        u64,
        Debra<ListNode<u64, u64>>,
        ThreadPool<ListNode<u64, u64>>,
        SystemAllocator<ListNode<u64, u64>>,
    >;

    fn new_list(threads: usize) -> TestList {
        let manager = Arc::new(RecordManager::new(threads));
        HarrisMichaelList::new(manager)
    }

    #[test]
    fn sequential_set_semantics() {
        let list = new_list(1);
        let mut h = list.register().unwrap();
        assert!(!list.contains(&mut h, &5));
        assert!(list.insert(&mut h, 5, 50));
        assert!(!list.insert(&mut h, 5, 51), "duplicate insert must fail");
        assert!(list.contains(&mut h, &5));
        assert_eq!(list.get(&mut h, &5), Some(50));
        assert!(list.remove(&mut h, &5));
        assert!(!list.remove(&mut h, &5));
        assert!(!list.contains(&mut h, &5));
        assert_eq!(list.len(&mut h), 0);
    }

    #[test]
    fn keeps_sorted_order_and_all_elements() {
        let list = new_list(1);
        let mut h = list.register().unwrap();
        let keys = [9u64, 1, 7, 3, 5, 2, 8, 0, 6, 4];
        for &k in &keys {
            assert!(list.insert(&mut h, k, k * 10));
        }
        assert_eq!(list.len(&mut h), keys.len());
        for &k in &keys {
            assert_eq!(list.get(&mut h, &k), Some(k * 10));
        }
        for &k in &keys {
            assert!(list.remove(&mut h, &k));
        }
        assert!(list.is_empty(&mut h));
    }

    #[test]
    fn matches_a_sequential_model() {
        use std::collections::BTreeMap;
        let list = new_list(1);
        let mut h = list.register().unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        // Deterministic pseudo-random operation sequence.
        let mut x: u64 = 0x243F6A8885A308D3;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 64;
            match (x >> 60) % 3 {
                0 => assert_eq!(list.insert(&mut h, key, key), model.insert(key, key).is_none()),
                1 => assert_eq!(list.remove(&mut h, &key), model.remove(&key).is_some()),
                _ => assert_eq!(list.contains(&mut h, &key), model.contains_key(&key)),
            }
        }
        assert_eq!(list.len(&mut h), model.len());
    }

    #[test]
    fn concurrent_disjoint_inserts_and_removes() {
        let threads = 4;
        let per_thread = 2_000u64;
        let list = Arc::new(new_list(threads));
        let mut joins = Vec::new();
        for t in 0..threads as u64 {
            let list = Arc::clone(&list);
            joins.push(std::thread::spawn(move || {
                let mut h = list.register().unwrap();
                for i in 0..per_thread {
                    let k = t * per_thread + i;
                    assert!(list.insert(&mut h, k, k));
                }
                for i in 0..per_thread {
                    let k = t * per_thread + i;
                    assert!(list.contains(&mut h, &k));
                }
                for i in (0..per_thread).step_by(2) {
                    let k = t * per_thread + i;
                    assert!(list.remove(&mut h, &k));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut h = list.register().unwrap();
        assert_eq!(list.len(&mut h), (threads as u64 * per_thread / 2) as usize);
        drop(h);
    }

    #[test]
    fn concurrent_contended_single_key() {
        // All threads fight over the same small key range; counts must stay consistent.
        let threads = 4;
        let list = Arc::new(new_list(threads));
        let mut joins = Vec::new();
        for t in 0..threads {
            let list = Arc::clone(&list);
            joins.push(std::thread::spawn(move || {
                let mut h = list.register().unwrap();
                let mut net: i64 = 0;
                for i in 0..5_000u64 {
                    let k = i % 8;
                    if (i + t as u64).is_multiple_of(2) {
                        if list.insert(&mut h, k, k) {
                            net += 1;
                        }
                    } else if list.remove(&mut h, &k) {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net_total: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        let mut h = list.register().unwrap();
        assert_eq!(
            list.len(&mut h) as i64,
            net_total,
            "net successful inserts must equal final size"
        );
    }
}

//! A lock-free skip list written against the Record Manager abstraction.
//!
//! The algorithm is the classic lock-free skip list (Fraser / Herlihy–Shavit style): every
//! level's `next` pointer carries a mark bit; removal marks a node's pointers from the top
//! level down and the node is physically unlinked level by level by subsequent traversals.
//! The thread whose bottom-level unlink CAS succeeds retires the node through the Record
//! Manager.  It plays the role of the skip list used in the paper's Experiments 1–3
//! (keyrange 2·10⁵ panels).

use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use debra::{
    Allocator, AllocatorThread, Neutralized, Pool, Reclaimer, RecordManager, RecordManagerThread,
    RegistrationError,
};
use rand::Rng;

use crate::ConcurrentMap;

/// Maximum tower height of a skip list node.
pub const MAX_HEIGHT: usize = 20;

const MARK: usize = 1;

#[inline]
fn ptr_of(word: usize) -> usize {
    word & !MARK
}

#[inline]
fn is_marked(word: usize) -> bool {
    word & MARK != 0
}

/// A node of [`SkipList`]; `key == None` marks the head sentinel (smaller than every key).
pub struct SkipNode<K, V> {
    key: Option<K>,
    value: Option<V>,
    height: usize,
    next: [AtomicUsize; MAX_HEIGHT],
}

impl<K, V> SkipNode<K, V> {
    fn new(key: Option<K>, value: Option<V>, height: usize) -> Self {
        SkipNode { key, value, height, next: std::array::from_fn(|_| AtomicUsize::new(0)) }
    }

    /// The node's tower height.
    pub fn height(&self) -> usize {
        self.height
    }
}

impl<K: fmt::Debug, V> fmt::Debug for SkipNode<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipNode").field("key", &self.key).field("height", &self.height).finish()
    }
}

/// A lock-free skip list implementing a set/map, parameterized by the Record Manager.
pub struct SkipList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<SkipNode<K, V>>,
    P: Pool<SkipNode<K, V>>,
    A: Allocator<SkipNode<K, V>>,
{
    head: usize,
    domain: debra::Domain<SkipNode<K, V>, R, P, A>,
}

/// Shorthand for the per-thread handle type used by [`SkipList`].
pub type SkipHandle<K, V, R, P, A> = RecordManagerThread<SkipNode<K, V>, R, P, A>;

struct FindResult {
    preds: [usize; MAX_HEIGHT],
    succs: [usize; MAX_HEIGHT],
    found: usize, // 0 if not found
}

impl<K, V, R, P, A> SkipList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<SkipNode<K, V>>,
    P: Pool<SkipNode<K, V>>,
    A: Allocator<SkipNode<K, V>>,
{
    /// Creates an empty skip list backed by `manager`.
    pub fn new(manager: Arc<RecordManager<SkipNode<K, V>, R, P, A>>) -> Self {
        Self::in_domain(debra::Domain::with_manager(manager))
    }

    /// Creates an empty skip list backed by an existing [`debra::Domain`] (the safe-layer
    /// entry point: thread slots are leased automatically through the domain).
    pub fn in_domain(domain: debra::Domain<SkipNode<K, V>, R, P, A>) -> Self {
        let mut alloc = domain.manager().teardown_allocator();
        let head = alloc.allocate(SkipNode::new(None, None, MAX_HEIGHT)).as_ptr() as usize;
        SkipList { head, domain }
    }

    /// The Record Manager backing this skip list.
    pub fn manager(&self) -> &Arc<RecordManager<SkipNode<K, V>, R, P, A>> {
        self.domain.manager()
    }

    /// The reclamation domain backing this skip list (safe-layer entry point; the
    /// operation bodies themselves still use the raw handle protocol).
    pub fn domain(&self) -> &debra::Domain<SkipNode<K, V>, R, P, A> {
        &self.domain
    }

    /// Registers worker thread `tid`; see [`RecordManager::register`].
    pub fn register(&self, tid: usize) -> Result<SkipHandle<K, V, R, P, A>, RegistrationError> {
        self.manager().register(tid)
    }

    /// Registers the lowest free thread slot (no manual `tid` bookkeeping); see
    /// [`RecordManager::register_auto`].
    pub fn register_auto(&self) -> Result<SkipHandle<K, V, R, P, A>, RegistrationError> {
        self.manager().register_auto()
    }

    #[inline]
    fn node(&self, ptr: usize) -> &SkipNode<K, V> {
        debug_assert!(ptr != 0);
        // SAFETY: pointers are only dereferenced while protected by the calling operation
        // (epoch / hazard pointers) or during teardown with exclusive access.
        unsafe { &*(ptr as *const SkipNode<K, V>) }
    }

    fn key_less(&self, node: usize, key: &K) -> bool {
        match &self.node(node).key {
            None => true, // head sentinel
            Some(k) => k < key,
        }
    }

    /// Finds predecessors and successors of `key` at every level, physically unlinking
    /// marked nodes on the way (the unlinker at level 0 retires the node).
    fn find(
        &self,
        handle: &mut SkipHandle<K, V, R, P, A>,
        key: &K,
    ) -> Result<FindResult, Neutralized> {
        'retry: loop {
            handle.check()?;
            let mut preds = [self.head; MAX_HEIGHT];
            let mut succs = [0usize; MAX_HEIGHT];
            let mut pred = self.head;
            for level in (0..MAX_HEIGHT).rev() {
                let mut curr_word = self.node(pred).next[level].load(Ordering::Acquire);
                if is_marked(curr_word) {
                    // `pred` is being removed: its successors at this level can no longer
                    // be trusted, and an unlink CAS whose expected value carried the mark
                    // would *clear* it, resurrecting the half-removed predecessor (a
                    // double-retire in waiting).  Restart from the head.
                    continue 'retry;
                }
                loop {
                    handle.check()?;
                    let curr = ptr_of(curr_word);
                    if curr == 0 {
                        break;
                    }
                    let curr_nn = NonNull::new(curr as *mut SkipNode<K, V>).expect("non-null");
                    let pred_link = &self.node(pred).next[level];
                    // Full-word validation (`curr` is unmarked here): a predecessor whose
                    // link has since been *marked* must fail and restart — under HP-style
                    // schemes `curr` may already be unlinked and retired, and a stripped
                    // comparison would validate it anyway.
                    if !handle.protect(1, curr_nn, || pred_link.load(Ordering::SeqCst) == curr) {
                        continue 'retry;
                    }
                    let curr_ref = self.node(curr);
                    let next_word = curr_ref.next[level].load(Ordering::Acquire);
                    if is_marked(next_word) {
                        // Unlink the marked node at this level.
                        match self.node(pred).next[level].compare_exchange(
                            curr_word,
                            ptr_of(next_word),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => {
                                if level == 0 {
                                    // Fully unlinked: this thread owns the retirement.
                                    // SAFETY: unique level-0 unlink winner; unreachable for
                                    // operations that start later.
                                    unsafe { handle.retire(curr_nn) };
                                }
                                curr_word = ptr_of(next_word);
                                continue;
                            }
                            Err(_) => continue 'retry,
                        }
                    }
                    if self.key_less(curr, key) {
                        let _ = handle.protect(0, curr_nn, || true);
                        pred = curr;
                        curr_word = next_word;
                    } else {
                        break;
                    }
                }
                preds[level] = pred;
                succs[level] = ptr_of(curr_word);
            }
            let candidate = succs[0];
            let found = if candidate != 0 && self.node(candidate).key.as_ref() == Some(key) {
                candidate
            } else {
                0
            };
            return Ok(FindResult { preds, succs, found });
        }
    }

    fn random_height(&self) -> usize {
        let mut rng = rand::thread_rng();
        let mut h = 1;
        while h < MAX_HEIGHT && rng.gen_bool(0.5) {
            h += 1;
        }
        h
    }

    fn insert_body(
        &self,
        handle: &mut SkipHandle<K, V, R, P, A>,
        key: &K,
        value: &V,
        published: &mut Option<(usize, usize)>,
    ) -> Result<bool, Neutralized> {
        loop {
            let r = self.find(handle, key)?;
            if r.found != 0 {
                return Ok(false);
            }
            let height = self.random_height();
            let node =
                handle.allocate(SkipNode::new(Some(key.clone()), Some(value.clone()), height));
            let node_ptr = node.as_ptr() as usize;
            {
                // SAFETY: the node is private until the bottom-level CAS below publishes it.
                let node_ref = unsafe { node.as_ref() };
                for level in 0..height {
                    node_ref.next[level].store(r.succs[level], Ordering::Relaxed);
                }
            }
            if let Err(e) = handle.check() {
                // SAFETY: never published.
                unsafe { handle.deallocate(node) };
                return Err(e);
            }
            // Publish at the bottom level: the operation's linearization point.
            if self.node(r.preds[0]).next[0]
                .compare_exchange(r.succs[0], node_ptr, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // SAFETY: never published.
                unsafe { handle.deallocate(node) };
                continue;
            }
            // From here on the operation must report success; completion work is resumable
            // across a neutralization (see `complete_insert`).  The restricted hazard
            // pointer keeps the node's memory valid across a recovery gap, during which a
            // concurrent remove may retire it.
            handle.r_protect(node);
            *published = Some((node_ptr, height));
            self.complete_insert(handle, key, node_ptr, height)?;
            return Ok(true);
        }
    }

    /// Completion phase of an already-published insert: links the upper levels and, if a
    /// concurrent remove marked the node meanwhile, makes sure it is physically unlinked
    /// before the operation ends (a retired node must never stay reachable past the
    /// inserting operation, or it could be freed while other threads can still step onto
    /// it through an upper-level link).
    ///
    /// Idempotent: on neutralization the caller re-runs it inside a fresh operation.
    fn complete_insert(
        &self,
        handle: &mut SkipHandle<K, V, R, P, A>,
        key: &K,
        node_ptr: usize,
        height: usize,
    ) -> Result<(), Neutralized> {
        let node_ref = self.node(node_ptr);
        'levels: for level in 1..height {
            loop {
                let expected = node_ref.next[level].load(Ordering::Acquire);
                if is_marked(expected) {
                    break 'levels; // concurrently removed; stop climbing
                }
                let r2 = self.find(handle, key)?;
                if r2.found != node_ptr {
                    break 'levels; // already removed and unlinked at the bottom
                }
                if r2.succs[level] == node_ptr {
                    // Already linked at this level: we are re-running the (idempotent)
                    // completion after a neutralization, and `find` now returns the node
                    // as its own successor here.  Without this check the CAS below would
                    // set `node.next[level] = node_ptr` — a self-cycle that every later
                    // traversal of this level would spin on forever.
                    continue 'levels;
                }
                if expected != r2.succs[level]
                    && node_ref.next[level]
                        .compare_exchange(
                            expected,
                            r2.succs[level],
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_err()
                {
                    continue;
                }
                if self.node(r2.preds[level]).next[level]
                    .compare_exchange(
                        r2.succs[level],
                        node_ptr,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    break;
                }
            }
        }
        if is_marked(node_ref.next[0].load(Ordering::Acquire)) {
            // A concurrent remove won while we were climbing: unlink everywhere (the
            // level-0 unlink winner performs the retirement).
            let _ = self.find(handle, key)?;
        }
        handle.r_unprotect_all();
        Ok(())
    }

    fn remove_body(
        &self,
        handle: &mut SkipHandle<K, V, R, P, A>,
        key: &K,
        decided: &mut bool,
    ) -> Result<bool, Neutralized> {
        if *decided {
            // The bottom-level mark CAS already succeeded in an attempt that was then
            // interrupted by neutralization; only the physical unlink remains.
            let _ = self.find(handle, key)?;
            return Ok(true);
        }
        let r = self.find(handle, key)?;
        if r.found == 0 {
            return Ok(false);
        }
        let victim = self.node(r.found);
        // Mark the upper levels (top-down).
        for level in (1..victim.height).rev() {
            loop {
                let w = victim.next[level].load(Ordering::Acquire);
                if is_marked(w) {
                    break;
                }
                if victim.next[level]
                    .compare_exchange(w, w | MARK, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
            }
        }
        // Mark the bottom level; only one remover succeeds.  The successful CAS is the
        // linearization point: everything after it must not unwind the decision.
        loop {
            let w = victim.next[0].load(Ordering::Acquire);
            if is_marked(w) {
                return Ok(false); // another remover won
            }
            if victim.next[0]
                .compare_exchange(w, w | MARK, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                *decided = true;
                // Physically unlink (and let the unlink winner retire) via find.
                let _ = self.find(handle, key)?;
                return Ok(true);
            }
            handle.check()?;
        }
    }

    fn get_body(
        &self,
        handle: &mut SkipHandle<K, V, R, P, A>,
        key: &K,
    ) -> Result<Option<V>, Neutralized> {
        // Read-only traversal (does not unlink).  Every step onto a node goes through a
        // validated `protect` so that schemes with real per-access protection (hazard
        // pointers, IBR's validating read) cover the record before it is dereferenced;
        // epoch schemes compile this to a plain `true`.
        'retry: loop {
            handle.check()?;
            let mut pred = self.head;
            for level in (0..MAX_HEIGHT).rev() {
                let mut curr = ptr_of(self.node(pred).next[level].load(Ordering::Acquire));
                loop {
                    handle.check()?;
                    if curr == 0 {
                        break;
                    }
                    let curr_nn = NonNull::new(curr as *mut SkipNode<K, V>).expect("non-null");
                    let pred_link = &self.node(pred).next[level];
                    // Full-word validation: the link must still be the *unmarked* pointer
                    // to `curr`.  A marked predecessor link means `curr` may already be
                    // unlinked and retired; only epoch schemes (which never run this
                    // closure) may keep traversing through marked nodes.
                    if !handle.protect(1, curr_nn, || pred_link.load(Ordering::SeqCst) == curr) {
                        continue 'retry;
                    }
                    let curr_ref = self.node(curr);
                    if self.key_less(curr, key) {
                        let _ = handle.protect(0, curr_nn, || true);
                        pred = curr;
                        curr = ptr_of(curr_ref.next[level].load(Ordering::Acquire));
                    } else {
                        break;
                    }
                }
            }
            let candidate = ptr_of(self.node(pred).next[0].load(Ordering::Acquire));
            if candidate != 0 {
                let candidate_nn =
                    NonNull::new(candidate as *mut SkipNode<K, V>).expect("non-null");
                let pred_link = &self.node(pred).next[0];
                // Full-word validation, as above: a marked link must not validate.
                if !handle
                    .protect(1, candidate_nn, || pred_link.load(Ordering::SeqCst) == candidate)
                {
                    continue 'retry;
                }
                let node = self.node(candidate);
                if node.key.as_ref() == Some(key)
                    && !is_marked(node.next[0].load(Ordering::Acquire))
                {
                    return Ok(node.value.clone());
                }
            }
            return Ok(None);
        }
    }

    fn run_op<Out>(
        &self,
        handle: &mut SkipHandle<K, V, R, P, A>,
        mut body: impl FnMut(&Self, &mut SkipHandle<K, V, R, P, A>) -> Result<Out, Neutralized>,
    ) -> Out {
        loop {
            let _ = handle.leave_qstate();
            match body(self, handle) {
                Ok(out) => {
                    handle.enter_qstate();
                    return out;
                }
                Err(Neutralized) => {
                    // Recovery: acknowledge and retry the body.  Restricted hazard pointers
                    // are deliberately *kept*: an insert whose decision CAS already
                    // succeeded holds its new node R-protected across the recovery gap and
                    // releases it when its completion phase finishes.
                    handle.begin_recovery();
                }
            }
        }
    }

    /// Number of keys currently in the list (single-threaded diagnostic).
    pub fn len(&self, handle: &mut SkipHandle<K, V, R, P, A>) -> usize {
        let _ = handle.leave_qstate();
        let mut n = 0;
        let mut curr = ptr_of(self.node(self.head).next[0].load(Ordering::Acquire));
        while curr != 0 {
            let r = self.node(curr);
            if !is_marked(r.next[0].load(Ordering::Acquire)) {
                n += 1;
            }
            curr = ptr_of(r.next[0].load(Ordering::Acquire));
        }
        handle.enter_qstate();
        n
    }

    /// Returns `true` if the skip list holds no keys (diagnostic helper).
    pub fn is_empty(&self, handle: &mut SkipHandle<K, V, R, P, A>) -> bool {
        self.len(handle) == 0
    }
}

impl<K, V, R, P, A> ConcurrentMap<K, V> for SkipList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<SkipNode<K, V>>,
    P: Pool<SkipNode<K, V>>,
    A: Allocator<SkipNode<K, V>>,
{
    type Handle = SkipHandle<K, V, R, P, A>;

    fn register(&self, tid: usize) -> Result<Self::Handle, RegistrationError> {
        self.manager().register(tid)
    }

    fn insert(&self, handle: &mut Self::Handle, key: K, value: V) -> bool {
        // `published` survives neutralization-induced retries: once the bottom-level CAS
        // has succeeded, only the (idempotent) completion phase is re-run, so the insert
        // takes effect exactly once.
        let mut published: Option<(usize, usize)> = None;
        self.run_op(handle, |this, h| {
            if let Some((node_ptr, height)) = published {
                this.complete_insert(h, &key, node_ptr, height)?;
                return Ok(true);
            }
            this.insert_body(h, &key, &value, &mut published)
        })
    }

    fn remove(&self, handle: &mut Self::Handle, key: &K) -> bool {
        // Same decision/completion split as `insert`: a remove whose bottom-level mark CAS
        // has succeeded reports success even if its physical unlink is interrupted.
        let mut decided = false;
        self.run_op(handle, |this, h| this.remove_body(h, key, &mut decided))
    }

    fn contains(&self, handle: &mut Self::Handle, key: &K) -> bool {
        self.run_op(handle, |this, h| this.get_body(h, key)).is_some()
    }

    fn get(&self, handle: &mut Self::Handle, key: &K) -> Option<V> {
        self.run_op(handle, |this, h| this.get_body(h, key))
    }
}

impl<K, V, R, P, A> Drop for SkipList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<SkipNode<K, V>>,
    P: Pool<SkipNode<K, V>>,
    A: Allocator<SkipNode<K, V>>,
{
    fn drop(&mut self) {
        let mut alloc = self.manager().teardown_allocator();
        let mut curr = self.head;
        while curr != 0 {
            let next = ptr_of(self.node(curr).next[0].load(Ordering::Relaxed));
            // SAFETY: exclusive access during drop; bottom-level walk visits each node once.
            unsafe { alloc.deallocate(NonNull::new_unchecked(curr as *mut SkipNode<K, V>)) };
            curr = next;
        }
    }
}

impl<K, V, R, P, A> fmt::Debug for SkipList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<SkipNode<K, V>>,
    P: Pool<SkipNode<K, V>>,
    A: Allocator<SkipNode<K, V>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipList").field("reclaimer", &R::name()).finish()
    }
}

// SAFETY: all shared mutable state is accessed through atomics; records are Send.
unsafe impl<K, V, R, P, A> Send for SkipList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<SkipNode<K, V>>,
    P: Pool<SkipNode<K, V>>,
    A: Allocator<SkipNode<K, V>>,
{
}
unsafe impl<K, V, R, P, A> Sync for SkipList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<SkipNode<K, V>>,
    P: Pool<SkipNode<K, V>>,
    A: Allocator<SkipNode<K, V>>,
{
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::Debra;
    use smr_alloc::{SystemAllocator, ThreadPool};

    type Node = SkipNode<u64, u64>;
    type TestSkip = SkipList<u64, u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;

    fn new_skip(threads: usize) -> TestSkip {
        SkipList::new(Arc::new(RecordManager::new(threads)))
    }

    #[test]
    fn sequential_set_semantics() {
        let s = new_skip(1);
        let mut h = s.register(0).unwrap();
        assert!(s.insert(&mut h, 3, 30));
        assert!(s.insert(&mut h, 1, 10));
        assert!(s.insert(&mut h, 2, 20));
        assert!(!s.insert(&mut h, 2, 21));
        assert_eq!(s.get(&mut h, &2), Some(20));
        assert_eq!(s.len(&mut h), 3);
        assert!(s.remove(&mut h, &2));
        assert!(!s.remove(&mut h, &2));
        assert!(!s.contains(&mut h, &2));
        assert_eq!(s.len(&mut h), 2);
    }

    #[test]
    fn matches_a_sequential_model() {
        use std::collections::BTreeMap;
        let s = new_skip(1);
        let mut h = s.register(0).unwrap();
        let mut model = BTreeMap::new();
        let mut x: u64 = 0xDEADBEEFCAFEF00D;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 100;
            match (x >> 61) % 3 {
                0 => assert_eq!(s.insert(&mut h, key, key), model.insert(key, key).is_none()),
                1 => assert_eq!(s.remove(&mut h, &key), model.remove(&key).is_some()),
                _ => assert_eq!(s.contains(&mut h, &key), model.contains_key(&key)),
            }
        }
        assert_eq!(s.len(&mut h), model.len());
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let threads = 4;
        let s = Arc::new(new_skip(threads));
        let mut joins = Vec::new();
        for t in 0..threads {
            let s = Arc::clone(&s);
            joins.push(std::thread::spawn(move || {
                let mut h = s.register(t).unwrap();
                let mut net: i64 = 0;
                let mut x: u64 = 0x1234_5678 + t as u64;
                for _ in 0..5_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let k = (x >> 33) % 128;
                    if (x >> 62) & 1 == 0 {
                        if s.insert(&mut h, k, k) {
                            net += 1;
                        }
                    } else if s.remove(&mut h, &k) {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        let mut h = s.register(0).unwrap();
        assert_eq!(s.len(&mut h) as i64, net);
        assert!(s.manager().reclaimer().stats().retired > 0);
    }
}

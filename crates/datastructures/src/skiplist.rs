//! A lock-free skip list written against the **safe guard layer** of the Record Manager
//! abstraction.
//!
//! The algorithm is the classic lock-free skip list (Fraser / Herlihy–Shavit style): every
//! level's `next` pointer carries a mark bit; removal marks a node's pointers from the top
//! level down and the node is physically unlinked level by level by subsequent traversals.
//! The thread whose bottom-level unlink CAS succeeds retires the node through the guard.
//! It plays the role of the skip list used in the paper's Experiments 1–3 (keyrange 2·10⁵
//! panels).
//!
//! Like the list and the hash map, the skip list contains no hand-rolled protection code:
//! each level is traversed with a two-role [`ShieldSet`] (predecessor/current, advanced by
//! [`ShieldSet::rotate`] — a store-free role rotation), every protect is the validated
//! announce-then-revalidate protocol of [`ShieldSet::protect_loaded`] (a no-op compiled to
//! nothing under epoch schemes), and retirement goes through the safe [`Guard::retire`]
//! at the unique bottom-level unlink point.
//!
//! # DEBRA+ completion phases
//!
//! An insert is *decided* by its bottom-level publication CAS; linking the upper levels is
//! a resumable completion phase.  The published node is announced in a
//! [`Recovery`](debra::Recovery) scope opened on the operation's
//! [`DomainHandle`], so a neutralized thread keeps the node's memory valid across the
//! recovery gap (a concurrent remove may retire it meanwhile) and re-enters the idempotent
//! completion phase in a fresh guard; the restricted protection is released when the scope
//! drops at the end of the whole operation.  A remove is decided by its bottom-level mark
//! CAS; after a neutralization only the physical unlink (a `find`) remains.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use debra::{
    Allocator, Atomic, Domain, DomainHandle, Guard, Pool, Protected, Reclaimer, RecordManager,
    RegistrationError, Restart, Shared, ShieldSet,
};

use crate::ConcurrentMap;

/// Maximum tower height of a skip list node.
pub const MAX_HEIGHT: usize = 20;

/// Mark (logical deletion) tag stored in the low bit of every level's `next` link.
const MARK: usize = 1;

/// The two window roles of a level traversal.
const PRED: usize = 0;
/// See [`PRED`].
const CURR: usize = 1;
/// Insert-only role: the new node, announced *before* its publication CAS (sound because
/// a private record cannot be retired) so the completion phase may keep dereferencing it
/// under per-access schemes even after a concurrent remove retires it.
const NODE: usize = 2;
/// Insert-only role: the target level's predecessor, duplicated out of the rotating
/// window so the completion phase's upper-level link CAS targets a protected record.
const TPRED: usize = 3;

/// A node of [`SkipList`]; `key == None` marks the head sentinel (smaller than every key).
pub struct SkipNode<K, V> {
    key: Option<K>,
    value: Option<V>,
    height: usize,
    next: [Atomic<SkipNode<K, V>>; MAX_HEIGHT],
}

impl<K, V> SkipNode<K, V> {
    /// The head sentinel: no key, full height, all links null.
    fn sentinel() -> Self {
        SkipNode {
            key: None,
            value: None,
            height: MAX_HEIGHT,
            next: std::array::from_fn(|_| Atomic::null()),
        }
    }

    /// A private key node whose links up to `height` are pre-wired to `succs` (the
    /// snapshot a `find` returned); published by the bottom-level CAS.
    fn new(key: K, value: V, height: usize, succs: &[Shared<'_, Self>; MAX_HEIGHT]) -> Self {
        SkipNode {
            key: Some(key),
            value: Some(value),
            height,
            next: std::array::from_fn(|level| {
                if level < height {
                    Atomic::from_shared(succs[level])
                } else {
                    Atomic::null()
                }
            }),
        }
    }

    /// The node's tower height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// `true` if this node's key is less than `key` (the sentinel is less than all keys).
    fn key_less(&self, key: &K) -> bool
    where
        K: Ord,
    {
        match &self.key {
            None => true, // head sentinel
            Some(k) => k < key,
        }
    }
}

impl<K: fmt::Debug, V> fmt::Debug for SkipNode<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipNode").field("key", &self.key).field("height", &self.height).finish()
    }
}

/// A lock-free skip list implementing a set/map, parameterized by the Record Manager
/// (reclaimer `R`, pool `P`, allocator `A`) through a [`Domain`].
pub struct SkipList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<SkipNode<K, V>>,
    P: Pool<SkipNode<K, V>>,
    A: Allocator<SkipNode<K, V>>,
{
    /// The head sentinel, installed at construction and only replaced at teardown.
    head: Atomic<SkipNode<K, V>>,
    /// State of the deterministic tower-height generator (see [`Self::random_height`]).
    height_rng: AtomicU64,
    domain: Domain<SkipNode<K, V>, R, P, A>,
}

/// Shorthand for the per-thread handle type used by [`SkipList`]: a domain lease that
/// pins guards without per-operation registry lookups.  Obtained with
/// [`ConcurrentMap::register`] and usable only on the thread that created it.
pub type SkipHandle<K, V, R, P, A> = DomainHandle<SkipNode<K, V>, R, P, A>;

/// Shorthand for the guard type of [`SkipList`] operations.
pub type SkipGuard<K, V, R, P, A> = Guard<SkipNode<K, V>, R, P, A>;

/// Shorthand for the shield set of a traversal: two window roles (predecessor/current)
/// plus, for inserts (`N = 4`), the [`NODE`] and [`TPRED`] roles.
type SkipShields<'g, const N: usize, K, V, R, P, A> = ShieldSet<'g, N, SkipNode<K, V>, R, P, A>;

/// A published insert's resumption state: the recovery token for the node (present only
/// under crash-recovery schemes — no other scheme restarts past the decision point) and
/// its tower height.
type PublishedInsert<'r, K, V> = (Option<Protected<'r, SkipNode<K, V>>>, usize);

/// Outcome of a [`SkipList::find`]: per-level predecessors and successors plus the node
/// holding the key, if present (null otherwise).  On return `preds[0]`/`succs[0]` are
/// still protected by the traversal's shields.
struct FindResult<'g, K, V> {
    preds: [Shared<'g, SkipNode<K, V>>; MAX_HEIGHT],
    succs: [Shared<'g, SkipNode<K, V>>; MAX_HEIGHT],
    found: Shared<'g, SkipNode<K, V>>,
}

impl<K, V, R, P, A> SkipList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<SkipNode<K, V>>,
    P: Pool<SkipNode<K, V>>,
    A: Allocator<SkipNode<K, V>>,
{
    /// Creates an empty skip list backed by `manager`.
    pub fn new(manager: Arc<RecordManager<SkipNode<K, V>, R, P, A>>) -> Self {
        Self::in_domain(Domain::with_manager(manager))
    }

    /// Creates an empty skip list backed by an existing [`Domain`] (sharing its thread
    /// leases).  Briefly leases a slot on the constructing thread to allocate the head
    /// sentinel.
    pub fn in_domain(domain: Domain<SkipNode<K, V>, R, P, A>) -> Self {
        let head = {
            let guard = domain.pin();
            Atomic::from_owned(guard.alloc(SkipNode::sentinel()))
        };
        SkipList { head, height_rng: AtomicU64::new(0), domain }
    }

    /// The Record Manager backing this skip list.
    pub fn manager(&self) -> &Arc<RecordManager<SkipNode<K, V>, R, P, A>> {
        self.domain.manager()
    }

    /// The reclamation domain backing this skip list.
    pub fn domain(&self) -> &Domain<SkipNode<K, V>, R, P, A> {
        &self.domain
    }

    /// Leases a per-thread handle; see [`ConcurrentMap::register`] (slots are leased
    /// automatically through the domain — no manual `tid` bookkeeping).
    pub fn register(&self) -> Result<SkipHandle<K, V, R, P, A>, RegistrationError> {
        self.domain.try_handle()
    }

    /// Finds predecessors and successors of `key` at every level, physically unlinking
    /// marked nodes on the way (the unlinker at level 0 retires the node).  On return
    /// the bottom-level predecessor and successor are still protected by `set`, and — if
    /// `keep_pred_level` is given (insert completion, which requires the 4-role set) —
    /// the predecessor found at that level additionally stays protected in [`TPRED`]
    /// while the descent reuses the window roles below it.
    ///
    /// A tagged predecessor link fails the shield's protect and restarts from the head:
    /// a marked `pred` is being removed, its successors can no longer be trusted, and an
    /// unlink CAS whose expected value carried the mark would *clear* it, resurrecting
    /// the half-removed predecessor (a double-retire in waiting).
    fn find<'g, const N: usize>(
        &self,
        guard: &'g SkipGuard<K, V, R, P, A>,
        set: &mut SkipShields<'g, N, K, V, R, P, A>,
        key: &K,
        keep_pred_level: Option<usize>,
    ) -> Result<FindResult<'g, K, V>, Restart> {
        'retry: loop {
            guard.check()?;
            let head = self.head.load(Ordering::Acquire, guard);
            let mut preds = [head; MAX_HEIGHT];
            let mut succs = [Shared::null(); MAX_HEIGHT];
            let mut pred = head;
            // Cached dereference of `pred` (kept in lock-step with it): the traversal's
            // hot path touches the predecessor's links on every step, and re-checking
            // the pointer each time would pay for a branch the raw code never had.
            let mut pred_ref = pred.as_ref().expect("head is non-null");
            for level in (0..MAX_HEIGHT).rev() {
                let mut curr_word = pred_ref.next[level].load(Ordering::Acquire, guard);
                let curr = loop {
                    // Protect-and-validate the node `curr_word` points to (the protect
                    // folds in the per-node neutralization checkpoint).  A failure means
                    // the link changed under us or is now marked — the node may already
                    // be retired: restart from the head.  The validating comparison is
                    // on the full link word, mark tag included.
                    let link = &pred_ref.next[level];
                    let Ok(curr) = set.protect_loaded(CURR, link, curr_word) else {
                        continue 'retry;
                    };
                    let Some(curr_ref) = curr.as_ref() else {
                        break curr;
                    };
                    let next = curr_ref.next[level].load(Ordering::Acquire, guard);
                    if next.tag() == MARK {
                        // Unlink the marked node at this level.
                        let unlink_to = next.with_tag(0);
                        match link.compare_exchange(
                            curr,
                            unlink_to,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        ) {
                            Ok(()) => {
                                if level == 0 {
                                    // Fully unlinked: this thread is the unique level-0
                                    // unlink winner and owns the retirement.
                                    guard.retire(curr);
                                }
                                curr_word = unlink_to;
                                continue;
                            }
                            Err(_) => continue 'retry,
                        }
                    }
                    if curr_ref.key_less(key) {
                        // Advance: `curr` becomes the predecessor.  Rotating the roles
                        // moves the protection without touching the announcements.
                        set.rotate([PRED, CURR]);
                        pred = curr;
                        pred_ref = curr_ref;
                        curr_word = next;
                    } else {
                        break curr;
                    }
                };
                preds[level] = pred;
                succs[level] = curr;
                if keep_pred_level == Some(level) && pred != head {
                    // Pin this level's predecessor beyond the rotating window: the
                    // insert completion CASes on its link after the descent finishes.
                    // (The head sentinel is never retired and needs no announcement.)
                    set.duplicate(PRED, TPRED, pred);
                }
            }
            let found = match succs[0].as_ref() {
                Some(candidate) if candidate.key.as_ref() == Some(key) => succs[0],
                _ => Shared::null(),
            };
            return Ok(FindResult { preds, succs, found });
        }
    }

    /// Geometric(1/2) tower height from a deterministic SplitMix64 stream: one relaxed
    /// `fetch_add` per insert (concurrent inserters draw distinct values), reproducible
    /// across runs — which is what makes the `skiplist_raw` / `skiplist_guard` benchmark
    /// pair compare identical tower shapes instead of per-run RNG luck.
    fn random_height(&self) -> usize {
        let x = self.height_rng.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        1 + (z.trailing_ones() as usize).min(MAX_HEIGHT - 1)
    }

    /// Completion phase of an already-published insert: links the upper levels and, if a
    /// concurrent remove marked the node meanwhile, makes sure it is physically unlinked
    /// before the operation ends (a retired node must never stay reachable past the
    /// inserting operation, or it could be freed while other threads can still step onto
    /// it through an upper-level link).
    ///
    /// Idempotent: on neutralization the caller re-runs it inside a fresh guard, with
    /// `node` re-derived from its [`Protected`] recovery token.
    fn complete_insert<'g>(
        &self,
        guard: &'g SkipGuard<K, V, R, P, A>,
        set: &mut SkipShields<'g, 4, K, V, R, P, A>,
        key: &K,
        node: Shared<'g, SkipNode<K, V>>,
        height: usize,
    ) -> Result<(), Restart> {
        let node_ref = node.as_ref().expect("published node is non-null");
        'levels: for level in 1..height {
            loop {
                let expected = node_ref.next[level].load(Ordering::Acquire, guard);
                if expected.tag() == MARK {
                    break 'levels; // concurrently removed; stop climbing
                }
                let r2 = self.find(guard, set, key, Some(level))?;
                if r2.found != node {
                    break 'levels; // already removed and unlinked at the bottom
                }
                if r2.succs[level] == node {
                    // Already linked at this level: we are re-running the (idempotent)
                    // completion after a neutralization, and `find` now returns the node
                    // as its own successor here.  Without this check the CAS below would
                    // set `node.next[level] = node` — a self-cycle that every later
                    // traversal of this level would spin on forever.
                    continue 'levels;
                }
                if expected != r2.succs[level]
                    && node_ref.next[level]
                        .compare_exchange(
                            expected,
                            r2.succs[level],
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        )
                        .is_err()
                {
                    continue;
                }
                if r2.preds[level].as_ref().expect("preds are non-null").next[level]
                    .compare_exchange(
                        r2.succs[level],
                        node,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    )
                    .is_ok()
                {
                    break;
                }
            }
        }
        if node_ref.next[0].load(Ordering::Acquire, guard).tag() == MARK {
            // A concurrent remove won while we were climbing: unlink everywhere (the
            // level-0 unlink winner performs the retirement).
            let _ = self.find(guard, set, key, None)?;
        }
        Ok(())
    }

    fn remove_body(
        &self,
        guard: &SkipGuard<K, V, R, P, A>,
        key: &K,
        decided: &mut bool,
    ) -> Result<bool, Restart> {
        let mut set = guard.shield_set::<2>();
        if *decided {
            // The bottom-level mark CAS already succeeded in an attempt that was then
            // interrupted by neutralization; only the physical unlink remains.
            let _ = self.find(guard, &mut set, key, None)?;
            return Ok(true);
        }
        let r = self.find(guard, &mut set, key, None)?;
        let Some(victim) = r.found.as_ref() else {
            return Ok(false);
        };
        // Mark the upper levels (top-down).
        for level in (1..victim.height).rev() {
            loop {
                let w = victim.next[level].load(Ordering::Acquire, guard);
                if w.tag() == MARK {
                    break;
                }
                if victim.next[level]
                    .compare_exchange(
                        w,
                        w.with_tag(MARK),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    )
                    .is_ok()
                {
                    break;
                }
            }
        }
        // Mark the bottom level; only one remover succeeds.  The successful CAS is the
        // linearization point: everything after it must not unwind the decision.
        loop {
            let w = victim.next[0].load(Ordering::Acquire, guard);
            if w.tag() == MARK {
                return Ok(false); // another remover won
            }
            if victim.next[0]
                .compare_exchange(w, w.with_tag(MARK), Ordering::AcqRel, Ordering::Acquire, guard)
                .is_ok()
            {
                *decided = true;
                // Physically unlink (and let the unlink winner retire) via find.
                let _ = self.find(guard, &mut set, key, None)?;
                return Ok(true);
            }
            guard.check()?;
        }
    }

    fn get_body(&self, guard: &SkipGuard<K, V, R, P, A>, key: &K) -> Result<Option<V>, Restart> {
        // Read-only traversal (does not unlink).  Every step onto a node goes through a
        // validated protect, so schemes with real per-access protection cover the record
        // before it is dereferenced; the loaded words are tag-stripped first, so under
        // epoch schemes (whose validation compiles to nothing) the traversal keeps
        // walking through marked — and possibly retired — nodes, exactly the Section 3
        // access pattern, while under HP-style schemes a marked predecessor link fails
        // the exact-word validation and restarts.
        let mut set = guard.shield_set::<2>();
        'retry: loop {
            guard.check()?;
            let pred = self.head.load(Ordering::Acquire, guard);
            let mut pred_ref = pred.as_ref().expect("head is non-null");
            for level in (0..MAX_HEIGHT).rev() {
                let mut curr_word = pred_ref.next[level].load(Ordering::Acquire, guard).with_tag(0);
                loop {
                    let link = &pred_ref.next[level];
                    let Ok(curr) = set.protect_loaded(CURR, link, curr_word) else {
                        continue 'retry;
                    };
                    let Some(curr_ref) = curr.as_ref() else {
                        break;
                    };
                    if curr_ref.key_less(key) {
                        set.rotate([PRED, CURR]);
                        pred_ref = curr_ref;
                        curr_word = curr_ref.next[level].load(Ordering::Acquire, guard).with_tag(0);
                    } else {
                        break;
                    }
                }
            }
            let candidate = pred_ref.next[0].load(Ordering::Acquire, guard).with_tag(0);
            if !candidate.is_null() {
                let Ok(candidate) = set.protect_loaded(CURR, &pred_ref.next[0], candidate) else {
                    continue 'retry;
                };
                let node = candidate.as_ref().expect("candidate is non-null");
                if node.key.as_ref() == Some(key)
                    && node.next[0].load(Ordering::Acquire, guard).tag() == 0
                {
                    return Ok(node.value.clone());
                }
            }
            return Ok(None);
        }
    }

    /// Number of keys currently in the list; test/diagnostic helper.
    ///
    /// The traversal announces no per-node protection, which only epoch-style schemes
    /// honor; under protection-based schemes (HP, ThreadScan, IBR) it must not race with
    /// concurrent removals — call it only when no other thread is updating the list.
    pub fn len(&self, handle: &mut SkipHandle<K, V, R, P, A>) -> usize {
        handle.run(|guard| {
            let mut n = 0;
            let head = self.head.load(Ordering::Acquire, guard);
            let mut curr =
                head.as_ref().expect("head is non-null").next[0].load(Ordering::Acquire, guard);
            while let Some(node) = curr.as_ref() {
                let next = node.next[0].load(Ordering::Acquire, guard);
                if next.tag() == 0 {
                    n += 1;
                }
                curr = next;
            }
            Ok(n)
        })
    }

    /// Returns `true` if the skip list holds no keys (diagnostic helper).
    pub fn is_empty(&self, handle: &mut SkipHandle<K, V, R, P, A>) -> bool {
        self.len(handle) == 0
    }
}

impl<K, V, R, P, A> ConcurrentMap<K, V> for SkipList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<SkipNode<K, V>>,
    P: Pool<SkipNode<K, V>>,
    A: Allocator<SkipNode<K, V>>,
{
    type Handle = SkipHandle<K, V, R, P, A>;

    fn register(&self) -> Result<Self::Handle, RegistrationError> {
        self.domain.try_handle()
    }

    fn insert(&self, handle: &mut Self::Handle, key: K, value: V) -> bool {
        // `published` survives neutralization-induced retries: once the bottom-level CAS
        // has succeeded, only the (idempotent) completion phase is re-run, so the insert
        // takes effect exactly once.  The recovery scope keeps the published node
        // R-protected across the recovery gap — a concurrent remove may retire it while
        // this thread is between attempts — and releases the protection when the whole
        // operation (completion phase included) is done.  Schemes without crash
        // recovery skip the scope (and its token) entirely — the branch is constant
        // after monomorphization.
        let recovery = handle.supports_crash_recovery().then(|| handle.recovery());
        let mut published: Option<PublishedInsert<'_, K, V>> = None;
        handle.run(|guard| {
            let mut set = guard.shield_set::<4>();
            if let Some((token, height)) = &published {
                // Resuming an interrupted completion phase.  Under DEBRA+ the recovery
                // token re-derives the published node and the idempotent completion
                // re-runs.  A validating scheme (VBR) can also restart past the
                // decision point; it holds no token, and without one there is no safe
                // way to re-identify the node (the address may since have been
                // recycled) — so abandon the upper-level climb.  That is sound: the
                // bottom-level link is the linearization point and alone determines
                // membership; a node that never climbs costs traversal performance,
                // not correctness.
                if let Some(token) = token {
                    let node = token.get(guard);
                    self.complete_insert(guard, &mut set, &key, node, *height)?;
                }
                return Ok(true);
            }
            loop {
                let r = self.find(guard, &mut set, &key, None)?;
                if !r.found.is_null() {
                    return Ok(false);
                }
                let height = self.random_height();
                let node = guard.alloc(SkipNode::new(key.clone(), value.clone(), height, &r.succs));
                // Announce the still-private node *before* publication — sound because a
                // private record cannot be retired, and required by both protections
                // that must already cover the node when the CAS makes it retirable: the
                // shield keeps it dereferenceable under per-access schemes through the
                // completion phase (a concurrent remove may mark and retire it), and the
                // restricted hazard pointer keeps it valid across a DEBRA+ recovery gap
                // (a neutralization can land on the very instruction after the CAS).
                set.protect_private(NODE, &node);
                let token = recovery.as_ref().map(|r| r.protect(node.shared()));
                if let Err(restart) = guard.check() {
                    // Not yet published: recycle immediately and drop this attempt's
                    // restricted announcement, then unwind to recovery.
                    guard.discard(node);
                    if let Some(r) = &recovery {
                        r.clear();
                    }
                    return Err(restart);
                }
                // Publish at the bottom level: the operation's linearization point.
                match r.preds[0].as_ref().expect("preds are non-null").next[0]
                    .compare_exchange_owned(
                        r.succs[0],
                        node,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    ) {
                    Ok(node) => {
                        published = Some((token, height));
                        self.complete_insert(guard, &mut set, &key, node, height)?;
                        return Ok(true);
                    }
                    Err(node) => {
                        // The node was never made reachable; recycle it, drop its
                        // restricted announcement, and retry.
                        guard.discard(node);
                        if let Some(r) = &recovery {
                            r.clear();
                        }
                        continue;
                    }
                }
            }
        })
    }

    fn remove(&self, handle: &mut Self::Handle, key: &K) -> bool {
        // Same decision/completion split as `insert`: a remove whose bottom-level mark CAS
        // has succeeded reports success even if its physical unlink is interrupted.
        let mut decided = false;
        handle.run(|guard| self.remove_body(guard, key, &mut decided))
    }

    fn contains(&self, handle: &mut Self::Handle, key: &K) -> bool {
        handle.run(|guard| self.get_body(guard, key)).is_some()
    }

    fn get(&self, handle: &mut Self::Handle, key: &K) -> Option<V> {
        handle.run(|guard| self.get_body(guard, key))
    }
}

impl<K, V, R, P, A> Drop for SkipList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<SkipNode<K, V>>,
    P: Pool<SkipNode<K, V>>,
    A: Allocator<SkipNode<K, V>>,
{
    fn drop(&mut self) {
        // Exclusive access during drop (`&mut self`): the bottom-level chain visits every
        // node (head sentinel included) exactly once.
        self.domain.free_reachable(self.head.load_ptr(Ordering::Relaxed), |node| {
            node.next[0].load_ptr(Ordering::Relaxed)
        });
    }
}

impl<K, V, R, P, A> fmt::Debug for SkipList<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<SkipNode<K, V>>,
    P: Pool<SkipNode<K, V>>,
    A: Allocator<SkipNode<K, V>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipList").field("reclaimer", &R::name()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::Debra;
    use smr_alloc::{SystemAllocator, ThreadPool};

    type Node = SkipNode<u64, u64>;
    type TestSkip = SkipList<u64, u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;

    fn new_skip(threads: usize) -> TestSkip {
        SkipList::new(Arc::new(RecordManager::new(threads)))
    }

    #[test]
    fn sequential_set_semantics() {
        let s = new_skip(1);
        let mut h = s.register().unwrap();
        assert!(s.insert(&mut h, 3, 30));
        assert!(s.insert(&mut h, 1, 10));
        assert!(s.insert(&mut h, 2, 20));
        assert!(!s.insert(&mut h, 2, 21));
        assert_eq!(s.get(&mut h, &2), Some(20));
        assert_eq!(s.len(&mut h), 3);
        assert!(s.remove(&mut h, &2));
        assert!(!s.remove(&mut h, &2));
        assert!(!s.contains(&mut h, &2));
        assert_eq!(s.len(&mut h), 2);
    }

    #[test]
    fn matches_a_sequential_model() {
        use std::collections::BTreeMap;
        let s = new_skip(1);
        let mut h = s.register().unwrap();
        let mut model = BTreeMap::new();
        let mut x: u64 = 0xDEADBEEFCAFEF00D;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 100;
            match (x >> 61) % 3 {
                0 => assert_eq!(s.insert(&mut h, key, key), model.insert(key, key).is_none()),
                1 => assert_eq!(s.remove(&mut h, &key), model.remove(&key).is_some()),
                _ => assert_eq!(s.contains(&mut h, &key), model.contains_key(&key)),
            }
        }
        assert_eq!(s.len(&mut h), model.len());
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let threads = 4;
        let s = Arc::new(new_skip(threads + 1));
        let mut joins = Vec::new();
        for t in 0..threads {
            let s = Arc::clone(&s);
            joins.push(std::thread::spawn(move || {
                let mut h = s.register().unwrap();
                let mut net: i64 = 0;
                let mut x: u64 = 0x1234_5678 + t as u64;
                for _ in 0..5_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let k = (x >> 33) % 128;
                    if (x >> 62) & 1 == 0 {
                        if s.insert(&mut h, k, k) {
                            net += 1;
                        }
                    } else if s.remove(&mut h, &k) {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        let mut h = s.register().unwrap();
        assert_eq!(s.len(&mut h) as i64, net);
        assert!(s.manager().reclaimer().stats().retired > 0);
    }
}

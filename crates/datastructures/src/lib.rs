//! Lock-free data structures written against the Record Manager abstraction.
//!
//! These are the workloads of the paper's evaluation (Section 7), implemented from scratch
//! and parameterized — through the Record Manager — by the reclamation scheme, the pool and
//! the allocator.  Changing the memory management strategy of any of them is a one-line
//! change of type parameters; the data structure code itself never mentions a concrete
//! scheme.
//!
//! * [`HarrisMichaelList`] — a lock-free sorted linked list (Harris's marking scheme with
//!   Michael's one-at-a-time physical removal).  Small and easy to reason about; used
//!   heavily by the test suite.
//! * [`ExternalBst`] — a lock-free *external* (leaf-oriented) binary search tree with
//!   flag/mark descriptors and helping, in the style of Ellen, Fatourou, Ruppert and
//!   van Breugel.  This is the reproduction's stand-in for the paper's balanced BST (see
//!   `DESIGN.md`): searches traverse pointers from retired nodes to other retired nodes,
//!   nodes are marked before they are retired, and updates are helped through descriptors —
//!   exactly the properties that make hazard pointers problematic and that DEBRA/DEBRA+
//!   handle naturally.
//! * [`SkipList`] — a lock-free skip list (marking in every level's next pointer), the
//!   second workload shape used by the paper's evaluation.
//!
//! All three are written **entirely against the safe guard layer**
//! ([`debra::Domain`]/[`debra::Guard`]/[`debra::Shield`]/[`debra::ShieldSet`]): this crate
//! contains no `unsafe` code at all — enforced by `#![forbid(unsafe_code)]` — and every
//! structure provides the set/map interface used by the benchmark harness (`insert`,
//! `remove`, `contains`/`get`), each taking the structure's per-thread
//! [`debra::DomainHandle`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bst;
pub mod list;
pub mod skiplist;

pub use bst::{BstNode, ExternalBst};
pub use list::{HarrisMichaelList, ListNode};
pub use skiplist::{SkipList, SkipNode, MAX_HEIGHT};

/// The concurrent set/map interface shared by every structure in this crate, used by the
/// generic benchmark driver in `smr-workloads` and by the cross-structure test suite.
///
/// `Handle` is the per-thread handle type of the concrete structure (a
/// [`debra::DomainHandle`] lease for every structure in this workspace); it is obtained
/// once per worker thread with [`ConcurrentMap::register`] and then passed to every
/// operation, exactly as in the paper's usage model.
pub trait ConcurrentMap<K, V>: Send + Sync {
    /// Per-thread handle required by the operations.
    type Handle;

    /// Registers the calling thread and returns its handle.  Must be called on the thread
    /// that will use the handle.
    ///
    /// Thread slots are leased automatically through each structure's [`debra::Domain`]
    /// — there is no manual `tid` bookkeeping anywhere in the interface.
    fn register(&self) -> Result<Self::Handle, debra::RegistrationError>;

    /// Inserts `key -> value`; returns `true` if the key was not present.
    fn insert(&self, handle: &mut Self::Handle, key: K, value: V) -> bool;

    /// Removes `key`; returns `true` if it was present.
    fn remove(&self, handle: &mut Self::Handle, key: &K) -> bool;

    /// Returns `true` if `key` is present.
    fn contains(&self, handle: &mut Self::Handle, key: &K) -> bool;

    /// Returns the value associated with `key`, if any.
    fn get(&self, handle: &mut Self::Handle, key: &K) -> Option<V>;
}

/// The concurrent *bag* interface: unordered-in-the-interface containers of values —
/// queues, stacks, pools — whose operations are `push`/`pop` rather than keyed
/// insert/remove/search.
///
/// This is the abstraction the producer/consumer workload family drives, the sibling of
/// [`ConcurrentMap`] for the structures the paper's evaluation never touches (every
/// figure is map-shaped).  The interface deliberately does not promise an ordering —
/// FIFO (Michael–Scott queue) and LIFO (Treiber stack) are properties of the concrete
/// structure, asserted by its own tests — because the harness only needs transfer
/// semantics: every pushed value is popped at most once, and pops return `None` only
/// when the bag may linearizably be empty.
///
/// Bags are the worst-case *limbo pressure* workload for a reclamation scheme: every
/// successful `pop` retires a record, so garbage generation is proportional to raw
/// throughput instead of to an update ratio — there is no read-mostly regime to hide in.
///
/// `Handle` is the per-thread handle type, obtained once per worker thread with
/// [`ConcurrentBag::register`] (a [`debra::DomainHandle`] lease for the structures in
/// this workspace), exactly as for [`ConcurrentMap`].
pub trait ConcurrentBag<T>: Send + Sync {
    /// Per-thread handle required by the operations.
    type Handle;

    /// Registers the calling thread and returns its handle.  Must be called on the thread
    /// that will use the handle.
    fn register(&self) -> Result<Self::Handle, debra::RegistrationError>;

    /// Adds `value` to the bag.  Lock-free and total: a push never fails.
    fn push(&self, handle: &mut Self::Handle, value: T);

    /// Removes and returns a value, or `None` if the bag appeared empty at some point
    /// during the call (the linearization point of an empty pop).
    fn pop(&self, handle: &mut Self::Handle) -> Option<T>;
}
